package beepmis

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun smoke-tests every examples/ binary: each must
// compile and run to completion with a zero exit status. The examples
// are self-contained demos that terminate on their own; a generous
// timeout guards against a regression that makes one hang.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds and runs binaries; skipped in -short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) < 6 {
		t.Fatalf("expected at least 6 examples, found %v", names)
	}
	binDir := t.TempDir()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./examples/%s: %v\n%s", name, err, out)
			}
			done := make(chan error, 1)
			cmd := exec.Command(bin)
			cmd.Stdout = nil // discard demo output
			cmd.Stderr = nil
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("examples/%s exited with %v", name, err)
				}
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatalf("examples/%s did not terminate within 3 minutes", name)
			}
		})
	}
}
