package beepmis

import (
	"fmt"
	"runtime"
	"testing"
)

// TestEngineEquivalenceMultiCore asserts the public seed-equivalence
// contract where it is hardest: under GOMAXPROCS > 1, where the
// columnar and sparse engines' sharded phases (eligible draws, both
// exchanges, observe) genuinely run concurrently, at shard counts
// chosen to be awkward — serial, an odd count that never divides the
// word space evenly, all cores, and 2× oversubscription. The graph is
// large enough that the engines' sharded draw path engages (it gates
// on the active population), and the fault variants drag the wake-up,
// outage, and channel-noise overlays through the same concurrency. CI
// runs this under the race detector.
func TestEngineEquivalenceMultiCore(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	gmp := runtime.GOMAXPROCS(0)
	shardCounts := []int{1, 3, gmp, 2 * gmp}

	g := GNP(5000, 0.004, 77)
	specs := []struct {
		name   string
		faults *FaultSpec
	}{
		{"pure", nil},
		{"noise", &FaultSpec{Loss: 0.04, Spurious: 0.01}},
		{"wake-degree", &FaultSpec{Wake: &FaultWake{Kind: WakeDegree, Window: 9}}},
		{"crash-and-reset", &FaultSpec{Outages: []FaultOutage{
			{Node: 12, From: 2, For: 5},
			{Node: 4097, From: 4, For: 3, Reset: true},
		}}},
	}
	for _, fc := range specs {
		t.Run(fc.name, func(t *testing.T) {
			base := []Option{WithSeed(31)}
			if fc.faults != nil {
				base = append(base, WithFaults(*fc.faults))
			}
			scalar, err := Solve(g, AlgorithmFeedback, append([]Option{WithEngine(EngineScalar)}, base...)...)
			if err != nil {
				t.Fatalf("scalar: %v", err)
			}
			if fc.faults == nil {
				if err := Verify(g, scalar.InMIS); err != nil {
					t.Fatalf("invalid MIS: %v", err)
				}
			}
			for _, engine := range []Engine{EngineColumnar, EngineSparse} {
				for _, shards := range shardCounts {
					name := fmt.Sprintf("%v/shards=%d", engine, shards)
					res, err := Solve(g, AlgorithmFeedback,
						append([]Option{WithEngine(engine), WithShards(shards)}, base...)...)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if scalar.Rounds != res.Rounds || scalar.TotalBeeps != res.TotalBeeps {
						t.Fatalf("%s: rounds %d vs %d, beeps %d vs %d",
							name, scalar.Rounds, res.Rounds, scalar.TotalBeeps, res.TotalBeeps)
					}
					for v := range scalar.InMIS {
						if scalar.InMIS[v] != res.InMIS[v] {
							t.Fatalf("%s: InMIS differs at vertex %d", name, v)
						}
					}
				}
			}
		})
	}
}
