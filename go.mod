module beepmis

go 1.24
