// Package beepmis is a Go implementation of the distributed maximal
// independent set (MIS) algorithms of Scott, Jeavons & Xu, "Feedback from
// nature: an optimal distributed algorithm for maximal independent set
// selection" (PODC 2013), together with the baselines the paper compares
// against and the simulation/runtime substrates needed to reproduce its
// evaluation.
//
// The headline algorithm runs in the beeping model: nodes broadcast
// anonymous one-bit "beeps" and adapt their beep probability from local
// feedback (halve it when a neighbour beeps, double it — up to 1/2 —
// otherwise). A node that beeps into silence joins the MIS. This takes
// O(log n) expected time steps and O(1) expected beeps per node on any
// graph.
//
// Quick start:
//
//	g := beepmis.GNP(500, 0.5, 1) // G(n=500, p=1/2), generation seed 1
//	res, err := beepmis.Solve(g, beepmis.AlgorithmFeedback, beepmis.WithSeed(42))
//	if err != nil { ... }
//	fmt.Println(res.Rounds, res.SetSize())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure and table in the paper.
package beepmis

import (
	"fmt"
	"io"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
	"beepmis/internal/runtime"
	"beepmis/internal/sim"
)

// Graph is an immutable simple undirected graph on vertices 0..N()-1.
type Graph = graph.Graph

// GraphBuilder accumulates edges and produces a Graph.
type GraphBuilder = graph.Builder

// FeedbackConfig tunes the feedback algorithm; its zero value is the
// published algorithm (p₀ = 1/2, halve/double, cap 1/2, no floor).
type FeedbackConfig = mis.FeedbackConfig

// FaultSpec declares a run's fault model for WithFaults: per-listener
// channel noise (Loss, Spurious), adversarial wake-up schedules, and
// transient outages with resume-or-reset recovery. The zero value is
// the perfect world. Every fault feature is engine-agnostic — noisy
// runs execute on all four simulator engines with bit-identical
// results.
type FaultSpec = fault.Spec

// FaultWake declares a wake-up schedule inside a FaultSpec: kind
// WakeUniform (each node wakes uniformly in [1, Window]), WakeDegree
// (hubs wake last, deterministically), or WakeExplicit (listed rounds).
type FaultWake = fault.Wake

// Wake schedule kinds for FaultWake.Kind.
const (
	WakeUniform  = fault.WakeUniform
	WakeDegree   = fault.WakeDegree
	WakeExplicit = fault.WakeExplicit
)

// FaultOutage takes one node down for rounds [From, From+For) inside a
// FaultSpec; Reset selects reset (fresh state) over resume recovery.
type FaultOutage = fault.Outage

// FaultVerifier incrementally checks independence every round and
// maximality at termination; see NewFaultVerifier.
type FaultVerifier = fault.Verifier

// EngineMetrics is the lock-free telemetry bundle WithMetrics attaches
// to a simulator run: per-phase wall-time histograms, per-round
// frontier sizes, propagation volume, and exchange-strategy counters.
// The zero value is ready to use, one bundle may aggregate any number
// of runs (including concurrent ones), and recording never draws
// randomness or allocates — results are bit-identical and the round
// loop stays allocation-free with metrics attached.
type EngineMetrics = obs.EngineMetrics

// NewFaultVerifier returns a per-round MIS safety checker for g. It is
// driven by the simulator automatically when solving with WithFaults;
// construct one directly to use with custom sim integrations.
func NewFaultVerifier(g *Graph) *FaultVerifier { return fault.NewVerifier(g) }

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GNP returns an Erdős–Rényi random graph G(n, p) generated from seed.
func GNP(n int, p float64, seed uint64) *Graph { return graph.GNP(n, p, rng.New(seed)) }

// Grid returns the rows×cols rectangular grid graph.
func Grid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// Complete returns the complete graph K_n.
func Complete(n int) *Graph { return graph.Complete(n) }

// CliqueFamily returns the Theorem 1 lower-bound family for parameter n.
func CliqueFamily(n int) *Graph { return graph.CliqueFamily(n) }

// UnitDisk returns a random unit-disk (wireless) graph with n nodes and
// connection radius r, generated from seed.
func UnitDisk(n int, r float64, seed uint64) *Graph {
	return graph.UnitDisk(n, r, rng.New(seed))
}

// ReadEdgeList parses a graph in the textual edge-list format produced
// by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList writes g in a textual edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Verify checks that set is a maximal independent set of g.
func Verify(g *Graph, set []bool) error { return graph.VerifyMIS(g, set) }

// Engine selects the simulation engine used for the beeping algorithms.
// All engines produce bit-identical Results for a given seed; they
// differ only in speed (see DESIGN.md for the selection heuristic).
type Engine = sim.Engine

const (
	// EngineAuto picks the bitset engine on graphs dense enough for
	// word-parallel delivery to win, the scalar engine otherwise. This
	// is the default.
	EngineAuto = sim.EngineAuto
	// EngineScalar walks adjacency lists edge-by-edge.
	EngineScalar = sim.EngineScalar
	// EngineBitset delivers beeps via packed adjacency-row bitsets, 64
	// listeners per word operation (O(n²/8) bytes of memory).
	EngineBitset = sim.EngineBitset
	// EngineColumnar runs the whole round loop on packed words: a bulk
	// algorithm kernel draws beeps from struct-of-arrays state, node
	// masks are bitsets end-to-end, and propagation is sharded across
	// cores (see WithShards). The fastest engine for every algorithm
	// that has a kernel; EngineAuto picks it whenever it applies.
	EngineColumnar = sim.EngineColumnar
	// EngineSparse runs the columnar round loop over the O(n + m) CSR
	// representation instead of the dense matrix, walking only the
	// adjacency rows of current emitters (sharded by destination range,
	// see WithShards). Memory scales with edges rather than n², which
	// is how million-node graphs run; EngineAuto picks it whenever the
	// matrix would blow the memory budget but the edge array fits.
	EngineSparse = sim.EngineSparse
)

// Algorithm selects an MIS algorithm.
type Algorithm string

// The implemented algorithms.
const (
	// AlgorithmFeedback is the paper's contribution: locally adapted
	// beep probabilities, O(log n) expected time.
	AlgorithmFeedback Algorithm = "feedback"
	// AlgorithmGlobalSweep is Afek et al.'s DISC'11 preset sweeping
	// schedule, Θ(log² n) expected time.
	AlgorithmGlobalSweep Algorithm = "globalsweep"
	// AlgorithmAfekOriginal is Afek et al.'s Science'11 schedule, which
	// assumes knowledge of n and the maximum degree.
	AlgorithmAfekOriginal Algorithm = "afek"
	// AlgorithmLubyPermutation is Luby's algorithm, random-priority
	// variant (multi-bit messages).
	AlgorithmLubyPermutation Algorithm = "luby-permutation"
	// AlgorithmLubyProbability is Luby's original marking variant.
	AlgorithmLubyProbability Algorithm = "luby-probability"
	// AlgorithmMetivier is the optimal-bit-complexity algorithm of
	// Métivier et al. (bit-by-bit random duels; the paper's ref [18]).
	AlgorithmMetivier Algorithm = "metivier"
	// AlgorithmGreedy is the centralised sequential scan.
	AlgorithmGreedy Algorithm = "greedy"
)

// Algorithms returns every selectable algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgorithmFeedback, AlgorithmGlobalSweep, AlgorithmAfekOriginal,
		AlgorithmLubyPermutation, AlgorithmLubyProbability,
		AlgorithmMetivier, AlgorithmGreedy,
	}
}

// Result reports a Solve call.
type Result struct {
	// InMIS is the computed maximal independent set, indexed by vertex.
	InMIS []bool
	// Rounds is the number of synchronous rounds (0 for the centralised
	// greedy baseline).
	Rounds int
	// TotalBeeps counts beeps across all nodes (beeping algorithms
	// only).
	TotalBeeps int
	// MessageBits counts message payload bits (Luby variants only).
	MessageBits int
	// Robustness carries the per-round fault verifier's findings; nil
	// unless the run was solved WithFaults.
	Robustness *RobustnessReport
}

// RobustnessReport is what the fault verifier observed during a noisy
// run: whether the output may be trusted, and how long it took to earn
// that trust.
type RobustnessReport struct {
	// IndependenceViolations counts adjacent-member breaches observed
	// across all rounds (loss noise can admit two adjacent joiners).
	IndependenceViolations int
	// StableRound is the last round MIS membership changed — the
	// honest convergence metric under faults, where the set can be
	// perturbed and repaired after first looking finished.
	StableRound int
	// Uncovered lists the nodes with no set coverage at termination (a
	// maximality hole left by, e.g., a reset of an established member).
	Uncovered []int
}

// SetSize returns the number of vertices in the computed set.
func (r *Result) SetSize() int {
	count := 0
	for _, in := range r.InMIS {
		if in {
			count++
		}
	}
	return count
}

// MeanBeepsPerNode returns TotalBeeps averaged over the graph's nodes.
func (r *Result) MeanBeepsPerNode() float64 {
	if len(r.InMIS) == 0 {
		return 0
	}
	return float64(r.TotalBeeps) / float64(len(r.InMIS))
}

// solveOptions collects Option settings.
type solveOptions struct {
	seed         uint64
	maxRounds    int
	feedback     FeedbackConfig
	concurrent   bool
	engine       Engine
	shards       int
	memoryBudget int64
	faults       *FaultSpec
	metrics      *EngineMetrics
}

// Option customises Solve.
type Option func(*solveOptions)

// WithSeed fixes the randomness seed; equal seeds give identical runs.
func WithSeed(seed uint64) Option {
	return func(o *solveOptions) { o.seed = seed }
}

// WithMaxRounds caps the number of synchronous rounds.
func WithMaxRounds(max int) Option {
	return func(o *solveOptions) { o.maxRounds = max }
}

// WithFeedbackConfig overrides the feedback algorithm's parameters.
func WithFeedbackConfig(cfg FeedbackConfig) Option {
	return func(o *solveOptions) { o.feedback = cfg }
}

// WithEngine pins the simulation engine for beeping algorithms instead
// of the default density-based auto-selection. Results are identical for
// every engine on a given seed; pinning matters only for performance
// work and for tests that cross-check the engines against each other.
// Combining a pin with WithConcurrentEngine is an error — the
// goroutine-per-node runtime has no simulator engine to pin.
func WithEngine(e Engine) Option {
	return func(o *solveOptions) { o.engine = e }
}

// WithShards bounds the goroutines the columnar and sparse engines fan
// beep propagation out to; 0 (the default) uses all cores and 1 keeps
// propagation serial. Results are bit-identical for every value — shard
// workers own disjoint destination word ranges — so this is purely a
// performance knob. Combining a non-zero value with
// WithConcurrentEngine is an error, as is pinning an engine that does
// not shard propagation.
func WithShards(shards int) Option {
	return func(o *solveOptions) { o.shards = shards }
}

// WithMemoryBudget caps the bytes the auto engine selection will spend
// on an adjacency representation (the dense matrix, or the CSR edge
// array of EngineSparse); 0 (the default) means sim.DefaultMemoryBudget,
// 2 GiB. Purely a selection knob: results are bit-identical whichever
// engine the budget admits. Explicit WithEngine pins ignore it.
func WithMemoryBudget(bytes int64) Option {
	return func(o *solveOptions) { o.memoryBudget = bytes }
}

// WithFaults runs a beeping algorithm under the given fault model:
// per-listener beep loss and spurious noise, adversarial wake-up
// schedules, and transient outages (see FaultSpec). The fault layer is
// engine-agnostic — results stay bit-identical across every simulator
// engine and shard count for a given seed — and the returned Result
// carries a RobustnessReport from the per-round verifier. Combining a
// non-trivial spec with WithConcurrentEngine is an error: the
// goroutine-per-node runtime has no fault layer.
func WithFaults(spec FaultSpec) Option {
	return func(o *solveOptions) { o.faults = &spec }
}

// WithMetrics aggregates simulator telemetry for the run into m: phase
// timings, frontier sizes, propagation volume (see EngineMetrics). The
// bundle is purely observational — results, rng streams, and the
// zero-allocation round loop are untouched — so the same m can be
// shared across runs to accumulate a workload profile. Only the
// simulator engines record; the non-beeping baselines and the
// goroutine-per-node runtime leave m unchanged.
func WithMetrics(m *EngineMetrics) Option {
	return func(o *solveOptions) { o.metrics = m }
}

// WithConcurrentEngine runs beeping algorithms on the goroutine-per-node
// engine instead of the sequential simulator. Results are identical for
// a given seed; the concurrent engine exists to demonstrate (and test)
// the algorithms as real message-passing processes.
func WithConcurrentEngine() Option {
	return func(o *solveOptions) { o.concurrent = true }
}

// Solve computes a maximal independent set of g with the chosen
// algorithm. The error wraps the engine's failure (e.g. a round cap hit)
// if the run could not complete.
func Solve(g *Graph, algo Algorithm, opts ...Option) (*Result, error) {
	var o solveOptions
	for _, opt := range opts {
		opt(&o)
	}
	switch algo {
	case AlgorithmGreedy:
		return &Result{InMIS: mis.Greedy(g)}, nil
	case AlgorithmMetivier:
		mr := mis.Metivier(g, rng.New(o.seed))
		return &Result{InMIS: mr.InMIS, Rounds: mr.Rounds, MessageBits: mr.Bits}, nil
	case AlgorithmLubyPermutation, AlgorithmLubyProbability:
		variant := mis.LubyPermutation
		if algo == AlgorithmLubyProbability {
			variant = mis.LubyProbability
		}
		lr, err := mis.Luby(g, variant, rng.New(o.seed))
		if err != nil {
			return nil, err
		}
		return &Result{InMIS: lr.InMIS, Rounds: lr.Rounds, MessageBits: lr.Bits}, nil
	case AlgorithmFeedback, AlgorithmGlobalSweep, AlgorithmAfekOriginal:
		factory, bulk, err := mis.NewFactories(mis.Spec{Name: string(algo), Feedback: o.feedback})
		if err != nil {
			return nil, err
		}
		if o.concurrent {
			if o.engine != EngineAuto {
				return nil, fmt.Errorf("beepmis: WithEngine(%v) conflicts with WithConcurrentEngine (the goroutine-per-node runtime has no simulator engine)", o.engine)
			}
			if o.shards != 0 {
				return nil, fmt.Errorf("beepmis: WithShards(%d) conflicts with WithConcurrentEngine (sharded propagation belongs to the columnar simulator engine)", o.shards)
			}
			if o.faults.Enabled() {
				return nil, fmt.Errorf("beepmis: WithFaults conflicts with WithConcurrentEngine (the goroutine-per-node runtime has no fault layer)")
			}
			rr, err := runtime.Run(g, factory, rng.New(o.seed), runtime.Options{MaxRounds: o.maxRounds})
			if err != nil {
				return nil, err
			}
			return &Result{InMIS: rr.InMIS, Rounds: rr.Rounds, TotalBeeps: rr.TotalBeeps}, nil
		}
		if o.shards != 0 && o.engine != EngineAuto && o.engine != EngineColumnar && o.engine != EngineSparse {
			return nil, fmt.Errorf("beepmis: WithShards(%d) conflicts with WithEngine(%v) (only the columnar and sparse engines shard propagation)", o.shards, o.engine)
		}
		simOpts := sim.Options{
			MaxRounds:    o.maxRounds,
			Engine:       o.engine,
			Bulk:         bulk,
			Shards:       o.shards,
			MemoryBudget: o.memoryBudget,
			Faults:       o.faults,
			Metrics:      o.metrics,
		}
		var verifier *fault.Verifier
		if o.faults.Enabled() {
			verifier = fault.NewVerifier(g)
			simOpts.OnMISDelta = verifier.ObserveRound
		}
		sr, err := sim.Run(g, factory, rng.New(o.seed), simOpts)
		if err != nil {
			return nil, err
		}
		res := &Result{InMIS: sr.InMIS, Rounds: sr.Rounds, TotalBeeps: sr.TotalBeeps}
		if verifier != nil {
			res.Robustness = &RobustnessReport{
				IndependenceViolations: verifier.ViolationCount(),
				StableRound:            verifier.LastChangeRound(),
				Uncovered:              verifier.Uncovered(nil),
			}
		}
		return res, nil
	default:
		return nil, fmt.Errorf("beepmis: unknown algorithm %q (have %v)", algo, Algorithms())
	}
}
