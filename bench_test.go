// Benchmarks regenerating the paper's evaluation artifacts, one (or one
// family) per table/figure. Custom metrics are attached via
// b.ReportMetric: "rounds/run" is the Figure 3 quantity, "beeps/node"
// the Figure 5 / Theorem 6 quantity. The full-sweep tables with the
// paper's exact trial counts are produced by cmd/misbench (or
// experiment.Run); these benchmarks exercise one representative
// configuration per artifact so `go test -bench=.` touches every
// experiment quickly.
package beepmis

import (
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/runtime"
	"beepmis/internal/sim"
)

// benchBeeping runs one simulated execution per iteration and reports
// rounds and beeps-per-node metrics.
func benchBeeping(b *testing.B, g *graph.Graph, spec mis.Spec) {
	b.Helper()
	factory, err := mis.NewFactory(spec)
	if err != nil {
		b.Fatal(err)
	}
	var rounds, beeps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(g, factory, rng.New(uint64(i)), sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
		beeps += res.MeanBeepsPerNode()
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(beeps/float64(b.N), "beeps/node")
}

// Figure 3 — mean time steps on G(n,1/2) (upper curve: global sweep,
// lower curve: feedback). Representative cell: n = 512.
func BenchmarkFigure3Feedback(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(1)), mis.Spec{Name: mis.NameFeedback})
}

func BenchmarkFigure3GlobalSweep(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(1)), mis.Spec{Name: mis.NameGlobalSweep})
}

// Figure 5 — mean beeps per node on G(n,1/2). Representative cell:
// n = 200 (the figure's largest size).
func BenchmarkFigure5Feedback(b *testing.B) {
	benchBeeping(b, graph.GNP(200, 0.5, rng.New(2)), mis.Spec{Name: mis.NameFeedback})
}

func BenchmarkFigure5GlobalSweep(b *testing.B) {
	benchBeeping(b, graph.GNP(200, 0.5, rng.New(2)), mis.Spec{Name: mis.NameGlobalSweep})
}

// Theorem 1 — the union-of-cliques lower-bound family (k = 12,
// n = 936). Preset schedules pay the log²n penalty here; feedback does
// not.
func BenchmarkTheorem1Feedback(b *testing.B) {
	benchBeeping(b, graph.CliqueFamily(936), mis.Spec{Name: mis.NameFeedback})
}

func BenchmarkTheorem1GlobalSweep(b *testing.B) {
	benchBeeping(b, graph.CliqueFamily(936), mis.Spec{Name: mis.NameGlobalSweep})
}

func BenchmarkTheorem1AfekOriginal(b *testing.B) {
	benchBeeping(b, graph.CliqueFamily(936), mis.Spec{Name: mis.NameAfek})
}

// Theorem 6 — O(1) beeps per node; §5 reports ≈1.1 on rectangular
// grids as well as G(n,1/2).
func BenchmarkTheorem6Grid(b *testing.B) {
	benchBeeping(b, graph.Grid(14, 14), mis.Spec{Name: mis.NameFeedback})
}

// §1/§5 baseline — Luby's algorithm on the Figure 3 workload.
func BenchmarkLubyPermutation(b *testing.B) {
	g := graph.GNP(512, 0.5, rng.New(3))
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mis.Luby(g, mis.LubyPermutation, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

func BenchmarkLubyProbability(b *testing.B) {
	g := graph.GNP(512, 0.5, rng.New(3))
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mis.Luby(g, mis.LubyProbability, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

// §6 robustness ablation — update factors away from 2.
func BenchmarkAblateFactor1_5(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(4)),
		mis.Spec{Name: mis.NameFeedback, Feedback: mis.FeedbackConfig{Factor: 1.5}})
}

func BenchmarkAblateFactor3(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(4)),
		mis.Spec{Name: mis.NameFeedback, Feedback: mis.FeedbackConfig{Factor: 3}})
}

// §6 robustness ablation — initial probability away from 1/2.
func BenchmarkAblateInitP16(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(5)),
		mis.Spec{Name: mis.NameFeedback, Feedback: mis.FeedbackConfig{InitialP: 1.0 / 16}})
}

// Beyond-paper robustness — 10% beep loss.
func BenchmarkAblateLoss10(b *testing.B) {
	g := graph.GNP(300, 0.5, rng.New(6))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(g, factory, rng.New(uint64(i)), sim.Options{BeepLoss: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

// Engine comparison — the same execution through the sequential
// simulator and the goroutine-per-node runtime.
func BenchmarkEngineSimulator(b *testing.B) {
	g := graph.GNP(128, 0.5, rng.New(7))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, factory, rng.New(uint64(i)), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineConcurrent(b *testing.B) {
	g := graph.GNP(128, 0.5, rng.New(7))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Run(g, factory, rng.New(uint64(i)), runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Centralised baseline — the trivial sequential scan from §1.
func BenchmarkGreedy(b *testing.B) {
	g := graph.GNP(512, 0.5, rng.New(8))
	var sink bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := mis.Greedy(g)
		sink = sink != set[0]
	}
	_ = sink
}

// Substrate benchmarks — graph generation cost for the two figure
// workloads.
func BenchmarkGenerateGNP(b *testing.B) {
	src := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.GNP(512, 0.5, src)
		if g.N() != 512 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkGenerateCliqueFamily(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.CliqueFamily(936)
		if g.N() == 0 {
			b.Fatal("bad graph")
		}
	}
}
