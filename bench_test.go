// Benchmarks regenerating the paper's evaluation artifacts, one (or one
// family) per table/figure. Custom metrics are attached via
// b.ReportMetric: "rounds/run" is the Figure 3 quantity, "beeps/node"
// the Figure 5 / Theorem 6 quantity. The full-sweep tables with the
// paper's exact trial counts are produced by cmd/misbench (or
// experiment.Run); these benchmarks exercise one representative
// configuration per artifact so `go test -bench=.` touches every
// experiment quickly.
package beepmis

import (
	"sync"
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/runtime"
	"beepmis/internal/sim"
)

// benchBeeping runs one simulated execution per iteration and reports
// rounds and beeps-per-node metrics.
func benchBeeping(b *testing.B, g *graph.Graph, spec mis.Spec) {
	b.Helper()
	factory, err := mis.NewFactory(spec)
	if err != nil {
		b.Fatal(err)
	}
	var rounds, beeps float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(g, factory, rng.New(uint64(i)), sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
		beeps += res.MeanBeepsPerNode()
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
	b.ReportMetric(beeps/float64(b.N), "beeps/node")
}

// Figure 3 — mean time steps on G(n,1/2) (upper curve: global sweep,
// lower curve: feedback). Representative cell: n = 512.
func BenchmarkFigure3Feedback(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(1)), mis.Spec{Name: mis.NameFeedback})
}

func BenchmarkFigure3GlobalSweep(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(1)), mis.Spec{Name: mis.NameGlobalSweep})
}

// Figure 5 — mean beeps per node on G(n,1/2). Representative cell:
// n = 200 (the figure's largest size).
func BenchmarkFigure5Feedback(b *testing.B) {
	benchBeeping(b, graph.GNP(200, 0.5, rng.New(2)), mis.Spec{Name: mis.NameFeedback})
}

func BenchmarkFigure5GlobalSweep(b *testing.B) {
	benchBeeping(b, graph.GNP(200, 0.5, rng.New(2)), mis.Spec{Name: mis.NameGlobalSweep})
}

// Theorem 1 — the union-of-cliques lower-bound family (k = 12,
// n = 936). Preset schedules pay the log²n penalty here; feedback does
// not.
func BenchmarkTheorem1Feedback(b *testing.B) {
	benchBeeping(b, graph.CliqueFamily(936), mis.Spec{Name: mis.NameFeedback})
}

func BenchmarkTheorem1GlobalSweep(b *testing.B) {
	benchBeeping(b, graph.CliqueFamily(936), mis.Spec{Name: mis.NameGlobalSweep})
}

func BenchmarkTheorem1AfekOriginal(b *testing.B) {
	benchBeeping(b, graph.CliqueFamily(936), mis.Spec{Name: mis.NameAfek})
}

// Theorem 6 — O(1) beeps per node; §5 reports ≈1.1 on rectangular
// grids as well as G(n,1/2).
func BenchmarkTheorem6Grid(b *testing.B) {
	benchBeeping(b, graph.Grid(14, 14), mis.Spec{Name: mis.NameFeedback})
}

// §1/§5 baseline — Luby's algorithm on the Figure 3 workload.
func BenchmarkLubyPermutation(b *testing.B) {
	g := graph.GNP(512, 0.5, rng.New(3))
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mis.Luby(g, mis.LubyPermutation, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

func BenchmarkLubyProbability(b *testing.B) {
	g := graph.GNP(512, 0.5, rng.New(3))
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mis.Luby(g, mis.LubyProbability, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

// §6 robustness ablation — update factors away from 2.
func BenchmarkAblateFactor1_5(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(4)),
		mis.Spec{Name: mis.NameFeedback, Feedback: mis.FeedbackConfig{Factor: 1.5}})
}

func BenchmarkAblateFactor3(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(4)),
		mis.Spec{Name: mis.NameFeedback, Feedback: mis.FeedbackConfig{Factor: 3}})
}

// §6 robustness ablation — initial probability away from 1/2.
func BenchmarkAblateInitP16(b *testing.B) {
	benchBeeping(b, graph.GNP(512, 0.5, rng.New(5)),
		mis.Spec{Name: mis.NameFeedback, Feedback: mis.FeedbackConfig{InitialP: 1.0 / 16}})
}

// Beyond-paper robustness — 10% beep loss.
func BenchmarkAblateLoss10(b *testing.B) {
	g := graph.GNP(300, 0.5, rng.New(6))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(g, factory, rng.New(uint64(i)), sim.Options{BeepLoss: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

// Engine comparison — the same execution through the sequential
// simulator and the goroutine-per-node runtime.
func BenchmarkEngineSimulator(b *testing.B) {
	g := graph.GNP(128, 0.5, rng.New(7))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(g, factory, rng.New(uint64(i)), sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineConcurrent(b *testing.B) {
	g := graph.GNP(128, 0.5, rng.New(7))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Run(g, factory, rng.New(uint64(i)), runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Engine scaling — the scalar adjacency-walk engine against the
// word-parallel bitset engine and the columnar kernel engine on large
// dense graphs, where one OR delivers a beep to 64 listeners at once.
// All engines produce bit-identical results (see TestEngineEquivalence);
// these benchmarks quantify the wall-clock gaps at n ≥ 10⁵, far beyond
// the paper's n ≤ 1000 evaluation sizes. Graphs are generated once per
// process and the packed adjacency matrix is built outside the timer,
// so the measurement isolates the simulation loop.
var (
	gnp100kOnce sync.Once
	gnp100k     *graph.Graph
	gnp20kOnce  sync.Once
	gnp20k      *graph.Graph
)

// gnp100kGraph is G(10⁵, 0.05): 2.5·10⁸ edges, average degree 5000 —
// the "millions of beeps per round" regime the scalar engine crawls in.
func gnp100kGraph() *graph.Graph {
	gnp100kOnce.Do(func() { gnp100k = graph.GNP(100000, 0.05, rng.New(10)) })
	return gnp100k
}

// gnp20kDenseGraph is G(2·10⁴, 0.5): the paper's density at 20× its
// largest size.
func gnp20kDenseGraph() *graph.Graph {
	gnp20kOnce.Do(func() { gnp20k = graph.GNP(20000, 0.5, rng.New(11)) })
	return gnp20k
}

func benchEngine(b *testing.B, g *graph.Graph, engine sim.Engine, shards int) {
	b.Helper()
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.Options{Engine: engine, Shards: shards}
	if engine != sim.EngineScalar {
		g.Matrix() // build (and cache) the packed rows outside the timer
	}
	if engine == sim.EngineColumnar {
		opts.Bulk = bulk
	}
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(g, factory, rng.New(uint64(i)), opts)
		if err != nil {
			b.Fatal(err)
		}
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/run")
}

func BenchmarkEngineScalarGNP100k(b *testing.B) {
	benchEngine(b, gnp100kGraph(), sim.EngineScalar, 0)
}

func BenchmarkEngineBitsetGNP100k(b *testing.B) {
	benchEngine(b, gnp100kGraph(), sim.EngineBitset, 0)
}

// The columnar engine at one shard isolates the kernel-fusion and
// bitset-round-loop win over EngineBitset; the sharded variant adds
// multi-core propagation on top.
func BenchmarkEngineColumnarGNP100k(b *testing.B) {
	benchEngine(b, gnp100kGraph(), sim.EngineColumnar, 1)
}

func BenchmarkEngineColumnarShardedGNP100k(b *testing.B) {
	benchEngine(b, gnp100kGraph(), sim.EngineColumnar, 0)
}

func BenchmarkEngineScalarGNP20kDense(b *testing.B) {
	benchEngine(b, gnp20kDenseGraph(), sim.EngineScalar, 0)
}

func BenchmarkEngineBitsetGNP20kDense(b *testing.B) {
	benchEngine(b, gnp20kDenseGraph(), sim.EngineBitset, 0)
}

func BenchmarkEngineColumnarGNP20kDense(b *testing.B) {
	benchEngine(b, gnp20kDenseGraph(), sim.EngineColumnar, 1)
}

func BenchmarkEngineColumnarShardedGNP20kDense(b *testing.B) {
	benchEngine(b, gnp20kDenseGraph(), sim.EngineColumnar, 0)
}

// Centralised baseline — the trivial sequential scan from §1.
func BenchmarkGreedy(b *testing.B) {
	g := graph.GNP(512, 0.5, rng.New(8))
	var sink bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := mis.Greedy(g)
		sink = sink != set[0]
	}
	_ = sink
}

// Substrate benchmarks — graph generation cost for the two figure
// workloads.
func BenchmarkGenerateGNP(b *testing.B) {
	src := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.GNP(512, 0.5, src)
		if g.N() != 512 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkGenerateCliqueFamily(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.CliqueFamily(936)
		if g.N() == 0 {
			b.Fatal("bad graph")
		}
	}
}
