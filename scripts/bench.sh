#!/usr/bin/env bash
# bench.sh — record the across-PR engine benchmark trajectory.
#
# Runs `misbench -bench -json` on the standard graph pair — the dense
# G(20000, 1/2) and the sparse G(100000, 0.05) used by every PR's
# engine comparison — and writes one JSON record per engine per
# workload. Records carry goversion/gomaxprocs/timestamp, so files from
# different machines remain interpretable side by side.
#
# The outfile argument is required: committed trajectory files
# (BENCH_pr3.json, …) are per-PR records, and a default would invite
# silently overwriting an earlier PR's committed baseline.
#
# Usage:
#   scripts/bench.sh BENCH_pr<N>.json
#   BENCH_RUNS=5 scripts/bench.sh my.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:?usage: scripts/bench.sh BENCH_pr<N>.json (outfile required)}"
runs="${BENCH_RUNS:-3}"

go run ./cmd/misbench -bench -json -benchn 20000 -benchp 0.5 -benchruns "$runs" >"$out"
go run ./cmd/misbench -bench -json -benchn 100000 -benchp 0.05 -benchruns "$runs" >>"$out"

echo "wrote $(wc -l <"$out") records to $out" >&2
