#!/usr/bin/env bash
# bench.sh — record the across-PR engine benchmark trajectory.
#
# Runs `misbench -bench -json` on the standard workload trio — the
# dense G(20000, 1/2) and sparse G(100000, 0.05) used by every PR's
# engine comparison, plus the large-sparse G(10^6, 10/n) that only the
# scalar and sparse engines can hold — and writes ONE top-level JSON
# array of records (the stable schema trajectory tooling parses; the
# pre-PR4 files were newline-delimited records, which `jq .` and every
# plain JSON decoder read as one record followed by trailing garbage).
# Records carry engine, auto_engine, goversion/gomaxprocs/timestamp and
# heap_mb, so files from different machines remain interpretable side
# by side.
#
# The outfile argument is required: committed trajectory files
# (BENCH_pr3.json, …) are per-PR records, and a default would invite
# silently overwriting an earlier PR's committed baseline.
#
# Usage:
#   scripts/bench.sh BENCH_pr<N>.json
#   BENCH_RUNS=5 scripts/bench.sh my.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:?usage: scripts/bench.sh BENCH_pr<N>.json (outfile required)}"
runs="${BENCH_RUNS:-3}"

tmp="$(mktemp)"
bin="$(mktemp)"
trap 'rm -f "$tmp" "$bin"' EXIT

go build -o "$bin" ./cmd/misbench

"$bin" -bench -json -benchn 20000 -benchp 0.5 -benchruns "$runs" >"$tmp"
"$bin" -bench -json -benchn 100000 -benchp 0.05 -benchruns "$runs" >>"$tmp"
# Large-sparse: a single run is already most of a minute of scalar wall
# clock, and the auto enumeration measures only the engines whose
# representation fits the memory budget — scalar and sparse here (the
# dense matrix would need 125 GB).
"$bin" -bench -json -benchn 1000000 -benchp 0.00001 -benchruns 1 >>"$tmp"
# Noisy-channel overhead (PR 5): the same dense and large-sparse
# workloads under per-listener loss=0.05 / spurious=0.01, so the fault
# layer's per-(node, round) stream derivations are priced against the
# clean baseline above. Records carry a "faults" field, so clean and
# noisy rows of one file stay distinguishable. Note rounds change too —
# noise alters the execution, so compare ns/round, not ns/run.
noisy='{"loss":0.05,"spurious":0.01}'
"$bin" -bench -json -benchn 20000 -benchp 0.5 -benchruns "$runs" -faults "$noisy" >>"$tmp"
"$bin" -bench -json -benchn 1000000 -benchp 0.00001 -benchruns 1 -faults "$noisy" >>"$tmp"

# Wrap the one-record-per-line stream into a single top-level JSON
# array (records are single lines by construction).
{
  echo '['
  sed '$!s/$/,/' "$tmp"
  echo ']'
} >"$out"

echo "wrote $(($(wc -l <"$out") - 2)) records to $out" >&2
