#!/usr/bin/env bash
# bench.sh — record the across-PR engine benchmark trajectory.
#
# Stages:
#   1. The standard single-core workload trio — the dense G(20000, 1/2)
#      and sparse G(100000, 0.05) used by every PR's engine comparison,
#      plus the large-sparse G(10^6, 10/n) that only the scalar and
#      sparse engines can hold — pinned to -shards 1 so the records'
#      (engine, n, p, shards, faults) keys are machine-independent.
#   2. The noisy-channel overhead pair (PR 5) under per-listener
#      loss=0.05 / spurious=0.01.
#   3. The shards × GOMAXPROCS sweep (PR 6): the columnar and sparse
#      engines on G(100000, 0.05) across the {1,2,4}×{1,2,4} grid, and
#      the sparse engine on G(10^6, 10/n) at its corners — the
#      multi-core scaling record EXPERIMENTS.md reads its table from.
#   4. The perf-gate grid: small pinned workloads CI re-runs with
#      `misbench -bench -compare <this file>` (see ci.yml perf-gate).
#   5. Construction throughput (PR 7): the direct-to-CSR pipeline on
#      RMAT, configmodel, and Batagelj–Brandes G(n,p) workloads — the
#      records' build_ns / edges_per_sec fields are the pipeline's own
#      trajectory, alongside a sparse-engine run over each built graph.
#   6. Service-level load (PR 10): misload against a live misd with an
#      autoscaling job pool — a closed-loop burst and an open-loop
#      Poisson run over the load-tiny scenario. These records carry
#      tool:"misload" with client p50/p95/p99, achieved throughput and
#      the folded server scrape, in the same array as the engine rows.
#
# Output is ONE top-level JSON array of records (the stable schema
# trajectory tooling parses). Records carry engine, auto_engine,
# shards, goversion/gomaxprocs/numcpu/timestamp and heap_mb — the
# numcpu stamp (runtime.NumCPU(), the hardware, vs gomaxprocs, the
# grant) plus a phase_ns breakdown of each record's round loop (PR 8) —
# so files from different machines remain interpretable side by side.
#
# The outfile argument is required: committed trajectory files
# (BENCH_pr3.json, …) are per-PR records, and a default would invite
# silently overwriting an earlier PR's committed baseline.
#
# Usage:
#   scripts/bench.sh BENCH_pr<N>.json
#   BENCH_RUNS=5 scripts/bench.sh my.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:?usage: scripts/bench.sh BENCH_pr<N>.json (outfile required)}"
runs="${BENCH_RUNS:-3}"

tmp="$(mktemp)"
bin="$(mktemp)"
misd_bin="$(mktemp)"
misload_bin="$(mktemp)"
misd_pid=""
trap '[ -n "$misd_pid" ] && kill "$misd_pid" 2>/dev/null; rm -f "$tmp" "$bin" "$misd_bin" "$misload_bin"' EXIT

go build -o "$bin" ./cmd/misbench

# --- Stage 1: single-core trio (shards pinned to 1) ------------------
"$bin" -bench -json -shards 1 -benchn 20000 -benchp 0.5 -benchruns "$runs" >"$tmp"
"$bin" -bench -json -shards 1 -benchn 100000 -benchp 0.05 -benchruns "$runs" >>"$tmp"
# Large-sparse: a single run is already most of a minute of scalar wall
# clock, and the auto enumeration measures only the engines whose
# representation fits the memory budget — scalar and sparse here (the
# dense matrix would need 125 GB).
"$bin" -bench -json -shards 1 -benchn 1000000 -benchp 0.00001 -benchruns 1 >>"$tmp"

# --- Stage 2: noisy-channel overhead ---------------------------------
# The same dense and large-sparse workloads under channel noise, so the
# fault layer's per-(node, round) stream derivations are priced against
# the clean baseline above. Records carry a "faults" field, so clean
# and noisy rows of one file stay distinguishable. Note rounds change
# too — noise alters the execution, so compare ns/round, not ns/run.
noisy='{"loss":0.05,"spurious":0.01}'
"$bin" -bench -json -shards 1 -benchn 20000 -benchp 0.5 -benchruns "$runs" -faults "$noisy" >>"$tmp"
"$bin" -bench -json -shards 1 -benchn 1000000 -benchp 0.00001 -benchruns 1 -faults "$noisy" >>"$tmp"

# --- Stage 3: shards × GOMAXPROCS sweep ------------------------------
# Engine pins keep the sweep to the two engines that shard. GOMAXPROCS
# is set explicitly per run, so the sweep means the same thing on any
# machine (a record's gomaxprocs field stamps what applied). Oversharding
# (shards > GOMAXPROCS) is part of the grid on purpose: it must cost
# little and never change results.
for gmp in 1 2 4; do
  for shards in 1 2 4; do
    GOMAXPROCS="$gmp" "$bin" -bench -json -engine columnar -shards "$shards" \
      -benchn 100000 -benchp 0.05 -benchruns "$runs" >>"$tmp"
    GOMAXPROCS="$gmp" "$bin" -bench -json -engine sparse -shards "$shards" \
      -benchn 100000 -benchp 0.05 -benchruns "$runs" >>"$tmp"
  done
done
# Large-sparse corners only: graph generation dominates repeated runs.
GOMAXPROCS=1 "$bin" -bench -json -engine sparse -shards 1 -benchn 1000000 -benchp 0.00001 -benchruns 1 >>"$tmp"
GOMAXPROCS=4 "$bin" -bench -json -engine sparse -shards 1 -benchn 1000000 -benchp 0.00001 -benchruns 1 >>"$tmp"
GOMAXPROCS=4 "$bin" -bench -json -engine sparse -shards 4 -benchn 1000000 -benchp 0.00001 -benchruns 1 >>"$tmp"

# --- Stage 4: perf-gate grid -----------------------------------------
# Small, fast, fully pinned workloads whose keys CI re-measures and
# compares against this committed file (generous tolerance — the gate
# exists to catch order-of-magnitude regressions, not machine drift).
# All four engines are recorded for the trajectory, but CI gates only
# the columnar/sparse keys — the scalar/bitset rounds on graphs this
# small are microseconds and their ratios are scheduler noise.
# Keep in sync with the perf-gate job in .github/workflows/ci.yml.
for shards in 1 2; do
  GOMAXPROCS=2 "$bin" -bench -json -shards "$shards" -benchn 2000 -benchp 0.1 -benchruns "$runs" >>"$tmp"
  GOMAXPROCS=2 "$bin" -bench -json -shards "$shards" -benchn 5000 -benchp 0.004 -benchruns "$runs" >>"$tmp"
done

# --- Stage 5: construction throughput --------------------------------
# The direct-to-CSR pipeline at the scale it exists for: ~10^7-edge
# RMAT and configmodel graphs plus the Batagelj–Brandes G(n,p) fast
# path, generated once per record and timed (build_ns, edges_per_sec),
# then a single sparse-engine run over each. Shards are pinned to 1 so
# the keys are machine-independent; construction workers default to
# GOMAXPROCS, which the record's gomaxprocs field stamps.
GOMAXPROCS=1 "$bin" -bench -json -engine sparse -shards 1 -benchruns 1 \
  -graph rmat:n=1048576,edges=8388608 >>"$tmp"
GOMAXPROCS=1 "$bin" -bench -json -engine sparse -shards 1 -benchruns 1 \
  -graph configmodel:n=1048576,edges=8388608 >>"$tmp"
GOMAXPROCS=1 "$bin" -bench -json -engine sparse -shards 1 -benchruns 1 \
  -graph gnp:n=1048576,p=0.000016 >>"$tmp"

# --- Stage 6: service-level load -------------------------------------
# misload against a live misd: 1→4 autoscaling workers, the ~100ms
# load-tiny scenario. The closed-loop burst saturates the pool (its
# record's server fold shows the scale-ups); the open-loop run offers a
# fixed Poisson rate so achieved-vs-offered throughput is on record.
# The misload schedule is seeded, so the request streams are identical
# across machines; only the latencies differ.
go build -o "$misd_bin" ./cmd/misd
go build -o "$misload_bin" ./cmd/misload
"$misd_bin" -addr 127.0.0.1:18080 -jobs 1 -autoscale-max 4 -queue 64 >/dev/null 2>&1 &
misd_pid=$!
"$misload_bin" -url http://127.0.0.1:18080 -wait-ready 15s -json \
  -mode closed -c 8 -n 120 -hit 0.4 -subs 100 -seed 1 \
  -spec scenarios/load-tiny.json >>"$tmp"
"$misload_bin" -url http://127.0.0.1:18080 -json \
  -mode open -rate 12 -arrival poisson -n 120 -hit 0.4 -seed 2 \
  -spec scenarios/load-tiny.json >>"$tmp"
kill "$misd_pid" 2>/dev/null && wait "$misd_pid" 2>/dev/null || true
misd_pid=""

# Wrap the one-record-per-line stream into a single top-level JSON
# array (records are single lines by construction).
{
  echo '['
  sed '$!s/$/,/' "$tmp"
  echo ']'
} >"$out"

echo "wrote $(($(wc -l <"$out") - 2)) records to $out" >&2
