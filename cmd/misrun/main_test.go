package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAlgosList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algos"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"feedback", "globalsweep", "luby-permutation", "greedy"} {
		if !strings.Contains(out.String(), a) {
			t.Fatalf("algos output missing %q:\n%s", a, out.String())
		}
	}
}

func TestRunGNPFeedback(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "gnp", "-n", "80", "-algo", "feedback", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mis size:", "rounds:", "verified: maximal independent set"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunAllGraphKinds(t *testing.T) {
	kinds := [][]string{
		{"-graph", "gnp", "-n", "40"},
		{"-graph", "grid", "-rows", "5", "-cols", "5"},
		{"-graph", "complete", "-n", "15"},
		{"-graph", "cliques", "-n", "100"},
		{"-graph", "unitdisk", "-n", "50", "-radius", "0.2"},
	}
	for _, args := range kinds {
		var out bytes.Buffer
		if err := run(append(args, "-algo", "feedback"), &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunConcurrentEngine(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-graph", "gnp", "-n", "30", "-engine", "concurrent", "-show-set"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "set: [") {
		t.Fatalf("show-set missing:\n%s", out.String())
	}
}

// TestRunEnginePins drives the simulator engine pins through the CLI:
// every pin must verify, and the per-seed results must agree with the
// default auto selection (the engine-equivalence contract through the
// -engine flag).
func TestRunEnginePins(t *testing.T) {
	outputs := map[string]string{}
	for _, engine := range []string{"sim", "auto", "scalar", "bitset", "columnar", "sparse"} {
		var out bytes.Buffer
		if err := run([]string{"-graph", "gnp", "-n", "60", "-algo", "feedback", "-seed", "5", "-engine", engine}, &out); err != nil {
			t.Fatalf("-engine %s: %v", engine, err)
		}
		if !strings.Contains(out.String(), "verified: maximal independent set") {
			t.Fatalf("-engine %s did not verify:\n%s", engine, out.String())
		}
		// Compare from the results onwards — the header echoes the
		// engine name.
		i := strings.Index(out.String(), "mis size:")
		if i < 0 {
			t.Fatalf("-engine %s output missing results:\n%s", engine, out.String())
		}
		outputs[engine] = out.String()[i:]
	}
	for engine, got := range outputs {
		if got != outputs["sim"] {
			t.Fatalf("-engine %s output diverged from sim:\n%s\nvs\n%s", engine, got, outputs["sim"])
		}
	}
}

func TestRunFileGraph(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := os.WriteFile(path, []byte("n 3\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-graph", "file", "-in", path, "-algo", "greedy"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=3 m=2") {
		t.Fatalf("file graph not loaded:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-graph", "nope"},
		{"-graph", "file"}, // missing -in
		{"-graph", "file", "-in", "/definitely/missing/file"},
		{"-engine", "nope"},
		{"-algo", "nope"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunLubyShowsBits(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-graph", "gnp", "-n", "40", "-algo", "luby-permutation"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "message bits:") {
		t.Fatalf("luby output missing bits:\n%s", out.String())
	}
}
