// Command misrun executes one MIS algorithm on one graph and reports the
// outcome — or, with -scenario, executes a declarative scenario spec
// file and prints its result JSON.
//
// Usage:
//
//	misrun -graph gnp -n 500 -p 0.5 -algo feedback -seed 42
//	misrun -graph grid -rows 20 -cols 20 -algo globalsweep
//	misrun -graph file -in network.edges -algo luby-permutation -show-set
//	misrun -graph gnp -n 100 -algo feedback -engine concurrent
//	misrun -graph gnp -n 1000000 -p 0.00001 -algo feedback -engine sparse
//	misrun -graph gnp -n 500 -algo feedback -faults '{"loss":0.05,"wake":{"kind":"uniform","window":12}}'
//	misrun -scenario scenarios/quickstart.json
//	misrun -scenario sweep.json -hash
//	misrun -scenario scenarios/quickstart.json -metrics 2>telemetry.json
//
// A scenario run prints exactly the bytes a misd server would cache and
// serve for the same spec (the result JSON is a pure function of the
// spec's content hash), so files are interchangeable between the CLI
// and the service.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"beepmis"
	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/obs"
	"beepmis/internal/scenario"
	"beepmis/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misrun:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	return runTo(args, stdout, os.Stderr)
}

// runTo is run with the -metrics destination explicit. Telemetry goes
// to stderr by design: a -scenario run's stdout is the canonical result
// JSON (byte-identical to what misd serves for the same spec), and the
// one-graph report is likewise parseable, so observability output must
// ride a different stream.
func runTo(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("misrun", flag.ContinueOnError)
	var (
		graphKind = fs.String("graph", "gnp", "graph family: gnp, grid, complete, cliques, unitdisk, or file")
		n         = fs.Int("n", 200, "node count (gnp, complete, cliques, unitdisk)")
		p         = fs.Float64("p", 0.5, "edge probability (gnp)")
		rows      = fs.Int("rows", 10, "grid rows")
		cols      = fs.Int("cols", 10, "grid columns")
		radius    = fs.Float64("radius", 0.1, "connection radius (unitdisk)")
		in        = fs.String("in", "", "edge-list file (graph=file)")
		algo      = fs.String("algo", "feedback", "algorithm (see -algos)")
		algos     = fs.Bool("algos", false, "list algorithms and exit")
		seed      = fs.Uint64("seed", 1, "random seed (graph generation and run)")
		engine    = fs.String("engine", "sim", "execution engine: sim (auto-selected simulator), concurrent, or a simulator engine pin (scalar, bitset, columnar, sparse)")
		shards    = fs.Int("shards", 0, "worker shards for the columnar/sparse round phases (0 = GOMAXPROCS; output is identical for any value)")
		showSet   = fs.Bool("show-set", false, "print the selected vertex set")
		maxRounds = fs.Int("max-rounds", 0, "cap on synchronous rounds (0 = default)")
		faultsDoc = fs.String("faults", "", `fault-model JSON (e.g. '{"loss":0.05,"spurious":0.01,"wake":{"kind":"uniform","window":12}}'): channel noise, wake schedules, outages`)
		scenarioF = fs.String("scenario", "", "run a declarative scenario spec file and print its result JSON")
		hashOnly  = fs.Bool("hash", false, "with -scenario: print the spec's content hash and exit")
		metricsOn = fs.Bool("metrics", false, "after the run, dump engine telemetry (phase timings, frontier sizes, propagation volume) as JSON to stderr; stdout is untouched")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var metrics *obs.EngineMetrics
	if *metricsOn {
		metrics = &obs.EngineMetrics{}
	}
	if *scenarioF != "" {
		// The one-graph flags describe a workload the scenario file
		// replaces; a mixture is a mistake, not a merge.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "hash", "metrics":
			default:
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-scenario conflicts with -%s (the spec file describes the whole workload)", conflict)
		}
		return runScenario(*scenarioF, *hashOnly, metrics, stdout, stderr)
	}
	if *hashOnly {
		return fmt.Errorf("-hash requires -scenario")
	}
	if *algos {
		for _, a := range beepmis.Algorithms() {
			fmt.Fprintln(stdout, a)
		}
		return nil
	}

	g, err := buildGraph(*graphKind, *n, *p, *rows, *cols, *radius, *in, *seed)
	if err != nil {
		return err
	}

	opts := []beepmis.Option{beepmis.WithSeed(*seed + 1), beepmis.WithMaxRounds(*maxRounds)}
	if *shards != 0 {
		opts = append(opts, beepmis.WithShards(*shards))
	}
	if metrics != nil {
		opts = append(opts, beepmis.WithMetrics(metrics))
	}
	var breakable bool
	if *faultsDoc != "" {
		spec, err := fault.ParseSpec([]byte(*faultsDoc))
		if err != nil {
			return err
		}
		// Only loss and outages can legitimately break the output (lost
		// aggregate signals admit adjacent joiners; a down or reset MIS
		// member abandons its neighbours). Wake-only and spurious-only
		// models always yield a valid MIS, so a failure there is an
		// engine bug and must stay fatal.
		breakable = spec.Loss > 0 || len(spec.Outages) > 0
		opts = append(opts, beepmis.WithFaults(*spec))
	}
	switch *engine {
	case "sim", "auto":
		// The simulator's auto-selection, the default.
	case "concurrent":
		opts = append(opts, beepmis.WithConcurrentEngine())
	default:
		// A simulator engine pin: scalar, bitset, columnar, or sparse.
		pin, err := sim.ParseEngine(*engine)
		if err != nil {
			return fmt.Errorf("unknown engine %q (want sim, concurrent, or a simulator engine: scalar, bitset, columnar, sparse)", *engine)
		}
		opts = append(opts, beepmis.WithEngine(pin))
	}
	res, err := beepmis.Solve(g, beepmis.Algorithm(*algo), opts...)
	if err != nil {
		return err
	}
	verifyErr := beepmis.Verify(g, res.InMIS)
	if verifyErr != nil && !breakable {
		return fmt.Errorf("output verification: %w", verifyErr)
	}

	fmt.Fprintf(stdout, "graph: n=%d m=%d maxdeg=%d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Fprintf(stdout, "algorithm: %s (engine %s)\n", *algo, *engine)
	fmt.Fprintf(stdout, "mis size: %d\n", res.SetSize())
	fmt.Fprintf(stdout, "rounds: %d\n", res.Rounds)
	if res.TotalBeeps > 0 {
		fmt.Fprintf(stdout, "beeps/node: %.3f\n", res.MeanBeepsPerNode())
	}
	if res.MessageBits > 0 {
		fmt.Fprintf(stdout, "message bits: %d\n", res.MessageBits)
	}
	if r := res.Robustness; r != nil {
		fmt.Fprintf(stdout, "stable at round: %d\n", r.StableRound)
		fmt.Fprintf(stdout, "independence violations: %d\n", r.IndependenceViolations)
		fmt.Fprintf(stdout, "uncovered nodes: %d\n", len(r.Uncovered))
	}
	if verifyErr != nil {
		// A noisy channel can genuinely break the output; that is the
		// measurement, not a tool failure.
		fmt.Fprintf(stdout, "verified: NOT a maximal independent set under this fault model (%v)\n", verifyErr)
	} else {
		fmt.Fprintln(stdout, "verified: maximal independent set ✓")
	}
	if *showSet {
		fmt.Fprintf(stdout, "set: %v\n", graph.SetToList(res.InMIS))
	}
	return dumpMetrics(metrics, stderr)
}

// runScenario executes (or just hashes) a scenario spec file, printing
// the same result bytes a misd server caches for the spec.
func runScenario(path string, hashOnly bool, metrics *obs.EngineMetrics, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open scenario: %w", err)
	}
	defer func() { _ = f.Close() }()
	compiled, err := scenario.ParseCompiled(f)
	if err != nil {
		return err
	}
	if hashOnly {
		fmt.Fprintln(stdout, compiled.Hash)
		return nil
	}
	report, err := scenario.Run(context.Background(), compiled, scenario.RunOptions{Metrics: metrics})
	if err != nil {
		return err
	}
	if err := report.WriteJSON(stdout); err != nil {
		return err
	}
	return dumpMetrics(metrics, stderr)
}

// dumpMetrics renders the engine bundle's registry as JSON on stderr
// (no-op when -metrics was not given).
func dumpMetrics(metrics *obs.EngineMetrics, stderr io.Writer) error {
	if metrics == nil {
		return nil
	}
	reg := obs.NewRegistry()
	metrics.Register(reg)
	return reg.WriteJSON(stderr)
}

func buildGraph(kind string, n int, p float64, rows, cols int, radius float64, in string, seed uint64) (*beepmis.Graph, error) {
	switch kind {
	case "gnp":
		return beepmis.GNP(n, p, seed), nil
	case "grid":
		return beepmis.Grid(rows, cols), nil
	case "complete":
		return beepmis.Complete(n), nil
	case "cliques":
		return beepmis.CliqueFamily(n), nil
	case "unitdisk":
		return beepmis.UnitDisk(n, radius, seed), nil
	case "file":
		if in == "" {
			return nil, fmt.Errorf("graph=file requires -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, fmt.Errorf("open graph file: %w", err)
		}
		defer func() { _ = f.Close() }()
		return beepmis.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}
