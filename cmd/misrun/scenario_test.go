package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"beepmis/internal/service"
)

const scenarioDoc = `{
  "name": "cli/service round trip",
  "graph": {"family": "gnp", "n": 70, "p": 0.4},
  "algorithm": "feedback",
  "trials": 4,
  "seed": 23
}`

func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScenarioFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", writeScenario(t, scenarioDoc)}, &out); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Hash  string `json:"hash"`
		Units []struct {
			Trials   int  `json:"trials"`
			Verified bool `json:"verified"`
		} `json:"units"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("scenario output is not a report: %v\n%s", err, out.String())
	}
	if len(report.Units) != 1 || report.Units[0].Trials != 4 || !report.Units[0].Verified {
		t.Fatalf("report %s", out.String())
	}
}

func TestScenarioHashFlag(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-scenario", writeScenario(t, scenarioDoc), "-hash"}, &a); err != nil {
		t.Fatal(err)
	}
	// Engine/shards/workers are performance knobs; the hash must not move.
	tuned := strings.Replace(scenarioDoc, `"trials": 4,`, `"trials": 4, "engine": "scalar", "workers": 2,`, 1)
	if err := run([]string{"-scenario", writeScenario(t, tuned), "-hash"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() || len(strings.TrimSpace(a.String())) != 64 {
		t.Fatalf("hashes differ or malformed: %q vs %q", a.String(), b.String())
	}
}

func TestScenarioErrors(t *testing.T) {
	cases := [][]string{
		{"-scenario", "/definitely/missing.json"},
		{"-scenario", "spec.json", "-n", "50"}, // workload flags conflict
		{"-hash"},                              // -hash without -scenario
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
	bad := writeScenario(t, `{"graph":{"family":"gnp","n":0,"p":0.5},"algorithm":"feedback"}`)
	if err := run([]string{"-scenario", bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestNoisyAsyncGoldenRoundTrip runs the committed noisy-async golden
// scenario — staggered wake-up over a 5%-loss channel — through both the
// CLI and a misd-style HTTP submission: the bytes must match, and the
// fault verifier must certify the run clean (independence every round,
// maximality at termination), which is what makes this particular
// (graph, seed) pair golden.
func TestNoisyAsyncGoldenRoundTrip(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "noisy-async.json"))
	if err != nil {
		t.Fatal(err)
	}
	var cli bytes.Buffer
	if err := run([]string{"-scenario", writeScenario(t, string(doc))}, &cli); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Units []struct {
			Verified              bool `json:"verified"`
			IndependentEveryRound bool `json:"independent_every_round"`
			MaximalAtTermination  bool `json:"maximal_at_termination"`
			Violations            int  `json:"independence_violations"`
		} `json:"units"`
	}
	if err := json.Unmarshal(cli.Bytes(), &report); err != nil {
		t.Fatalf("not a report: %v", err)
	}
	u := report.Units[0]
	if !u.Verified || !u.IndependentEveryRound || !u.MaximalAtTermination || u.Violations != 0 {
		t.Fatalf("golden noisy scenario no longer verifies clean: %+v (pick a new seed if the fault model changed)", u)
	}

	mgr := service.New(service.Options{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Close(ctx)
	}()
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	job, ok := mgr.Job(sub.ID)
	if !ok {
		t.Fatalf("job %s missing", sub.ID)
	}
	select {
	case <-mgr.Done(job):
	case <-time.After(30 * time.Second):
		t.Fatal("noisy-async job never finished")
	}
	res, err := http.Get(srv.URL + "/v1/scenarios/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	httpBytes, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !bytes.Equal(cli.Bytes(), httpBytes) {
		t.Fatalf("noisy-async CLI and HTTP result bytes differ:\ncli:  %s\nhttp: %s", cli.String(), httpBytes)
	}
}

// TestScenarioRoundTripWithService is the PR's acceptance criterion:
// the same spec file through `misrun -scenario` and through a misd-style
// HTTP submission produces byte-identical result JSON, and resubmitting
// is served from the cache without re-execution.
func TestScenarioRoundTripWithService(t *testing.T) {
	var cli bytes.Buffer
	if err := run([]string{"-scenario", writeScenario(t, scenarioDoc)}, &cli); err != nil {
		t.Fatal(err)
	}

	mgr := service.New(service.Options{})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Close(ctx)
	}()
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()

	submit := func() (id string, cached bool) {
		resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(scenarioDoc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sub struct {
			ID     string `json:"id"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		return sub.ID, sub.Cached
	}

	id, cached := submit()
	if cached {
		t.Fatal("first submission reported cached")
	}
	job, ok := mgr.Job(id)
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	select {
	case <-mgr.Done(job):
	case <-time.After(30 * time.Second):
		t.Fatal("job never finished")
	}

	resp, err := http.Get(srv.URL + "/v1/scenarios/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	httpBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(cli.Bytes(), httpBytes) {
		t.Fatalf("misrun -scenario and HTTP result bytes differ:\ncli:  %s\nhttp: %s", cli.String(), httpBytes)
	}

	// Resubmission: cache hit, still exactly one execution recorded.
	if _, cached := submit(); !cached {
		t.Fatal("resubmission was not served from the cache")
	}
	if stats := mgr.StatsNow(); stats.Done != 1 || stats.Jobs != 1 {
		t.Fatalf("stats after resubmit: %+v, want one cached job", stats)
	}
}
