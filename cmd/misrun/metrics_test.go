package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTelemetry parses the -metrics stderr dump (the obs registry's
// JSON form) into name → series for assertions.
func decodeTelemetry(t *testing.T, data []byte) map[string]float64 {
	t.Helper()
	var series []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
		Count uint64  `json:"count"`
	}
	if err := json.Unmarshal(data, &series); err != nil {
		t.Fatalf("-metrics stderr is not registry JSON: %v\n%s", err, data)
	}
	values := make(map[string]float64, len(series))
	for _, s := range series {
		v := s.Value
		if s.Count > 0 {
			v = float64(s.Count)
		}
		values[s.Name] = v
	}
	return values
}

// TestMetricsFlagOneGraph: -metrics dumps engine telemetry to stderr
// while the report on stdout stays byte-identical.
func TestMetricsFlagOneGraph(t *testing.T) {
	args := []string{"-graph", "gnp", "-n", "80", "-algo", "feedback", "-seed", "3"}
	var plain bytes.Buffer
	if err := run(args, &plain); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := runTo(append(args, "-metrics"), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.String() != plain.String() {
		t.Fatalf("-metrics changed stdout:\n%s\n---\n%s", plain.String(), stdout.String())
	}
	values := decodeTelemetry(t, stderr.Bytes())
	if values["beepmis_engine_rounds_total"] <= 0 {
		t.Fatalf("telemetry recorded no rounds: %v", values)
	}
	if values["beepmis_engine_runs_total"] != 1 {
		t.Fatalf("telemetry runs %v, want 1", values["beepmis_engine_runs_total"])
	}
}

// TestMetricsFlagScenario: the scenario contract is that stdout is the
// canonical result bytes, so telemetry must ride stderr and leave them
// untouched.
func TestMetricsFlagScenario(t *testing.T) {
	path := writeScenario(t, scenarioDoc)
	var plain bytes.Buffer
	if err := run([]string{"-scenario", path}, &plain); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := runTo([]string{"-scenario", path, "-metrics"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), plain.Bytes()) {
		t.Fatal("-metrics changed the scenario result bytes")
	}
	values := decodeTelemetry(t, stderr.Bytes())
	// The spec runs 4 trials; each is one engine run.
	if values["beepmis_engine_runs_total"] != 4 {
		t.Fatalf("telemetry runs %v, want the spec's 4 trials", values["beepmis_engine_runs_total"])
	}
	if values["beepmis_engine_rounds_total"] <= 0 {
		t.Fatalf("telemetry recorded no rounds: %v", values)
	}
}

// TestMetricsWithoutFlagSilent: no -metrics, no stderr noise.
func TestMetricsWithoutFlagSilent(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := runTo([]string{"-graph", "gnp", "-n", "40", "-algo", "feedback"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stderr.Len() != 0 {
		t.Fatalf("stderr written without -metrics: %q", stderr.String())
	}
}
