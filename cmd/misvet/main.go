// Command misvet machine-checks the repository's cross-cutting
// invariants: determinism of the engine packages, the internal/rng
// stream discipline, //misvet:noalloc round-loop annotations, atomic
// field access consistency, and Prometheus metric-name grammar. It is
// the compile-time backstop for the runtime gates (engine equivalence
// matrices, alloc_test, the race jobs, registry panics) — see the
// "machine-checked invariants" section of DESIGN.md for the mapping.
//
// Standalone:
//
//	misvet ./...             # or: go run ./cmd/misvet ./...
//
// loads the named packages plus dependencies (one shared
// type-checker, so the atomicfield check is whole-program), runs
// every analyzer, and exits 1 if findings remain after suppression
// filtering. A finding is suppressed by a justified directive on the
// offending line or the line above:
//
//	//misvet:allow(determinism) telemetry only; never steers results
//
// Unjustified, unknown-analyzer, and stale (matching nothing)
// directives are themselves findings.
//
// Vet tool:
//
//	go vet -vettool=$(which misvet) ./...
//
// speaks the go vet unit-checker protocol (-V=full / -flags / a JSON
// .cfg argument, types imported from the build cache's export data).
// In this mode packages are checked one unit at a time, so the
// atomicfield check degrades to per-package and stale suppressions
// are not reported (a unit sees only its own findings).
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"beepmis/internal/analysis"
	"beepmis/internal/analysis/atomicfield"
	"beepmis/internal/analysis/determinism"
	"beepmis/internal/analysis/metricname"
	"beepmis/internal/analysis/noalloc"
	"beepmis/internal/analysis/rngstream"
)

// analyzers returns a fresh suite. atomicfield accumulates state
// across packages, so the slice must not be reused between runs.
func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.New(),
		rngstream.New(""),
		noalloc.New(),
		atomicfield.New(),
		metricname.New(""),
	}
}

func main() {
	args := os.Args[1:]
	// go vet protocol handshakes, then the unit-checker config call.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// cmd/go derives the vet tool's build ID from this line and
			// requires the trailing buildID= field; hashing our own
			// executable (what x/tools' unitchecker does) makes cached vet
			// results invalidate when misvet itself changes.
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(vetUnit(args[0]))
		}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: misvet packages...")
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

// printVersion emits the -V=full handshake line in the format cmd/go
// parses: "<name> version <vers> buildID=<hex>".
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}

// standalone loads patterns with one shared type-checker and runs the
// whole suite, printing findings in stable order.
func standalone(patterns []string) int {
	suite := analyzers()
	fset, pkgs, err := analysis.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misvet:", err)
		return 2
	}
	sup := analysis.NewSuppressions()
	for _, pkg := range pkgs {
		sup.Collect(fset, pkg.Files)
	}
	var raw []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range suite {
			if err := analysis.RunPackage(a, fset, pkg.Files, pkg.Pkg, pkg.Info, &raw); err != nil {
				fmt.Fprintf(os.Stderr, "misvet: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}
	for _, a := range suite {
		if a.End != nil {
			a.End(func(d analysis.Diagnostic) { raw = append(raw, d) })
		}
	}
	known := make(map[string]bool)
	for _, a := range suite {
		known[a.Name] = true
	}
	var diags []analysis.Diagnostic
	for _, d := range raw {
		if analysis.IsTestFile(fset, d.Pos) || sup.Match(fset, d.Analyzer, d.Pos) {
			continue
		}
		diags = append(diags, d)
	}
	diags = append(diags, sup.Problems(known, true)...)
	analysis.SortDiagnostics(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "misvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
