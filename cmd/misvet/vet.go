package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"beepmis/internal/analysis"
)

// vetConfig is the JSON the go command hands a -vettool per package
// unit: the compiled files, an import map, and the export-data file
// of every dependency (already built into the build cache).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit checks one go vet package unit and returns the process exit
// code (0 clean, 1 tool error, 2 findings — the unitchecker
// convention the go command expects).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "misvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "misvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// misvet exports no facts, but the go command requires the vetx
	// output to exist to cache the unit.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "misvet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "misvet:", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path: the ImportMap translation
		// below already happened before the type-checker asked.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "misvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	suite := analyzers()
	sup := analysis.NewSuppressions()
	sup.Collect(fset, files)
	var raw []analysis.Diagnostic
	for _, a := range suite {
		if err := analysis.RunPackage(a, fset, files, pkg, info, &raw); err != nil {
			fmt.Fprintf(os.Stderr, "misvet: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	for _, a := range suite {
		if a.End != nil {
			a.End(func(d analysis.Diagnostic) { raw = append(raw, d) })
		}
	}
	var diags []analysis.Diagnostic
	for _, d := range raw {
		if analysis.IsTestFile(fset, d.Pos) || sup.Match(fset, d.Analyzer, d.Pos) {
			continue
		}
		diags = append(diags, d)
	}
	analysis.SortDiagnostics(fset, diags)
	writeVetx()
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
