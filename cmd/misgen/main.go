// Command misgen generates graphs in the textual edge-list format
// understood by misrun and misnode.
//
// Usage:
//
//	misgen -type gnp -n 500 -p 0.5 -seed 7 -out net.edges
//	misgen -type grid -rows 12 -cols 12
//	misgen -type ba -n 1000 -m 3
//	misgen -type ws -n 500 -k 6 -beta 0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("misgen", flag.ContinueOnError)
	var (
		kind   = fs.String("type", "gnp", "family: gnp, grid, torus, complete, cliques, unitdisk, ba, ws, tree, path, cycle, star")
		n      = fs.Int("n", 100, "node count")
		p      = fs.Float64("p", 0.5, "edge probability (gnp)")
		rows   = fs.Int("rows", 10, "grid/torus rows")
		cols   = fs.Int("cols", 10, "grid/torus columns")
		radius = fs.Float64("radius", 0.1, "connection radius (unitdisk)")
		m      = fs.Int("m", 3, "attachment edges per node (ba)")
		k      = fs.Int("k", 4, "ring neighbours (ws, even)")
		beta   = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		seed   = fs.Uint64("seed", 1, "random seed")
		out    = fs.String("out", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := rng.New(*seed)
	var (
		g   *graph.Graph
		err error
	)
	switch *kind {
	case "gnp":
		g = graph.GNP(*n, *p, src)
	case "grid":
		g = graph.Grid(*rows, *cols)
	case "torus":
		g = graph.Torus(*rows, *cols)
	case "complete":
		g = graph.Complete(*n)
	case "cliques":
		g = graph.CliqueFamily(*n)
	case "unitdisk":
		g = graph.UnitDisk(*n, *radius, src)
	case "ba":
		g, err = graph.BarabasiAlbert(*n, *m, src)
	case "ws":
		g, err = graph.WattsStrogatz(*n, *k, *beta, src)
	case "tree":
		g = graph.RandomTree(*n, src)
	case "path":
		g = graph.Path(*n)
	case "cycle":
		g = graph.Cycle(*n)
	case "star":
		g = graph.Star(*n)
	default:
		return fmt.Errorf("unknown graph type %q", *kind)
	}
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output file: %w", err)
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if _, err := fmt.Fprintf(w, "# %s n=%d m=%d seed=%d\n", *kind, g.N(), g.M(), *seed); err != nil {
		return fmt.Errorf("write header comment: %w", err)
	}
	return graph.WriteEdgeList(w, g)
}
