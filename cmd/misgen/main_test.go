package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beepmis/internal/graph"
)

func TestGenerateAllTypes(t *testing.T) {
	types := [][]string{
		{"-type", "gnp", "-n", "30", "-p", "0.3"},
		{"-type", "grid", "-rows", "4", "-cols", "5"},
		{"-type", "torus", "-rows", "4", "-cols", "4"},
		{"-type", "complete", "-n", "8"},
		{"-type", "cliques", "-n", "100"},
		{"-type", "unitdisk", "-n", "40", "-radius", "0.2"},
		{"-type", "ba", "-n", "50", "-m", "2"},
		{"-type", "ws", "-n", "40", "-k", "4", "-beta", "0.2"},
		{"-type", "tree", "-n", "25"},
		{"-type", "path", "-n", "10"},
		{"-type", "cycle", "-n", "10"},
		{"-type", "star", "-n", "10"},
	}
	for _, args := range types {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		g, err := graph.ReadEdgeList(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("%v: generated output does not parse: %v", args, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := run([]string{"-type", "path", "-n", "5", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("g = %v", g)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-type", "gnp", "-n", "20", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-type", "gnp", "-n", "20", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := [][]string{
		{"-type", "nope"},
		{"-type", "ws", "-n", "10", "-k", "3"}, // odd k
		{"-type", "ba", "-n", "10", "-m", "0"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
