package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestVerdictFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-verdict", "-trials", "3", "-maxn", "150"}, &out); err != nil {
		t.Fatalf("verdict failed: %v\n%s", err, out.String())
	}
	s := out.String()
	if strings.Count(s, "PASS") != 5 {
		t.Fatalf("expected 5 passing claims:\n%s", s)
	}
	if !strings.Contains(s, "all 5 headline claims reproduce") {
		t.Fatalf("missing summary line:\n%s", s)
	}
}
