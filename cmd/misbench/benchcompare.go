package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// benchKey identifies one benchmark configuration across revisions:
// the workload (n, p, faults) and how it ran (engine, shards). It is
// deliberately machine-light — gomaxprocs, goversion and timestamps
// are NOT part of the key, so a baseline recorded on one core budget
// still matches a current run on another; the tolerance absorbs what
// the machine difference is worth. Faults is the spec's canonical
// JSON ("" for the clean baseline), so two spellings of the same
// normalised fault model key identically.
type benchKey struct {
	Engine string
	N      int
	P      float64
	Shards int
	Faults string
	// Graph is the -graph/-graphfile workload label; "" for the default
	// G(n,p) bench, so baselines recorded before the field existed still
	// key identically.
	Graph string
}

func (k benchKey) String() string {
	s := fmt.Sprintf("%s shards=%d G(%d,%g)", k.Engine, k.Shards, k.N, k.P)
	if k.Graph != "" {
		s = fmt.Sprintf("%s shards=%d %s", k.Engine, k.Shards, k.Graph)
	}
	if k.Faults != "" {
		s += " faults=" + k.Faults
	}
	return s
}

// keyOf computes a record's comparison key. Records always carry
// Normalized fault specs (collectEngineBench normalises before
// running), so marshalling is canonical.
func keyOf(r benchRecord) benchKey {
	k := benchKey{Engine: r.Engine, N: r.N, P: r.P, Shards: r.Shards, Graph: r.Graph}
	if f := r.Faults.Normalized(); f != nil {
		if b, err := json.Marshal(f); err == nil {
			k.Faults = string(b)
		}
	}
	return k
}

// benchDiffEntry is one key's verdict in the machine-readable diff.
// Status is "ok" (within tolerance), "regression" (current ns_per_round
// more than tolerance above baseline), or "missing_baseline" (no
// baseline record has this key — a new configuration, reported but
// never fatal, so growing the bench grid does not break the gate).
type benchDiffEntry struct {
	Key            string  `json:"key"`
	Engine         string  `json:"engine"`
	N              int     `json:"n"`
	P              float64 `json:"p"`
	Shards         int     `json:"shards"`
	Faults         string  `json:"faults,omitempty"`
	Graph          string  `json:"graph,omitempty"`
	Status         string  `json:"status"`
	BaseNsPerRound float64 `json:"base_ns_per_round,omitempty"`
	CurNsPerRound  float64 `json:"cur_ns_per_round"`
	// Ratio is cur/base (0 when there is no baseline); a regression is
	// exactly Ratio > 1 + tolerance.
	Ratio float64 `json:"ratio,omitempty"`
}

// benchDiff is the -bench -compare verdict: every current record's
// entry plus the counts the exit status is derived from.
type benchDiff struct {
	Baseline    string           `json:"baseline"`
	Tolerance   float64          `json:"tolerance"`
	Regressions int              `json:"regressions"`
	Missing     int              `json:"missing_baseline"`
	Entries     []benchDiffEntry `json:"entries"`
}

// readBenchRecords loads a committed trajectory file — a top-level JSON
// array of bench records, the format scripts/bench.sh commits as
// BENCH_pr*.json.
func readBenchRecords(path string) ([]benchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read bench baseline: %w", err)
	}
	var records []benchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("parse bench baseline %s: %w", path, err)
	}
	return records, nil
}

// compareBenchRecords diffs current measurements against a baseline
// set, matching records by (engine, n, p, shards, faults) key. When
// the baseline holds several records for one key (re-runs across
// bench.sh stages), the fastest is the baseline — the minimum is the
// least noise-inflated estimate of what the code can do, so the gate
// never relaxes because a baseline run was itself slow. A current
// record regresses iff cur > base·(1+tolerance), strictly: exactly
// tolerance is a pass.
func compareBenchRecords(baseline, current []benchRecord, tolerance float64) benchDiff {
	best := make(map[benchKey]float64)
	for _, r := range baseline {
		k := keyOf(r)
		if b, ok := best[k]; !ok || r.NsPerRound < b {
			best[k] = r.NsPerRound
		}
	}
	diff := benchDiff{Tolerance: tolerance}
	for _, r := range current {
		k := keyOf(r)
		e := benchDiffEntry{
			Key:           k.String(),
			Engine:        k.Engine,
			N:             k.N,
			P:             k.P,
			Shards:        k.Shards,
			Faults:        k.Faults,
			Graph:         k.Graph,
			CurNsPerRound: r.NsPerRound,
		}
		base, ok := best[k]
		switch {
		case !ok:
			e.Status = "missing_baseline"
			diff.Missing++
		default:
			e.BaseNsPerRound = base
			if base > 0 {
				e.Ratio = r.NsPerRound / base
			}
			if r.NsPerRound > base*(1+tolerance) {
				e.Status = "regression"
				diff.Regressions++
			} else {
				e.Status = "ok"
			}
		}
		diff.Entries = append(diff.Entries, e)
	}
	// Regressions first, then misses, then passes — the lines a human
	// (or a CI log reader) needs lead the diff.
	rank := map[string]int{"regression": 0, "missing_baseline": 1, "ok": 2}
	sort.SliceStable(diff.Entries, func(i, j int) bool {
		return rank[diff.Entries[i].Status] < rank[diff.Entries[j].Status]
	})
	return diff
}

// runBenchCompare gates current bench records against a committed
// baseline file: it always writes the machine-readable diff (indented
// JSON) to w, then fails iff any record regressed beyond tolerance.
// Missing-baseline configurations never fail the gate.
func runBenchCompare(w io.Writer, current []benchRecord, baselinePath string, tolerance float64) error {
	baseline, err := readBenchRecords(baselinePath)
	if err != nil {
		return err
	}
	diff := compareBenchRecords(baseline, current, tolerance)
	diff.Baseline = baselinePath
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(diff); err != nil {
		return err
	}
	if diff.Regressions > 0 {
		return fmt.Errorf("bench regression: %d of %d records exceed baseline %s by more than %.0f%%",
			diff.Regressions, len(diff.Entries), baselinePath, 100*tolerance)
	}
	return nil
}
