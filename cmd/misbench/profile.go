package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the requested pprof outputs (any subset of CPU,
// heap, mutex — empty path means off) and returns a stop func that
// flushes them. CPU profiling runs for the whole invocation; the heap
// profile is taken after a final GC so it shows live memory, not run
// garbage; mutex profiling samples every contention event (fraction 1)
// because a bench invocation is short enough to afford full fidelity.
func startProfiles(cpuPath, memPath, mutexPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		cpuFile = f
	}
	prevMutexFraction := 0
	if mutexPath != "" {
		prevMutexFraction = runtime.SetMutexProfileFraction(1)
	}
	stop := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if memPath != "" {
			keep(writeProfile(memPath, func(f *os.File) error {
				runtime.GC()
				return pprof.WriteHeapProfile(f)
			}))
		}
		if mutexPath != "" {
			keep(writeProfile(mutexPath, func(f *os.File) error {
				return pprof.Lookup("mutex").WriteTo(f, 0)
			}))
			runtime.SetMutexProfileFraction(prevMutexFraction)
		}
		return firstErr
	}
	return stop, nil
}

func writeProfile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create profile %s: %w", path, err)
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("write profile %s: %w", path, err)
	}
	return f.Close()
}
