package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// benchWorkload is the graph a -bench invocation measures, plus the
// construction metadata stamped onto every record: how long the
// direct-to-CSR pipeline took to build it, its final edge count, and —
// for file workloads — the content digest that identifies the bytes.
type benchWorkload struct {
	// label names non-default workloads in records and regression-gate
	// keys; "" means the classic G(n,p) bench.
	label string
	g     *graph.Graph
	// csr is non-nil when the workload was built direct-to-CSR (g is
	// then the zero-copy graph.FromCSR view over it); the sparse engine
	// runs straight off it via sim.RunCSR.
	csr     *graph.CSR
	digest  string
	buildNs int64
	edges   int64
}

// buildBenchWorkload materialises the bench graph from the -graph /
// -graphfile / -benchn / -benchp flags, timing construction. Exactly
// one of spec and file may be set; with neither, the default G(n,p)
// workload is built through the adjacency funnel as before (so its
// records stay comparable with committed baselines).
func buildBenchWorkload(spec, file string, n int, p float64, seed uint64) (*benchWorkload, error) {
	if spec != "" && file != "" {
		return nil, fmt.Errorf("-graph and -graphfile are mutually exclusive")
	}
	switch {
	case file != "":
		start := time.Now()
		c, digest, err := graph.LoadCSRFile(file, graph.DetectGraphFormat(file), 0)
		if err != nil {
			return nil, err
		}
		w := newCSRWorkload(c, time.Since(start), "file:"+baseName(file))
		w.digest = digest
		return w, nil
	case spec != "":
		return buildGraphSpecWorkload(spec, seed)
	default:
		if n <= 0 {
			return nil, fmt.Errorf("bench needs positive -benchn (got %d)", n)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("bench edge probability %v outside [0,1]", p)
		}
		start := time.Now()
		g := graph.GNP(n, p, rng.New(seed))
		return &benchWorkload{
			g:       g,
			buildNs: time.Since(start).Nanoseconds(),
			edges:   int64(g.M()),
		}, nil
	}
}

// buildGraphSpecWorkload parses a -graph value of the form
// "family:key=value,key=value" and builds the graph direct-to-CSR.
// Families: rmat (n, edges, a, b, c), configmodel (n, edges, gamma),
// gnp (n, p — the Batagelj–Brandes direct-to-CSR path, distinct from
// the default bench's adjacency funnel).
func buildGraphSpecWorkload(spec string, seed uint64) (*benchWorkload, error) {
	family, rest, _ := strings.Cut(spec, ":")
	params := map[string]string{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("-graph parameter %q is not key=value", kv)
			}
			params[k] = v
		}
	}
	getInt := func(key string) (int64, error) {
		v, ok := params[key]
		if !ok {
			return 0, fmt.Errorf("-graph %s needs %s= (got %q)", family, key, spec)
		}
		delete(params, key)
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("-graph %s: %s=%q is not an integer", family, key, v)
		}
		return i, nil
	}
	getFloat := func(key string, def float64) (float64, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		delete(params, key)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("-graph %s: %s=%q is not a number", family, key, v)
		}
		return f, nil
	}
	var (
		c     *graph.CSR
		err   error
		start time.Time
	)
	switch family {
	case "rmat":
		n, errN := getInt("n")
		edges, errM := getInt("edges")
		if errN != nil || errM != nil {
			return nil, firstErr(errN, errM)
		}
		a, errA := getFloat("a", 0.57)
		b, errB := getFloat("b", 0.19)
		cc, errC := getFloat("c", 0.19)
		if err := firstErr(errA, errB, errC); err != nil {
			return nil, err
		}
		if err := rejectUnknownParams(family, params); err != nil {
			return nil, err
		}
		start = time.Now()
		c, err = graph.RMATCSR(int(n), edges, a, b, cc, 1-a-b-cc, rng.New(seed), 0)
	case "configmodel":
		n, errN := getInt("n")
		edges, errM := getInt("edges")
		if errN != nil || errM != nil {
			return nil, firstErr(errN, errM)
		}
		gamma, errG := getFloat("gamma", 2.5)
		if errG != nil {
			return nil, errG
		}
		if err := rejectUnknownParams(family, params); err != nil {
			return nil, err
		}
		start = time.Now()
		c, err = graph.ConfigModelCSR(int(n), edges, gamma, rng.New(seed), 0)
	case "gnp":
		n, errN := getInt("n")
		if errN != nil {
			return nil, errN
		}
		p, errP := getFloat("p", -1)
		if errP != nil {
			return nil, errP
		}
		if p < 0 {
			return nil, fmt.Errorf("-graph gnp needs p= (got %q)", spec)
		}
		if err := rejectUnknownParams(family, params); err != nil {
			return nil, err
		}
		start = time.Now()
		c, err = graph.GNPCSR(int(n), p, rng.New(seed), 0)
	default:
		return nil, fmt.Errorf("-graph family %q unknown (want rmat, configmodel, or gnp)", family)
	}
	if err != nil {
		return nil, err
	}
	return newCSRWorkload(c, time.Since(start), spec), nil
}

func newCSRWorkload(c *graph.CSR, build time.Duration, label string) *benchWorkload {
	return &benchWorkload{
		label:   label,
		g:       graph.FromCSR(c),
		csr:     c,
		buildNs: build.Nanoseconds(),
		edges:   int64(c.M()),
	}
}

func rejectUnknownParams(family string, params map[string]string) error {
	for k := range params {
		return fmt.Errorf("-graph %s does not take parameter %q", family, k)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// baseName is filepath.Base without the import: labels must be stable
// across machines, so only the file's name (never its directory)
// enters the record.
func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
