package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"testing"
	"time"
)

// benchArgs is a small, fast -bench workload shared by the tests.
var benchArgs = []string{"-bench", "-benchn", "300", "-benchp", "0.5", "-benchruns", "2"}

func TestBenchJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{}, append(benchArgs, "-json")...), &out); err != nil {
		t.Fatal(err)
	}
	var records []benchRecord
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var rec benchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		records = append(records, rec)
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want one per engine (4):\n%v", len(records), records)
	}
	engines := map[string]benchRecord{}
	for _, rec := range records {
		engines[rec.Engine] = rec
		if rec.N != 300 || rec.P != 0.5 || rec.Runs != 2 {
			t.Fatalf("record workload fields wrong: %+v", rec)
		}
		if rec.Rounds <= 0 || rec.Beeps <= 0 || rec.NsPerRound <= 0 || rec.NsPerRun <= 0 {
			t.Fatalf("record metrics not positive: %+v", rec)
		}
		// The auto heuristic's choice is stamped on every record: on
		// this small dense workload (feedback has a kernel) it must be
		// the columnar engine.
		if rec.AutoEngine != "columnar" {
			t.Fatalf("auto_engine %q, want columnar: %+v", rec.AutoEngine, rec)
		}
		// Environment stamps make trajectory files comparable across
		// machines and toolchains.
		if rec.GoVersion != goruntime.Version() || rec.GoMaxProcs != goruntime.GOMAXPROCS(0) {
			t.Fatalf("environment stamp wrong: %+v", rec)
		}
		ts, err := time.Parse(time.RFC3339, rec.Timestamp)
		if err != nil {
			t.Fatalf("timestamp %q is not ISO-8601/RFC3339: %v", rec.Timestamp, err)
		}
		if age := time.Since(ts); age < -time.Minute || age > time.Hour {
			t.Fatalf("timestamp %q not near now", rec.Timestamp)
		}
	}
	for _, name := range []string{"scalar", "bitset", "columnar", "sparse"} {
		if _, ok := engines[name]; !ok {
			t.Fatalf("no record for engine %q", name)
		}
	}
	// Shard stamps reflect what applied: serial engines record 1 and
	// the sharded engines resolve the 0 default to a concrete bound.
	if engines["scalar"].Shards != 1 || engines["bitset"].Shards != 1 {
		t.Fatalf("serial engines should record shards=1: %+v", engines)
	}
	if engines["columnar"].Shards < 1 || engines["sparse"].Shards < 1 {
		t.Fatalf("sharded engines have unresolved shard bounds: %+v", engines)
	}
	// Seed-identity across engines shows through the benchmark too.
	if engines["scalar"].Rounds != engines["columnar"].Rounds ||
		engines["scalar"].Beeps != engines["columnar"].Beeps ||
		engines["scalar"].Rounds != engines["sparse"].Rounds ||
		engines["scalar"].Beeps != engines["sparse"].Beeps {
		t.Fatalf("engines disagree on rounds/beeps: %+v", engines)
	}
}

// TestBenchAutoFallbackObservable is the bugfix regression: when the
// memory budget rules the dense matrix out, the bench enumerates only
// the engines that could really run the workload, and every record's
// auto_engine field says the auto heuristic now lands on the sparse
// engine — not on a silent scalar walk.
func TestBenchAutoFallbackObservable(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-bench", "-json", "-benchn", "20000", "-benchp", "0.001", "-benchruns", "1",
		"-membudget", "10000000"} // 10 MB: matrix needs ~50 MB, CSR ~2 MB
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var engines []string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var rec benchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		engines = append(engines, rec.Engine)
		if rec.AutoEngine != "sparse" {
			t.Fatalf("auto_engine %q, want sparse (budget excludes the matrix): %+v", rec.AutoEngine, rec)
		}
	}
	if len(engines) != 2 || engines[0] != "scalar" || engines[1] != "sparse" {
		t.Fatalf("engines measured %v, want exactly [scalar sparse]", engines)
	}
}

func TestBenchTextOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{}, append(benchArgs, "-engine", "columnar", "-shards", "2")...), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "columnar") || !strings.Contains(text, "shards=2") {
		t.Fatalf("text output missing engine/shards: %q", text)
	}
	if strings.Contains(text, "scalar") {
		t.Fatalf("engine pin leaked other engines: %q", text)
	}
}

// TestBenchHonorsOutFile covers -bench -json -out, the across-PR
// trajectory recording workflow.
func TestBenchHonorsOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var stdout bytes.Buffer
	if err := run(append([]string{}, append(benchArgs, "-json", "-engine", "columnar", "-out", path)...), &stdout); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("-out set but stdout got %q", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("bad JSON in -out file %q: %v", data, err)
	}
	if rec.Engine != "columnar" {
		t.Fatalf("unexpected record: %+v", rec)
	}
}

// TestShardsConflictsWithEnginePin mirrors the library surface: only
// the columnar and sparse engines shard propagation, so any other pin
// plus -shards is rejected rather than silently ignored.
func TestShardsConflictsWithEnginePin(t *testing.T) {
	for _, engine := range []string{"scalar", "bitset"} {
		if err := run([]string{"-exp", "fig5", "-trials", "1", "-maxn", "25", "-engine", engine, "-shards", "4"}, &bytes.Buffer{}); err == nil {
			t.Fatalf("-shards with -engine %s accepted", engine)
		}
	}
	for _, engine := range []string{"auto", "columnar", "sparse"} {
		if err := run([]string{"-exp", "fig5", "-trials", "1", "-maxn", "25", "-engine", engine, "-shards", "4"}, &bytes.Buffer{}); err != nil {
			t.Fatalf("-shards with -engine %s: %v", engine, err)
		}
	}
}

// TestBenchFaultsFlag covers misbench -faults: noisy records carry the
// normalised spec, run on every engine (unlike the legacy per-edge
// -beep-loss model), and stay seed-identical across engines.
func TestBenchFaultsFlag(t *testing.T) {
	var out bytes.Buffer
	args := append([]string{}, append(benchArgs, "-json", "-faults", `{"loss":0.05,"spurious":0.01}`)...)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	engines := map[string]benchRecord{}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		var rec benchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		if rec.Faults == nil || rec.Faults.Loss != 0.05 || rec.Faults.Spurious != 0.01 {
			t.Fatalf("record missing the fault stamp: %+v", rec)
		}
		engines[rec.Engine] = rec
	}
	// All four engines run the noisy workload — the fault layer is
	// engine-agnostic — and agree bit-for-bit.
	for _, name := range []string{"scalar", "bitset", "columnar", "sparse"} {
		rec, ok := engines[name]
		if !ok {
			t.Fatalf("no noisy record for engine %q", name)
		}
		if rec.Rounds != engines["scalar"].Rounds || rec.Beeps != engines["scalar"].Beeps {
			t.Fatalf("engine %s disagrees under faults: %+v vs %+v", name, rec, engines["scalar"])
		}
	}
	// The flag is validated: malformed and out-of-range specs fail.
	if err := run([]string{"-bench", "-faults", `{"loss":2}`}, &bytes.Buffer{}); err == nil {
		t.Fatal("-faults with loss 2 accepted")
	}
	if err := run([]string{"-bench", "-faults", `{nope`}, &bytes.Buffer{}); err == nil {
		t.Fatal("malformed -faults accepted")
	}
	// An all-zero spec is the clean baseline: no stamp in the record.
	var clean bytes.Buffer
	if err := run(append([]string{}, append(benchArgs, "-json", "-faults", `{}`)...), &clean); err != nil {
		t.Fatal(err)
	}
	var rec benchRecord
	if err := json.Unmarshal([]byte(strings.SplitN(clean.String(), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Faults != nil {
		t.Fatalf("all-zero faults spec stamped a record: %+v", rec)
	}
}

func TestBenchRejectsBadWorkload(t *testing.T) {
	if err := run([]string{"-bench", "-benchn", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-benchn 0 accepted")
	}
	if err := run([]string{"-bench", "-benchp", "1.5"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-benchp 1.5 accepted")
	}
}

func TestJSONRequiresBench(t *testing.T) {
	if err := run([]string{"-exp", "fig5", "-trials", "1", "-maxn", "25", "-json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-json without -bench accepted")
	}
}

// TestShardsFlagInvariance runs one experiment at two shard settings and
// requires byte-identical output — the CLI face of the
// determinism-under-sharding contract.
func TestShardsFlagInvariance(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, shards := range []string{"1", "3"} {
		var out bytes.Buffer
		args := []string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-engine", "columnar", "-shards", shards, "-format", "csv"}
		if err := run(args, &out); err != nil {
			t.Fatalf("shards=%s: %v", shards, err)
		}
		outputs = append(outputs, out.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("output differs between -shards 1 and -shards 3:\n%s\n---\n%s", outputs[0], outputs[1])
	}
}
