package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareFlagMatches(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	// Save a baseline, then compare an identical run against it.
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-format", "json", "-out", baseline}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-compare", baseline}, &out); err != nil {
		t.Fatalf("identical run drifted: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "matches baseline") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestCompareFlagDetectsDrift(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "base.json")
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-format", "json", "-out", baseline}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	// A different seed at tiny trial counts produces measurable drift at
	// an absurdly tight tolerance.
	var out bytes.Buffer
	err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-seed", "999", "-compare", baseline, "-tolerance", "0.0001"}, &out)
	if err == nil {
		t.Fatal("drift not detected at 0.01% tolerance")
	}
}

func TestCompareFlagMissingBaseline(t *testing.T) {
	err := run([]string{"-exp", "fig5", "-trials", "1", "-maxn", "25", "-compare", "/definitely/missing.json"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("missing baseline accepted")
	}
}
