package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

// benchRecord is one engine measurement of the -bench mode, emitted as
// JSON with -json so the benchmark trajectory can be tracked across
// revisions by machines rather than by reading prose. The goversion /
// gomaxprocs / timestamp fields identify the toolchain, the core budget
// and the moment of the measurement, so trajectory files collected on
// different machines (or months apart) stay comparable.
type benchRecord struct {
	Engine     string  `json:"engine"`
	Shards     int     `json:"shards"`
	N          int     `json:"n"`
	P          float64 `json:"p"`
	Runs       int     `json:"runs"`
	Rounds     float64 `json:"rounds"`
	Beeps      float64 `json:"beeps"`
	NsPerRound float64 `json:"ns_per_round"`
	NsPerRun   float64 `json:"ns_per_run"`
	GoVersion  string  `json:"goversion"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Timestamp  string  `json:"timestamp"` // ISO-8601 (RFC 3339), UTC
}

// runEngineBench times whole simulation runs of the feedback algorithm
// on G(n, p) per engine. With engine == EngineAuto every engine is
// measured (the columnar one at the requested shard bound); a pin
// measures just that engine. Results of all engines are seed-identical —
// the benchmark varies only the wall clock, which is the point.
func runEngineBench(w io.Writer, n int, p float64, runs int, seed uint64, engine sim.Engine, shards int, asJSON bool) error {
	if n <= 0 || runs <= 0 {
		return fmt.Errorf("bench needs positive -benchn and -benchruns (got %d, %d)", n, runs)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("bench edge probability %v outside [0,1]", p)
	}
	g := graph.GNP(n, p, rng.New(seed))
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return err
	}
	engines := []sim.Engine{sim.EngineScalar, sim.EngineBitset, sim.EngineColumnar}
	if engine != sim.EngineAuto {
		engines = []sim.Engine{engine}
	}
	for _, e := range engines {
		if e != sim.EngineScalar {
			g.Matrix() // build (and cache) the packed rows outside the timer
			break
		}
	}
	// Records carry the shard count that actually applied: the resolved
	// bound for the columnar engine, 1 for the inherently serial
	// engines — so trajectory records compare like for like.
	effectiveShards := shards
	if effectiveShards <= 0 {
		effectiveShards = runtime.GOMAXPROCS(0)
	}
	enc := json.NewEncoder(w)
	for _, e := range engines {
		opts := sim.Options{Engine: e, Shards: shards}
		recShards := 1
		if e == sim.EngineColumnar {
			opts.Bulk = bulk
			recShards = effectiveShards
		}
		var rounds, beeps float64
		start := time.Now()
		for run := 0; run < runs; run++ {
			res, err := sim.Run(g, factory, rng.New(seed+uint64(run)), opts)
			if err != nil {
				return fmt.Errorf("bench engine %v run %d: %w", e, run, err)
			}
			rounds += float64(res.Rounds)
			beeps += float64(res.TotalBeeps)
		}
		elapsed := time.Since(start)
		rec := benchRecord{
			Engine:     e.String(),
			Shards:     recShards,
			N:          n,
			P:          p,
			Runs:       runs,
			Rounds:     rounds / float64(runs),
			Beeps:      beeps / float64(runs),
			NsPerRound: float64(elapsed.Nanoseconds()) / rounds,
			NsPerRun:   float64(elapsed.Nanoseconds()) / float64(runs),
			GoVersion:  runtime.Version(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
		}
		if asJSON {
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(w, "%-9s shards=%-2d G(%d,%g): %.1f rounds/run, %.0f beeps/run, %.0f ns/round, %.2f ms/run\n",
			rec.Engine, rec.Shards, rec.N, rec.P, rec.Rounds, rec.Beeps, rec.NsPerRound, rec.NsPerRun/1e6)
	}
	return nil
}
