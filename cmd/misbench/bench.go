package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

// benchRecord is one engine measurement of the -bench mode, emitted as
// JSON with -json so the benchmark trajectory can be tracked across
// revisions by machines rather than by reading prose. The goversion /
// gomaxprocs / timestamp fields identify the toolchain, the core budget
// and the moment of the measurement, so trajectory files collected on
// different machines (or months apart) stay comparable. AutoEngine is
// the engine the auto heuristic resolves to on this workload — the
// field that makes a silent fallback (auto quietly running the scalar
// walk on a graph too big for its budget) observable in the records.
type benchRecord struct {
	Engine     string  `json:"engine"`
	AutoEngine string  `json:"auto_engine"`
	Shards     int     `json:"shards"`
	N          int     `json:"n"`
	P          float64 `json:"p"`
	// Graph labels non-default workloads from -graph / -graphfile (e.g.
	// "rmat:n=1048576,edges=8388608"); empty for the default G(n,p)
	// bench, so records and regression-gate keys from baselines that
	// predate the field still match exactly.
	Graph string `json:"graph,omitempty"`
	// M is the workload's final (deduplicated) edge count; BuildNs and
	// EdgesPerSec time its construction — the direct-to-CSR pipeline's
	// own trajectory, measured once per bench invocation and stamped on
	// every engine's record. GraphDigest is the hex SHA-256 of a
	// -graphfile workload's bytes.
	M           int64   `json:"m,omitempty"`
	BuildNs     int64   `json:"build_ns,omitempty"`
	EdgesPerSec float64 `json:"edges_per_sec,omitempty"`
	GraphDigest string  `json:"graph_digest,omitempty"`
	// Faults is the normalised fault-model JSON the runs executed under
	// (absent for the clean baseline), so noisy and clean trajectory
	// records are distinguishable without out-of-band context.
	Faults     *fault.Spec `json:"faults,omitempty"`
	Runs       int         `json:"runs"`
	Rounds     float64     `json:"rounds"`
	Beeps      float64     `json:"beeps"`
	NsPerRound float64     `json:"ns_per_round"`
	NsPerRun   float64     `json:"ns_per_run"`
	// PhaseNs breaks ns_per_run down by round phase (faults,
	// eligible_draw, beep_tally, propagate, join, observe): total
	// nanoseconds across all runs, from the same per-phase clock the
	// /metrics exposition uses. omitempty keeps baselines that predate
	// the field byte-compatible, and the regression-gate key ignores it.
	PhaseNs    map[string]int64 `json:"phase_ns,omitempty"`
	HeapMB     float64          `json:"heap_mb"`
	GoVersion  string           `json:"goversion"`
	GoMaxProcs int              `json:"gomaxprocs"`
	// NumCPU is the machine's core count (GoMaxProcs is the budget the
	// process was granted; NumCPU is what the hardware offers) — stamped
	// so trajectory records from differently-sized machines are
	// distinguishable.
	NumCPU    int    `json:"numcpu,omitempty"`
	Timestamp string `json:"timestamp"` // ISO-8601 (RFC 3339), UTC
}

// collectEngineBench times whole simulation runs of the feedback
// algorithm on G(n, p) per engine and returns one record per
// measurement. With engine == EngineAuto every *applicable* engine is
// measured — the dense matrix pair only when the matrix fits the
// memory budget, so a million-node bench compares exactly the engines
// that could really run it (the sharded ones at the requested shard
// bound); a pin measures just that engine. Results of all engines are
// seed-identical — the benchmark varies only the wall clock, which is
// the point.
func collectEngineBench(wl *benchWorkload, p float64, runs int, seed uint64, engine sim.Engine, shards int, memBudget int64, faults *fault.Spec) ([]benchRecord, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("bench needs positive -benchruns (got %d)", runs)
	}
	g := wl.g
	n := g.N()
	if wl.label != "" {
		p = 0 // the workload label identifies non-G(n,p) records
	}
	faults = faults.Normalized()
	if err := faults.Validate(n); err != nil {
		return nil, err
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}
	budget := memBudget
	if budget <= 0 {
		budget = sim.DefaultMemoryBudget
	}
	matrixFits := graph.MatrixBytes(n) <= budget
	engines := []sim.Engine{sim.EngineScalar}
	if matrixFits {
		engines = append(engines, sim.EngineBitset, sim.EngineColumnar)
	}
	engines = append(engines, sim.EngineSparse)
	if engine != sim.EngineAuto {
		if (engine == sim.EngineBitset || engine == sim.EngineColumnar) && !matrixFits {
			// Stderr, not the record stream: with -json, stdout carries the
			// machine-readable records and must stay parseable.
			fmt.Fprintf(os.Stderr, "misbench: warning: engine %v needs %d bytes of adjacency matrix (budget %d); proceeding because it was pinned\n",
				engine, graph.MatrixBytes(n), budget)
		}
		engines = []sim.Engine{engine}
	}
	autoEngine := sim.ResolveEngine(g, sim.Options{Bulk: bulk, MemoryBudget: memBudget}).String()
	// Build (and cache) each measured engine's adjacency representation
	// outside the timer: the packed matrix rows for the dense pair, the
	// CSR arrays for the sparse engine.
	for _, e := range engines {
		switch e {
		case sim.EngineBitset, sim.EngineColumnar:
			g.Matrix()
		case sim.EngineSparse:
			g.CSR()
		}
	}
	// Records carry the shard count that actually applied: the resolved
	// bound (-shards 0 means one shard per core — sim.EffectiveShards is
	// the single source of truth) for the engines that shard, 1 for the
	// inherently serial ones — so trajectory records compare like for
	// like, and the regression gate's (engine, n, p, shards, faults) key
	// never aliases two different configurations.
	effectiveShards := sim.EffectiveShards(shards)
	records := make([]benchRecord, 0, len(engines))
	for _, e := range engines {
		// A fresh bundle per engine so phase_ns attributes each record's
		// own runs. The per-round clock costs a handful of monotonic
		// clock reads against thousands of ns of simulation work, and the
		// recording path never allocates or touches rng — results and
		// steady-state allocation behaviour are identical with it on.
		metrics := &obs.EngineMetrics{}
		opts := sim.Options{Engine: e, Shards: shards, MemoryBudget: memBudget, Faults: faults, Metrics: metrics}
		recShards := 1
		if e == sim.EngineColumnar || e == sim.EngineSparse {
			recShards = effectiveShards
			opts.Bulk = bulk
		}
		var rounds, beeps float64
		start := time.Now()
		for run := 0; run < runs; run++ {
			var res *sim.Result
			var err error
			if wl.csr != nil && e == sim.EngineSparse {
				// Direct-to-CSR workloads exercise the no-backing-Graph
				// sparse path the pipeline exists for.
				res, err = sim.RunCSR(wl.csr, factory, rng.New(seed+uint64(run)), opts)
			} else {
				res, err = sim.Run(g, factory, rng.New(seed+uint64(run)), opts)
			}
			if err != nil {
				return nil, fmt.Errorf("bench engine %v run %d: %w", e, run, err)
			}
			rounds += float64(res.Rounds)
			beeps += float64(res.TotalBeeps)
		}
		elapsed := time.Since(start)
		// Collect first so HeapAlloc is live heap, not run garbage. The
		// number is whole-process (graph plus every prebuilt cached
		// representation), so it is most meaningful where enumeration
		// excluded the dense engines — the large-sparse workloads whose
		// memory ceiling the records exist to witness.
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		edgesPerSec := 0.0
		if wl.buildNs > 0 {
			edgesPerSec = float64(wl.edges) / (float64(wl.buildNs) / 1e9)
		}
		records = append(records, benchRecord{
			Engine:      e.String(),
			AutoEngine:  autoEngine,
			Shards:      recShards,
			N:           n,
			P:           p,
			Graph:       wl.label,
			M:           wl.edges,
			BuildNs:     wl.buildNs,
			EdgesPerSec: edgesPerSec,
			GraphDigest: wl.digest,
			Faults:      faults,
			Runs:        runs,
			Rounds:      rounds / float64(runs),
			Beeps:       beeps / float64(runs),
			NsPerRound:  float64(elapsed.Nanoseconds()) / rounds,
			NsPerRun:    float64(elapsed.Nanoseconds()) / float64(runs),
			PhaseNs:     metrics.PhaseTotals(),
			HeapMB:      float64(ms.HeapAlloc) / (1 << 20),
			GoVersion:   runtime.Version(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
			NumCPU:      runtime.NumCPU(),
			Timestamp:   time.Now().UTC().Format(time.RFC3339),
		})
	}
	return records, nil
}

// writeBenchRecords renders collected records to w: one JSON record per
// line with asJSON (the across-PR trajectory format), a human-readable
// line per engine otherwise.
func writeBenchRecords(w io.Writer, records []benchRecord, asJSON bool) error {
	enc := json.NewEncoder(w)
	for _, rec := range records {
		if asJSON {
			if err := enc.Encode(rec); err != nil {
				return err
			}
			continue
		}
		noisy := ""
		if rec.Faults != nil {
			// The full normalised spec, exactly as the JSON records stamp
			// it — wake schedules and outages included, not just noise.
			if b, err := json.Marshal(rec.Faults); err == nil {
				noisy = fmt.Sprintf(" [faults %s]", b)
			}
		}
		workload := fmt.Sprintf("G(%d,%g)", rec.N, rec.P)
		if rec.Graph != "" {
			workload = fmt.Sprintf("%s (n=%d, m=%d)", rec.Graph, rec.N, rec.M)
		}
		fmt.Fprintf(w, "%-9s shards=%-2d %s: %.1f rounds/run, %.0f beeps/run, %.0f ns/round, %.2f ms/run, heap %.0f MB (auto→%s)%s\n",
			rec.Engine, rec.Shards, workload, rec.Rounds, rec.Beeps, rec.NsPerRound, rec.NsPerRun/1e6, rec.HeapMB, rec.AutoEngine, noisy)
	}
	return nil
}
