package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig3", "fig5", "thm1", "thm6", "luby"} {
		if !strings.Contains(out.String(), id) {
			t.Fatalf("list output missing %q:\n%s", id, out.String())
		}
	}
}

func TestMissingExp(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("missing -exp accepted")
	}
}

func TestUnknownExp(t *testing.T) {
	if err := run([]string{"-exp", "nope", "-trials", "1"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFormat(t *testing.T) {
	err := run([]string{"-exp", "fig5", "-trials", "1", "-maxn", "25", "-format", "nope"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestTableOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "feedback") {
		t.Fatalf("table missing feedback series:\n%s", out.String())
	}
}

func TestCSVOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "x,series,mean,std,trials") {
		t.Fatalf("csv header missing:\n%s", out.String())
	}
}

func TestPlotOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "75", "-format", "plot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig5") {
		t.Fatalf("plot missing title:\n%s", out.String())
	}
}

func TestOutFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.csv")
	if err := run([]string{"-exp", "fig5", "-trials", "2", "-maxn", "50", "-format", "csv", "-out", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,series,mean,std,trials") {
		t.Fatalf("file content wrong: %s", data)
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
