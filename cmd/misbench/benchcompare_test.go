package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strings"
	"testing"

	"beepmis/internal/fault"
)

// rec builds a minimal benchmark record for compare tests; only the
// key fields and ns_per_round matter to the gate.
func rec(engine string, n int, p float64, shards int, ns float64) benchRecord {
	return benchRecord{Engine: engine, N: n, P: p, Shards: shards, NsPerRound: ns}
}

func TestBenchCompareRecordMatching(t *testing.T) {
	baseline := []benchRecord{
		rec("columnar", 1000, 0.1, 1, 500),
		rec("columnar", 1000, 0.1, 4, 300), // same workload, different shards: distinct key
		rec("sparse", 1000, 0.1, 1, 900),
		rec("columnar", 2000, 0.1, 1, 2000), // different n: distinct key
	}
	current := []benchRecord{
		rec("columnar", 1000, 0.1, 1, 520),
		rec("columnar", 1000, 0.1, 4, 310),
		rec("sparse", 1000, 0.1, 1, 880),
		rec("columnar", 2000, 0.1, 1, 1999),
	}
	diff := compareBenchRecords(baseline, current, 0.2)
	if diff.Regressions != 0 || diff.Missing != 0 {
		t.Fatalf("clean compare found regressions=%d missing=%d: %+v", diff.Regressions, diff.Missing, diff.Entries)
	}
	// Every entry must have matched its own key's baseline, not another.
	want := map[string]float64{
		"columnar shards=1 G(1000,0.1)": 500,
		"columnar shards=4 G(1000,0.1)": 300,
		"sparse shards=1 G(1000,0.1)":   900,
		"columnar shards=1 G(2000,0.1)": 2000,
	}
	for _, e := range diff.Entries {
		if e.BaseNsPerRound != want[e.Key] {
			t.Fatalf("entry %s matched baseline %v, want %v", e.Key, e.BaseNsPerRound, want[e.Key])
		}
	}
}

func TestBenchCompareDuplicateBaselinePicksFastest(t *testing.T) {
	// bench.sh stages can measure one key several times; the gate must
	// compare against the fastest (least noise-inflated) measurement.
	baseline := []benchRecord{
		rec("sparse", 5000, 0.01, 2, 1500),
		rec("sparse", 5000, 0.01, 2, 1000),
		rec("sparse", 5000, 0.01, 2, 1250),
	}
	diff := compareBenchRecords(baseline, []benchRecord{rec("sparse", 5000, 0.01, 2, 1190)}, 0.1)
	e := diff.Entries[0]
	if e.BaseNsPerRound != 1000 {
		t.Fatalf("baseline selected %v, want the minimum 1000", e.BaseNsPerRound)
	}
	if e.Status != "regression" {
		// 1190 > 1000·1.1, even though it beats two of the three
		// baseline measurements.
		t.Fatalf("status %q, want regression (1190 vs min-baseline 1000 at 10%%)", e.Status)
	}
}

func TestBenchCompareToleranceBoundary(t *testing.T) {
	cases := []struct {
		name   string
		curNs  float64
		status string
	}{
		{"well within", 1000, "ok"},
		{"faster than baseline", 400, "ok"},
		{"exactly at tolerance", 1200, "ok"}, // cur == base·(1+tol): pass, regression is strict
		{"just over tolerance", 1200.0001, "regression"},
		{"double", 2000, "regression"},
	}
	baseline := []benchRecord{rec("columnar", 1000, 0.1, 1, 1000)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diff := compareBenchRecords(baseline, []benchRecord{rec("columnar", 1000, 0.1, 1, tc.curNs)}, 0.2)
			if got := diff.Entries[0].Status; got != tc.status {
				t.Fatalf("cur=%v ns vs base=1000 ns at tol=0.2: status %q, want %q", tc.curNs, got, tc.status)
			}
			wantRegr := 0
			if tc.status == "regression" {
				wantRegr = 1
			}
			if diff.Regressions != wantRegr {
				t.Fatalf("regression count %d, want %d", diff.Regressions, wantRegr)
			}
		})
	}
}

func TestBenchCompareMissingBaselineRecord(t *testing.T) {
	baseline := []benchRecord{rec("columnar", 1000, 0.1, 1, 500)}
	current := []benchRecord{
		rec("columnar", 1000, 0.1, 1, 510),
		rec("columnar", 1000, 0.1, 8, 200), // shards=8 never benched before
	}
	diff := compareBenchRecords(baseline, current, 0.2)
	if diff.Missing != 1 || diff.Regressions != 0 {
		t.Fatalf("missing=%d regressions=%d, want 1 and 0: %+v", diff.Missing, diff.Regressions, diff.Entries)
	}
	// Unknown keys are reported but never fatal — a grown bench grid
	// must not fail the gate before its baseline is re-recorded.
	var buf bytes.Buffer
	path := writeBaseline(t, baseline)
	if err := runBenchCompare(&buf, current, path, 0.2); err != nil {
		t.Fatalf("missing-baseline record failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), `"missing_baseline"`) {
		t.Fatalf("diff does not surface the missing record:\n%s", buf.String())
	}
}

func TestBenchCompareFaultsDistinguishKeys(t *testing.T) {
	noisy := &fault.Spec{Loss: 0.05}
	noisyRec := rec("columnar", 1000, 0.1, 1, 900)
	noisyRec.Faults = noisy.Normalized()
	baseline := []benchRecord{rec("columnar", 1000, 0.1, 1, 500), noisyRec}
	// A clean current run must match the clean baseline (500), not the
	// noisy one (900) — faults are part of the key.
	diff := compareBenchRecords(baseline, []benchRecord{rec("columnar", 1000, 0.1, 1, 800)}, 0.2)
	e := diff.Entries[0]
	if e.BaseNsPerRound != 500 || e.Status != "regression" {
		t.Fatalf("clean record matched %v/%s, want clean baseline 500 and a regression", e.BaseNsPerRound, e.Status)
	}
	cur := rec("columnar", 1000, 0.1, 1, 950)
	cur.Faults = &fault.Spec{Loss: 0.05}
	diff = compareBenchRecords(baseline, []benchRecord{cur}, 0.2)
	e = diff.Entries[0]
	if e.BaseNsPerRound != 900 || e.Status != "ok" {
		t.Fatalf("noisy record matched %v/%s, want noisy baseline 900 ok", e.BaseNsPerRound, e.Status)
	}
}

func TestBenchCompareGoldenDiff(t *testing.T) {
	baseline := []benchRecord{
		rec("columnar", 1000, 0.1, 1, 1000),
		rec("sparse", 1000, 0.1, 2, 2000),
	}
	current := []benchRecord{
		rec("columnar", 1000, 0.1, 1, 2500), // 2.5×: regression at tol 0.5
		rec("sparse", 1000, 0.1, 2, 2100),   // 1.05×: ok
	}
	path := writeBaseline(t, baseline)
	var buf bytes.Buffer
	err := runBenchCompare(&buf, current, path, 0.5)
	if err == nil {
		t.Fatal("2.5× slowdown passed the gate")
	}
	// The diff is machine-readable JSON with regressions sorted first.
	var diff benchDiff
	if uerr := json.Unmarshal(buf.Bytes(), &diff); uerr != nil {
		t.Fatalf("diff output is not JSON: %v\n%s", uerr, buf.String())
	}
	want := benchDiff{
		Baseline:    path,
		Tolerance:   0.5,
		Regressions: 1,
		Entries: []benchDiffEntry{
			{
				Key: "columnar shards=1 G(1000,0.1)", Engine: "columnar", N: 1000, P: 0.1, Shards: 1,
				Status: "regression", BaseNsPerRound: 1000, CurNsPerRound: 2500, Ratio: 2.5,
			},
			{
				Key: "sparse shards=2 G(1000,0.1)", Engine: "sparse", N: 1000, P: 0.1, Shards: 2,
				Status: "ok", BaseNsPerRound: 2000, CurNsPerRound: 2100, Ratio: 1.05,
			},
		},
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(diff)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("diff mismatch:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestBenchCompareEndToEnd drives the real CLI path: a -bench -json run
// records the baseline, a second identical run must pass -compare
// against it, and the same baseline with an injected 2× slowdown (the
// baseline's times halved) must fail.
func TestBenchCompareEndToEnd(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-bench", "-benchn", "300", "-benchp", "0.5", "-benchruns", "1", "-shards", "1", "-json"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var records []benchRecord
	dec := json.NewDecoder(&out)
	for dec.More() {
		var r benchRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		records = append(records, r)
	}
	if len(records) == 0 {
		t.Fatal("no bench records")
	}
	path := writeBaseline(t, records)
	// Same machine, same workload, generous tolerance: must pass.
	var diffOut bytes.Buffer
	pass := []string{"-bench", "-benchn", "300", "-benchp", "0.5", "-benchruns", "1", "-shards", "1", "-compare", path, "-tolerance", "25"}
	if err := run(pass, &diffOut); err != nil {
		t.Fatalf("self-compare at huge tolerance failed: %v\n%s", err, diffOut.String())
	}
	// Injected regression: halving every baseline time makes the fresh
	// run look 2× slower, which must trip even a 50% tolerance.
	for i := range records {
		records[i].NsPerRound /= 2
	}
	slowPath := writeBaseline(t, records)
	diffOut.Reset()
	fail := []string{"-bench", "-benchn", "300", "-benchp", "0.5", "-benchruns", "1", "-shards", "1", "-compare", slowPath, "-tolerance", "0.5"}
	err := run(fail, &diffOut)
	if err == nil {
		t.Fatalf("injected 2× slowdown passed the gate:\n%s", diffOut.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate failure does not name the regression: %v", err)
	}
	if !strings.Contains(diffOut.String(), `"regression"`) {
		t.Fatalf("machine diff missing regression entries:\n%s", diffOut.String())
	}
}

func TestBenchCompareBadBaseline(t *testing.T) {
	if err := runBenchCompare(&bytes.Buffer{}, nil, filepath.Join(t.TempDir(), "absent.json"), 0.2); err == nil {
		t.Fatal("absent baseline file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBenchCompare(&bytes.Buffer{}, nil, bad, 0.2); err == nil {
		t.Fatal("malformed baseline file did not error")
	}
}

// TestBenchRecordEffectiveShards pins how records stamp the shard
// count: -shards 0 resolves to GOMAXPROCS for the engines that shard
// (so "-shards 0" and "-shards GOMAXPROCS" key identically in the
// regression gate), while the inherently serial engines always stamp 1.
func TestBenchRecordEffectiveShards(t *testing.T) {
	old := goruntime.GOMAXPROCS(3)
	defer goruntime.GOMAXPROCS(old)
	wl, err := buildBenchWorkload("", "", 300, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	records, err := collectEngineBench(wl, 0.5, 1, 1, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4", len(records))
	}
	for _, r := range records {
		want := 1
		if r.Engine == "columnar" || r.Engine == "sparse" {
			want = 3
		}
		if r.Shards != want {
			t.Fatalf("%s record stamps shards=%d under GOMAXPROCS=3 with -shards 0, want %d", r.Engine, r.Shards, want)
		}
		if r.GoMaxProcs != 3 {
			t.Fatalf("%s record stamps gomaxprocs=%d, want 3", r.Engine, r.GoMaxProcs)
		}
	}
}

// writeBaseline commits records to a temp trajectory file in the
// BENCH_pr*.json format (one top-level JSON array).
func writeBaseline(t *testing.T, records []benchRecord) string {
	t.Helper()
	b, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
