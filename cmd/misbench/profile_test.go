package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	goruntime "runtime"
	"testing"
)

// TestBenchRecordsPhaseBreakdown: every bench record carries the
// per-phase nanosecond breakdown and the machine's core count, so the
// trajectory files answer "where does the time go" without a profiler.
func TestBenchRecordsPhaseBreakdown(t *testing.T) {
	var out bytes.Buffer
	if err := run(append([]string{}, append(benchArgs, "-json")...), &out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&out)
	n := 0
	for sc.Scan() {
		var rec benchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		n++
		if rec.NumCPU != goruntime.NumCPU() {
			t.Fatalf("engine %s numcpu %d, want %d", rec.Engine, rec.NumCPU, goruntime.NumCPU())
		}
		if rec.PhaseNs == nil {
			t.Fatalf("engine %s record has no phase_ns: %+v", rec.Engine, rec)
		}
		for _, phase := range []string{"faults", "eligible_draw", "beep_tally", "propagate", "join", "observe"} {
			if _, ok := rec.PhaseNs[phase]; !ok {
				t.Fatalf("engine %s phase_ns missing %q: %v", rec.Engine, phase, rec.PhaseNs)
			}
		}
		if rec.PhaseNs["propagate"] <= 0 || rec.PhaseNs["eligible_draw"] <= 0 {
			t.Fatalf("engine %s phase_ns recorded no time on the hot phases: %v", rec.Engine, rec.PhaseNs)
		}
		// The phases partition the round loop, so their sum cannot exceed
		// the measured wall time of the runs.
		var sum int64
		for _, ns := range rec.PhaseNs {
			sum += ns
		}
		if total := int64(rec.NsPerRun * float64(rec.Runs)); sum > total {
			t.Fatalf("engine %s phase_ns sums to %d ns > wall %d ns", rec.Engine, sum, total)
		}
	}
	if n == 0 {
		t.Fatal("no bench records")
	}
}

// TestProfileFlags: each -xprofile flag writes a non-empty pprof file.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "heap.pprof")
	mutex := filepath.Join(dir, "mutex.pprof")
	args := append([]string{}, append(benchArgs,
		"-engine", "columnar", "-cpuprofile", cpu, "-memprofile", mem, "-mutexprofile", mutex)...)
	if err := run(args, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, mutex} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	if err := run([]string{"-list", "-cpuprofile", filepath.Join(dir, "missing", "cpu.pprof")}, &bytes.Buffer{}); err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
}
