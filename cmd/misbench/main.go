// Command misbench regenerates the paper's figures and tables.
//
// Usage:
//
//	misbench -list
//	misbench -exp fig3                      # paper-faithful trial counts
//	misbench -exp fig5 -trials 20 -format plot
//	misbench -exp all -trials 5 -maxn 300   # quick pass over everything
//	misbench -exp fig3 -format csv -out fig3.csv
//	misbench -exp fig3 -workers 4           # bound the trial worker pool
//	misbench -exp fig3 -engine columnar     # pin the simulation engine
//	misbench -exp fig3 -shards 8            # bound columnar/sparse propagation goroutines
//	misbench -bench -json                   # machine-readable engine benchmark
//	misbench -bench -json -benchn 1000000 -benchp 0.00001 -benchruns 1
//	                                        # million-node: scalar vs sparse only
//	misbench -bench -json -faults '{"loss":0.05,"spurious":0.01}'
//	                                        # noisy-channel overhead vs the clean baseline
//	misbench -bench -cpuprofile cpu.pprof -memprofile heap.pprof -mutexprofile mutex.pprof
//	                                        # profile the bench itself (go tool pprof)
//
// Trials run in parallel on a bounded worker pool; output is
// bit-identical for any -workers value, any -engine choice, and any
// -shards value.
//
// The -bench mode times whole simulation runs per engine on one G(n,p)
// workload (configured with -benchn/-benchp/-benchruns) and, with
// -json, emits one JSON record per engine — the across-PR benchmark
// trajectory format (scripts/bench.sh wraps the records into the
// committed top-level-array files). Only the engines whose adjacency
// representation fits -membudget are enumerated, and every record's
// auto_engine field names the engine the auto heuristic would pick, so
// a silent fallback is visible in the data.
//
// With -bench -compare BENCH_*.json the run becomes a regression gate:
// each fresh record is matched to the committed baseline by its
// (engine, n, p, shards, faults) key, a machine-readable diff is
// printed, and any record whose ns_per_round exceeds the baseline's by
// more than -tolerance fails the command (CI runs this; see
// .github/workflows/ci.yml).
//
//	misbench -bench -benchn 2000 -benchp 0.1 -benchruns 3 -shards 1 \
//	         -compare BENCH_pr6.json -tolerance 2.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"beepmis/internal/experiment"
	"beepmis/internal/fault"
	"beepmis/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (retErr error) {
	fs := flag.NewFlagSet("misbench", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list experiment ids and exit")
		verdict   = fs.Bool("verdict", false, "run the headline-claim pass/fail gate and exit")
		exp       = fs.String("exp", "", "experiment id to run, or \"all\"")
		trials    = fs.Int("trials", 0, "override per-point trial count (0 = paper default)")
		maxN      = fs.Int("maxn", 0, "cap the largest workload size (0 = paper default)")
		seed      = fs.Uint64("seed", 1, "master random seed")
		format    = fs.String("format", "table", "output format: table, csv, json, or plot")
		out       = fs.String("out", "", "write output to this file instead of stdout")
		compare   = fs.String("compare", "", "compare against a baseline JSON file: experiment results (written with -format json), or with -bench a BENCH_*.json record trajectory; drift/regression beyond -tolerance fails")
		tol       = fs.Float64("tolerance", 0.2, "relative drift tolerance for -compare (with -bench: allowed ns_per_round slowdown per record)")
		engine    = fs.String("engine", "auto", "simulation engine: auto, scalar, bitset, columnar, or sparse (results are seed-identical)")
		workers   = fs.Int("workers", 0, "trial worker pool size (0 = all cores; results are identical for any value)")
		shards    = fs.Int("shards", 0, "columnar/sparse-engine propagation goroutines (0 = all cores, 1 = serial; results are identical for any value)")
		memBudget = fs.Int64("membudget", 0, "auto-engine adjacency memory budget in bytes (0 = 2 GiB default; engine choice only, never results)")
		bench     = fs.Bool("bench", false, "run the per-engine wall-clock benchmark instead of an experiment")
		benchN    = fs.Int("benchn", 20000, "bench graph size n for G(n,p)")
		benchP    = fs.Float64("benchp", 0.5, "bench edge probability p for G(n,p)")
		benchR    = fs.Int("benchruns", 3, "bench simulation runs per engine")
		graphSpec = fs.String("graph", "", `bench a generated direct-to-CSR workload instead of the default G(n,p): "rmat:n=65536,edges=1048576[,a=,b=,c=]", "configmodel:n=...,edges=...[,gamma=]", or "gnp:n=...,p=..." (the Batagelj–Brandes fast path)`)
		graphFile = fs.String("graphfile", "", "bench a graph streamed from this file (edge-list, .bel binary, or METIS — format inferred from the extension)")
		asJSON    = fs.Bool("json", false, "emit -bench results as JSON records (engine, auto_engine, shards, rounds, ns/round, beeps, heap)")
		faultsDoc = fs.String("faults", "", `fault-model JSON (e.g. '{"loss":0.05,"spurious":0.01}'): per-listener channel noise, wake schedules, outages — applied to every trial on every engine`)
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file (go tool pprof)")
		memProf   = fs.String("memprofile", "", "write a post-GC heap profile to this file on exit")
		mutexProf = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit (samples every event)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf, *mutexProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	var faults *fault.Spec
	if *faultsDoc != "" {
		faults, err = fault.ParseSpec([]byte(*faultsDoc))
		if err != nil {
			return err
		}
	}
	if *shards != 0 && eng != sim.EngineAuto && eng != sim.EngineColumnar && eng != sim.EngineSparse {
		// Mirror beepmis.WithShards: only the columnar and sparse
		// engines shard propagation, so any other pin makes -shards a
		// typo.
		return fmt.Errorf("-shards %d conflicts with -engine %v (only the columnar and sparse engines shard propagation)", *shards, eng)
	}
	if *memBudget < 0 {
		return fmt.Errorf("-membudget %d negative (0 = default)", *memBudget)
	}
	cfg := experiment.Config{Seed: *seed, Trials: *trials, MaxN: *maxN, Workers: *workers, Engine: eng, Shards: *shards, MemoryBudget: *memBudget, Faults: faults}
	if *asJSON && !*bench {
		return fmt.Errorf("-json applies to -bench output (experiments have -format json)")
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create output file: %w", err)
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if (*graphSpec != "" || *graphFile != "") && !*bench {
		return fmt.Errorf("-graph and -graphfile apply to -bench workloads")
	}
	if *bench {
		wl, err := buildBenchWorkload(*graphSpec, *graphFile, *benchN, *benchP, *seed)
		if err != nil {
			return err
		}
		records, err := collectEngineBench(wl, *benchP, *benchR, *seed, eng, *shards, *memBudget, faults)
		if err != nil {
			return err
		}
		if *compare != "" {
			// Record-level regression gate: the same -compare flag that
			// diffs experiment results diffs bench trajectories when
			// -bench is on. Always emit the machine diff before failing.
			return runBenchCompare(w, records, *compare, *tol)
		}
		return writeBenchRecords(w, records, *asJSON)
	}
	if *list {
		for _, id := range experiment.IDs() {
			title, err := experiment.Describe(id)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-14s %s\n", id, title)
		}
		return nil
	}
	if *verdict {
		return runVerdict(stdout, cfg)
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (use -list to see experiments)")
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiment.IDs()
	}
	for i, id := range ids {
		res, err := experiment.Run(id, cfg)
		if err != nil {
			return err
		}
		if *compare != "" {
			if err := compareBaseline(w, res, *compare, *tol); err != nil {
				return err
			}
			continue
		}
		if i > 0 {
			fmt.Fprintln(w)
		}
		switch *format {
		case "table":
			fmt.Fprint(w, res.Table())
		case "csv":
			if err := res.CSV(w); err != nil {
				return err
			}
		case "json":
			if err := res.WriteJSON(w); err != nil {
				return err
			}
		case "plot":
			chart, err := res.Plot()
			if err != nil {
				return err
			}
			fmt.Fprint(w, chart)
		default:
			return fmt.Errorf("unknown format %q (want table, csv, json, or plot)", *format)
		}
	}
	return nil
}

// compareBaseline diffs res against a saved JSON baseline and errors on
// drift beyond tolerance.
func compareBaseline(w io.Writer, res *experiment.Result, path string, tolerance float64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open baseline: %w", err)
	}
	defer func() { _ = f.Close() }()
	baseline, err := experiment.ReadJSON(f)
	if err != nil {
		return err
	}
	findings := experiment.Compare(baseline, res, tolerance)
	if len(findings) == 0 {
		fmt.Fprintf(w, "%s: matches baseline %s within %.0f%%\n", res.ID, path, 100*tolerance)
		return nil
	}
	for _, finding := range findings {
		fmt.Fprintf(w, "%s: %s\n", res.ID, finding)
	}
	return fmt.Errorf("%s drifted from baseline %s (%d findings)", res.ID, path, len(findings))
}

// runVerdict prints the pass/fail gate and errors if any claim failed.
func runVerdict(w io.Writer, cfg experiment.Config) error {
	checks, err := experiment.Verdict(cfg)
	if err != nil {
		return err
	}
	failed := 0
	for _, c := range checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "%-4s %s\n     %s\n", status, c.Name, c.Detail)
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d headline claims failed", failed, len(checks))
	}
	fmt.Fprintf(w, "all %d headline claims reproduce\n", len(checks))
	return nil
}
