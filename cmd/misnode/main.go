// Command misnode runs the beeping MIS protocol as a real distributed
// system over TCP: one coordinator process (which knows the topology and
// relays "heard a beep" bits, standing in for the shared radio medium)
// and one or more node processes, each hosting one or more vertices.
//
// Usage:
//
//	# Terminal 1 — the coordinator, listening for 64 vertices:
//	misnode -mode coord -addr 127.0.0.1:7788 -graph grid -rows 8 -cols 8
//
//	# Terminal 2..k — nodes, each hosting a range of vertices:
//	misnode -mode node -addr 127.0.0.1:7788 -vertices 0-31  -seed 42
//	misnode -mode node -addr 127.0.0.1:7788 -vertices 32-63 -seed 42
//
// -vertices accepts a single id, an inclusive lo-hi range, or a
// comma-separated list of both (e.g. "0-15,32,40-47"). Malformed input —
// reversed ranges like "31-0", empty segments, ids claimed twice —
// fails before anything dials the coordinator; ranges that overlap
// *across* node processes are caught by the coordinator at handshake
// time, which names the doubly-claimed vertex in its rejection.
//
// All node processes must use the same -seed: each vertex derives its
// private randomness stream from (seed, vertex id), which also makes the
// distributed run reproduce `misrun -engine sim` exactly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misnode:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("misnode", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "", "coord or node")
		addr      = fs.String("addr", "127.0.0.1:7788", "coordinator address")
		graphKind = fs.String("graph", "grid", "coord: graph family (gnp, grid, complete, cliques, file)")
		n         = fs.Int("n", 64, "coord: node count (gnp, complete, cliques)")
		p         = fs.Float64("p", 0.5, "coord: edge probability (gnp)")
		rows      = fs.Int("rows", 8, "coord: grid rows")
		cols      = fs.Int("cols", 8, "coord: grid columns")
		in        = fs.String("in", "", "coord: edge-list file (graph=file)")
		gseed     = fs.Uint64("graph-seed", 1, "coord: graph generation seed")
		vertices  = fs.String("vertices", "", "node: vertex ids — a single id, an inclusive lo-hi range, or a comma-separated list of both (e.g. 0-15,32,40-47)")
		seed      = fs.Uint64("seed", 1, "node: master seed shared by all node processes")
		algo      = fs.String("algo", "feedback", "node: beeping algorithm (feedback, globalsweep, afek, fixed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "coord":
		g, err := buildGraph(*graphKind, *n, *p, *rows, *cols, *in, *gseed)
		if err != nil {
			return err
		}
		return runCoord(stdout, g, *addr)
	case "node":
		ids, err := parseVertices(*vertices)
		if err != nil {
			return err
		}
		return runNodes(stdout, *addr, ids, *seed, *algo)
	default:
		return fmt.Errorf("missing or unknown -mode %q (want coord or node)", *mode)
	}
}

func runCoord(stdout io.Writer, g *graph.Graph, addr string) error {
	coord, err := transport.NewCoordinator(g, addr)
	if err != nil {
		return err
	}
	defer func() { _ = coord.Close() }()
	return runCoordServe(stdout, coord, g)
}

// runCoordServe drives an already-listening coordinator to completion;
// split from runCoord so tests can bind to an ephemeral port first.
func runCoordServe(stdout io.Writer, coord *transport.Coordinator, g *graph.Graph) error {
	fmt.Fprintf(stdout, "coordinator: graph n=%d m=%d, listening on %s, waiting for %d vertices\n",
		g.N(), g.M(), coord.Addr(), g.N())
	res, err := coord.Serve(transport.CoordinatorOptions{})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		return fmt.Errorf("distributed result verification: %w", err)
	}
	fmt.Fprintf(stdout, "completed in %d rounds\n", res.Rounds)
	fmt.Fprintf(stdout, "mis (size %d): %v\n", len(graph.SetToList(res.InMIS)), graph.SetToList(res.InMIS))
	fmt.Fprintln(stdout, "verified: maximal independent set ✓")
	return nil
}

func runNodes(stdout io.Writer, addr string, ids []int, seed uint64, algo string) error {
	factory, err := mis.NewFactory(mis.Spec{Name: algo})
	if err != nil {
		return err
	}
	master := rng.New(seed)
	var wg sync.WaitGroup
	errs := make([]error, len(ids))
	results := make([]*transport.NodeResult, len(ids))
	for i, v := range ids {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := transport.RunNode(addr, v, factory, master.Stream(uint64(v)), transport.NodeOptions{})
			results[i] = res
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("vertex %d: %w", ids[i], err)
		}
	}
	for i, res := range results {
		fmt.Fprintf(stdout, "vertex %d: state=%s beeps=%d rounds=%d\n", ids[i], res.State, res.Beeps, res.Rounds)
	}
	return nil
}

// maxVerticesPerProcess bounds one process's goroutine fan-out; larger
// deployments should split across processes (that is the point of the
// tool).
const maxVerticesPerProcess = 1 << 16

// parseVertices expands the -vertices flag into the sorted vertex ids
// this process hosts. It accepts a comma-separated list of single ids
// and inclusive lo-hi ranges, and rejects — before anything dials the
// coordinator — every malformed shape that used to surface as a
// confusing mid-handshake failure: empty flags and empty list segments,
// non-numeric ids, negative ids, reversed ranges ("31-0"), and ids
// claimed twice by overlapping segments of the same flag.
func parseVertices(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("node mode requires -vertices (an id, a lo-hi range, or a comma-separated list)")
	}
	seen := make(map[int]string)
	var ids []int
	for _, seg := range strings.Split(s, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("-vertices %q has an empty segment (stray comma?)", s)
		}
		lo, hi, err := parseSegment(seg)
		if err != nil {
			return nil, err
		}
		// Bound before expanding: a typo like 0-2000000000 must print
		// this error, not allocate gigabytes trying to.
		if len(ids)+(hi-lo+1) > maxVerticesPerProcess {
			return nil, fmt.Errorf("-vertices %q expands to more than %d vertices; split across node processes", s, maxVerticesPerProcess)
		}
		for v := lo; v <= hi; v++ {
			if prev, dup := seen[v]; dup {
				return nil, fmt.Errorf("-vertices %q claims vertex %d twice (segments %q and %q overlap)", s, v, prev, seg)
			}
			seen[v] = seg
			ids = append(ids, v)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// parseSegment parses one -vertices list segment: "12" or "3-17".
func parseSegment(seg string) (lo, hi int, err error) {
	if i := strings.IndexByte(seg, '-'); i >= 0 {
		lo, err = strconv.Atoi(seg[:i])
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w (want lo-hi, e.g. 0-31)", seg, err)
		}
		hi, err = strconv.Atoi(seg[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w (want lo-hi, e.g. 0-31)", seg, err)
		}
		if lo < 0 || hi < 0 {
			return 0, 0, fmt.Errorf("range %q has a negative endpoint (vertex ids start at 0)", seg)
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("range %q is reversed: %d > %d (want lo-hi with lo ≤ hi)", seg, lo, hi)
		}
		return lo, hi, nil
	}
	v, err := strconv.Atoi(seg)
	if err != nil {
		return 0, 0, fmt.Errorf("bad vertex %q: %w", seg, err)
	}
	if v < 0 {
		return 0, 0, fmt.Errorf("vertex %q is negative (vertex ids start at 0)", seg)
	}
	return v, v, nil
}

func buildGraph(kind string, n int, p float64, rows, cols int, in string, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "gnp":
		return graph.GNP(n, p, rng.New(seed)), nil
	case "grid":
		return graph.Grid(rows, cols), nil
	case "complete":
		return graph.Complete(n), nil
	case "cliques":
		return graph.CliqueFamily(n), nil
	case "file":
		if in == "" {
			return nil, fmt.Errorf("graph=file requires -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, fmt.Errorf("open graph file: %w", err)
		}
		defer func() { _ = f.Close() }()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}
