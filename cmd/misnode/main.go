// Command misnode runs the beeping MIS protocol as a real distributed
// system over TCP: one coordinator process (which knows the topology and
// relays "heard a beep" bits, standing in for the shared radio medium)
// and one or more node processes, each hosting one or more vertices.
//
// Usage:
//
//	# Terminal 1 — the coordinator, listening for 64 vertices:
//	misnode -mode coord -addr 127.0.0.1:7788 -graph grid -rows 8 -cols 8
//
//	# Terminal 2..k — nodes, each hosting a range of vertices:
//	misnode -mode node -addr 127.0.0.1:7788 -vertices 0-31  -seed 42
//	misnode -mode node -addr 127.0.0.1:7788 -vertices 32-63 -seed 42
//
// All node processes must use the same -seed: each vertex derives its
// private randomness stream from (seed, vertex id), which also makes the
// distributed run reproduce `misrun -engine sim` exactly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misnode:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("misnode", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "", "coord or node")
		addr      = fs.String("addr", "127.0.0.1:7788", "coordinator address")
		graphKind = fs.String("graph", "grid", "coord: graph family (gnp, grid, complete, cliques, file)")
		n         = fs.Int("n", 64, "coord: node count (gnp, complete, cliques)")
		p         = fs.Float64("p", 0.5, "coord: edge probability (gnp)")
		rows      = fs.Int("rows", 8, "coord: grid rows")
		cols      = fs.Int("cols", 8, "coord: grid columns")
		in        = fs.String("in", "", "coord: edge-list file (graph=file)")
		gseed     = fs.Uint64("graph-seed", 1, "coord: graph generation seed")
		vertices  = fs.String("vertices", "", "node: vertex id or inclusive range lo-hi")
		seed      = fs.Uint64("seed", 1, "node: master seed shared by all node processes")
		algo      = fs.String("algo", "feedback", "node: beeping algorithm (feedback, globalsweep, afek, fixed)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *mode {
	case "coord":
		g, err := buildGraph(*graphKind, *n, *p, *rows, *cols, *in, *gseed)
		if err != nil {
			return err
		}
		return runCoord(stdout, g, *addr)
	case "node":
		lo, hi, err := parseRange(*vertices)
		if err != nil {
			return err
		}
		return runNodes(stdout, *addr, lo, hi, *seed, *algo)
	default:
		return fmt.Errorf("missing or unknown -mode %q (want coord or node)", *mode)
	}
}

func runCoord(stdout io.Writer, g *graph.Graph, addr string) error {
	coord, err := transport.NewCoordinator(g, addr)
	if err != nil {
		return err
	}
	defer func() { _ = coord.Close() }()
	return runCoordServe(stdout, coord, g)
}

// runCoordServe drives an already-listening coordinator to completion;
// split from runCoord so tests can bind to an ephemeral port first.
func runCoordServe(stdout io.Writer, coord *transport.Coordinator, g *graph.Graph) error {
	fmt.Fprintf(stdout, "coordinator: graph n=%d m=%d, listening on %s, waiting for %d vertices\n",
		g.N(), g.M(), coord.Addr(), g.N())
	res, err := coord.Serve(transport.CoordinatorOptions{})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		return fmt.Errorf("distributed result verification: %w", err)
	}
	fmt.Fprintf(stdout, "completed in %d rounds\n", res.Rounds)
	fmt.Fprintf(stdout, "mis (size %d): %v\n", len(graph.SetToList(res.InMIS)), graph.SetToList(res.InMIS))
	fmt.Fprintln(stdout, "verified: maximal independent set ✓")
	return nil
}

func runNodes(stdout io.Writer, addr string, lo, hi int, seed uint64, algo string) error {
	factory, err := mis.NewFactory(mis.Spec{Name: algo})
	if err != nil {
		return err
	}
	master := rng.New(seed)
	var wg sync.WaitGroup
	errs := make([]error, hi-lo+1)
	results := make([]*transport.NodeResult, hi-lo+1)
	for v := lo; v <= hi; v++ {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := transport.RunNode(addr, v, factory, master.Stream(uint64(v)), transport.NodeOptions{})
			results[v-lo] = res
			errs[v-lo] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("vertex %d: %w", lo+i, err)
		}
	}
	for i, res := range results {
		fmt.Fprintf(stdout, "vertex %d: state=%s beeps=%d rounds=%d\n", lo+i, res.State, res.Beeps, res.Rounds)
	}
	return nil
}

func parseRange(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("node mode requires -vertices (id or lo-hi)")
	}
	if i := strings.IndexByte(s, '-'); i >= 0 {
		lo, err = strconv.Atoi(s[:i])
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w", s, err)
		}
		hi, err = strconv.Atoi(s[i+1:])
		if err != nil {
			return 0, 0, fmt.Errorf("bad range %q: %w", s, err)
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("range %q has hi < lo", s)
		}
		return lo, hi, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, 0, fmt.Errorf("bad vertex %q: %w", s, err)
	}
	return v, v, nil
}

func buildGraph(kind string, n int, p float64, rows, cols int, in string, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "gnp":
		return graph.GNP(n, p, rng.New(seed)), nil
	case "grid":
		return graph.Grid(rows, cols), nil
	case "complete":
		return graph.Complete(n), nil
	case "cliques":
		return graph.CliqueFamily(n), nil
	case "file":
		if in == "" {
			return nil, fmt.Errorf("graph=file requires -in")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, fmt.Errorf("open graph file: %w", err)
		}
		defer func() { _ = f.Close() }()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}
