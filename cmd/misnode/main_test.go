package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"beepmis/internal/graph"
	"beepmis/internal/transport"
)

func TestParseVertices(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  string // substring of the error when want is nil
	}{
		{"5", []int{5}, ""},
		{"0-15", seq(0, 15), ""},
		{"3-3", []int{3}, ""},
		{"0-3,8,5-6", []int{0, 1, 2, 3, 5, 6, 8}, ""},
		{" 2 , 4-5 ", []int{2, 4, 5}, ""},
		{"", nil, "requires -vertices"},
		{"31-0", nil, "reversed"},
		{"5-2", nil, "reversed"},
		{"0-3,,5", nil, "empty segment"},
		{"0-3,", nil, "empty segment"},
		{"0-3,2-5", nil, "overlap"},
		{"4,4", nil, "twice"},
		{"0-3,3", nil, "twice"},
		{"a", nil, "bad vertex"},
		{"1-b", nil, "bad range"},
		{"x-2", nil, "bad range"},
		{"-4", nil, "bad range"}, // leading '-' parses as a range with an empty lo
	}
	for _, c := range cases {
		got, err := parseVertices(c.in)
		if c.want != nil {
			if err != nil {
				t.Errorf("parseVertices(%q): %v", c.in, err)
				continue
			}
			if len(got) != len(c.want) {
				t.Errorf("parseVertices(%q) = %v, want %v", c.in, got, c.want)
				continue
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("parseVertices(%q) = %v, want %v", c.in, got, c.want)
					break
				}
			}
			continue
		}
		if err == nil {
			t.Errorf("parseVertices(%q) accepted: %v", c.in, got)
		} else if !strings.Contains(err.Error(), c.err) {
			t.Errorf("parseVertices(%q) error %q does not mention %q", c.in, err, c.err)
		}
	}
}

// seq returns the ints lo..hi inclusive.
func seq(lo, hi int) []int {
	ids := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		ids = append(ids, v)
	}
	return ids
}

func TestBuildGraph(t *testing.T) {
	g, err := buildGraph("grid", 0, 0, 3, 4, "", 1)
	if err != nil || g.N() != 12 {
		t.Fatalf("grid: %v %v", g, err)
	}
	g, err = buildGraph("gnp", 20, 0.5, 0, 0, "", 1)
	if err != nil || g.N() != 20 {
		t.Fatalf("gnp: %v %v", g, err)
	}
	if _, err := buildGraph("nope", 0, 0, 0, 0, "", 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := buildGraph("file", 0, 0, 0, 0, "", 1); err == nil {
		t.Fatal("file without -in accepted")
	}
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := os.WriteFile(path, []byte("n 2\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = buildGraph("file", 0, 0, 0, 0, path, 1)
	if err != nil || g.M() != 1 {
		t.Fatalf("file: %v %v", g, err)
	}
}

func TestRunModeErrors(t *testing.T) {
	cases := [][]string{
		{},                // missing mode
		{"-mode", "nope"}, // unknown mode
		{"-mode", "node"}, // missing vertices
		{"-mode", "node", "-vertices", "0", "-algo", "nope"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestCoordAndNodesEndToEnd drives the two roles' inner functions over
// loopback TCP within one process (the separate-process path is the same
// code reached through run()).
func TestCoordAndNodesEndToEnd(t *testing.T) {
	g := graph.Grid(3, 3)
	coord, err := transport.NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Close() }()

	var (
		wg      sync.WaitGroup
		nodeOut bytes.Buffer
		nodeErr error
		mu      sync.Mutex
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		err := runNodes(&buf, coord.Addr(), seq(0, g.N()-1), 42, "feedback")
		mu.Lock()
		defer mu.Unlock()
		nodeOut = buf
		nodeErr = err
	}()

	var coordOut bytes.Buffer
	if err := runCoordServe(&coordOut, coord, g); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if nodeErr != nil {
		t.Fatalf("nodes: %v", nodeErr)
	}
	if !strings.Contains(coordOut.String(), "verified: maximal independent set") {
		t.Fatalf("coordinator output:\n%s", coordOut.String())
	}
	if !strings.Contains(nodeOut.String(), "vertex 0:") {
		t.Fatalf("node output:\n%s", nodeOut.String())
	}
}

// freePort reserves an ephemeral port and releases it for the test to
// reuse; the race window is negligible for a loopback test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestRunCoordAndNodeModes exercises the exact CLI paths (run with
// -mode coord / -mode node) end to end.
func TestRunCoordAndNodeModes(t *testing.T) {
	addr := freePort(t)
	coordOut := &bytes.Buffer{}
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- run([]string{"-mode", "coord", "-addr", addr, "-graph", "grid", "-rows", "3", "-cols", "3"}, coordOut)
	}()
	// Dial until the coordinator is listening (it may not be up yet).
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			_ = conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never started listening")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var nodeOut bytes.Buffer
	if err := run([]string{"-mode", "node", "-addr", addr, "-vertices", "0-4,7,5-6,8", "-seed", "3"}, &nodeOut); err != nil {
		t.Fatalf("node mode: %v", err)
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coord mode: %v\n%s", err, coordOut.String())
	}
	if !strings.Contains(coordOut.String(), "verified: maximal independent set") {
		t.Fatalf("coordinator output:\n%s", coordOut.String())
	}
	if !strings.Contains(nodeOut.String(), "vertex 8:") {
		t.Fatalf("node output:\n%s", nodeOut.String())
	}
}

func TestRunCoordBadAddr(t *testing.T) {
	if err := run([]string{"-mode", "coord", "-addr", "256.0.0.1:bad"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad address accepted")
	}
}
