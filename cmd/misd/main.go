// Command misd serves declarative MIS simulation scenarios over HTTP:
// submit a scenario spec, poll or stream its progress, fetch the result
// JSON. Identical specs (by content hash — engine/shards/workers and
// other performance knobs excluded) are deduplicated: concurrent
// duplicates coalesce onto one running job and repeats are served from
// the result cache without re-execution.
//
// Usage:
//
//	misd -addr :8080 -jobs 2 -queue 64
//	misd -addr :8080 -jobs 1 -autoscale-max 8   # queue-depth autoscaling pool
//
//	curl -X POST --data-binary @scenarios/quickstart.json localhost:8080/v1/scenarios
//	curl -X POST --data-binary @scenarios/noisy-async.json localhost:8080/v1/scenarios
//	curl localhost:8080/v1/scenarios/<id>
//	curl localhost:8080/v1/scenarios/<id>/result
//	curl -N localhost:8080/v1/scenarios/<id>/events
//
// Operational surface (beside the /v1 API):
//
//	GET /metrics    Prometheus text exposition: engine phase timings,
//	                service queue/cache/latency telemetry, Go runtime
//	GET /buildinfo  go version, VCS revision, dirty flag
//	GET /debug/vars expvar (JSON mirror of the exposition, plus cmdline)
//	/debug/pprof/*  profiling endpoints, only with -pprof
//
// Specs may carry a "faults" block (channel noise, adversarial wake-up,
// transient outages — see internal/fault); it changes results, so it is
// part of the content hash, and every noisy run is checked round by
// round by the fault verifier, whose findings appear in the result
// JSON (independent_every_round, stable_rounds, …).
//
// The same spec files drive the one-shot CLI (misrun -scenario); both
// paths produce byte-identical result JSON.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"beepmis/internal/obs"
	"beepmis/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "misd:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until ctx is cancelled, then shuts
// down gracefully: stop accepting, drain in-flight HTTP, drain the job
// pool. ready (test hook) receives the bound address once listening.
func run(ctx context.Context, args []string, stdout io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("misd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		jobs         = fs.Int("jobs", 1, "concurrent scenario executions (the autoscaler's minimum when -autoscale-max is set)")
		autoMax      = fs.Int("autoscale-max", 0, "autoscale the job pool between -jobs and this bound on queue-depth watermarks (0 = fixed pool)")
		autoInterval = fs.Duration("autoscale-interval", 25*time.Millisecond, "autoscaler control-loop sampling period")
		queue        = fs.Int("queue", 64, "queued-scenario bound (beyond it submissions get 429)")
		trialWrk     = fs.Int("trial-workers", 0, "per-scenario trial pool override (0 = honour each spec)")
		grace        = fs.Duration("grace", 30*time.Second, "graceful shutdown budget for in-flight HTTP")
		drainTimeout = fs.Duration("drain-timeout", 0, "bound on waiting for in-flight jobs during shutdown (0 = -grace)")
		pprofOn      = fs.Bool("pprof", false, "expose /debug/pprof/* (CPU, heap, mutex profiles) on the same port")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs < 1 {
		return fmt.Errorf("-jobs must be ≥ 1 (got %d)", *jobs)
	}
	// Reject rather than silently substitute defaults: "-queue 0" is a
	// misconfiguration, not a request for the library default of 64.
	if *queue < 1 {
		return fmt.Errorf("-queue must be ≥ 1 (got %d)", *queue)
	}
	if *trialWrk < 0 {
		return fmt.Errorf("-trial-workers must be ≥ 0 (got %d)", *trialWrk)
	}
	if *autoMax != 0 && *autoMax < *jobs {
		return fmt.Errorf("-autoscale-max must be ≥ -jobs (got %d < %d)", *autoMax, *jobs)
	}
	var autoscale *service.AutoscaleConfig
	if *autoMax > 0 {
		autoscale = &service.AutoscaleConfig{Min: *jobs, Max: *autoMax, Interval: *autoInterval}
	}

	serviceMetrics := &obs.ServiceMetrics{}
	engineMetrics := &obs.EngineMetrics{}
	mgr := service.New(service.Options{
		Workers:       *jobs,
		Autoscale:     autoscale,
		QueueCap:      *queue,
		TrialWorkers:  *trialWrk,
		Metrics:       serviceMetrics,
		EngineMetrics: engineMetrics,
	})
	reg := newRegistry(serviceMetrics, engineMetrics)
	server := &http.Server{Handler: rootHandler(mgr, reg, *pprofOn)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	pool := fmt.Sprintf("%d job workers", *jobs)
	if autoscale != nil {
		pool = fmt.Sprintf("autoscaling %d..%d job workers", *jobs, *autoMax)
	}
	fmt.Fprintf(stdout, "misd: listening on %s (%s, queue %d)\n", ln.Addr(), pool, *queue)
	if ready != nil {
		ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Shutdown ordering matters for load balancers: flip readiness
	// first (readyz 503s while the HTTP surface is still fully alive),
	// drain the job pool under its own bound, and only then stop
	// serving — so in-flight jobs stay observable (status, SSE,
	// results) for the whole drain window.
	fmt.Fprintln(stdout, "misd: draining")
	mgr.Drain()
	drainBudget := *drainTimeout
	if drainBudget <= 0 {
		drainBudget = *grace
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainBudget)
	defer cancelDrain()
	if err := mgr.Close(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		// Clients still streaming events at the deadline are cut off.
		_ = server.Close()
	}
	fmt.Fprintln(stdout, "misd: stopped")
	return nil
}
