package main

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime/debug"

	"beepmis/internal/obs"
	"beepmis/internal/service"
)

// newRegistry assembles the process's metric families: the service
// bundle, the engine bundle aggregated across every job the manager
// runs, and the Go-runtime gauges.
func newRegistry(sm *obs.ServiceMetrics, em *obs.EngineMetrics) *obs.Registry {
	reg := obs.NewRegistry()
	em.Register(reg)
	sm.Register(reg)
	obs.RegisterRuntime(reg)
	return reg
}

// rootHandler composes the full HTTP surface: the /v1 job API, the
// Prometheus exposition, build information, expvar, and (opt-in) the
// pprof endpoints. pprof is flag-gated because profile endpoints let
// any client with network reach burn CPU (30-second profiles) and read
// process internals — reasonable on a lab port, not as a default.
func rootHandler(mgr *service.Manager, reg *obs.Registry, pprofOn bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/", mgr.Handler())
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("GET /buildinfo", handleBuildInfo)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// buildInfo is the /buildinfo body: enough to answer "what exactly is
// this binary" from a running deployment.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Dirty     bool   `json:"dirty"`
}

func handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	info := buildInfo{}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.GoVersion = bi.GoVersion
		info.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.Revision = s.Value
			case "vcs.time":
				info.Time = s.Value
			case "vcs.modified":
				info.Dirty = s.Value == "true"
			}
		}
	}
	writeJSON(w, http.StatusOK, info)
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
