package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"beepmis/internal/obs"
)

// bootServer starts the real binary path on an ephemeral port and
// returns its base URL plus a shutdown func.
func bootServer(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, append([]string{"-addr", "127.0.0.1:0", "-grace", "5s"}, args...), io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return fmt.Sprintf("http://%s", a), func() {
			cancel()
			<-errCh
		}
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	panic("unreachable")
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestObservabilityEndpoints is the metrics smoke CI runs under -race:
// boot with pprof on, execute the golden quickstart scenario, then
// assert the whole operational surface — the Prometheus exposition
// parses and carries non-zero engine and service counters, buildinfo
// answers, expvar answers, pprof answers, and readiness is green.
func TestObservabilityEndpoints(t *testing.T) {
	spec, err := os.ReadFile("../../scenarios/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := bootServer(t, "-pprof")
	defer shutdown()

	// Run the golden scenario so the engine counters have something to say.
	resp, err := http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _ := get(t, base+"/v1/scenarios/"+sub.ID+"/result")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("golden scenario never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}
	for _, name := range []string{
		"beepmis_engine_rounds_total",
		"beepmis_engine_runs_total",
		"beepmis_service_jobs_done_total",
		"beepmis_service_cache_misses_total",
	} {
		v, ok := obs.SampleValue(body, name, "")
		if !ok {
			t.Fatalf("/metrics missing %s:\n%s", name, body)
		}
		if v <= 0 {
			t.Fatalf("%s = %v after a completed scenario, want > 0", name, v)
		}
	}
	if _, ok := obs.SampleValue(body, "beepmis_engine_phase_duration_ns_count", `phase="propagate"`); !ok {
		t.Fatal("/metrics missing the propagate phase histogram")
	}
	if _, ok := obs.SampleValue(body, "go_goroutines", ""); !ok {
		t.Fatal("/metrics missing the Go runtime family")
	}

	code, body = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json: %d", code)
	}
	var series []map[string]any
	if err := json.Unmarshal(body, &series); err != nil || len(series) == 0 {
		t.Fatalf("/metrics.json: %v (%d series)", err, len(series))
	}

	code, body = get(t, base+"/buildinfo")
	if code != http.StatusOK {
		t.Fatalf("/buildinfo: %d", code)
	}
	var bi struct {
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.Unmarshal(body, &bi); err != nil {
		t.Fatal(err)
	}
	if bi.GoVersion == "" || bi.Module != "beepmis" {
		t.Fatalf("buildinfo = %s", body)
	}

	if code, _ := get(t, base+"/debug/vars"); code != http.StatusOK {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline with -pprof: %d", code)
	}
	if code, _ := get(t, base+"/v1/readyz"); code != http.StatusOK {
		t.Fatalf("/v1/readyz: %d", code)
	}
}

// TestPprofGatedByFlag: without -pprof the profile endpoints must not
// exist — they are an operational risk surface, not a default.
func TestPprofGatedByFlag(t *testing.T) {
	base, shutdown := bootServer(t)
	defer shutdown()
	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Fatalf("/debug/pprof/cmdline without -pprof: %d, want 404", code)
	}
	// The rest of the operational surface stays on.
	if code, _ := get(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics without -pprof: %d", code)
	}
	if code, _ := get(t, base+"/buildinfo"); code != http.StatusOK {
		t.Fatalf("/buildinfo without -pprof: %d", code)
	}
}
