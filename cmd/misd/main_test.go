package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the server goroutine log while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeSubmitShutdown boots the real binary path on an ephemeral
// port, submits a golden scenario file over HTTP, fetches the result,
// and shuts down via context cancellation — the SIGINT path.
func TestServeSubmitShutdown(t *testing.T) {
	spec, err := os.ReadFile("../../scenarios/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-grace", "5s"}, &out, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Poll until done (the quickstart spec takes well under a second).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/scenarios/" + sub.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var report struct {
				Hash string `json:"hash"`
			}
			if err := json.Unmarshal(body, &report); err != nil || report.Hash != sub.ID {
				t.Fatalf("result %s: %v", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: last %d %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "misd: stopped") {
		t.Fatalf("missing shutdown log in %q", out.String())
	}
}

// TestFileGraphDigestInContentHash: the service content-addresses jobs
// by the canonical spec hash, and for file-family graphs the file's
// SHA-256 digest is folded into that surface at compile time. Submitting
// the byte-identical spec twice with different file contents must
// therefore yield two different job IDs — otherwise a changed graph
// would silently hit the first submission's cached result.
func TestFileGraphDigestInContentHash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-grace", "5s"}, io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	defer func() {
		cancel()
		<-errCh
	}()

	// The spec bytes never change between the two submissions; only the
	// file behind the path does.
	spec := fmt.Sprintf(`{"graph":{"family":"file","path":%q},"algorithm":"feedback","trials":1,"seed":1}`, path)
	submit := func(graphFile string) string {
		t.Helper()
		if err := os.WriteFile(path, []byte(graphFile), 0o644); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/scenarios", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
			t.Fatalf("submit response %s: %v", body, err)
		}
		return sub.ID
	}

	id1 := submit("n 4\n0 1\n2 3\n")
	id1Again := submit("n 4\n0 1\n2 3\n")
	id2 := submit("n 4\n0 1\n1 2\n")
	if id1 != id1Again {
		t.Fatalf("same spec, same file bytes hashed differently: %s vs %s", id1, id1Again)
	}
	if id1 == id2 {
		t.Fatalf("same spec, different file bytes produced the same content hash %s", id1)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-jobs", "0"}, io.Discard, nil); err == nil {
		t.Fatal("-jobs 0 accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:-1"}, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
