package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the server goroutine log while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeSubmitShutdown boots the real binary path on an ephemeral
// port, submits a golden scenario file over HTTP, fetches the result,
// and shuts down via context cancellation — the SIGINT path.
func TestServeSubmitShutdown(t *testing.T) {
	spec, err := os.ReadFile("../../scenarios/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-grace", "5s"}, &out, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Poll until done (the quickstart spec takes well under a second).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/scenarios/" + sub.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var report struct {
				Hash string `json:"hash"`
			}
			if err := json.Unmarshal(body, &report); err != nil || report.Hash != sub.ID {
				t.Fatalf("result %s: %v", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: last %d %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "misd: stopped") {
		t.Fatalf("missing shutdown log in %q", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-jobs", "0"}, io.Discard, nil); err == nil {
		t.Fatal("-jobs 0 accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:-1"}, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}
