package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the server goroutine log while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeSubmitShutdown boots the real binary path on an ephemeral
// port, submits a golden scenario file over HTTP, fetches the result,
// and shuts down via context cancellation — the SIGINT path.
func TestServeSubmitShutdown(t *testing.T) {
	spec, err := os.ReadFile("../../scenarios/quickstart.json")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	var out syncBuffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-grace", "5s"}, &out, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/scenarios", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Poll until done (the quickstart spec takes well under a second).
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/scenarios/" + sub.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var report struct {
				Hash string `json:"hash"`
			}
			if err := json.Unmarshal(body, &report); err != nil || report.Hash != sub.ID {
				t.Fatalf("result %s: %v", body, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: last %d %s", resp.StatusCode, body)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "misd: stopped") {
		t.Fatalf("missing shutdown log in %q", out.String())
	}
}

// TestFileGraphDigestInContentHash: the service content-addresses jobs
// by the canonical spec hash, and for file-family graphs the file's
// SHA-256 digest is folded into that surface at compile time. Submitting
// the byte-identical spec twice with different file contents must
// therefore yield two different job IDs — otherwise a changed graph
// would silently hit the first submission's cached result.
func TestFileGraphDigestInContentHash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.el")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-grace", "5s"}, io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = fmt.Sprintf("http://%s", a)
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	defer func() {
		cancel()
		<-errCh
	}()

	// The spec bytes never change between the two submissions; only the
	// file behind the path does.
	spec := fmt.Sprintf(`{"graph":{"family":"file","path":%q},"algorithm":"feedback","trials":1,"seed":1}`, path)
	submit := func(graphFile string) string {
		t.Helper()
		if err := os.WriteFile(path, []byte(graphFile), 0o644); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/scenarios", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var sub struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
			t.Fatalf("submit response %s: %v", body, err)
		}
		return sub.ID
	}

	id1 := submit("n 4\n0 1\n2 3\n")
	id1Again := submit("n 4\n0 1\n2 3\n")
	id2 := submit("n 4\n0 1\n1 2\n")
	if id1 != id1Again {
		t.Fatalf("same spec, same file bytes hashed differently: %s vs %s", id1, id1Again)
	}
	if id1 == id2 {
		t.Fatalf("same spec, different file bytes produced the same content hash %s", id1)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-jobs", "0"}, io.Discard, nil); err == nil {
		t.Fatal("-jobs 0 accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:-1"}, io.Discard, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

// bootMisd starts run() on an ephemeral port with the given extra
// flags and returns the base URL, the cancel that triggers graceful
// shutdown, and the error channel run's result lands on.
func bootMisd(t *testing.T, out io.Writer, extra ...string) (base string, cancel context.CancelFunc, errCh chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	addrCh := make(chan net.Addr, 1)
	errCh = make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() {
		errCh <- run(ctx, args, out, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return fmt.Sprintf("http://%s", a), cancel, errCh
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never came up")
	}
	return "", nil, nil
}

// slowSpec runs for a few seconds (trials are sequential rounds over a
// 2000-node graph), long enough to hold a drain window open.
const slowSpec = `{"graph":{"family":"gnp","n":2000,"p":0.02},"algorithm":"feedback","trials":800,"seed":7}`

// submitSpec posts a spec and returns the job ID.
func submitSpec(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/scenarios", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response %s: %v", body, err)
	}
	return sub.ID
}

// jobStatus fetches a job's status string via the public API.
func jobStatus(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/scenarios/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view.Status
}

// TestDrainFlips503WhileJobStillRunning is the misd-level drain
// ordering test: after SIGINT (context cancellation) the server enters
// its drain window — readyz serves 503 and the rest of the HTTP
// surface stays alive — while the in-flight job is still running.
func TestDrainFlips503WhileJobStillRunning(t *testing.T) {
	var out syncBuffer
	base, cancel, errCh := bootMisd(t, &out, "-grace", "5s", "-drain-timeout", "30s")

	id := submitSpec(t, base, slowSpec)
	deadline := time.Now().Add(10 * time.Second)
	for jobStatus(t, base, id) != "running" {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	// The readiness flip races only the Drain call itself, not the
	// drain's completion: poll until 503, then prove the job is still
	// in flight and the status surface still serves.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/readyz")
		if err != nil {
			t.Fatalf("readyz during drain: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never flipped to 503 (last %d)", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := jobStatus(t, base, id); got != "running" {
		t.Fatalf("job %s while readyz 503s, want still running (drain must not kill it)", got)
	}

	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(out.String(), "misd: draining") {
		t.Fatalf("missing drain log in %q", out.String())
	}
	if !strings.Contains(out.String(), "misd: stopped") {
		t.Fatalf("missing shutdown log in %q", out.String())
	}
}

// TestDrainTimeoutBoundsShutdown: a job far slower than the drain
// budget must not hold the process hostage — -drain-timeout expires,
// the run is cancelled (observed between trials), and run() returns
// cleanly well inside the job's natural duration.
func TestDrainTimeoutBoundsShutdown(t *testing.T) {
	slow := `{"graph":{"family":"gnp","n":2000,"p":0.02},"algorithm":"feedback","trials":100000,"seed":7}`
	base, cancel, errCh := bootMisd(t, io.Discard, "-grace", "5s", "-drain-timeout", "200ms")

	id := submitSpec(t, base, slow)
	deadline := time.Now().Add(10 * time.Second)
	for jobStatus(t, base, id) != "running" {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown after drain timeout: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("drain timeout did not bound shutdown")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %v, want bounded by the 200ms drain budget (plus slack)", elapsed)
	}
}
