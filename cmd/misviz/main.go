// Command misviz animates a beeping MIS execution on a grid graph as
// round-by-round ASCII frames, making the lateral-inhibition dynamics of
// the paper's Figure 2 automaton visible: cells beep ('!'), collide back
// into competition, join the MIS ('@'), or retire dominated ('·').
//
// Runs can be recorded as JSON Lines and replayed later without
// re-simulating.
//
// Usage:
//
//	misviz -rows 12 -cols 32 -algo feedback -seed 7
//	misviz -rows 12 -cols 32 -algo globalsweep      # watch the sweep take ~log² rounds
//	misviz -frames 5                                # cap printed frames
//	misviz -rows 8 -cols 8 -record run.jsonl        # save the execution
//	misviz -replay run.jsonl                        # re-render it
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("misviz", flag.ContinueOnError)
	var (
		rows   = fs.Int("rows", 12, "grid rows")
		cols   = fs.Int("cols", 32, "grid columns")
		algo   = fs.String("algo", "feedback", "beeping algorithm (feedback, globalsweep, afek, fixed)")
		seed   = fs.Uint64("seed", 7, "random seed")
		frames = fs.Int("frames", 0, "max frames to print (0 = all rounds)")
		record = fs.String("record", "", "save the execution as JSON Lines to this file")
		replay = fs.String("replay", "", "re-render a recorded execution instead of simulating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *replay != "" {
		return replayRun(stdout, *replay, *frames)
	}
	return liveRun(stdout, *rows, *cols, *algo, *seed, *frames, *record)
}

func liveRun(stdout io.Writer, rows, cols int, algo string, seed uint64, frames int, record string) error {
	g := graph.Grid(rows, cols)
	factory, err := mis.NewFactory(mis.Spec{Name: algo})
	if err != nil {
		return err
	}

	var rec *trace.Recording
	hooks := make([]func(sim.Snapshot), 0, 2)
	if record != "" {
		rec = &trace.Recording{Header: trace.Header{
			N: g.N(), Algorithm: algo, Seed: seed,
			Meta: map[string]string{"rows": strconv.Itoa(rows), "cols": strconv.Itoa(cols)},
		}}
		hooks = append(hooks, trace.Recorder(rec))
	}
	printed := 0
	hooks = append(hooks, func(s sim.Snapshot) {
		if frames > 0 && printed >= frames {
			return
		}
		printed++
		fmt.Fprintf(stdout, "round %d — %d cells still competing\n", s.Round, s.Active)
		fmt.Fprintln(stdout, renderStates(s.States, s.Beeped, rows, cols))
	})

	res, err := sim.Run(g, factory, rng.New(seed), sim.Options{
		OnRound: func(s sim.Snapshot) {
			for _, h := range hooks {
				h(s)
			}
		},
	})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		return fmt.Errorf("result verification: %w", err)
	}
	fmt.Fprintf(stdout, "done: MIS of %d cells in %d rounds (%.2f beeps/cell) — verified ✓\n",
		len(graph.SetToList(res.InMIS)), res.Rounds, res.MeanBeepsPerNode())

	if rec != nil {
		f, err := os.Create(record)
		if err != nil {
			return fmt.Errorf("create recording: %w", err)
		}
		defer func() { _ = f.Close() }()
		if err := rec.WriteJSONL(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d rounds to %s\n", rec.Rounds(), record)
	}
	return nil
}

func replayRun(stdout io.Writer, path string, frames int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open recording: %w", err)
	}
	defer func() { _ = f.Close() }()
	rec, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	rows, err := strconv.Atoi(rec.Header.Meta["rows"])
	if err != nil {
		return fmt.Errorf("recording lacks grid metadata (rows): %w", err)
	}
	cols, err := strconv.Atoi(rec.Header.Meta["cols"])
	if err != nil {
		return fmt.Errorf("recording lacks grid metadata (cols): %w", err)
	}
	if rows*cols != rec.Header.N {
		return fmt.Errorf("recording metadata %dx%d inconsistent with n=%d", rows, cols, rec.Header.N)
	}
	fmt.Fprintf(stdout, "replaying %s: %s on %dx%d, seed %d, %d rounds\n",
		path, rec.Header.Algorithm, rows, cols, rec.Header.Seed, rec.Rounds())
	for i, ev := range rec.Events {
		if frames > 0 && i >= frames {
			break
		}
		states := make([]beep.State, len(ev.States))
		for v, code := range ev.States {
			states[v] = beep.State(code)
		}
		fmt.Fprintf(stdout, "round %d — %d cells still competing\n", ev.Round, ev.Active)
		fmt.Fprintln(stdout, renderStates(states, ev.Beeped, rows, cols))
	}
	return nil
}

// renderStates draws one round: '@' in MIS, '·' dominated, '!' beeped
// this round, ' ' active and silent.
func renderStates(states []beep.State, beeped []bool, rows, cols int) string {
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", cols) + "+\n")
	for r := 0; r < rows; r++ {
		b.WriteByte('|')
		for c := 0; c < cols; c++ {
			v := r*cols + c
			switch {
			case states[v] == beep.StateInMIS:
				b.WriteRune('@')
			case states[v] == beep.StateDominated:
				b.WriteRune('·')
			case beeped[v]:
				b.WriteRune('!')
			default:
				b.WriteRune(' ')
			}
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", cols) + "+")
	return b.String()
}
