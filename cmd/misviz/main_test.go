package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVizRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rows", "5", "-cols", "8", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"round 1", "verified ✓", "@"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestVizFrameCap(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rows", "4", "-cols", "4", "-frames", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(out.String(), "round "); n != 2 {
		t.Fatalf("printed %d frames, want 2", n)
	}
}

func TestVizGlobalSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-rows", "4", "-cols", "6", "-algo", "globalsweep", "-frames", "1"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestVizErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-algo", "nope"},
		{"-bad-flag"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestVizRecordReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	var live bytes.Buffer
	if err := run([]string{"-rows", "4", "-cols", "6", "-seed", "5", "-record", path}, &live); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(live.String(), "recorded") {
		t.Fatalf("no recording confirmation:\n%s", live.String())
	}
	var replayed bytes.Buffer
	if err := run([]string{"-replay", path}, &replayed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replayed.String(), "replaying") {
		t.Fatalf("replay output:\n%s", replayed.String())
	}
	// The replay must render the exact same frames as the live run.
	liveFrames := framesOf(live.String())
	replayFrames := framesOf(replayed.String())
	if len(liveFrames) == 0 || len(liveFrames) != len(replayFrames) {
		t.Fatalf("frame counts: live %d, replay %d", len(liveFrames), len(replayFrames))
	}
	for i := range liveFrames {
		if liveFrames[i] != replayFrames[i] {
			t.Fatalf("frame %d differs between live and replay", i)
		}
	}
}

// framesOf extracts the box-drawn frames from output.
func framesOf(s string) []string {
	var frames []string
	for _, chunk := range strings.Split(s, "round ") {
		if i := strings.Index(chunk, "+"); i >= 0 {
			if j := strings.LastIndex(chunk, "+"); j > i {
				frames = append(frames, chunk[i:j+1])
			}
		}
	}
	return frames
}

func TestVizReplayErrors(t *testing.T) {
	if err := run([]string{"-replay", "/definitely/missing.jsonl"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing recording accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte(`{"n":4,"algorithm":"feedback","seed":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// No grid metadata.
	if err := run([]string{"-replay", bad}, &bytes.Buffer{}); err == nil {
		t.Fatal("recording without metadata accepted")
	}
}
