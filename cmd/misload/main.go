// Command misload drives a live misd with deterministic load and
// reports service-level latency and throughput from both ends of the
// wire: its own request clocks and the server's /metrics.json, scraped
// before and after the run and folded into the same report. A
// disagreement between the two views is printed as a finding, not
// averaged away.
//
// Usage:
//
//	misd -addr :8080 -jobs 1 -autoscale-max 8 &
//	misload -url http://127.0.0.1:8080 -wait-ready 10s \
//	        -mode closed -c 8 -n 200 -hit 0.5 -spec scenarios/quickstart.json
//	misload -url http://127.0.0.1:8080 -mode open -rate 120 -arrival poisson \
//	        -n 500 -spec scenarios/quickstart.json,scenarios/noisy-async.json -json
//
// The request stream is precomputed from -seed: which spec each
// request carries, whether it repeats an earlier body (a cache hit the
// server must absorb) or perturbs the spec's seed into a fresh
// execution, and every open-loop interarrival gap. Same flags, same
// stream — byte for byte.
//
// With -json the report is one JSON object on stdout, carrying the
// same toolchain stamps as misbench's records, so scripts/bench.sh
// appends service-level rows to the same trajectory files.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"beepmis/internal/load"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "misload:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("misload", flag.ContinueOnError)
	var (
		url       = fs.String("url", "http://127.0.0.1:8080", "misd base URL")
		mode      = fs.String("mode", load.ModeClosed, "load mode: closed (fixed concurrency) or open (fixed arrival rate)")
		conc      = fs.Int("c", 4, "closed-loop worker count")
		n         = fs.Int("n", 64, "total requests")
		rate      = fs.Float64("rate", 50, "open-loop offered arrival rate (requests/second)")
		arrival   = fs.String("arrival", load.ArrivalPoisson, "open-loop interarrival process: poisson or uniform")
		specs     = fs.String("spec", "scenarios/quickstart.json", "comma-separated base scenario files for the workload mix")
		hit       = fs.Float64("hit", 0, "fraction of requests that repeat an earlier body (cache-hit mix)")
		subs      = fs.Int("subs", 0, "SSE subscribers attached per sampled job")
		subJobs   = fs.Int("sub-jobs", 1, "fresh jobs that receive the -subs fan-out")
		seed      = fs.Uint64("seed", 1, "schedule seed (mix, perturbed spec seeds, arrival gaps)")
		poll      = fs.Duration("poll", 2*time.Millisecond, "result poll interval")
		timeout   = fs.Duration("timeout", 60*time.Second, "per-request submit→result budget")
		inflight  = fs.Int("max-inflight", 512, "open-loop cap on outstanding requests (beyond it arrivals are shed client-side)")
		waitReady = fs.Duration("wait-ready", 0, "poll /v1/readyz for up to this long before starting (0 = don't wait)")
		jsonOut   = fs.Bool("json", false, "emit the report as one JSON object on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("-n must be ≥ 1 (got %d)", *n)
	}

	var docs [][]byte
	for _, path := range strings.Split(*specs, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		docs = append(docs, b)
	}

	if *waitReady > 0 {
		if err := awaitReady(ctx, *url, *waitReady); err != nil {
			return err
		}
	}

	rep, err := load.Run(ctx, load.Config{
		BaseURL:        strings.TrimRight(*url, "/"),
		Mode:           *mode,
		Concurrency:    *conc,
		Requests:       *n,
		Rate:           *rate,
		Arrival:        *arrival,
		Specs:          docs,
		HitFraction:    *hit,
		Subscribers:    *subs,
		SubscribeJobs:  *subJobs,
		Seed:           *seed,
		PollInterval:   *poll,
		RequestTimeout: *timeout,
		MaxInFlight:    *inflight,
	})
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		rep.WriteText(stdout)
	}
	return nil
}

// awaitReady polls /v1/readyz until it serves 200 or the budget runs
// out — the boot-ordering glue that lets scripts start misd and
// misload back to back without a curl loop in between.
func awaitReady(ctx context.Context, baseURL string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not ready within %s", baseURL, budget)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
