package beepmis

import (
	"fmt"
	"testing"
)

func TestColorGraphFacade(t *testing.T) {
	g := GNP(80, 0.3, 1)
	res, err := ColorGraph(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors > g.MaxDegree()+1 {
		t.Fatalf("%d colors exceed Δ+1 = %d", res.NumColors, g.MaxDegree()+1)
	}
	if res.TotalRounds < 1 {
		t.Fatal("no rounds recorded")
	}
}

func TestMaximalMatchingFacade(t *testing.T) {
	g := GNP(60, 0.2, 2)
	res, err := MaximalMatching(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyMatching(g, res.Edges, res.Matched) {
		t.Fatal("matching not maximal")
	}
	if res.Size() == 0 && g.M() > 0 {
		t.Fatal("empty matching on a graph with edges")
	}
}

// ExampleSolve demonstrates the one-call API on a small fixed graph.
func ExampleSolve() {
	g := Grid(3, 3)
	res, err := Solve(g, AlgorithmFeedback, WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Println(Verify(g, res.InMIS) == nil)
	// Output: true
}

// ExampleColorGraph demonstrates (Δ+1)-coloring via iterated MIS.
func ExampleColorGraph() {
	g := Complete(4)
	res, err := ColorGraph(g, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.NumColors)
	// Output: 4
}
