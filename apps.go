package beepmis

import (
	"beepmis/internal/apps"
	"beepmis/internal/graph"
)

// ColoringResult reports a distributed (Δ+1)-coloring built from
// iterated MIS (see ColorGraph).
type ColoringResult struct {
	// Colors assigns each vertex a color in [0, NumColors).
	Colors []int
	// NumColors is the number of colors used (at most MaxDegree+1).
	NumColors int
	// TotalRounds is the end-to-end distributed round count across all
	// MIS iterations.
	TotalRounds int
}

// ColorGraph colors g with at most MaxDegree+1 colors by iterating the
// feedback MIS algorithm on the still-uncolored residual graph: the k-th
// independent set becomes color k. It demonstrates the paper's closing
// claim that MIS is a building block for other distributed problems.
func ColorGraph(g *Graph, seed uint64) (*ColoringResult, error) {
	res, err := apps.ColorGraph(g, seed, apps.ColoringOptions{})
	if err != nil {
		return nil, err
	}
	return &ColoringResult{
		Colors:      res.Colors,
		NumColors:   res.NumColors,
		TotalRounds: res.TotalRounds,
	}, nil
}

// VerifyColoring checks that colors is a proper coloring of g with every
// vertex colored.
func VerifyColoring(g *Graph, colors []int) error {
	return apps.VerifyColoring(g, colors)
}

// MatchingResult reports a maximal matching computed by running the
// feedback MIS on the line graph.
type MatchingResult struct {
	// Edges lists g's edges as {u, v} pairs with u < v.
	Edges [][2]int
	// Matched selects the matching over Edges.
	Matched []bool
	// Rounds is the round count of the underlying MIS run.
	Rounds int
}

// Size returns the number of matched edges.
func (m *MatchingResult) Size() int {
	count := 0
	for _, in := range m.Matched {
		if in {
			count++
		}
	}
	return count
}

// MaximalMatching computes a maximal matching of g: no two selected
// edges share an endpoint and no further edge can be added.
func MaximalMatching(g *Graph, seed uint64) (*MatchingResult, error) {
	res, err := apps.MaximalMatching(g, seed)
	if err != nil {
		return nil, err
	}
	return &MatchingResult{Edges: res.Edges, Matched: res.Matched, Rounds: res.Rounds}, nil
}

// VerifyMatching checks that matched is a maximal matching of g over
// edges.
func VerifyMatching(g *Graph, edges [][2]int, matched []bool) bool {
	return graph.IsMaximalMatching(g, edges, matched)
}
