// Flysop: the biological scenario that inspired the algorithm — sensory
// organ precursor (SOP) selection in the fruit fly's epithelium.
//
// Cells sit in a sheet (modelled as a grid, each cell adjacent to its
// neighbours); during development each cell must become an SOP or a
// neighbour of an SOP, and no two SOPs may touch — a maximal independent
// set (Figure 1B of the paper). Cells signal with membrane proteins
// (Notch–Delta), and the positive feedback in that pathway is what the
// algorithm abstracts: a cell that senses a neighbour's Delta signal
// lowers its own signalling tendency; a cell sensing silence raises it.
//
// The example runs the feedback algorithm on an epithelium grid, shows
// the bristle pattern it produces, and traces how lateral inhibition
// resolves over time.
//
//	go run ./examples/flysop
package main

import (
	"fmt"
	"log"
	"strings"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

const (
	rows = 16
	cols = 32
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := graph.Grid(rows, cols)
	fmt.Printf("epithelium: %d×%d cell sheet (%d cells)\n\n", rows, cols, g.N())

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		return err
	}

	// Capture a development timeline: the number of undecided cells and
	// SOPs per round.
	type snap struct{ round, active, sops int }
	var timeline []snap
	res, err := sim.Run(g, factory, rng.New(2013), sim.Options{
		OnRound: func(s sim.Snapshot) {
			sops := 0
			for _, st := range s.States {
				if st == beep.StateInMIS {
					sops++
				}
			}
			timeline = append(timeline, snap{s.Round, s.Active, sops})
		},
	})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		return fmt.Errorf("SOP pattern invalid: %w", err)
	}

	fmt.Println("final bristle pattern (@ = SOP cell, · = epidermal neighbour):")
	fmt.Println(renderSheet(res.InMIS))
	fmt.Printf("\n%d SOPs selected in %d developmental steps; %.2f Delta bursts per cell (paper: ≈1.1 on grids)\n",
		len(graph.SetToList(res.InMIS)), res.Rounds, res.MeanBeepsPerNode())

	fmt.Println("\nlateral inhibition timeline:")
	fmt.Printf("%8s %12s %8s\n", "step", "undecided", "SOPs")
	for _, s := range timeline {
		if s.round <= 10 || s.round == len(timeline) {
			fmt.Printf("%8d %12d %8d\n", s.round, s.active, s.sops)
		}
	}

	// The paper's robustness claim in its biological setting: development
	// still works when the feedback strength varies between cells (here,
	// per-cell initial signalling tendencies).
	hetero, err := mis.NewFeedbackHeterogeneous(mis.FeedbackConfig{}, func(id int) float64 {
		return 1 / float64(2+(id%7)) // tendencies from 1/2 down to 1/8
	})
	if err != nil {
		return err
	}
	res2, err := sim.Run(g, hetero, rng.New(2014), sim.Options{})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res2.InMIS); err != nil {
		return fmt.Errorf("heterogeneous development failed: %w", err)
	}
	fmt.Printf("\nwith per-cell signalling tendencies: still a valid pattern, %d SOPs in %d steps\n",
		len(graph.SetToList(res2.InMIS)), res2.Rounds)
	return nil
}

// renderSheet draws the cell sheet with SOPs highlighted.
func renderSheet(sops []bool) string {
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if sops[r*cols+c] {
				b.WriteRune('@')
			} else {
				b.WriteRune('·')
			}
		}
		if r != rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
