// Distributed: the beeping MIS protocol as real networked processes —
// a TCP coordinator (standing in for the shared radio medium) plus one
// client per vertex, all inside this process for a self-contained demo.
// The same binary roles are available as separate OS processes via
// cmd/misnode.
//
// The run is then replayed in the in-memory simulator from the same seed
// to demonstrate the repository's reproducibility contract: the network
// execution and the simulation are bit-for-bit identical.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 99
	g := graph.GNP(40, 0.2, rng.New(1))
	fmt.Printf("network: %d vertices, %d edges\n", g.N(), g.M())

	coord, err := transport.NewCoordinator(g, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = coord.Close() }()
	fmt.Printf("coordinator listening on %s\n", coord.Addr())

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		return err
	}
	master := rng.New(seed)

	var wg sync.WaitGroup
	nodeErrs := make([]error, g.N())
	beeps := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := transport.RunNode(coord.Addr(), v, factory, master.Stream(uint64(v)), transport.NodeOptions{})
			nodeErrs[v] = err
			if err == nil {
				beeps[v] = res.Beeps
			}
		}()
	}
	coordRes, err := coord.Serve(transport.CoordinatorOptions{})
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	wg.Wait()
	for v, err := range nodeErrs {
		if err != nil {
			return fmt.Errorf("vertex %d: %w", v, err)
		}
	}
	if err := graph.VerifyMIS(g, coordRes.InMIS); err != nil {
		return fmt.Errorf("distributed MIS invalid: %w", err)
	}
	totalBeeps := 0
	for _, b := range beeps {
		totalBeeps += b
	}
	fmt.Printf("TCP run: %d rounds, MIS size %d, %d total beeps — verified ✓\n",
		coordRes.Rounds, len(graph.SetToList(coordRes.InMIS)), totalBeeps)

	// Replay in the simulator from the same seed.
	simRes, err := sim.Run(g, factory, rng.New(seed), sim.Options{})
	if err != nil {
		return err
	}
	match := simRes.Rounds == coordRes.Rounds && simRes.TotalBeeps == totalBeeps
	for v := range simRes.InMIS {
		match = match && simRes.InMIS[v] == coordRes.InMIS[v]
	}
	fmt.Printf("simulator replay: %d rounds, %d total beeps — identical to the TCP run: %v\n",
		simRes.Rounds, simRes.TotalBeeps, match)
	if !match {
		return fmt.Errorf("network execution diverged from the simulator — reproducibility bug")
	}
	return nil
}
