// Notchdelta: from biology to algorithm. Runs the continuous
// Collier et al. (1996) Delta–Notch lateral-inhibition dynamics — the
// mechanism of the paper's §2 / Figure 4 — on a cell sheet, then runs
// the paper's discrete feedback algorithm on the same sheet, and
// compares the patterns: both produce high-Delta / MIS "sender" cells
// with no two adjacent, but the continuous dynamics can leave
// unresolved receivers (domination gaps) that the discrete algorithm,
// by construction, cannot.
//
//	go run ./examples/notchdelta
package main

import (
	"fmt"
	"log"
	"strings"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/notch"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

const (
	rows = 12
	cols = 28
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g := graph.Grid(rows, cols)
	fmt.Printf("cell sheet: %d×%d (%d cells)\n\n", rows, cols, g.N())

	// Continuous biology: Collier et al. dynamics.
	state, err := notch.Simulate(g, notch.Params{}, rng.New(1996))
	if err != nil {
		return err
	}
	violations, gaps := notch.PatternQuality(g, state.HighDelta)
	fmt.Println("Delta–Notch dynamics (Collier et al. 1996), senders = high-Delta cells:")
	fmt.Println(renderPattern(state.HighDelta))
	fmt.Printf("senders: %d | adjacent-sender violations: %d | undominated receivers: %d\n\n",
		len(state.Senders()), violations, gaps)

	// Discrete algorithm: the paper's abstraction of the same feedback.
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		return err
	}
	res, err := sim.Run(g, factory, rng.New(2013), sim.Options{})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		return fmt.Errorf("discrete result invalid: %w", err)
	}
	v2, g2 := notch.PatternQuality(g, res.InMIS)
	fmt.Printf("feedback algorithm (PODC 2013), %d rounds:\n", res.Rounds)
	fmt.Println(renderPattern(res.InMIS))
	fmt.Printf("members: %d | violations: %d | undominated: %d (maximal independent set — always 0/0)\n",
		len(graph.SetToList(res.InMIS)), v2, g2)

	fmt.Println("\nthe discrete algorithm is the biology with the imperfections proved away:")
	fmt.Printf("  continuous: independence %v, full domination %v\n", violations == 0, gaps == 0)
	fmt.Printf("  discrete:   independence true, full domination true (Theorem 2)\n")
	return nil
}

// renderPattern draws senders as '@' and receivers as '·'.
func renderPattern(senders []bool) string {
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if senders[r*cols+c] {
				b.WriteRune('@')
			} else {
				b.WriteRune('·')
			}
		}
		if r != rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
