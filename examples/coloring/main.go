// Coloring: MIS as a building block — the paper's conclusion notes that
// "selecting a maximal independent set can also be used as a fundamental
// building block in algorithms for many other problems in distributed
// computing". This example builds two of the classics on the feedback
// MIS core:
//
//   - (Δ+1)-coloring by iterated MIS, cast here as radio channel
//     assignment in a wireless network: vertices sharing an edge (i.e.
//     within interference range) must use different channels.
//
//   - Maximal matching via MIS on the line graph, cast as pairing nodes
//     for point-to-point calibration.
//
//     go run ./examples/coloring
package main

import (
	"fmt"
	"log"

	"beepmis/internal/apps"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		nodes  = 300
		radius = 0.1
		seed   = 11
	)
	g := graph.UnitDisk(nodes, radius, rng.New(seed))
	fmt.Printf("radio network: %d nodes, %d interference edges, max degree %d\n\n",
		g.N(), g.M(), g.MaxDegree())

	// Channel assignment by iterated beeping MIS.
	coloring, err := apps.ColorGraph(g, seed, apps.ColoringOptions{})
	if err != nil {
		return err
	}
	if err := apps.VerifyColoring(g, coloring.Colors); err != nil {
		return fmt.Errorf("channel assignment invalid: %w", err)
	}
	fmt.Printf("channel assignment: %d channels (bound Δ+1 = %d), %d total beeping rounds\n",
		coloring.NumColors, g.MaxDegree()+1, coloring.TotalRounds)

	hist := make([]int, coloring.NumColors)
	for _, c := range coloring.Colors {
		hist[c]++
	}
	fmt.Println("nodes per channel:")
	for c, count := range hist {
		fmt.Printf("  channel %2d: %4d %s\n", c, count, bar(count))
	}

	// Maximal matching for pairwise calibration.
	matching, err := apps.MaximalMatching(g, seed+1)
	if err != nil {
		return err
	}
	if !graph.IsMaximalMatching(g, matching.Edges, matching.Matched) {
		return fmt.Errorf("calibration pairing is not a maximal matching")
	}
	fmt.Printf("\ncalibration pairing: %d pairs out of %d links, computed in %d rounds on the line graph\n",
		matching.Size(), g.M(), matching.Rounds)

	// Iterated MIS on a complete graph needs exactly n colors — show the
	// worst case honestly.
	k := graph.Complete(8)
	worst, err := apps.ColorGraph(k, seed, apps.ColoringOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nworst case: K_8 needs %d channels (every pair interferes)\n", worst.NumColors)
	return nil
}

// bar renders a proportional histogram bar.
func bar(count int) string {
	out := make([]byte, 0, count/2)
	for i := 0; i < count/2; i++ {
		out = append(out, '#')
	}
	return string(out)
}
