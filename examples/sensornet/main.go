// Sensornet: clusterhead election in an ad hoc wireless network — the
// application the paper's conclusion motivates ("ad hoc sensor networks
// and wireless communication systems").
//
// Sensors are scattered uniformly in the unit square and can hear each
// other within a radio radius. A maximal independent set of the
// resulting unit-disk graph is exactly a clusterhead assignment: every
// sensor is a clusterhead or within radio range of one, and no two
// clusterheads interfere. The beeping model is a natural fit because a
// radio can only carrier-sense ("did anyone transmit?"), which is
// precisely a beep.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"strings"

	"beepmis"
	"beepmis/internal/apps"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sensors = 400
		radius  = 0.08
		seed    = 7
	)
	g, xs, ys := graph.UnitDiskPoints(sensors, radius, rng.New(seed))
	fmt.Printf("sensor field: %d sensors, radio radius %.2f → %d interference edges, max degree %d\n\n",
		sensors, radius, g.M(), g.MaxDegree())

	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		return err
	}
	res, err := sim.Run(g, factory, rng.New(seed+1), sim.Options{})
	if err != nil {
		return err
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		return fmt.Errorf("clusterhead set invalid: %w", err)
	}

	heads := graph.SetToList(res.InMIS)
	fmt.Printf("elected %d clusterheads in %d rounds (%.2f beeps per sensor)\n\n",
		len(heads), res.Rounds, res.MeanBeepsPerNode())
	fmt.Println(renderField(xs, ys, res.InMIS, 60, 24))
	fmt.Println("  # clusterhead   . covered sensor")

	// Compare the schedules on the same field: the feedback rule wins on
	// both time and beeps (energy — transmissions dominate a radio's
	// power budget).
	fmt.Printf("\n%-14s %8s %12s\n", "schedule", "rounds", "beeps/sensor")
	for _, name := range []string{mis.NameFeedback, mis.NameGlobalSweep, mis.NameAfek} {
		f, err := mis.NewFactory(mis.Spec{Name: name})
		if err != nil {
			return err
		}
		r, err := sim.Run(g, f, rng.New(seed+2), sim.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %8d %12.2f\n", name, r.Rounds, r.MeanBeepsPerNode())
	}

	// Robustness: a noisy field where 5% of beeps are lost.
	lossy, err := sim.Run(g, factory, rng.New(seed+3), sim.Options{BeepLoss: 0.05})
	if err != nil {
		return err
	}
	indep := graph.IsIndependent(g, lossy.InMIS)
	fmt.Printf("\nwith 5%% beep loss: %d rounds, independent=%v (loss can elect interfering heads — see ablate-loss)\n",
		lossy.Rounds, indep)

	// Build the cluster structure on the elected heads: every sensor
	// attaches to an adjacent head — the routing/aggregation backbone
	// cluster-based ad hoc protocols start from.
	clustering, err := apps.Clusters(g, res.InMIS)
	if err != nil {
		return err
	}
	sizes := make([]float64, 0, clustering.NumClusters())
	largest := 0
	for _, s := range clustering.Sizes {
		sizes = append(sizes, float64(s))
		if s > largest {
			largest = s
		}
	}
	var meanSize float64
	for _, s := range sizes {
		meanSize += s
	}
	meanSize /= float64(len(sizes))
	fmt.Printf("\ncluster backbone: %d clusters, mean size %.1f, largest %d\n",
		clustering.NumClusters(), meanSize, largest)

	// Demonstrate the public one-call API on the same network.
	quick, err := beepmis.Solve(g, beepmis.AlgorithmFeedback, beepmis.WithSeed(seed+4))
	if err != nil {
		return err
	}
	fmt.Printf("one-call API: beepmis.Solve elected %d heads in %d rounds\n", quick.SetSize(), quick.Rounds)
	return nil
}

// renderField draws the sensor field as ASCII, marking clusterheads.
func renderField(xs, ys []float64, heads []bool, w, h int) string {
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	place := func(x, y float64) (int, int) {
		c := int(x * float64(w-1))
		r := int(y * float64(h-1))
		return r, c
	}
	for i := range xs {
		if heads[i] {
			continue // draw heads last so they are never overdrawn
		}
		r, c := place(xs[i], ys[i])
		grid[r][c] = '.'
	}
	for i := range xs {
		if heads[i] {
			r, c := place(xs[i], ys[i])
			grid[r][c] = '#'
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range grid {
		b.WriteString("|" + string(row) + "|\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "+")
	return b.String()
}
