// Quickstart: compute a maximal independent set of a random graph with
// the paper's feedback algorithm, verify it, and compare against the
// baselines — the smallest complete tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"beepmis"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The paper's Figure 3 workload: G(n, 1/2).
	const n = 500
	g := beepmis.GNP(n, 0.5, 1)
	fmt.Printf("graph: G(%d, 1/2) with %d edges\n\n", g.N(), g.M())

	fmt.Printf("%-18s %8s %10s %12s %10s\n", "algorithm", "rounds", "MIS size", "beeps/node", "msg bits")
	for _, algo := range beepmis.Algorithms() {
		res, err := beepmis.Solve(g, algo, beepmis.WithSeed(42))
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		if err := beepmis.Verify(g, res.InMIS); err != nil {
			return fmt.Errorf("%s produced an invalid MIS: %w", algo, err)
		}
		fmt.Printf("%-18s %8d %10d %12.2f %10d\n",
			algo, res.Rounds, res.SetSize(), res.MeanBeepsPerNode(), res.MessageBits)
	}

	// The headline claim: feedback needs ≈ 2.5·log₂(n) rounds.
	res, err := beepmis.Solve(g, beepmis.AlgorithmFeedback, beepmis.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Printf("\nfeedback took %d rounds; the paper's curve 2.5·log2(%d) = %.1f\n",
		res.Rounds, n, 2.5*math.Log2(n))
	return nil
}
