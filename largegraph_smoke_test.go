package beepmis

import (
	"context"
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/scenario"
	"beepmis/internal/sim"
)

// TestTenMillionEdgeScenario is the pipeline's scale acceptance test: a
// Graph500-skewed R-MAT with a >10^7-edge budget must construct
// direct-to-CSR, fit the default engine memory budget, and complete a
// verifier-clean sparse-engine scenario. Everything upstream (two-pass
// builder, chunked generators, CSR-native engine entry) is exercised at
// the scale the pipeline was built for; the unit tests only prove the
// pieces agree at toy sizes.
func TestTenMillionEdgeScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("10^7-edge construction and simulation; skipped in -short mode")
	}
	compiled, err := scenario.ParseCompiledBytes([]byte(`{
		"graph": {"family": "rmat", "n": 1048576, "edges": 12582912, "seed": 29},
		"algorithm": "feedback",
		"engine": "sparse",
		"trials": 1,
		"seed": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	report, err := scenario.Run(context.Background(), compiled, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u := report.Units[0]
	// The sampled budget loses self-loops and duplicates; the floor the
	// acceptance criterion cares about is the post-dedupe edge count.
	if u.Edges < 1e7 {
		t.Fatalf("R-MAT delivered %.0f edges, want >= 10^7", u.Edges)
	}
	if got := graph.CSRBytes(u.Nodes, int(u.Edges)); got > sim.DefaultMemoryBudget {
		t.Fatalf("CSR footprint %d exceeds the default engine budget %d", got, sim.DefaultMemoryBudget)
	}
	if !u.Verified {
		t.Fatal("terminal state is not a maximal independent set")
	}
	if !u.IndependentEveryRound || !u.MaximalAtTermination {
		t.Fatalf("round-by-round verification failed: independent=%v maximal=%v",
			u.IndependentEveryRound, u.MaximalAtTermination)
	}
}
