// Package load is the engine behind misload: a deterministic
// service-level load generator for a live misd. It drives the /v1 API
// in closed loop (fixed concurrency) or open loop (fixed offered
// arrival rate with Poisson or uniform interarrivals), over a workload
// mix of cache hits (repeats of earlier bodies) and misses
// (seed-perturbed copies of the base specs), optionally fanning SSE
// subscribers onto submitted jobs.
//
// Everything the generator does — which body each request carries,
// whether it repeats an earlier one, the interarrival gaps — is
// precomputed from the run seed before the first byte hits the wire,
// so two runs with the same config offer byte-identical request
// streams and differ only in what the server makes of them. Latencies
// land in client-side obs histograms (the same primitives the server
// records into), the server's /metrics.json is scraped before and
// after, and the report folds both views together, cross-checking the
// client's miss latency against the server's queue+run telemetry so a
// disagreement between the two clocks becomes a finding instead of a
// silent skew.
package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"beepmis/internal/rng"
)

// Modes and arrival processes.
const (
	// ModeClosed runs a fixed number of concurrent workers, each
	// issuing its next request the moment the previous one completes —
	// throughput floats, concurrency is pinned.
	ModeClosed = "closed"
	// ModeOpen dispatches requests on a precomputed arrival schedule
	// regardless of completions — offered rate is pinned, concurrency
	// floats (bounded by MaxInFlight as a client-protection cap).
	ModeOpen = "open"
	// ArrivalPoisson draws exponential interarrival gaps (a Poisson
	// process at Rate); ArrivalUniform spaces arrivals evenly.
	ArrivalPoisson = "poisson"
	ArrivalUniform = "uniform"
)

// Config parameterises one load run. Zero values get defaults from
// withDefaults; Validate rejects contradictions.
type Config struct {
	// BaseURL is the misd root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Mode is ModeClosed or ModeOpen.
	Mode string
	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int
	// Requests is the total submission count (default 64).
	Requests int
	// Rate is the open-loop offered arrival rate in requests/second
	// (default 50).
	Rate float64
	// Arrival is the open-loop interarrival process (default poisson).
	Arrival string
	// Specs are the base scenario documents of the workload mix; each
	// miss perturbs one of them (round-robin) to a fresh seed.
	Specs [][]byte
	// HitFraction is the probability a request repeats an
	// already-issued body instead of minting a fresh one (default 0, a
	// pure-miss stream; the very first request is always a miss).
	HitFraction float64
	// Subscribers is the SSE fan-out attached per sampled job;
	// SubscribeJobs is how many fresh jobs get that fan-out (default 1
	// when Subscribers > 0). Subscribers stream until the job's
	// terminal event closes the connection.
	Subscribers   int
	SubscribeJobs int
	// Seed drives every random choice (mix, perturbed spec seeds,
	// interarrival gaps). Default 1.
	Seed uint64
	// PollInterval is the result-poll period (default 2ms);
	// RequestTimeout bounds one request's submit→result wait (default
	// 60s); MaxInFlight caps open-loop outstanding requests (default
	// 512) — arrivals beyond it are shed client-side and counted.
	PollInterval   time.Duration
	RequestTimeout time.Duration
	MaxInFlight    int
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalPoisson
	}
	if c.Concurrency < 1 {
		c.Concurrency = 4
	}
	if c.Requests < 1 {
		c.Requests = 64
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Subscribers > 0 && c.SubscribeJobs < 1 {
		c.SubscribeJobs = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 512
	}
	return c
}

// Validate rejects configs the schedule builder or dispatcher cannot
// honour. Call it on the raw config; Run applies it after defaults.
func (c Config) Validate() error {
	if c.BaseURL == "" {
		return fmt.Errorf("load: BaseURL required")
	}
	if c.Mode != "" && c.Mode != ModeClosed && c.Mode != ModeOpen {
		return fmt.Errorf("load: unknown mode %q (want %q or %q)", c.Mode, ModeClosed, ModeOpen)
	}
	if c.Arrival != "" && c.Arrival != ArrivalPoisson && c.Arrival != ArrivalUniform {
		return fmt.Errorf("load: unknown arrival %q (want %q or %q)", c.Arrival, ArrivalPoisson, ArrivalUniform)
	}
	if len(c.Specs) == 0 {
		return fmt.Errorf("load: at least one base spec required")
	}
	if c.HitFraction < 0 || c.HitFraction > 1 {
		return fmt.Errorf("load: hit fraction %v outside [0, 1]", c.HitFraction)
	}
	return nil
}

// request is one precomputed schedule entry.
type request struct {
	body []byte
	// hit marks a deliberate repeat of an earlier body (the schedule's
	// intent; the server's cached flag is the ground truth recorded).
	hit bool
	// gapNs is the open-loop wait before dispatching this request.
	gapNs int64
}

// Fixed stream ids for schedule derivation, so adding a stream never
// reshuffles the others (the same discipline the simulator uses).
const (
	streamMix = iota + 1
	streamSeeds
	streamGaps
	streamPick
)

// buildSchedule precomputes the full request stream: bodies, hit/miss
// choices and interarrival gaps, all from cfg.Seed. Misses rotate
// through the base specs and rewrite each one's "seed" field to a
// fresh 64-bit draw, which moves the content hash (seed is part of the
// canonical surface) without touching the workload's shape; hits
// repeat a uniformly-drawn earlier body byte-for-byte, which the
// server's content-addressed cache must absorb.
func buildSchedule(cfg Config) ([]request, error) {
	src := rng.New(cfg.Seed)
	var (
		mix   = src.Stream(streamMix)
		seeds = src.Stream(streamSeeds)
		gaps  = src.Stream(streamGaps)
		pick  = src.Stream(streamPick)
	)
	meanGap := float64(time.Second) / cfg.Rate
	var issued [][]byte
	reqs := make([]request, cfg.Requests)
	for i := range reqs {
		hit := len(issued) > 0 && mix.Float64() < cfg.HitFraction
		var body []byte
		if hit {
			body = issued[pick.Intn(len(issued))]
		} else {
			base := cfg.Specs[len(issued)%len(cfg.Specs)]
			b, err := perturbSeed(base, seeds.Uint64())
			if err != nil {
				return nil, fmt.Errorf("load: spec %d: %w", len(issued)%len(cfg.Specs), err)
			}
			body = b
			issued = append(issued, body)
		}
		var gap int64
		if cfg.Mode == ModeOpen {
			switch cfg.Arrival {
			case ArrivalUniform:
				gap = int64(meanGap)
			default:
				gap = int64(meanGap * gaps.ExpFloat64())
			}
		}
		reqs[i] = request{body: body, hit: hit, gapNs: gap}
	}
	return reqs, nil
}

// perturbSeed rewrites doc's top-level "seed" to the given value
// (forced non-zero: the scenario compiler normalises 0 to 1, which
// would collide two "distinct" misses). The round-trip through a map
// re-marshals with sorted keys, so output is deterministic for a given
// (doc, seed) pair.
func perturbSeed(doc []byte, seed uint64) ([]byte, error) {
	var m map[string]any
	if err := json.Unmarshal(doc, &m); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = 1
	}
	m["seed"] = seed
	return json.Marshal(m)
}

// Run executes one load run and returns its report. The sequence:
// build the schedule, scrape /metrics.json, dispatch, wait for every
// in-flight request and SSE subscriber, scrape again, fold and
// cross-check. A scrape failure degrades to a finding rather than
// failing the run — the client-side view is still a complete report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	schedule, err := buildSchedule(cfg)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:      cfg,
		schedule: schedule,
		client:   &http.Client{},
	}
	r.subJobs.Store(int64(cfg.SubscribeJobs))

	var findings []string
	before, errBefore := scrapeMetrics(ctx, r.client, cfg.BaseURL)
	if errBefore != nil {
		findings = append(findings, fmt.Sprintf("metrics scrape before run failed: %v", errBefore))
	}

	start := time.Now()
	switch cfg.Mode {
	case ModeOpen:
		r.runOpen(ctx)
	default:
		r.runClosed(ctx)
	}
	r.sseWG.Wait()
	wall := time.Since(start)

	var server *ServerView
	if errBefore == nil {
		after, errAfter := scrapeMetrics(ctx, r.client, cfg.BaseURL)
		if errAfter != nil {
			findings = append(findings, fmt.Sprintf("metrics scrape after run failed: %v", errAfter))
		} else {
			server = foldServerView(before, after)
		}
	}

	rep := buildReport(cfg, &r.rec, wall, server, findings)
	crossCheck(rep, cfg)
	return rep, nil
}

// runner is one run's mutable state.
type runner struct {
	cfg      Config
	schedule []request
	client   *http.Client
	rec      Recorder
	// subJobs is the remaining number of fresh jobs to attach SSE
	// fan-out to; sseWG tracks the subscriber goroutines.
	subJobs atomic.Int64
	sseWG   sync.WaitGroup
}

// runClosed drives the schedule with Concurrency workers pulling the
// next index as soon as their previous request completes.
func (r *runner) runClosed(ctx context.Context) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.schedule) || ctx.Err() != nil {
					return
				}
				r.do(ctx, r.schedule[i])
			}
		}()
	}
	wg.Wait()
}

// runOpen dispatches on the precomputed arrival schedule, never
// waiting for completions. Pacing is against absolute targets (each
// gap advances a deadline) so dispatch jitter does not accumulate into
// rate drift. Arrivals beyond MaxInFlight are shed and counted — the
// cap protects the client; the server's own backpressure (429) is what
// the run is measuring.
func (r *runner) runOpen(ctx context.Context) {
	sem := make(chan struct{}, r.cfg.MaxInFlight)
	var wg sync.WaitGroup
	target := time.Now()
	for i := range r.schedule {
		target = target.Add(time.Duration(r.schedule[i].gapNs))
		if d := time.Until(target); d > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(req request) {
				defer wg.Done()
				defer func() { <-sem }()
				r.do(ctx, req)
			}(r.schedule[i])
		default:
			r.rec.Shed.Inc()
		}
	}
	wg.Wait()
}
