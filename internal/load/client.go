package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// submitReply is the slice of the server's submission response the
// client needs: the job id, the cached verdict, and enough status to
// short-circuit polling for already-finished jobs.
type submitReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

// do executes one schedule entry end to end: submit, classify the
// response, attach SSE fan-out if this job claims it, poll the result
// to completion, record. Outcome taxonomy: 429 → Rejected (that is the
// server doing its job, not an error), transport failures / other
// statuses / timeouts → Errors, served result → Completed.
func (r *runner) do(ctx context.Context, req request) {
	r.rec.Submitted.Inc()
	reqCtx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()

	t0 := time.Now()
	reply, status, err := r.submit(reqCtx, req.body)
	submitNs := time.Since(t0).Nanoseconds()
	switch {
	case err != nil:
		r.rec.Errors.Inc()
		return
	case status == http.StatusTooManyRequests:
		r.rec.Rejected.Inc()
		return
	case status != http.StatusOK && status != http.StatusAccepted:
		r.rec.Errors.Inc()
		return
	}

	// Fresh jobs claim SSE fan-out while the per-run budget lasts; the
	// subscribers race the job's own completion, which is the point —
	// fan-out load lands while the job is streaming progress.
	if !reply.Cached && r.cfg.Subscribers > 0 && r.subJobs.Add(-1) >= 0 {
		for s := 0; s < r.cfg.Subscribers; s++ {
			r.sseWG.Add(1)
			go r.subscribe(ctx, reply.ID)
		}
	}

	if reply.Status != "done" {
		if !r.pollResult(reqCtx, reply.ID) {
			r.rec.Errors.Inc()
			return
		}
	}
	r.rec.RecordComplete(submitNs, time.Since(t0).Nanoseconds(), reply.Cached)
}

// submit POSTs one spec and decodes the reply. The response body is
// always drained so the transport's connection can be reused.
func (r *runner) submit(ctx context.Context, body []byte) (submitReply, int, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+"/v1/scenarios", bytes.NewReader(body))
	if err != nil {
		return submitReply{}, 0, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(httpReq)
	if err != nil {
		return submitReply{}, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return submitReply{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return submitReply{}, resp.StatusCode, nil
	}
	var reply submitReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return submitReply{}, resp.StatusCode, err
	}
	if reply.ID == "" {
		return submitReply{}, resp.StatusCode, fmt.Errorf("load: submit reply missing id")
	}
	return reply, resp.StatusCode, nil
}

// pollResult polls /result until it serves 200 (true) or the context
// ends / the job fails (false). 404-before-ready and 409/425-style
// not-finished responses both surface as non-200 here and simply mean
// "poll again".
func (r *runner) pollResult(ctx context.Context, id string) bool {
	url := r.cfg.BaseURL + "/v1/scenarios/" + id + "/result"
	ticker := time.NewTicker(r.cfg.PollInterval)
	defer ticker.Stop()
	for {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return false
		}
		resp, err := r.client.Do(httpReq)
		if err != nil {
			return false
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return true
		case http.StatusNotFound, http.StatusGone:
			// Evicted or unknown: this request will never complete.
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-ticker.C:
		}
	}
}

// subscribe attaches one SSE connection to a job's event stream and
// counts frames until the server closes it (the job's terminal status
// event) or ctx ends. Connection failures count as SSEErrors; a clean
// close does not.
func (r *runner) subscribe(ctx context.Context, id string) {
	defer r.sseWG.Done()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.BaseURL+"/v1/scenarios/"+id+"/events", nil)
	if err != nil {
		r.rec.SSEErrors.Inc()
		return
	}
	resp, err := r.client.Do(httpReq)
	if err != nil {
		r.rec.SSEErrors.Inc()
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.rec.SSEErrors.Inc()
		return
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		if strings.HasPrefix(scanner.Text(), "event: ") {
			r.rec.SSEEvents.Inc()
		}
	}
	// A scanner error here is almost always the context cancelling the
	// request mid-stream; either way the stream is over.
}
