package load

import "beepmis/internal/obs"

// Recorder is misload's client-side telemetry bundle: the same
// lock-free obs primitives the server records into, pointed at the
// other end of the wire. Workers record concurrently without a lock,
// and the report folds the histograms into quantiles at the end.
// The zero value is ready to use.
type Recorder struct {
	// SubmitNs is the POST /v1/scenarios round-trip per accepted
	// submission; E2ENs is submit→result-available, the latency a
	// synchronous caller would see. MissNs is E2ENs restricted to
	// requests that scheduled a fresh execution (server cached=false) —
	// the population the server's queue+run histograms describe, so the
	// client/server cross-check compares like with like.
	SubmitNs obs.Histogram
	E2ENs    obs.Histogram
	MissNs   obs.Histogram
	// Submitted counts dispatch attempts; Completed counts requests
	// that reached a served result. CacheHits counts submissions the
	// server absorbed into an existing job (cache hit or coalesce).
	Submitted obs.Counter
	Completed obs.Counter
	CacheHits obs.Counter
	// Rejected counts 429 backpressure responses; Errors counts
	// transport failures, non-2xx statuses and result timeouts; Shed
	// counts open-loop arrivals dropped at the client's own in-flight
	// cap (offered load the client never put on the wire).
	Rejected obs.Counter
	Errors   obs.Counter
	Shed     obs.Counter
	// SSEEvents counts server-sent events received across every
	// subscriber; SSEErrors counts subscriber connections that failed.
	SSEEvents obs.Counter
	SSEErrors obs.Counter
}

// RecordComplete is the per-request hot path: exactly one histogram
// observation per latency series and the outcome counters, nothing
// else. It must stay allocation-free — at thousands of in-flight
// requests, a per-completion allocation would make the load generator
// the bottleneck it is trying to find.
//
//misvet:noalloc
func (r *Recorder) RecordComplete(submitNs, e2eNs int64, cached bool) {
	r.SubmitNs.Observe(submitNs)
	r.E2ENs.Observe(e2eNs)
	if cached {
		r.CacheHits.Inc()
	} else {
		r.MissNs.Observe(e2eNs)
	}
	r.Completed.Inc()
}
