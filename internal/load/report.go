package load

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"beepmis/internal/obs"
)

// LatencySummary folds one client histogram: exact count and mean,
// interpolated quantiles (2× bucket resolution, same as the server's
// exposition — the two sides are directly comparable).
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P95Ns  float64 `json:"p95_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

func summarize(h *obs.Histogram) LatencySummary {
	snap := h.Snapshot()
	return LatencySummary{
		Count:  snap.Count,
		MeanNs: snap.Mean(),
		P50Ns:  snap.Quantile(0.50),
		P95Ns:  snap.Quantile(0.95),
		P99Ns:  snap.Quantile(0.99),
	}
}

// Report is one load run's machine-readable record. It carries the
// same toolchain stamps as misbench's records (goversion, gomaxprocs,
// numcpu, timestamp) so service-level rows ride in the same trajectory
// files as engine rows, distinguished by the tool field.
type Report struct {
	Tool string `json:"tool"` // always "misload"
	Mode string `json:"mode"`
	// Arrival and OfferedRate describe open-loop runs; Concurrency
	// describes closed-loop runs.
	Arrival     string  `json:"arrival,omitempty"`
	OfferedRate float64 `json:"offered_rate,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`
	Requests    int     `json:"requests"`
	HitFraction float64 `json:"hit_fraction"`
	Subscribers int     `json:"subscribers,omitempty"`
	Seed        uint64  `json:"seed"`

	// Outcome counts (client side). Completed + Rejected + Errors +
	// Shed = Submitted + Shed = schedule length on a run that wasn't
	// cancelled.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	CacheHits uint64 `json:"cache_hits"`
	Rejected  uint64 `json:"rejected"`
	Errors    uint64 `json:"errors"`
	Shed      uint64 `json:"shed,omitempty"`
	SSEEvents uint64 `json:"sse_events,omitempty"`
	SSEErrors uint64 `json:"sse_errors,omitempty"`

	// WallNs is the dispatch-to-last-completion wall time;
	// AchievedRPS is Completed over that wall clock — against
	// OfferedRate it locates the saturation knee.
	WallNs      int64   `json:"wall_ns"`
	AchievedRPS float64 `json:"achieved_rps"`

	// Client-side latency views. E2EMiss is the fresh-execution subset
	// — the population the server's queue+run histograms describe.
	Submit  LatencySummary `json:"submit_ns"`
	E2E     LatencySummary `json:"e2e_ns"`
	E2EMiss LatencySummary `json:"e2e_miss_ns"`

	// Server is the folded before/after scrape; Findings are
	// cross-check disagreements and degraded-run notes. An empty
	// findings list is the report saying both clocks agree.
	Server   *ServerView `json:"server,omitempty"`
	Findings []string    `json:"findings,omitempty"`

	GoVersion  string `json:"goversion"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`
	Timestamp  string `json:"timestamp"` // ISO-8601 (RFC 3339), UTC
}

// buildReport folds the recorder and the server view into the record.
func buildReport(cfg Config, rec *Recorder, wall time.Duration, server *ServerView, findings []string) *Report {
	rep := &Report{
		Tool:        "misload",
		Mode:        cfg.Mode,
		Requests:    cfg.Requests,
		HitFraction: cfg.HitFraction,
		Subscribers: cfg.Subscribers * cfg.SubscribeJobs,
		Seed:        cfg.Seed,
		Submitted:   rec.Submitted.Value(),
		Completed:   rec.Completed.Value(),
		CacheHits:   rec.CacheHits.Value(),
		Rejected:    rec.Rejected.Value(),
		Errors:      rec.Errors.Value(),
		Shed:        rec.Shed.Value(),
		SSEEvents:   rec.SSEEvents.Value(),
		SSEErrors:   rec.SSEErrors.Value(),
		WallNs:      wall.Nanoseconds(),
		Submit:      summarize(&rec.SubmitNs),
		E2E:         summarize(&rec.E2ENs),
		E2EMiss:     summarize(&rec.MissNs),
		Server:      server,
		Findings:    findings,
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	switch cfg.Mode {
	case ModeOpen:
		rep.Arrival = cfg.Arrival
		rep.OfferedRate = cfg.Rate
	default:
		rep.Concurrency = cfg.Concurrency
	}
	if wall > 0 {
		rep.AchievedRPS = float64(rep.Completed) / wall.Seconds()
	}
	return rep
}

// crossCheck compares the client's and the server's accounts of the
// same run and appends a finding for every disagreement. The two
// clocks measure different spans — the client adds network, response
// handling and up to one poll interval per request — so the check uses
// a one-sided floor (client can never be faster than the server) and a
// generous ceiling (client overhead is bounded by poll granularity
// plus a scheduling allowance), both on the fresh-execution means,
// which are exact on both sides.
func crossCheck(rep *Report, cfg Config) {
	if rep.Server == nil || rep.E2EMiss.Count == 0 {
		return
	}
	server := rep.Server.QueueMeanNs + rep.Server.RunMeanNs
	if server <= 0 {
		return
	}
	client := rep.E2EMiss.MeanNs
	// Floor: the client span contains the server span. 10% slack
	// covers population mismatch (coalesced submissions complete
	// client-side without a server execution of their own).
	if client < server*0.90 {
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"client/server skew: client e2e-miss mean %.0fns is below the server's queue+run mean %.0fns — the client claims to be faster than the work it waited for",
			client, server))
	}
	// Ceiling: client overhead per request is bounded by two poll
	// intervals plus a fixed scheduling/transport allowance; far past
	// that, the harness itself (not the service) is the bottleneck and
	// its latency numbers stop describing the server.
	allowance := 2*float64(cfg.PollInterval.Nanoseconds()) + 50e6
	if client > 2*server+allowance {
		rep.Findings = append(rep.Findings, fmt.Sprintf(
			"client/server skew: client e2e-miss mean %.0fns exceeds 2× the server's queue+run mean %.0fns plus the %.0fns poll/transport allowance — client-side overhead is distorting the measurement",
			client, server, allowance))
	}
}

// WriteText renders the human-readable summary.
func (r *Report) WriteText(w io.Writer) {
	ms := func(ns float64) float64 { return ns / 1e6 }
	shape := fmt.Sprintf("closed-loop, %d workers", r.Concurrency)
	if r.Mode == ModeOpen {
		shape = fmt.Sprintf("open-loop, %.1f req/s %s arrivals", r.OfferedRate, r.Arrival)
	}
	fmt.Fprintf(w, "misload: %s, %d requests, hit fraction %.2f, seed %d\n", shape, r.Requests, r.HitFraction, r.Seed)
	fmt.Fprintf(w, "  outcome: %d completed (%d cached), %d rejected, %d errors, %d shed in %.2fs → %.1f req/s achieved\n",
		r.Completed, r.CacheHits, r.Rejected, r.Errors, r.Shed, float64(r.WallNs)/1e9, r.AchievedRPS)
	fmt.Fprintf(w, "  submit   p50 %.2fms  p95 %.2fms  p99 %.2fms\n", ms(r.Submit.P50Ns), ms(r.Submit.P95Ns), ms(r.Submit.P99Ns))
	fmt.Fprintf(w, "  e2e      p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms\n", ms(r.E2E.P50Ns), ms(r.E2E.P95Ns), ms(r.E2E.P99Ns), ms(r.E2E.MeanNs))
	if r.E2EMiss.Count > 0 {
		fmt.Fprintf(w, "  e2e-miss p50 %.2fms  p95 %.2fms  p99 %.2fms  mean %.2fms (%d fresh executions)\n",
			ms(r.E2EMiss.P50Ns), ms(r.E2EMiss.P95Ns), ms(r.E2EMiss.P99Ns), ms(r.E2EMiss.MeanNs), r.E2EMiss.Count)
	}
	if r.SSEEvents > 0 || r.SSEErrors > 0 {
		fmt.Fprintf(w, "  sse: %d events received, %d connection errors\n", r.SSEEvents, r.SSEErrors)
	}
	if s := r.Server; s != nil {
		fmt.Fprintf(w, "  server: %d done / %d failed, %d hits / %d misses / %d coalesced, %d rejected; queue mean %.2fms, run mean %.2fms\n",
			s.JobsDone, s.JobsFailed, s.CacheHits, s.CacheMisses, s.Coalesced, s.Rejected, ms(s.QueueMeanNs), ms(s.RunMeanNs))
		fmt.Fprintf(w, "  server: pool size %d, queue high-water %d, %d scale-ups, %d scale-downs, %d events dropped\n",
			s.PoolSize, s.QueueHighWater, s.ScaleUps, s.ScaleDowns, s.EventsDropped)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  finding: %s\n", f)
	}
}
