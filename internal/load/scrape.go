package load

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// jsonSample mirrors the /metrics.json exposition entry (one series:
// scalar value for counters/gauges, count/sum plus interpolated
// quantiles for histograms).
type jsonSample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels"`
	Type   string  `json:"type"`
	Value  float64 `json:"value"`
	Count  uint64  `json:"count"`
	Sum    uint64  `json:"sum"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// metricsSnapshot indexes one /metrics.json scrape by name|labels.
type metricsSnapshot map[string]jsonSample

func (s metricsSnapshot) value(name, labels string) float64 {
	return s[name+"|"+labels].Value
}

// scrapeMetrics fetches and indexes the server's JSON exposition.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("load: /metrics.json returned %d", resp.StatusCode)
	}
	var samples []jsonSample
	if err := json.NewDecoder(resp.Body).Decode(&samples); err != nil {
		return nil, err
	}
	snap := make(metricsSnapshot, len(samples))
	for _, s := range samples {
		snap[s.Name+"|"+s.Labels] = s
	}
	return snap, nil
}

// ServerView is the server's own account of the run, folded from the
// before/after /metrics.json scrapes: counters as deltas (what this
// run caused), gauges as after-values (where the run left the server),
// latency histograms as run-scoped means (delta sum over delta count —
// exact, since the histograms carry exact sums). It is the second
// witness the cross-check holds the client's numbers against.
type ServerView struct {
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	CacheHits     uint64 `json:"cache_hits"`
	CacheMisses   uint64 `json:"cache_misses"`
	Coalesced     uint64 `json:"coalesced"`
	Rejected      uint64 `json:"rejected"`
	EventsDropped uint64 `json:"events_dropped"`
	// ScaleUps / ScaleDowns are the autoscaler decisions during the
	// run; PoolSize and QueueHighWater are the after-scrape gauges.
	ScaleUps       uint64 `json:"scale_ups"`
	ScaleDowns     uint64 `json:"scale_downs"`
	PoolSize       int64  `json:"pool_size"`
	QueueHighWater int64  `json:"queue_high_water"`
	// QueueMeanNs / RunMeanNs are run-scoped submit→start and
	// start→finish means per executed job.
	QueueMeanNs float64 `json:"queue_mean_ns"`
	RunMeanNs   float64 `json:"run_mean_ns"`
	// PhaseNs is the engine's per-phase time spent during the run
	// (delta of the per-phase duration sums), the breakdown that says
	// where the served work actually went.
	PhaseNs map[string]int64 `json:"phase_ns,omitempty"`
}

// foldServerView reduces two scrapes to the run-scoped server story.
func foldServerView(before, after metricsSnapshot) *ServerView {
	delta := func(name, labels string) uint64 {
		d := after.value(name, labels) - before.value(name, labels)
		if d < 0 {
			return 0 // server restarted mid-run; deltas are meaningless but must not underflow
		}
		return uint64(d)
	}
	histMean := func(name string) float64 {
		b, a := before[name+"|"], after[name+"|"]
		if a.Count <= b.Count {
			return 0
		}
		return float64(a.Sum-b.Sum) / float64(a.Count-b.Count)
	}
	v := &ServerView{
		JobsDone:       delta("beepmis_service_jobs_done_total", ""),
		JobsFailed:     delta("beepmis_service_jobs_failed_total", ""),
		CacheHits:      delta("beepmis_service_cache_hits_total", ""),
		CacheMisses:    delta("beepmis_service_cache_misses_total", ""),
		Coalesced:      delta("beepmis_service_coalesced_total", ""),
		Rejected:       delta("beepmis_service_rejected_total", ""),
		EventsDropped:  delta("beepmis_service_events_dropped_total", ""),
		ScaleUps:       delta("beepmis_service_scale_events_total", `direction="up",reason="queue_high"`),
		ScaleDowns:     delta("beepmis_service_scale_events_total", `direction="down",reason="queue_idle"`),
		PoolSize:       int64(after.value("beepmis_service_pool_size", "")),
		QueueHighWater: int64(after.value("beepmis_service_queue_high_water", "")),
		QueueMeanNs:    histMean("beepmis_service_queue_latency_ns"),
		RunMeanNs:      histMean("beepmis_service_run_latency_ns"),
	}
	for key, a := range after {
		if !strings.HasPrefix(key, "beepmis_engine_phase_duration_ns|") {
			continue
		}
		b := before[key]
		if a.Sum <= b.Sum {
			continue
		}
		phase := strings.TrimSuffix(strings.TrimPrefix(a.Labels, `phase="`), `"`)
		if v.PhaseNs == nil {
			v.PhaseNs = make(map[string]int64)
		}
		v.PhaseNs[phase] = int64(a.Sum - b.Sum)
	}
	return v
}
