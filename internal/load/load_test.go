package load

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"beepmis/internal/obs"
	"beepmis/internal/service"
)

const tinySpec = `{"graph":{"family":"gnp","n":30,"p":0.2},"algorithm":"feedback","trials":1,"seed":1}`

// newTestService assembles the same surface misd serves — the /v1 API
// plus /metrics.json over a shared registry — around an in-process
// Manager, so load tests exercise the real scrape-and-fold path.
func newTestService(t *testing.T, opts service.Options) *httptest.Server {
	t.Helper()
	sm := &obs.ServiceMetrics{}
	em := &obs.EngineMetrics{}
	opts.Metrics, opts.EngineMetrics = sm, em
	m := service.New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	reg := obs.NewRegistry()
	sm.Register(reg)
	em.Register(reg)
	mux := http.NewServeMux()
	mux.Handle("/v1/", m.Handler())
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestScheduleDeterministic: the same config precomputes the same
// request stream — bodies, hit flags and gaps — byte for byte, and a
// different seed moves it.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		BaseURL: "http://x", Mode: ModeOpen, Requests: 64, Rate: 100,
		Specs: [][]byte{[]byte(tinySpec)}, HitFraction: 0.5, Seed: 7,
	}.withDefaults()
	a, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].body, b[i].body) || a[i].hit != b[i].hit || a[i].gapNs != b[i].gapNs {
			t.Fatalf("request %d differs between identical builds", i)
		}
	}
	cfg.Seed = 8
	c, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !bytes.Equal(a[i].body, c[i].body) || a[i].gapNs != c[i].gapNs {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not move the schedule")
	}
}

// TestScheduleMix pins the hit/miss structure: the first request is
// always a miss, every hit repeats an earlier body exactly, every miss
// mints a body never seen before, and the realised hit count tracks
// the configured fraction.
func TestScheduleMix(t *testing.T) {
	cfg := Config{
		BaseURL: "http://x", Requests: 400,
		Specs: [][]byte{[]byte(tinySpec)}, HitFraction: 0.5, Seed: 3,
	}.withDefaults()
	reqs, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].hit {
		t.Fatal("first request cannot be a hit: nothing was issued yet")
	}
	seen := map[string]bool{}
	hits := 0
	for i, r := range reqs {
		if r.hit {
			hits++
			if !seen[string(r.body)] {
				t.Fatalf("request %d marked hit but its body was never issued", i)
			}
		} else {
			if seen[string(r.body)] {
				t.Fatalf("request %d marked miss but its body repeats an earlier one", i)
			}
			seen[string(r.body)] = true
		}
	}
	if hits < 140 || hits > 260 {
		t.Fatalf("hit count %d far from 400×0.5", hits)
	}
}

// TestScheduleArrivals: uniform gaps are constant at 1/rate; Poisson
// gaps average near it.
func TestScheduleArrivals(t *testing.T) {
	base := Config{
		BaseURL: "http://x", Mode: ModeOpen, Requests: 2000, Rate: 1000,
		Specs: [][]byte{[]byte(tinySpec)}, Seed: 5,
	}
	mean := float64(time.Second) / base.Rate

	uni := base
	uni.Arrival = ArrivalUniform
	reqs, err := buildSchedule(uni.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if r.gapNs != int64(mean) {
			t.Fatalf("uniform gap %d at request %d, want %d", r.gapNs, i, int64(mean))
		}
	}

	poi := base
	poi.Arrival = ArrivalPoisson
	reqs, err = buildSchedule(poi.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, r := range reqs {
		sum += r.gapNs
	}
	avg := float64(sum) / float64(len(reqs))
	if avg < 0.85*mean || avg > 1.15*mean {
		t.Fatalf("poisson mean gap %.0fns, want within 15%% of %.0fns", avg, mean)
	}
}

// TestPerturbSeed: the seed field moves, nothing else does, and the
// output is deterministic.
func TestPerturbSeed(t *testing.T) {
	out, err := perturbSeed([]byte(tinySpec), 42)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if m["seed"] != float64(42) {
		t.Fatalf("seed not rewritten: %v", m["seed"])
	}
	if m["algorithm"] != "feedback" || m["trials"] != float64(1) {
		t.Fatalf("perturbation disturbed other fields: %v", m)
	}
	again, err := perturbSeed([]byte(tinySpec), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, again) {
		t.Fatal("perturbSeed is not deterministic")
	}
	zero, err := perturbSeed([]byte(tinySpec), 0)
	if err != nil {
		t.Fatal(err)
	}
	var z map[string]any
	_ = json.Unmarshal(zero, &z)
	if z["seed"] == float64(0) {
		t.Fatal("seed 0 must be forced non-zero (the compiler normalises 0 to 1)")
	}
}

// TestClosedLoopRun is the end-to-end: a closed-loop run against a
// live in-process service completes every request, the hit/miss
// bookkeeping agrees between client and server, the scrape fold
// carries the server's story, and the cross-check raises no findings.
func TestClosedLoopRun(t *testing.T) {
	srv := newTestService(t, service.Options{Workers: 2, QueueCap: 64})
	const requests = 24
	rep, err := Run(context.Background(), Config{
		BaseURL:       srv.URL,
		Mode:          ModeClosed,
		Concurrency:   4,
		Requests:      requests,
		Specs:         [][]byte{[]byte(tinySpec)},
		HitFraction:   0.5,
		Subscribers:   5,
		SubscribeJobs: 1,
		Seed:          11,
		PollInterval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != requests || rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("completed %d, errors %d, rejected %d; want %d/0/0", rep.Completed, rep.Errors, rep.Rejected, requests)
	}
	if rep.E2E.Count != requests || rep.E2E.P50Ns <= 0 || rep.E2E.P99Ns < rep.E2E.P50Ns {
		t.Fatalf("broken e2e summary: %+v", rep.E2E)
	}
	if rep.AchievedRPS <= 0 {
		t.Fatalf("achieved rps %v", rep.AchievedRPS)
	}
	if rep.CacheHits+rep.E2EMiss.Count != requests {
		t.Fatalf("cached %d + fresh %d ≠ %d", rep.CacheHits, rep.E2EMiss.Count, requests)
	}
	if rep.CacheHits == 0 {
		t.Fatal("hit fraction 0.5 produced no cached completions")
	}
	s := rep.Server
	if s == nil {
		t.Fatal("scrape fold missing from report")
	}
	// Client and server must tell the same story: every fresh client
	// completion is a server cache miss, every cached one a server
	// cache hit or coalesce, and all executed jobs finished.
	if s.CacheMisses != rep.E2EMiss.Count {
		t.Fatalf("server misses %d ≠ client fresh completions %d", s.CacheMisses, rep.E2EMiss.Count)
	}
	if s.CacheHits+s.Coalesced != rep.CacheHits {
		t.Fatalf("server hits %d + coalesced %d ≠ client cached %d", s.CacheHits, s.Coalesced, rep.CacheHits)
	}
	if s.JobsDone != s.CacheMisses || s.JobsFailed != 0 {
		t.Fatalf("server jobs done %d / failed %d, want %d / 0", s.JobsDone, s.JobsFailed, s.CacheMisses)
	}
	if s.PoolSize != 2 {
		t.Fatalf("pool-size gauge %d, want the fixed pool's 2", s.PoolSize)
	}
	if s.RunMeanNs <= 0 {
		t.Fatalf("run-scoped server run mean %v", s.RunMeanNs)
	}
	if rep.SSEEvents == 0 {
		t.Fatal("5 subscribers on a fresh job received no events")
	}
	if rep.SSEErrors != 0 {
		t.Fatalf("sse errors %d", rep.SSEErrors)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("cross-check findings on a healthy run: %v", rep.Findings)
	}
}

// TestOpenLoopRun: the open-loop dispatcher honours the schedule and
// accounts for every arrival (completed + rejected + errors + shed =
// offered).
func TestOpenLoopRun(t *testing.T) {
	srv := newTestService(t, service.Options{Workers: 2, QueueCap: 64})
	const requests = 30
	rep, err := Run(context.Background(), Config{
		BaseURL:      srv.URL,
		Mode:         ModeOpen,
		Requests:     requests,
		Rate:         400,
		Arrival:      ArrivalUniform,
		Specs:        [][]byte{[]byte(tinySpec)},
		Seed:         13,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Completed + rep.Rejected + rep.Errors + rep.Shed; got != requests {
		t.Fatalf("outcome accounting: %d completed + %d rejected + %d errors + %d shed = %d, want %d",
			rep.Completed, rep.Rejected, rep.Errors, rep.Shed, got, requests)
	}
	if rep.Completed == 0 {
		t.Fatal("open-loop run completed nothing")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors %d", rep.Errors)
	}
	if rep.OfferedRate != 400 || rep.Arrival != ArrivalUniform {
		t.Fatalf("open-loop stamps missing: %+v", rep)
	}
}

// TestRecorderZeroAlloc holds RecordComplete to its contract: the
// per-completion hot path performs no allocations.
func TestRecorderZeroAlloc(t *testing.T) {
	var rec Recorder
	cached := false
	if avg := testing.AllocsPerRun(1000, func() {
		rec.RecordComplete(12_345, 67_890, cached)
		cached = !cached
	}); avg != 0 {
		t.Fatalf("RecordComplete allocates %.1f times per call, want 0", avg)
	}
}

// TestValidate rejects the configs the dispatcher cannot honour.
func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{BaseURL: "http://x"},
		{BaseURL: "http://x", Specs: [][]byte{[]byte("{}")}, Mode: "burst"},
		{BaseURL: "http://x", Specs: [][]byte{[]byte("{}")}, Arrival: "bursty"},
		{BaseURL: "http://x", Specs: [][]byte{[]byte("{}")}, HitFraction: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	ok := Config{BaseURL: "http://x", Specs: [][]byte{[]byte("{}")}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}
