package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beepmis/internal/obs"
	"beepmis/internal/scenario"
)

// newBareJob builds a running job the in-package tests can publish to
// without going through the scheduler.
func newBareJob() *Job {
	return &Job{
		ID:        "bare",
		status:    StatusRunning,
		submitted: time.Now(),
		started:   time.Now(),
		subs:      make(map[chan scenario.Event]struct{}),
		done:      make(chan struct{}),
	}
}

// TestSlowSubscriberDropsEvents pins the fan-out overflow policy: a
// subscriber that stops draining loses intermediate events (counted, so
// operators can see it) while the publisher never blocks.
func TestSlowSubscriberDropsEvents(t *testing.T) {
	m := newTestManager(t, Options{})
	job := newBareJob()
	_, live := m.Subscribe(job)

	const extra = 10
	total := cap(live) + extra
	donePub := make(chan struct{})
	go func() {
		defer close(donePub)
		for i := 0; i < total; i++ {
			m.publish(job, scenario.Event{Type: scenario.EventRound, Round: i + 1})
		}
	}()
	select {
	case <-donePub:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if got := m.Metrics().EventsDropped.Value(); got != extra {
		t.Fatalf("dropped %d events, want %d", got, extra)
	}
	// The buffer holds the oldest events; the history holds them all
	// (bounded separately by maxEventHistory).
	if got := len(live); got != cap(live) {
		t.Fatalf("subscriber buffer holds %d, want full %d", got, cap(live))
	}
	if got := len(job.events); got != total {
		t.Fatalf("history holds %d, want %d", got, total)
	}
}

// TestUnsubscribeAfterFinish: finish closes and detaches every
// subscriber itself, so the SSE handler's deferred Unsubscribe must be
// a harmless no-op — no double close, no panic, no gauge drift.
func TestUnsubscribeAfterFinish(t *testing.T) {
	m := newTestManager(t, Options{})
	job := newBareJob()
	_, live := m.Subscribe(job)
	if got := m.Metrics().Subscribers.Value(); got != 1 {
		t.Fatalf("subscriber gauge %d, want 1", got)
	}
	m.finish(job, []byte("{}"), nil)
	if _, open := <-live; open {
		t.Fatal("finish did not close the subscriber channel")
	}
	m.Unsubscribe(job, live) // must not panic or re-close
	if got := m.Metrics().Subscribers.Value(); got != 0 {
		t.Fatalf("subscriber gauge %d after finish+unsubscribe, want 0", got)
	}
	// And a subscription opened after the terminal state gets a closed
	// channel without touching the gauge.
	_, lateCh := m.Subscribe(job)
	if _, open := <-lateCh; open {
		t.Fatal("post-finish subscription channel not closed")
	}
	if got := m.Metrics().Subscribers.Value(); got != 0 {
		t.Fatalf("subscriber gauge %d after post-finish subscribe, want 0", got)
	}
}

// TestEventHistoryTruncation pins the bounded-replay contract: the
// history keeps exactly the newest maxEventHistory events.
func TestEventHistoryTruncation(t *testing.T) {
	m := newTestManager(t, Options{})
	job := newBareJob()
	const overflow = 50
	for i := 0; i < maxEventHistory+overflow; i++ {
		m.publish(job, scenario.Event{Type: scenario.EventRound, Round: i + 1})
	}
	history, live := m.Subscribe(job)
	defer m.Unsubscribe(job, live)
	if len(history) != maxEventHistory {
		t.Fatalf("history length %d, want %d", len(history), maxEventHistory)
	}
	if got := history[0].Round; got != overflow+1 {
		t.Fatalf("oldest retained event is round %d, want %d (oldest %d dropped)", got, overflow+1, overflow)
	}
	if got := history[len(history)-1].Round; got != maxEventHistory+overflow {
		t.Fatalf("newest retained event is round %d, want %d", got, maxEventHistory+overflow)
	}
}

// TestServiceMetricsLifecycle drives real submissions through the pool
// and checks the telemetry tells the true story: one miss and one
// execution per distinct spec, hits for re-submissions, latency
// histograms fed, and the queue depth settling back to zero.
func TestServiceMetricsLifecycle(t *testing.T) {
	sm := &obs.ServiceMetrics{}
	em := &obs.EngineMetrics{}
	m := newTestManager(t, Options{Workers: 1, QueueCap: 8, Metrics: sm, EngineMetrics: em})

	job, cached, err := m.Submit(mustSpec(t, testSpec))
	if err != nil || cached {
		t.Fatalf("first submit: cached=%v err=%v", cached, err)
	}
	waitDone(t, m, job)

	// Re-submission of the finished spec is a cache hit.
	if _, cached, err = m.Submit(mustSpec(t, testSpec)); err != nil || !cached {
		t.Fatalf("resubmit: cached=%v err=%v", cached, err)
	}

	if got := sm.CacheMisses.Value(); got != 1 {
		t.Fatalf("cache misses %d, want 1", got)
	}
	if got := sm.CacheHits.Value(); got != 1 {
		t.Fatalf("cache hits %d, want 1", got)
	}
	if got := sm.JobsDone.Value(); got != 1 {
		t.Fatalf("jobs done %d, want 1", got)
	}
	if got := sm.QueueDepth.Value(); got != 0 {
		t.Fatalf("queue depth %d after drain, want 0", got)
	}
	if got := sm.QueueLatencyNs.Count(); got != 1 {
		t.Fatalf("queue latency observations %d, want 1", got)
	}
	if got := sm.RunLatencyNs.Count(); got != 1 {
		t.Fatalf("run latency observations %d, want 1", got)
	}
	// The engine bundle aggregated the job's trials.
	if got := em.Runs.Value(); got != 3 {
		t.Fatalf("engine runs %d, want 3 (the spec's trials)", got)
	}
	if em.Rounds.Value() == 0 || em.Phase[obs.PhasePropagate].Count() == 0 {
		t.Fatal("engine metrics recorded no rounds from a service-run scenario")
	}

	// The view carries the derived latency fields.
	view := m.View(job)
	if view.Runs != 1 {
		t.Fatalf("view runs %d, want 1", view.Runs)
	}
	if view.QueueMs < 0 || view.RunMs <= 0 {
		t.Fatalf("derived latencies queue=%vms run=%vms", view.QueueMs, view.RunMs)
	}
}

// TestCoalescedSubmissionCounted: a duplicate of an in-flight job is a
// coalesce, not a hit.
func TestCoalescedSubmissionCounted(t *testing.T) {
	sm := &obs.ServiceMetrics{}
	release := make(chan struct{})
	m := newTestManager(t, Options{Workers: 1, QueueCap: 8, Metrics: sm})
	m.testHookBeforeRun = func(*Job) { <-release }

	job, _, err := m.Submit(mustSpec(t, testSpec))
	if err != nil {
		t.Fatal(err)
	}
	if _, cached, err := m.Submit(mustSpec(t, testSpec)); err != nil || !cached {
		t.Fatalf("duplicate submit: cached=%v err=%v", cached, err)
	}
	close(release)
	waitDone(t, m, job)
	if got := sm.Coalesced.Value(); got != 1 {
		t.Fatalf("coalesced %d, want 1", got)
	}
	if got := sm.CacheHits.Value(); got != 0 {
		t.Fatalf("cache hits %d, want 0 (duplicate was in flight)", got)
	}
}

// TestRejectedSubmissionCounted: queue-full backpressure shows up in
// the rejected counter.
func TestRejectedSubmissionCounted(t *testing.T) {
	sm := &obs.ServiceMetrics{}
	release := make(chan struct{})
	m := newTestManager(t, Options{Workers: 1, QueueCap: 1, Metrics: sm})
	m.testHookBeforeRun = func(*Job) { <-release }
	defer close(release)

	// First fills the worker, second fills the queue, third bounces.
	specFor := func(seed int) *scenario.Compiled {
		return mustSpec(t, fmt.Sprintf(`{
  "graph": {"family": "gnp", "n": 40, "p": 0.4},
  "algorithm": "feedback",
  "trials": 1,
  "seed": %d
}`, seed))
	}
	if _, _, err := m.Submit(specFor(1)); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick up the first job so the queue slot
	// frees for the second.
	deadline := time.After(5 * time.Second)
	for {
		if v := m.View(mustJob(t, m, specFor(1).Hash)); v.Status == StatusRunning {
			break
		}
		select {
		case <-deadline:
			t.Fatal("first job never started")
		case <-time.After(time.Millisecond):
		}
	}
	if _, _, err := m.Submit(specFor(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(specFor(3)); err != ErrBusy {
		t.Fatalf("third submit error %v, want ErrBusy", err)
	}
	if got := sm.Rejected.Value(); got != 1 {
		t.Fatalf("rejected %d, want 1", got)
	}
}

// TestReadyzSplitsFromHealthz: both probes are green while serving;
// the moment Drain begins — with a job still running, before the drain
// completes — readiness flips to 503 while liveness stays 200, and the
// split persists through Close.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	m := New(Options{Workers: 1})
	release := make(chan struct{})
	m.testHookBeforeRun = func(*Job) { <-release }
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	status := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz %d, want 200", got)
	}
	if got := status("/v1/readyz"); got != http.StatusOK {
		t.Fatalf("readyz %d, want 200", got)
	}

	// Put a job in flight and hold it there, then start draining: the
	// readiness flip must be observable before the drain completes.
	job, _, err := m.Submit(mustSpec(t, testSpec))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.View(job).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	m.Drain()
	if got := status("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain %d, want 503 before the drain completes", got)
	}
	if got := status("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain %d, want 200 (liveness persists)", got)
	}
	if v := m.View(job); v.Status != StatusRunning {
		t.Fatalf("job should still be running while readyz 503s, got %s", v.Status)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := status("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz after close %d, want 200 (liveness persists)", got)
	}
	if got := status("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close %d, want 503", got)
	}
}

func mustJob(t *testing.T, m *Manager, id string) *Job {
	t.Helper()
	job, ok := m.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	return job
}

// TestSSEFanoutThousandSubscribers is the fan-out stress test: one job,
// a thousand subscribers, half of which never drain. The invariant is
// exact accounting — every published event either lands in some
// subscriber's channel or increments the dropped counter, so
// delivered + dropped must equal events × subscribers with no slack in
// either direction. Afterwards the subscriber gauge returns to zero.
func TestSSEFanoutThousandSubscribers(t *testing.T) {
	const (
		subscribers = 1000
		active      = 500 // drained concurrently; the rest sit on full buffers
		events      = 300 // > the 256-slot subscriber buffer, forcing drops
	)
	m := newTestManager(t, Options{})
	sm := m.Metrics()
	job := newBareJob()

	chans := make([]<-chan scenario.Event, subscribers)
	for i := range chans {
		_, chans[i] = m.Subscribe(job)
	}
	if got := sm.Subscribers.Value(); got != subscribers {
		t.Fatalf("subscriber gauge %d, want %d", got, subscribers)
	}

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < active; i++ {
		wg.Add(1)
		go func(ch <-chan scenario.Event) {
			defer wg.Done()
			for range ch {
				delivered.Add(1)
			}
		}(chans[i])
	}

	for i := 0; i < events; i++ {
		m.publish(job, scenario.Event{Type: scenario.EventRound, Round: i + 1})
	}
	m.finish(job, []byte("{}"), nil) // closes every subscriber channel
	wg.Wait()

	// Events parked in the never-drained buffers were delivered, not
	// dropped; count them so the accounting below is exact.
	for _, ch := range chans[active:] {
		for range ch {
			delivered.Add(1)
		}
	}

	dropped := sm.EventsDropped.Value()
	if total := uint64(delivered.Load()) + dropped; total != subscribers*events {
		t.Fatalf("delivered %d + dropped %d = %d, want exactly %d",
			delivered.Load(), dropped, total, subscribers*events)
	}
	// 500 undrained subscribers each overflow a 256-slot buffer over 300
	// events, so drops are guaranteed, not incidental.
	if want := uint64((subscribers - active) * (events - 256)); dropped < want {
		t.Fatalf("dropped %d, want ≥ %d from the undrained half alone", dropped, want)
	}
	if got := sm.Subscribers.Value(); got != 0 {
		t.Fatalf("subscriber gauge %d after finish, want 0", got)
	}
}
