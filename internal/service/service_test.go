package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"beepmis/internal/scenario"
)

const testSpec = `{
  "name": "service test",
  "graph": {"family": "gnp", "n": 60, "p": 0.4},
  "algorithm": "feedback",
  "trials": 3,
  "seed": 17
}`

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = m.Close(ctx)
	})
	return m
}

func waitDone(t *testing.T, m *Manager, job *Job) JobView {
	t.Helper()
	select {
	case <-m.Done(job):
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", job.ID)
	}
	return m.View(job)
}

// TestEndToEnd drives the full HTTP surface: submit, poll status,
// stream events, fetch the result.
func TestEndToEnd(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueCap: 4})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// Submit.
	resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d (%s), want 202", resp.StatusCode, body)
	}
	var sub struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit response %s: %v", body, err)
	}
	if sub.Cached {
		t.Fatal("first submission reported cached")
	}
	if len(sub.ID) != 64 {
		t.Fatalf("job id %q is not a sha256 hash", sub.ID)
	}

	// Stream events until the terminal status event.
	stream, err := http.Get(srv.URL + "/v1/scenarios/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	events := map[string]int{}
	var terminal struct {
		Status string `json:"status"`
	}
	scanner := bufio.NewScanner(stream.Body)
	current := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
			events[current]++
		case strings.HasPrefix(line, "data: ") && current == "status":
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &terminal); err != nil {
				t.Fatalf("terminal event: %v", err)
			}
		}
	}
	if events["progress"] == 0 {
		t.Fatal("stream delivered no progress events")
	}
	if events["status"] != 1 || terminal.Status != string(StatusDone) {
		t.Fatalf("stream terminal = %+v (events %v), want one done status", terminal, events)
	}

	// Poll status.
	resp, err = http.Get(srv.URL + "/v1/scenarios/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Status != StatusDone || view.Units != 1 || view.Trials != 3 {
		t.Fatalf("status view %+v", view)
	}

	// Fetch the result and check it is the scenario report.
	resp, err = http.Get(srv.URL + "/v1/scenarios/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	result, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: got %d (%s)", resp.StatusCode, result)
	}
	var report struct {
		Hash  string `json:"hash"`
		Units []struct {
			Verified bool `json:"verified"`
		} `json:"units"`
	}
	if err := json.Unmarshal(result, &report); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if report.Hash != sub.ID || len(report.Units) != 1 || !report.Units[0].Verified {
		t.Fatalf("report %s", result)
	}

	// List includes the job; unknown ids 404.
	resp, _ = http.Get(srv.URL + "/v1/scenarios")
	var list []JobView
	_ = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("list %+v", list)
	}
	resp, _ = http.Get(srv.URL + "/v1/scenarios/deadbeef")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: got %d, want 404", resp.StatusCode)
	}
}

// TestCacheCoalescing submits the same spec concurrently and checks a
// single execution serves everyone — including a post-completion
// resubmission.
func TestCacheCoalescing(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueCap: 8})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	m.testHookBeforeRun = func(*Job) {
		once.Do(func() { close(started) })
		<-release
	}

	spec, err := scenario.ParseCompiledBytes([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	first, cached, err := m.Submit(spec)
	if err != nil || cached {
		t.Fatalf("first submit: cached=%v err=%v", cached, err)
	}
	<-started // the job is now mid-"execution"

	// Concurrent duplicates while the job runs must coalesce.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, cached, err := m.Submit(spec)
			if err != nil || !cached || job != first {
				t.Errorf("duplicate submit: job=%p cached=%v err=%v", job, cached, err)
			}
		}()
	}
	wg.Wait()
	close(release)
	waitDone(t, m, first)

	// A repeat after completion is a cache hit with no new execution.
	again, cached, err := m.Submit(spec)
	if err != nil || !cached || again != first {
		t.Fatalf("resubmit: job=%p cached=%v err=%v", again, cached, err)
	}
	m.mu.Lock()
	runs := first.runs
	m.mu.Unlock()
	if runs != 1 {
		t.Fatalf("spec executed %d times, want 1", runs)
	}
}

// TestDeterministicResults runs the same spec on two independent
// managers and byte-compares the cached reports — the property that
// makes the cache sound.
func TestDeterministicResults(t *testing.T) {
	results := make([][]byte, 2)
	for i := range results {
		m := newTestManager(t, Options{})
		spec, err := scenario.ParseCompiledBytes([]byte(testSpec))
		if err != nil {
			t.Fatal(err)
		}
		job, _, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if view := waitDone(t, m, job); view.Status != StatusDone {
			t.Fatalf("job failed: %+v", view)
		}
		results[i], _ = m.Result(job)
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatal("two executions of one spec produced different bytes")
	}
}

// TestServiceMatchesCLIPath is the acceptance round trip: an HTTP
// submission's result bytes equal a direct scenario run of the same
// file — what misrun -scenario prints.
func TestServiceMatchesCLIPath(t *testing.T) {
	compiled, err := scenario.ParseCompiledBytes([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	report, err := scenario.Run(context.Background(), compiled, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cliBytes, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, Options{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	job, ok := m.Job(sub.ID)
	if !ok {
		t.Fatalf("job %s not registered", sub.ID)
	}
	waitDone(t, m, job)
	resp, err = http.Get(srv.URL + "/v1/scenarios/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	httpBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	if !bytes.Equal(cliBytes, httpBytes) {
		t.Fatalf("CLI path and HTTP path bytes differ:\ncli:  %s\nhttp: %s", cliBytes, httpBytes)
	}
}

// TestBackpressure fills the queue and checks overflow submissions get
// ErrBusy (HTTP 429) while queued ones survive.
func TestBackpressure(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	m.testHookBeforeRun = func(*Job) {
		once.Do(func() { close(started) })
		<-release
	}
	defer close(release)

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	submit := func(seed int) int {
		doc := fmt.Sprintf(`{"graph":{"family":"gnp","n":40,"p":0.4},"algorithm":"feedback","seed":%d}`, seed)
		resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := submit(1); code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	<-started // worker busy; queue empty again
	if code := submit(2); code != http.StatusAccepted {
		t.Fatalf("second submit (fills queue): %d", code)
	}
	if code := submit(3); code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: got %d, want 429", code)
	}
	// Duplicates of an admitted spec still coalesce — they don't take
	// queue slots, so they succeed even at capacity.
	if code := submit(2); code != http.StatusOK {
		t.Fatalf("duplicate at capacity: got %d, want 200 (cache hit)", code)
	}
}

// TestSubmitRejectsInvalid maps validation failures to 400.
func TestSubmitRejectsInvalid(t *testing.T) {
	m := newTestManager(t, Options{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	for _, doc := range []string{
		`{`,
		`{"graph":{"family":"gnp","n":0,"p":0.5},"algorithm":"feedback"}`,
		`{"graph":{"family":"gnp","n":10,"p":0.5},"algorithm":"warp"}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: got %d (%s), want 400", doc, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("submit %s: error body %s", doc, body)
		}
	}
}

// TestSubmitSparseBounds pins the service's admission behaviour for
// large graphs: a million-node spec whose plan uses the sparse CSR
// engine is accepted at the door, while a dense-matrix pin on the same
// graph is refused with the reason — the 400 a client can act on, not
// an OOM minutes into a run.
func TestSubmitSparseBounds(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueCap: 4})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	dense := `{"graph":{"family":"gnp","n":1000000,"p":0.00001},"algorithm":"feedback","engine":"bitset"}`
	resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(dense))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense-pin submit: got %d (%s), want 400", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "dense adjacency matrix") {
		t.Fatalf("dense-pin error %s does not name the representation", body)
	}

	// A sparse-engine spec (kept small so the test stays fast) runs the
	// whole submit→done path.
	sparse := `{"graph":{"family":"gnp","n":400,"p":0.01},"algorithm":"feedback","engine":"sparse","shards":2,"seed":3}`
	compiled, err := scenario.ParseCompiledBytes([]byte(sparse))
	if err != nil {
		t.Fatal(err)
	}
	job, cached, err := m.Submit(compiled)
	if err != nil || cached {
		t.Fatalf("sparse submit: cached=%v err=%v", cached, err)
	}
	if view := waitDone(t, m, job); view.Status != StatusDone {
		t.Fatalf("sparse job ended %s: %s", view.Status, view.Error)
	}
}

// TestResultBeforeDone polls the result of a running job: 409 with the
// job snapshot, not an error or a partial result.
func TestResultBeforeDone(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueCap: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	m.testHookBeforeRun = func(*Job) {
		once.Do(func() { close(started) })
		<-release
	}
	defer close(release)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/scenarios", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	<-started
	resp, err = http.Get(srv.URL + "/v1/scenarios/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	_ = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || view.Status != StatusRunning {
		t.Fatalf("early result: code %d view %+v, want 409/running", resp.StatusCode, view)
	}
}

// TestGracefulShutdown closes a manager with queued work: queued jobs
// fail with the shutdown error, and Close returns.
func TestGracefulShutdown(t *testing.T) {
	m := New(Options{Workers: 1, QueueCap: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	m.testHookBeforeRun = func(*Job) {
		once.Do(func() { close(started) })
		<-release
	}

	running, _, err := m.Submit(mustSpec(t, `{"graph":{"family":"gnp","n":40,"p":0.4},"algorithm":"feedback","seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := m.Submit(mustSpec(t, `{"graph":{"family":"gnp","n":40,"p":0.4},"algorithm":"feedback","seed":2}`))
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		closed <- m.Close(ctx)
	}()
	// Submissions during shutdown are refused.
	deadline := time.After(5 * time.Second)
	for {
		_, _, err := m.Submit(mustSpec(t, `{"graph":{"family":"gnp","n":40,"p":0.4},"algorithm":"feedback","seed":3}`))
		if err != nil {
			if !strings.Contains(err.Error(), "shutting down") {
				t.Fatalf("submit during shutdown: %v", err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("Close never started refusing submissions")
		case <-time.After(10 * time.Millisecond):
		}
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if view := m.View(running); view.Status != StatusDone {
		t.Fatalf("running job after shutdown: %+v", view)
	}
	if view := m.View(queued); view.Status != StatusFailed || !strings.Contains(view.Error, "shutting down") {
		t.Fatalf("queued job after shutdown: %+v", view)
	}
}

// TestJobEviction bounds the cache: once MaxJobs is exceeded, the
// oldest finished jobs are dropped and resubmitting one re-executes.
func TestJobEviction(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueCap: 8, MaxJobs: 2})
	doc := func(seed int) *scenario.Compiled {
		return mustSpec(t, fmt.Sprintf(`{"graph":{"family":"gnp","n":30,"p":0.4},"algorithm":"feedback","seed":%d}`, seed))
	}
	var first *Job
	for seed := 1; seed <= 4; seed++ {
		job, cached, err := m.Submit(doc(seed))
		if err != nil || cached {
			t.Fatalf("seed %d: cached=%v err=%v", seed, cached, err)
		}
		if seed == 1 {
			first = job
		}
		waitDone(t, m, job)
	}
	if stats := m.StatsNow(); stats.Jobs > 2 {
		t.Fatalf("retained %d jobs, want ≤ MaxJobs=2", stats.Jobs)
	}
	if _, ok := m.Job(first.ID); ok {
		t.Fatal("oldest finished job survived eviction")
	}
	// Resubmission of an evicted spec re-executes (cached=false) and
	// lands back in the cache.
	job, cached, err := m.Submit(doc(1))
	if err != nil || cached {
		t.Fatalf("evicted resubmit: cached=%v err=%v", cached, err)
	}
	if view := waitDone(t, m, job); view.Status != StatusDone {
		t.Fatalf("re-executed job: %+v", view)
	}
}

func mustSpec(t *testing.T, doc string) *scenario.Compiled {
	t.Helper()
	c, err := scenario.ParseCompiledBytes([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return c
}
