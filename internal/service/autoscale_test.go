package service

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"beepmis/internal/obs"
)

// step is one sample fed to the scaler with the expected outcome.
type step struct {
	depth      int
	wantDelta  int
	wantReason string
}

// TestScalerTransitions table-drives the watermark/hysteresis state
// machine: sustained bursts scale up one worker per hold period,
// sustained idleness scales down, and flapping input — samples that
// alternate bands faster than the hold — never moves the pool.
func TestScalerTransitions(t *testing.T) {
	cfg := AutoscaleConfig{Min: 1, Max: 3, High: 2, Low: 0, UpHold: 2, DownHold: 2, Interval: time.Millisecond}.withDefaults()
	cases := []struct {
		name     string
		steps    []step
		wantSize int
	}{
		{
			name: "burst scales up one step per hold period",
			steps: []step{
				{depth: 5}, {depth: 5, wantDelta: +1, wantReason: ReasonQueueHigh},
				{depth: 5}, {depth: 5, wantDelta: +1, wantReason: ReasonQueueHigh},
			},
			wantSize: 3,
		},
		{
			name: "max bound holds under continued pressure",
			steps: []step{
				{depth: 9}, {depth: 9, wantDelta: +1, wantReason: ReasonQueueHigh},
				{depth: 9}, {depth: 9, wantDelta: +1, wantReason: ReasonQueueHigh},
				{depth: 9}, {depth: 9}, {depth: 9}, {depth: 9},
			},
			wantSize: 3,
		},
		{
			name: "idle scales back down to min",
			steps: []step{
				{depth: 4}, {depth: 4, wantDelta: +1, wantReason: ReasonQueueHigh},
				{depth: 0}, {depth: 0, wantDelta: -1, wantReason: ReasonQueueIdle},
				{depth: 0}, {depth: 0}, {depth: 0}, // min bound: no further shrink
			},
			wantSize: 1,
		},
		{
			name: "flapping input never accumulates a decision",
			steps: []step{
				{depth: 5}, {depth: 0}, {depth: 5}, {depth: 0},
				{depth: 5}, {depth: 0}, {depth: 5}, {depth: 0},
			},
			wantSize: 1,
		},
		{
			name: "dead-band samples reset both streaks",
			steps: []step{
				{depth: 5}, {depth: 1}, {depth: 5}, {depth: 1},
				{depth: 5}, {depth: 1},
			},
			wantSize: 1,
		},
		{
			name: "down hysteresis survives a single idle dip",
			steps: []step{
				{depth: 5}, {depth: 5, wantDelta: +1, wantReason: ReasonQueueHigh},
				{depth: 0}, {depth: 5}, {depth: 0}, {depth: 5},
			},
			wantSize: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newScaler(cfg)
			for i, st := range tc.steps {
				delta, reason := s.observe(st.depth)
				if delta != st.wantDelta || reason != st.wantReason {
					t.Fatalf("step %d (depth %d): delta=%d reason=%q, want delta=%d reason=%q",
						i, st.depth, delta, reason, st.wantDelta, st.wantReason)
				}
			}
			if s.size != tc.wantSize {
				t.Fatalf("final size %d, want %d", s.size, tc.wantSize)
			}
		})
	}
}

// TestAutoscaleConfigDefaults pins the zero-value normalisation,
// including the watermark-band repair that keeps High strictly above
// Low.
func TestAutoscaleConfigDefaults(t *testing.T) {
	d := AutoscaleConfig{}.withDefaults()
	if d.Min != 1 || d.Max != 4 || d.High != 2 || d.Low != 0 || d.UpHold != 2 || d.DownHold != 4 || d.Interval != 25*time.Millisecond {
		t.Fatalf("zero-value defaults: %+v", d)
	}
	overlapped := AutoscaleConfig{Low: 5, High: 3}.withDefaults()
	if overlapped.High <= overlapped.Low {
		t.Fatalf("overlapping watermarks survived defaults: %+v", overlapped)
	}
	pinned := AutoscaleConfig{Min: 8}.withDefaults()
	if pinned.Max != 8 {
		t.Fatalf("Max below Min survived defaults: %+v", pinned)
	}
}

// TestAutoscalerScalesUpAndDown drives the real pool end to end: a
// burst of held jobs pushes the queue past the high watermark and the
// pool grows to max (scale-up events counted); releasing the jobs
// idles the queue and the pool shrinks back to min (scale-down events
// counted). The queue-depth high-water gauge witnesses the burst.
func TestAutoscalerScalesUpAndDown(t *testing.T) {
	sm := &obs.ServiceMetrics{}
	release := make(chan struct{})
	m := newTestManager(t, Options{
		QueueCap: 16,
		Metrics:  sm,
		Autoscale: &AutoscaleConfig{
			Min: 1, Max: 3, High: 2, Low: 0,
			UpHold: 1, DownHold: 2, Interval: 2 * time.Millisecond,
		},
	})
	m.testHookBeforeRun = func(*Job) { <-release }

	for i := 0; i < 8; i++ {
		spec := mustSpec(t, fmt.Sprintf(`{
  "graph": {"family": "gnp", "n": 40, "p": 0.3},
  "algorithm": "feedback",
  "trials": 1,
  "seed": %d
}`, i+1))
		if _, _, err := m.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("%s never happened (pool %d, ups %d, downs %d)",
					what, sm.PoolSize.Value(), sm.ScaleUps.Value(), sm.ScaleDowns.Value())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("scale-up to max", func() bool { return sm.PoolSize.Value() == 3 })
	if got := sm.ScaleUps.Value(); got < 2 {
		t.Fatalf("scale-up events %d, want ≥ 2", got)
	}
	if hw := sm.QueueHighWater.Value(); hw < 4 {
		t.Fatalf("queue high-water %d, want ≥ 4 (burst of 8 over ≤ 3 workers)", hw)
	}

	close(release)
	waitFor("scale-down to min", func() bool { return sm.PoolSize.Value() == 1 })
	if got := sm.ScaleDowns.Value(); got < 2 {
		t.Fatalf("scale-down events %d, want ≥ 2", got)
	}
	// Every submitted job still completes.
	for _, view := range m.Jobs() {
		job, _ := m.Job(view.ID)
		if v := waitDone(t, m, job); v.Status != StatusDone {
			t.Fatalf("job %s finished %s: %s", v.ID, v.Status, v.Error)
		}
	}
}

// TestAutoscalerResultsByteIdentical is the determinism end-to-end:
// the same scenario set run through the fixed pool and through an
// actively-scaling pool must produce byte-identical result JSON — the
// worker count is a performance knob, never a semantic one. Run with
// -race in CI, where the scaling control loop races the workers.
func TestAutoscalerResultsByteIdentical(t *testing.T) {
	specs := make([]string, 5)
	for i := range specs {
		specs[i] = fmt.Sprintf(`{
  "graph": {"family": "gnp", "n": 70, "p": 0.3},
  "algorithm": "feedback",
  "trials": 2,
  "seed": %d
}`, i+100)
	}

	results := func(opts Options) map[string][]byte {
		m := newTestManager(t, opts)
		jobs := make([]*Job, 0, len(specs))
		for _, s := range specs {
			job, _, err := m.Submit(mustSpec(t, s))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job)
		}
		out := make(map[string][]byte, len(jobs))
		for _, job := range jobs {
			if v := waitDone(t, m, job); v.Status != StatusDone {
				t.Fatalf("job %s finished %s: %s", v.ID, v.Status, v.Error)
			}
			b, _ := m.Result(job)
			out[job.ID] = b
		}
		return out
	}

	fixed := results(Options{Workers: 2, QueueCap: 16})
	scaled := results(Options{
		QueueCap: 16,
		Autoscale: &AutoscaleConfig{
			Min: 1, Max: 4, High: 1, Low: 0,
			UpHold: 1, DownHold: 1, Interval: time.Millisecond,
		},
	})

	if len(fixed) != len(scaled) {
		t.Fatalf("job counts differ: fixed %d, autoscaled %d", len(fixed), len(scaled))
	}
	for id, want := range fixed {
		got, ok := scaled[id]
		if !ok {
			t.Fatalf("autoscaled run missing job %s", id)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %s: autoscaled result differs from fixed-pool result", id)
		}
	}
}

// TestDrainFlipsReadyBeforeJobsFinish pins the graceful-drain
// ordering: the instant Drain is called, readiness is false and new
// submissions are refused — while an in-flight job is still running
// and its eventual result still lands. Close completes the drain.
func TestDrainFlipsReadyBeforeJobsFinish(t *testing.T) {
	release := make(chan struct{})
	m := newTestManager(t, Options{Workers: 1, QueueCap: 4})
	m.testHookBeforeRun = func(*Job) { <-release }

	job, _, err := m.Submit(mustSpec(t, testSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker holds the job in StatusRunning.
	deadline := time.Now().Add(5 * time.Second)
	for m.View(job).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	m.Drain()
	if m.Ready() {
		t.Fatal("manager still ready after Drain with a job in flight")
	}
	if v := m.View(job); v.Status != StatusRunning {
		t.Fatalf("drain disturbed the in-flight job: %s", v.Status)
	}
	if _, _, err := m.Submit(mustSpec(t, `{
  "graph": {"family": "gnp", "n": 30, "p": 0.4},
  "algorithm": "feedback",
  "seed": 999
}`)); err != ErrClosed {
		t.Fatalf("submission during drain: err=%v, want ErrClosed", err)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if v := m.View(job); v.Status != StatusDone {
		t.Fatalf("in-flight job after drained Close: %s (%s)", v.Status, v.Error)
	}
	if _, ok := m.Result(job); !ok {
		t.Fatal("result not servable after drain completed")
	}
}
