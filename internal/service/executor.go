package service

import (
	"sync"
	"sync/atomic"
	"time"

	"beepmis/internal/obs"
)

// Executor is the worker-pool strategy behind a Manager: it owns the
// goroutines that drain the job queue and hand each job to the
// manager's execute function. Splitting it out of the Manager is what
// lets pool policies vary independently of job bookkeeping — the fixed
// pool and the autoscaler here, a cluster scheduler later — without
// touching submission, caching, or fan-out.
//
// The contract: Start is called exactly once, before any job is
// queued; the executor must keep at least one worker receiving from
// queue until it closes; Wait is called exactly once, after the queue
// has been closed and drained, and blocks until every worker goroutine
// has exited. Executors never decide job outcomes — the run function
// owns the shutdown-race policy (a dequeued job during Close fails
// with ErrClosed no matter which pool dequeued it).
type Executor interface {
	// Start launches the pool's workers. Each worker receives jobs
	// from queue and calls run until queue closes. The metrics bundle
	// is the manager's; executors keep its PoolSize gauge current and
	// count their scaling decisions on it.
	Start(queue <-chan *Job, run func(*Job), metrics *obs.ServiceMetrics)
	// Wait blocks until every worker has exited. The queue must be
	// closed first, or Wait blocks forever.
	Wait()
	// Workers reports the commanded worker count (the pool-size
	// gauge's value, readable without the metrics bundle).
	Workers() int
}

// FixedPool is the classic executor: n workers for the process
// lifetime. It is the default Manager pool and the baseline the
// autoscaler must stay byte-identical to.
type FixedPool struct {
	n  int
	wg sync.WaitGroup
}

// NewFixedPool returns a fixed executor of max(1, workers) workers.
func NewFixedPool(workers int) *FixedPool {
	if workers < 1 {
		workers = 1
	}
	return &FixedPool{n: workers}
}

// Start launches the n workers.
func (p *FixedPool) Start(queue <-chan *Job, run func(*Job), metrics *obs.ServiceMetrics) {
	metrics.PoolSize.Set(int64(p.n))
	p.wg.Add(p.n)
	for i := 0; i < p.n; i++ {
		go func() {
			defer p.wg.Done()
			for job := range queue {
				run(job)
			}
		}()
	}
}

// Wait blocks until all workers have exited (queue closed).
func (p *FixedPool) Wait() { p.wg.Wait() }

// Workers returns the fixed pool size.
func (p *FixedPool) Workers() int { return p.n }

// AutoscaleConfig tunes the autoscaling executor. The zero value of
// any field means its default; see the field comments. Watermarks are
// queue depths (jobs admitted but not yet dequeued).
type AutoscaleConfig struct {
	// Min and Max bound the worker count. Defaults: Min 1, Max
	// max(Min, 4).
	Min, Max int
	// High is the queue depth at or above which the pool grows
	// (default 2); Low is the depth at or below which it shrinks
	// (default 0 — only an empty queue scales down). High is clamped
	// to at least Low+1 so the bands never overlap.
	High, Low int
	// UpHold / DownHold are the consecutive control-loop samples a
	// watermark must hold before the pool acts — the hysteresis that
	// keeps flapping input from oscillating the pool. Defaults: UpHold
	// 2, DownHold 4.
	UpHold, DownHold int
	// Interval is the control-loop sampling period (default 25ms).
	Interval time.Duration
}

// withDefaults returns the config with every zero field defaulted and
// the watermark bands made consistent.
func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min < 1 {
		c.Min = 1
	}
	if c.Max < c.Min {
		if c.Max == 0 && c.Min <= 4 {
			c.Max = 4
		} else {
			c.Max = c.Min
		}
	}
	if c.High == 0 {
		c.High = 2
	}
	if c.High <= c.Low {
		c.High = c.Low + 1
	}
	if c.UpHold < 1 {
		c.UpHold = 2
	}
	if c.DownHold < 1 {
		c.DownHold = 4
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	return c
}

// Scaling decision reasons, exposed as the reason label of
// beepmis_service_scale_events_total.
const (
	// ReasonQueueHigh labels scale-ups: queue depth held at or above
	// the high watermark.
	ReasonQueueHigh = "queue_high"
	// ReasonQueueIdle labels scale-downs: queue depth held at or below
	// the low watermark.
	ReasonQueueIdle = "queue_idle"
)

// scaler is the autoscaler's decision core: a pure state machine from
// queue-depth samples to worker-count deltas, separated from the
// goroutine mechanics so the watermark/hysteresis transitions are
// table-testable without clocks or channels.
type scaler struct {
	cfg  AutoscaleConfig
	size int
	// upStreak / downStreak count consecutive samples in the high/low
	// band; a sample in the dead band between the watermarks resets
	// both, so flapping input never accumulates towards a decision.
	upStreak, downStreak int
}

// newScaler starts the machine at the configured minimum size. The
// config must already have defaults applied.
func newScaler(cfg AutoscaleConfig) *scaler {
	return &scaler{cfg: cfg, size: cfg.Min}
}

// observe feeds one queue-depth sample and returns the worker-count
// delta to apply (+1, -1 or 0) and, for non-zero deltas, the decision
// reason. The scaler applies the delta to its own size tracking; the
// caller applies it to the real pool.
func (s *scaler) observe(depth int) (delta int, reason string) {
	switch {
	case depth >= s.cfg.High:
		s.downStreak = 0
		s.upStreak++
		if s.upStreak >= s.cfg.UpHold && s.size < s.cfg.Max {
			s.upStreak = 0
			s.size++
			return +1, ReasonQueueHigh
		}
	case depth <= s.cfg.Low:
		s.upStreak = 0
		s.downStreak++
		if s.downStreak >= s.cfg.DownHold && s.size > s.cfg.Min {
			s.downStreak = 0
			s.size--
			return -1, ReasonQueueIdle
		}
	default:
		s.upStreak, s.downStreak = 0, 0
	}
	return 0, ""
}

// AutoscalePool is the autoscaling executor: a worker pool that grows
// on sustained queue-depth pressure and shrinks back when the queue
// goes idle, within [Min, Max], with hysteresis on both edges. Every
// decision is instrumented — the pool-size gauge moves, and a scale
// event counter labelled with the decision's direction and reason
// increments — so a /metrics scrape tells the full scaling story.
//
// Scaling is a performance decision only: job results are a pure
// function of the scenario spec, so any worker count produces
// byte-identical outputs (TestAutoscalerResultsByteIdentical holds the
// pool to that).
type AutoscalePool struct {
	cfg     AutoscaleConfig
	queue   <-chan *Job
	run     func(*Job)
	metrics *obs.ServiceMetrics

	// size is the commanded worker count, mirrored to the PoolSize
	// gauge; atomic because Workers() races the control loop.
	size atomic.Int64
	// quit carries one token per scale-down decision; the first worker
	// to see one (between jobs) exits. Buffered to Max so the control
	// loop never blocks on a busy pool.
	quit    chan struct{}
	stopCtl chan struct{}
	wg      sync.WaitGroup // workers
	ctlWg   sync.WaitGroup // control loop
}

// NewAutoscalePool returns an autoscaling executor with cfg's zero
// fields defaulted.
func NewAutoscalePool(cfg AutoscaleConfig) *AutoscalePool {
	cfg = cfg.withDefaults()
	return &AutoscalePool{
		cfg:     cfg,
		quit:    make(chan struct{}, cfg.Max),
		stopCtl: make(chan struct{}),
	}
}

// Start launches Min workers and the control loop.
func (p *AutoscalePool) Start(queue <-chan *Job, run func(*Job), metrics *obs.ServiceMetrics) {
	p.queue, p.run, p.metrics = queue, run, metrics
	p.size.Store(int64(p.cfg.Min))
	metrics.PoolSize.Set(int64(p.cfg.Min))
	for i := 0; i < p.cfg.Min; i++ {
		p.spawn()
	}
	p.ctlWg.Add(1)
	go p.control()
}

// spawn adds one worker. Workers exit when the queue closes or when
// they pick up a scale-down token between jobs — never mid-job.
func (p *AutoscalePool) spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.quit:
				return
			case job, ok := <-p.queue:
				if !ok {
					return
				}
				p.run(job)
			}
		}
	}()
}

// control samples the queue depth every Interval and applies the
// scaler's decisions until Wait stops it.
func (p *AutoscalePool) control() {
	defer p.ctlWg.Done()
	ticker := time.NewTicker(p.cfg.Interval)
	defer ticker.Stop()
	st := newScaler(p.cfg)
	for {
		select {
		case <-p.stopCtl:
			return
		case <-ticker.C:
			delta, _ := st.observe(len(p.queue))
			switch delta {
			case +1:
				p.spawn()
				p.size.Store(int64(st.size))
				p.metrics.PoolSize.Set(int64(st.size))
				p.metrics.ScaleUps.Inc()
			case -1:
				// Buffered to Max, and tokens only outnumber workers
				// transiently, so this never blocks; the default arm is
				// pure defence.
				select {
				case p.quit <- struct{}{}:
				default:
				}
				p.size.Store(int64(st.size))
				p.metrics.PoolSize.Set(int64(st.size))
				p.metrics.ScaleDowns.Inc()
			}
		}
	}
}

// Wait stops the control loop and blocks until every worker has
// exited (the queue must be closed first).
func (p *AutoscalePool) Wait() {
	close(p.stopCtl)
	p.ctlWg.Wait()
	p.wg.Wait()
}

// Workers returns the commanded worker count.
func (p *AutoscalePool) Workers() int { return int(p.size.Load()) }
