package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"beepmis/internal/scenario"
)

// maxSpecBytes bounds a submission body; a scenario spec is a small
// document, so anything larger is a mistake or an attack.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/scenarios             submit a spec (JSON body)
//	GET  /v1/scenarios             list jobs
//	GET  /v1/scenarios/{id}        job status
//	GET  /v1/scenarios/{id}/result result JSON (the cached report bytes)
//	GET  /v1/scenarios/{id}/events progress stream (server-sent events)
//	GET  /v1/healthz               liveness + pool stats (always 200 while serving)
//	GET  /v1/readyz                readiness: 503 once shutdown has begun
//
// Submissions return 202 with the job snapshot (200 on a cache hit),
// 400 on an invalid spec, and 429 when the queue is full — the
// backpressure signal; clients should retry with backoff.
//
// Liveness and readiness are deliberately split: a draining instance is
// alive (in-flight jobs are still finishing, results still servable)
// but not ready (new submissions would be refused), so an orchestrator
// should stop routing to it without killing it.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", m.handleSubmit)
	mux.HandleFunc("GET /v1/scenarios", m.handleList)
	mux.HandleFunc("GET /v1/scenarios/{id}", m.handleStatus)
	mux.HandleFunc("GET /v1/scenarios/{id}/result", m.handleResult)
	mux.HandleFunc("GET /v1/scenarios/{id}/events", m.handleEvents)
	mux.HandleFunc("GET /v1/healthz", m.handleHealth)
	mux.HandleFunc("GET /v1/readyz", m.handleReady)
	return mux
}

// submitResponse is the submission reply: the job snapshot plus whether
// the result cache (or an in-flight duplicate) absorbed the request.
type submitResponse struct {
	JobView
	Cached bool `json:"cached"`
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	compiled, err := scenario.ParseCompiledBytes(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	job, cached, err := m.Submit(compiled)
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{JobView: m.View(job), Cached: cached})
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Jobs())
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, m.View(job))
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	view := m.View(job)
	switch view.Status {
	case StatusDone:
		result, _ := m.Result(job)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case StatusFailed:
		writeJSON(w, http.StatusUnprocessableEntity, view)
	default:
		// Not finished: tell pollers where things stand.
		writeJSON(w, http.StatusConflict, view)
	}
}

// handleEvents streams the job's progress as server-sent events: the
// buffered history first, then live events, then a terminal "status"
// event carrying the job snapshot. The stream ends when the job
// finishes or the client disconnects.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	history, live := m.Subscribe(job)
	defer m.Unsubscribe(job, live)
	for _, e := range history {
		if err := writeSSE(w, "progress", e); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case e, open := <-live:
			if !open {
				// Job finished (or was finished all along): close with
				// the terminal snapshot.
				_ = writeSSE(w, "status", m.View(job))
				flusher.Flush()
				return
			}
			if err := writeSSE(w, "progress", e); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (m *Manager) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.StatsNow())
}

// readyResponse is the readiness body.
type readyResponse struct {
	Ready bool `json:"ready"`
}

func (m *Manager) handleReady(w http.ResponseWriter, r *http.Request) {
	if !m.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Ready: false})
		return
	}
	writeJSON(w, http.StatusOK, readyResponse{Ready: true})
}

// writeSSE emits one server-sent event with a JSON data payload.
func writeSSE(w io.Writer, event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
