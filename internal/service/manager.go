// Package service is the long-lived layer over the scenario runner: a
// bounded job pool, a deduplicating result cache, and an HTTP API
// (http.go) that serves declarative workloads to remote clients.
//
// The cache is sound because the whole stack below it is deterministic:
// a scenario's content hash (engine/shards/workers stripped, defaults
// applied) fully determines the report bytes, so identical submissions
// — whether concurrent (they coalesce onto the running job) or repeated
// (they hit the finished entry) — are served one execution's result.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"beepmis/internal/obs"
	"beepmis/internal/scenario"
)

// JobStatus is a job's lifecycle position.
type JobStatus string

const (
	// StatusQueued: admitted, waiting for a pool worker.
	StatusQueued JobStatus = "queued"
	// StatusRunning: executing on a pool worker.
	StatusRunning JobStatus = "running"
	// StatusDone: finished; result bytes cached.
	StatusDone JobStatus = "done"
	// StatusFailed: execution failed; the error is cached (failures of
	// a validated spec are deterministic too — re-running would fail
	// identically).
	StatusFailed JobStatus = "failed"
)

// ErrBusy is returned by Submit when the queue is full; HTTP maps it to
// 429 Too Many Requests.
var ErrBusy = errors.New("service: queue full, try again later")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("service: shutting down")

// Job is one cached scenario execution, keyed by the scenario hash.
// All mutable fields are guarded by the owning Manager's mutex.
type Job struct {
	// ID is the scenario content hash (hex SHA-256).
	ID string
	// Name is the spec's free-form label (informational).
	Name string

	status    JobStatus
	compiled  *scenario.Compiled
	result    []byte // canonical report bytes (StatusDone)
	err       string // failure message (StatusFailed)
	submitted time.Time
	started   time.Time
	finished  time.Time
	runs      int // executions (tests assert coalescing keeps this at 1)

	events []scenario.Event // bounded progress history for late subscribers
	subs   map[chan scenario.Event]struct{}
	done   chan struct{} // closed on done/failed
}

// maxEventHistory bounds the per-job progress history replayed to late
// subscribers; beyond it the oldest events are dropped (the terminal
// status is carried by the job itself, never by history).
const maxEventHistory = 1024

// JobView is an immutable snapshot of a job for JSON responses. The
// original fields are byte-compatible across versions; Runs/QueueMs/
// RunMs are additive (omitted at their zero values, so pre-existing
// responses serialise identically).
type JobView struct {
	ID        string    `json:"id"`
	Name      string    `json:"name,omitempty"`
	Status    JobStatus `json:"status"`
	Error     string    `json:"error,omitempty"`
	Units     int       `json:"units"`
	Trials    int       `json:"trials"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	// Runs counts executions of this job (coalescing keeps it at 1; a
	// larger value means eviction and resubmission re-executed it).
	Runs int `json:"runs,omitempty"`
	// QueueMs is the submit→start wall time in milliseconds, present
	// once the job has started; RunMs is start→finish, present once it
	// has finished.
	QueueMs float64 `json:"queue_ms,omitempty"`
	RunMs   float64 `json:"run_ms,omitempty"`
}

// Options configures a Manager. Zero values get sensible defaults.
type Options struct {
	// Workers is the job pool size; default 1 (scenarios parallelise
	// internally via their trial pool, so one job per core-set is the
	// usual deployment).
	Workers int
	// QueueCap bounds the jobs waiting for a worker; a full queue
	// rejects submissions with ErrBusy. Default 64.
	QueueCap int
	// TrialWorkers overrides every spec's trial pool bound when > 0
	// (operators use it to stop one greedy spec from monopolising the
	// machine).
	TrialWorkers int
	// MaxJobs bounds how many jobs (and their cached results) are
	// retained; default 1024. Beyond it, the oldest *finished* jobs
	// are evicted — queued and running jobs are never evicted, so at
	// saturation the cache shrinks to the active set plus the newest
	// results. An evicted scenario simply re-executes on resubmission;
	// determinism guarantees the same bytes.
	MaxJobs int
	// Autoscale, when non-nil, replaces the fixed worker pool with the
	// autoscaling executor: the pool grows towards Autoscale.Max on
	// sustained queue-depth pressure and shrinks back to Autoscale.Min
	// when the queue idles (Workers is ignored; set Autoscale.Min
	// instead). Results are unaffected — worker count is a performance
	// knob — but wall-clock capacity follows load.
	Autoscale *AutoscaleConfig
	// Executor overrides the pool strategy outright (the seam a
	// cluster backend plugs into). When set, Workers and Autoscale are
	// ignored.
	Executor Executor
	// Metrics receives the manager's telemetry (queue depth, latency
	// histograms, cache and subscriber counters). Nil gets a private
	// bundle, so the instrumentation points never branch; pass one to
	// expose it on a registry.
	Metrics *obs.ServiceMetrics
	// EngineMetrics, when non-nil, is handed to every scenario run so
	// engine-level instrumentation (per-phase timing, frontier sizes)
	// aggregates across all jobs the manager executes.
	EngineMetrics *obs.EngineMetrics
}

// Manager owns the job queue and the result cache; its Executor owns
// the workers that drain the queue.
type Manager struct {
	opts    Options
	metrics *obs.ServiceMetrics
	exec    Executor

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	closed   bool
	draining bool

	queue  chan *Job
	ctx    context.Context
	cancel context.CancelFunc

	// testHookBeforeRun, when non-nil, runs on the worker goroutine
	// before each execution — tests use it to hold a job in
	// StatusRunning while concurrent submissions coalesce onto it.
	testHookBeforeRun func(*Job)
}

// New starts a Manager's worker pool: Options.Executor if set, the
// autoscaling pool if Options.Autoscale is set, the fixed pool of
// Options.Workers otherwise.
func New(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1024
	}
	if opts.Metrics == nil {
		opts.Metrics = &obs.ServiceMetrics{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:    opts,
		metrics: opts.Metrics,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, opts.QueueCap),
		ctx:     ctx,
		cancel:  cancel,
	}
	switch {
	case opts.Executor != nil:
		m.exec = opts.Executor
	case opts.Autoscale != nil:
		m.exec = NewAutoscalePool(*opts.Autoscale)
	default:
		m.exec = NewFixedPool(opts.Workers)
	}
	m.exec.Start(m.queue, m.execute, m.metrics)
	return m
}

// Submit admits a compiled scenario. The bool reports a cache hit:
// true means the spec's hash matched an existing job (finished or in
// flight) and no new execution was scheduled. A full queue returns
// ErrBusy and caches nothing.
func (m *Manager) Submit(compiled *scenario.Compiled) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.draining {
		return nil, false, ErrClosed
	}
	if job, ok := m.jobs[compiled.Hash]; ok {
		if job.status == StatusDone || job.status == StatusFailed {
			m.metrics.CacheHits.Inc()
		} else {
			m.metrics.Coalesced.Inc()
		}
		return job, true, nil
	}
	job := &Job{
		ID:        compiled.Hash,
		Name:      compiled.Spec.Name,
		status:    StatusQueued,
		compiled:  compiled,
		submitted: time.Now(),
		subs:      make(map[chan scenario.Event]struct{}),
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		m.metrics.Rejected.Inc()
		return nil, false, ErrBusy
	}
	m.jobs[job.ID] = job
	m.order = append(m.order, job.ID)
	m.metrics.CacheMisses.Inc()
	m.metrics.QueueDepth.Add(1)
	// Submissions are serialised under m.mu, so the check-then-set on
	// the high-water gauge cannot lose an update.
	if depth := m.metrics.QueueDepth.Value(); depth > m.metrics.QueueHighWater.Value() {
		m.metrics.QueueHighWater.Set(depth)
	}
	m.evictLocked()
	return job, false, nil
}

// evictLocked drops the oldest finished jobs until the retention bound
// holds. Queued/running jobs are skipped — they hold queue slots and
// subscribers — so the map can transiently exceed MaxJobs by the
// active-set size, which QueueCap and Workers already bound.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.opts.MaxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		job := m.jobs[id]
		terminal := job.status == StatusDone || job.status == StatusFailed
		if len(m.jobs) > m.opts.MaxJobs && terminal {
			delete(m.jobs, id)
			m.metrics.Evictions.Inc()
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Job returns the job with the given id (the scenario hash).
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	return job, ok
}

// Jobs lists job snapshots in submission order.
func (m *Manager) Jobs() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	views := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		views = append(views, m.viewLocked(m.jobs[id]))
	}
	return views
}

// View returns a snapshot of the job.
func (m *Manager) View(job *Job) JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked(job)
}

func (m *Manager) viewLocked(job *Job) JobView {
	trials := job.compiled.Spec.Trials * len(job.compiled.Units)
	view := JobView{
		ID:        job.ID,
		Name:      job.Name,
		Status:    job.status,
		Error:     job.err,
		Units:     len(job.compiled.Units),
		Trials:    trials,
		Submitted: job.submitted,
		Started:   job.started,
		Finished:  job.finished,
		Runs:      job.runs,
	}
	if !job.started.IsZero() {
		view.QueueMs = float64(job.started.Sub(job.submitted).Nanoseconds()) / 1e6
		if !job.finished.IsZero() {
			view.RunMs = float64(job.finished.Sub(job.started).Nanoseconds()) / 1e6
		}
	}
	return view
}

// Result returns the cached report bytes, or false until StatusDone.
func (m *Manager) Result(job *Job) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if job.status != StatusDone {
		return nil, false
	}
	return job.result, true
}

// Done returns a channel closed when the job reaches a terminal status.
func (m *Manager) Done(job *Job) <-chan struct{} { return job.done }

// Subscribe attaches a progress listener: it returns the event history
// so far (replayed in order) and a channel carrying subsequent events,
// which is closed when the job finishes. A subscriber that falls more
// than its buffer behind loses intermediate events (terminal state is
// never lost — it travels via Done/status, not via events). Cancel with
// Unsubscribe.
func (m *Manager) Subscribe(job *Job) ([]scenario.Event, <-chan scenario.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	history := append([]scenario.Event(nil), job.events...)
	ch := make(chan scenario.Event, 256)
	if job.status == StatusDone || job.status == StatusFailed {
		close(ch)
		return history, ch
	}
	job.subs[ch] = struct{}{}
	m.metrics.Subscribers.Add(1)
	return history, ch
}

// Unsubscribe detaches a listener registered with Subscribe. Calling it
// after the job finished (finish already closed and detached every
// subscriber) is a harmless no-op — the SSE handler always defers it.
func (m *Manager) Unsubscribe(job *Job, ch <-chan scenario.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for sub := range job.subs {
		if (<-chan scenario.Event)(sub) == ch {
			delete(job.subs, sub)
			close(sub)
			m.metrics.Subscribers.Add(-1)
			return
		}
	}
}

// Ready reports whether the manager accepts submissions — false the
// moment Drain or Close begins. The /v1/readyz endpoint serves it, so
// a load balancer stops routing to a draining instance while liveness
// (/v1/healthz) stays green until the process actually exits.
func (m *Manager) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed && !m.draining
}

// Drain marks the manager not-ready without yet touching the pool:
// readiness flips immediately (new submissions get ErrClosed, the
// readyz probe 503s) while queued and running jobs keep executing and
// every result stays servable. It is the first step of a graceful
// shutdown — call Close afterwards to actually stop the workers.
// Idempotent.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Metrics returns the manager's telemetry bundle (the one passed in
// Options, or the private default).
func (m *Manager) Metrics() *obs.ServiceMetrics { return m.metrics }

// Close drains the pool: no new submissions are admitted, queued jobs
// that have not started are failed with ErrClosed, and the context's
// deadline bounds the wait for running jobs (whose trial loops observe
// the cancellation between trials).
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	// Fail everything still waiting in the queue.
	for job := range m.queue {
		m.finish(job, nil, ErrClosed)
	}

	done := make(chan struct{})
	go func() {
		m.exec.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancel()
		return nil
	case <-ctx.Done():
		// Deadline hit: cancel running scenarios and wait for the
		// workers to observe it.
		m.cancel()
		<-done
		return fmt.Errorf("service: shutdown deadline hit, running jobs cancelled: %w", ctx.Err())
	}
}

// execute is the function every executor's workers hand dequeued jobs
// to. Once Close has begun, dequeued jobs fail fast instead of
// starting — Close's drain loop consumes the same channel, and
// whichever side wins the race must apply the same policy. (Draining
// alone does not fail jobs: Drain stops admissions, not execution.)
func (m *Manager) execute(job *Job) {
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed || m.ctx.Err() != nil {
		m.finish(job, nil, ErrClosed)
		return
	}
	m.run(job)
}

// run executes one job and caches its outcome.
func (m *Manager) run(job *Job) {
	m.mu.Lock()
	job.status = StatusRunning
	job.started = time.Now()
	job.runs++
	m.metrics.QueueDepth.Add(-1)
	m.metrics.QueueLatencyNs.Observe(job.started.Sub(job.submitted).Nanoseconds())
	hook := m.testHookBeforeRun
	m.mu.Unlock()
	if hook != nil {
		hook(job)
	}

	opts := scenario.RunOptions{
		Workers:  m.opts.TrialWorkers,
		Progress: func(e scenario.Event) { m.publish(job, e) },
		Metrics:  m.opts.EngineMetrics,
	}
	report, err := scenario.Run(m.ctx, job.compiled, opts)
	if err != nil {
		m.finish(job, nil, err)
		return
	}
	bytes, err := report.JSON()
	if err != nil {
		m.finish(job, nil, err)
		return
	}
	m.finish(job, bytes, nil)
}

// publish appends an event to the job's history and fans it out.
func (m *Manager) publish(job *Job, e scenario.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	job.events = append(job.events, e)
	if len(job.events) > maxEventHistory {
		job.events = job.events[len(job.events)-maxEventHistory:]
	}
	for sub := range job.subs {
		select {
		case sub <- e:
		default: // slow subscriber: drop rather than stall the run
			m.metrics.EventsDropped.Inc()
		}
	}
}

// finish moves the job to its terminal status and releases waiters.
func (m *Manager) finish(job *Job, result []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if job.status == StatusDone || job.status == StatusFailed {
		return
	}
	if job.status == StatusQueued {
		// Failed without ever starting (shutdown drain): release the
		// queue-depth slot run() would have.
		m.metrics.QueueDepth.Add(-1)
	}
	if err != nil {
		job.status = StatusFailed
		job.err = err.Error()
		m.metrics.JobsFailed.Inc()
	} else {
		job.status = StatusDone
		job.result = result
		m.metrics.JobsDone.Inc()
	}
	job.finished = time.Now()
	if !job.started.IsZero() {
		m.metrics.RunLatencyNs.Observe(job.finished.Sub(job.started).Nanoseconds())
	}
	m.metrics.Subscribers.Add(-int64(len(job.subs)))
	for sub := range job.subs {
		close(sub)
	}
	job.subs = make(map[chan scenario.Event]struct{})
	close(job.done)
}

// Stats summarises the manager for the health endpoint.
type Stats struct {
	Jobs    int            `json:"jobs"`
	Queued  int            `json:"queued"`
	Running int            `json:"running"`
	Done    int            `json:"done"`
	Failed  int            `json:"failed"`
	Workers int            `json:"workers"`
	Queue   map[string]int `json:"queue"`
}

// StatsNow snapshots the manager.
func (m *Manager) StatsNow() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Jobs:    len(m.jobs),
		Workers: m.exec.Workers(),
		Queue:   map[string]int{"cap": m.opts.QueueCap, "len": len(m.queue)},
	}
	for _, job := range m.jobs {
		switch job.status {
		case StatusQueued:
			s.Queued++
		case StatusRunning:
			s.Running++
		case StatusDone:
			s.Done++
		case StatusFailed:
			s.Failed++
		}
	}
	return s
}
