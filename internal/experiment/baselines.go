package experiment

import (
	"fmt"
	"sort"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/stats"
)

// runLuby compares Luby's algorithm (both variants) with the feedback
// algorithm on the Figure 3 workload. Both are O(log n) in rounds; the
// point of the comparison — made in §1 and §5 of the paper — is that the
// feedback algorithm matches Luby's round complexity while using one-bit
// messages and no degree knowledge. Message bits per node are recorded in
// the notes.
func runLuby(cfg Config) (*Result, error) {
	ns := cfg.sizes(intRange(100, 1000, 100))
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "luby",
		Title:  "Luby vs feedback: rounds on G(n,1/2)",
		XLabel: "n",
		YLabel: "rounds",
	}

	// Luby variants (message-passing, run directly on the graph).
	variants := []mis.LubyVariant{mis.LubyPermutation, mis.LubyProbability}
	totalBits := map[string]float64{}
	for vi, variant := range variants {
		series := Series{Name: variant.String()}
		for si, n := range ns {
			rounds := make([]float64, trials)
			bitSlots := make([]float64, trials)
			err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
				g := graph.GNP(n, 0.5, master.Stream(trialKey(vi*1000+si, trial, 1)))
				lr, err := mis.Luby(g, variant, master.Stream(trialKey(vi*1000+si, trial, 2)))
				if err != nil {
					return fmt.Errorf("%v n=%d: %w", variant, n, err)
				}
				if err := graph.VerifyMIS(g, lr.InMIS); err != nil {
					return fmt.Errorf("%v n=%d: invalid MIS: %w", variant, n, err)
				}
				rounds[trial] = float64(lr.Rounds)
				bitSlots[trial] = float64(lr.Bits) / float64(n)
				return nil
			})
			if err != nil {
				return nil, err
			}
			bits := 0.0
			for _, b := range bitSlots {
				bits += b
			}
			series.Points = append(series.Points, Point{
				X:      float64(n),
				Mean:   stats.Mean(rounds),
				Std:    stats.StdDev(rounds),
				Trials: trials,
			})
			if n == ns[len(ns)-1] {
				totalBits[variant.String()] = bits / float64(trials)
			}
		}
		res.Series = append(res.Series, series)
	}

	// Feedback, via the simulator.
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}
	series := Series{Name: "feedback"}
	maxN := ns[len(ns)-1]
	for si, n := range ns {
		n := n
		pt, _, err := sweepPoint(cfg, master, 9000+si, trials, 0, factory, bulk, gnpHalf(n), roundsMetric)
		if err != nil {
			return nil, fmt.Errorf("feedback n=%d: %w", n, err)
		}
		pt.X = float64(n)
		series.Points = append(series.Points, pt)
		if n == maxN {
			// One extra pass for the bit accounting note: each beep is
			// one bit on each incident channel.
			beepsPt, _, err := sweepPoint(cfg, master, 9500+si, trials, 0, factory, bulk, gnpHalf(n), beepsMetric)
			if err != nil {
				return nil, err
			}
			totalBits["feedback"] = beepsPt.Mean
		}
	}
	res.Series = append(res.Series, series)

	// Map iteration order is randomised; sort so the rendered notes are a
	// pure function of the seed like everything else.
	names := make([]string, 0, len(totalBits))
	for name := range totalBits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res.Notes = append(res.Notes, fmt.Sprintf("%s: ≈%.1f message bits per node at n=%d (per incident channel for beeps)", name, totalBits[name], maxN))
	}
	appendFitNotes(res, "luby-permutation", "luby-probability", "feedback")
	return res, nil
}
