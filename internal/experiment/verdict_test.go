package experiment

import "testing"

func TestVerdictPassesQuick(t *testing.T) {
	checks, err := Verdict(Config{Seed: 3, Trials: 4, MaxN: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 5 {
		t.Fatalf("got %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("claim failed: %s (%s)", c.Name, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("claim %s has no detail", c.Name)
		}
	}
}
