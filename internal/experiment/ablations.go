package experiment

import (
	"errors"
	"fmt"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/stats"
)

// runAblateFactor sweeps the feedback update factor away from the
// paper's 2. §6 claims the analysis "can be adapted to a wide range of
// different values for these factors"; this measures the constant-factor
// cost of that freedom on G(500, 1/2).
func runAblateFactor(cfg Config) (*Result, error) {
	n := 500
	if cfg.MaxN > 0 && cfg.MaxN < n {
		n = cfg.MaxN
	}
	factors := []float64{1.25, 1.5, 2, 3, 4}
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "ablate-factor",
		Title:  fmt.Sprintf("feedback update factor sweep on G(%d,1/2)", n),
		XLabel: "factor",
		YLabel: "time steps",
	}
	series := Series{Name: "feedback"}
	for fi, factor := range factors {
		fbCfg := mis.FeedbackConfig{Factor: factor}
		factory, err := mis.NewFeedback(fbCfg)
		if err != nil {
			return nil, err
		}
		bulk, err := mis.NewFeedbackBulk(fbCfg)
		if err != nil {
			return nil, err
		}
		pt, censored, err := sweepPoint(cfg, master, fi, trials, 0, factory, bulk, gnpHalf(n), roundsMetric)
		if err != nil {
			return nil, fmt.Errorf("factor %v: %w", factor, err)
		}
		if censored > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("factor %v: %d/%d trials censored", factor, censored, trials))
		}
		pt.X = factor
		series.Points = append(series.Points, pt)
	}
	res.Series = append(res.Series, series)
	res.Notes = append(res.Notes, "paper §6: any factor > 1 retains O(log n); expect a shallow optimum near 2")
	return res, nil
}

// runAblateInit exercises §6's claim that initial probabilities "may
// vary from node to node" without significant impact: uniform p₀ of 1/2,
// 1/16 and 1/64, plus a heterogeneous assignment where each node draws
// p₀ = 2^-(1 + id mod 6).
func runAblateInit(cfg Config) (*Result, error) {
	ns := cfg.sizes(intRange(100, 500, 100))
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "ablate-init",
		Title:  "feedback initial-probability robustness on G(n,1/2)",
		XLabel: "n",
		YLabel: "time steps",
	}
	uniform := []struct {
		name string
		p0   float64
	}{
		{"p0=1/2 (paper)", 0.5},
		{"p0=1/16", 1.0 / 16},
		{"p0=1/64", 1.0 / 64},
	}
	for ui, u := range uniform {
		fbCfg := mis.FeedbackConfig{InitialP: u.p0}
		factory, err := mis.NewFeedback(fbCfg)
		if err != nil {
			return nil, err
		}
		bulk, err := mis.NewFeedbackBulk(fbCfg)
		if err != nil {
			return nil, err
		}
		series := Series{Name: u.name}
		for si, n := range ns {
			pt, _, err := sweepPoint(cfg, master, ui*1000+si, trials, 0, factory, bulk, gnpHalf(n), roundsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", u.name, n, err)
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}

	hetero, err := mis.NewFeedbackHeterogeneous(mis.FeedbackConfig{}, func(id int) float64 {
		shift := uint(1 + id%6)
		return 1 / float64(int(1)<<shift)
	})
	if err != nil {
		return nil, err
	}
	series := Series{Name: "p0 random per node"}
	for si, n := range ns {
		// Heterogeneous initials have no columnar kernel: nil bulk
		// exercises the per-node fallback path.
		pt, _, err := sweepPoint(cfg, master, 9000+si, trials, 0, hetero, nil, gnpHalf(n), roundsMetric)
		if err != nil {
			return nil, fmt.Errorf("hetero n=%d: %w", n, err)
		}
		pt.X = float64(n)
		series.Points = append(series.Points, pt)
	}
	res.Series = append(res.Series, series)
	res.Notes = append(res.Notes, "paper §6: performance is insensitive to initial values bounded away from zero")
	return res, nil
}

// runAblateLoss goes beyond the paper: beeps are dropped independently
// per (beeper, listener) pair with the swept probability. Loss slows
// convergence mildly but — more importantly — can break *independence*
// (two mutually-deaf neighbours may both join), which the violation-rate
// series quantifies. Join announcements stay reliable, so termination
// and domination are unaffected.
func runAblateLoss(cfg Config) (*Result, error) {
	n := 300
	if cfg.MaxN > 0 && cfg.MaxN < n {
		n = cfg.MaxN
	}
	losses := []float64{0, 0.02, 0.05, 0.1, 0.2}
	trials := cfg.trials(100)
	master := rng.New(cfg.Seed)
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablate-loss",
		Title:  fmt.Sprintf("feedback under beep loss on G(%d,1/2)", n),
		XLabel: "loss probability",
		YLabel: "time steps / violation %",
	}
	// The word-parallel engines refuse BeepLoss (loss draws happen per
	// edge), so a bitset or columnar pin cannot be honored here; say so
	// instead of silently substituting, and let EngineAuto fall back to
	// the scalar exchange on every lossy point.
	engine := cfg.Engine
	if engine == sim.EngineBitset || engine == sim.EngineColumnar {
		res.Notes = append(res.Notes, fmt.Sprintf("engine pin %q ignored: lossy exchanges require the scalar engine", engine))
		engine = sim.EngineAuto
	}
	roundsSeries := Series{Name: "time steps"}
	violSeries := Series{Name: "independence violations (%)"}
	for li, loss := range losses {
		rounds := make([]float64, trials)
		violated := make([]bool, trials)
		err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
			g := graph.GNP(n, 0.5, master.Stream(trialKey(li, trial, 1)))
			opts := cfg.simOpts(bulk)
			opts.Engine = engine
			opts.BeepLoss = loss
			r, err := sim.Run(g, factory, master.Stream(trialKey(li, trial, 2)), opts)
			if err != nil {
				if errors.Is(err, sim.ErrTooManyRounds) {
					rounds[trial] = float64(r.Rounds)
					return nil
				}
				return fmt.Errorf("loss %v: %w", loss, err)
			}
			rounds[trial] = float64(r.Rounds)
			violated[trial] = !graph.IsIndependent(g, r.InMIS)
			return nil
		})
		if err != nil {
			return nil, err
		}
		violations := countTrue(violated)
		roundsSeries.Points = append(roundsSeries.Points, Point{
			X: loss, Mean: stats.Mean(rounds), Std: stats.StdDev(rounds), Trials: trials,
		})
		violSeries.Points = append(violSeries.Points, Point{
			X: loss, Mean: 100 * float64(violations) / float64(trials), Trials: trials,
		})
	}
	res.Series = append(res.Series, roundsSeries, violSeries)
	res.Notes = append(res.Notes, "loss on the first exchange only; join announcements reliable (see DESIGN.md)")
	return res, nil
}

// runAblateNoise is the fault-layer counterpart of runAblateLoss: loss
// is drawn per (listener, round) through internal/fault's noisy channel
// rather than per edge, which every engine executes — so the sweep runs
// word-parallel (columnar/sparse under EngineAuto) instead of being
// pinned to the scalar walk. The workload is a bounded-degree G(n, 8/n)
// — the wireless/biological regime the paper's robustness narrative is
// about; per-listener noise erases a listener's whole aggregate signal,
// so on dense graphs even tiny loss rates shatter independence (the
// expected breach count scales like m·loss²), which is a property of
// the channel model, not of the algorithm. Alongside mean rounds it
// reports the p50/p95/p99 round tail, rounds-to-stable-MIS, the mean
// per-trial breach count observed by fault.Verifier *during* the run,
// and the fraction of trials that stay clean throughout — the
// robustness table of EXPERIMENTS.md.
func runAblateNoise(cfg Config) (*Result, error) {
	n := 300
	if cfg.MaxN > 0 && cfg.MaxN < n {
		n = cfg.MaxN
	}
	losses := []float64{0, 0.01, 0.02, 0.05, 0.1}
	const spurious = 0.01
	trials := cfg.trials(100)
	master := rng.New(cfg.Seed)
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "ablate-noise",
		Title:  fmt.Sprintf("feedback under per-listener channel noise on G(%d, 8/n), spurious=%v", n, spurious),
		XLabel: "loss probability",
		YLabel: "time steps / violations / clean %",
	}
	roundsSeries := Series{Name: "time steps"}
	stableSeries := Series{Name: "rounds to stable MIS"}
	violSeries := Series{Name: "violations per trial"}
	cleanSeries := Series{Name: "clean trials (%)"}
	for li, loss := range losses {
		rounds := make([]float64, trials)
		stable := make([]float64, trials)
		breaches := make([]float64, trials)
		clean := make([]bool, trials)
		err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
			g := graph.GNP(n, 8/float64(n), master.Stream(trialKey(li, trial, 1)))
			opts := cfg.simOpts(bulk)
			// The sweep owns the channel-noise axis; a user-supplied
			// -faults model contributes its wake schedule and outages so
			// the composition is measured rather than silently dropped.
			spec := fault.Spec{Loss: loss, Spurious: spurious}
			if base := cfg.Faults; base != nil {
				spec.Wake = base.Wake
				spec.Outages = base.Outages
			}
			opts.Faults = &spec
			vf := fault.NewVerifier(g)
			opts.OnMISDelta = vf.ObserveRound
			r, err := sim.Run(g, factory, master.Stream(trialKey(li, trial, 2)), opts)
			if err != nil && !errors.Is(err, sim.ErrTooManyRounds) {
				return fmt.Errorf("loss %v: %w", loss, err)
			}
			rounds[trial] = float64(r.Rounds)
			stable[trial] = float64(vf.LastChangeRound())
			breaches[trial] = float64(vf.ViolationCount())
			clean[trial] = vf.ViolationCount() == 0
			return nil
		})
		if err != nil {
			return nil, err
		}
		roundsSeries.Points = append(roundsSeries.Points, Point{
			X: loss, Mean: stats.Mean(rounds), Std: stats.StdDev(rounds), Trials: trials,
		})
		stableSeries.Points = append(stableSeries.Points, Point{
			X: loss, Mean: stats.Mean(stable), Std: stats.StdDev(stable), Trials: trials,
		})
		violSeries.Points = append(violSeries.Points, Point{
			X: loss, Mean: stats.Mean(breaches), Std: stats.StdDev(breaches), Trials: trials,
		})
		cleanSeries.Points = append(cleanSeries.Points, Point{
			X: loss, Mean: 100 * float64(countTrue(clean)) / float64(trials), Trials: trials,
		})
		if tail, err := stats.Tails(rounds); err == nil {
			res.Notes = append(res.Notes, fmt.Sprintf("loss %v: rounds p50=%.0f p95=%.0f p99=%.0f", loss, tail.P50, tail.P95, tail.P99))
		}
	}
	res.Series = append(res.Series, roundsSeries, stableSeries, violSeries, cleanSeries)
	if cfg.Faults != nil && (cfg.Faults.Wake != nil || len(cfg.Faults.Outages) > 0) {
		res.Notes = append(res.Notes, "composed with the -faults wake/outage schedule (the sweep owns the loss/spurious axis)")
	}
	res.Notes = append(res.Notes,
		"per-listener noise (internal/fault): one draw per (listener, round) from its own stream — runs on every engine",
		"violations counted per round by fault.Verifier, not just at termination",
		"expected breaches grow like m·loss²: robustness is a property of (graph degree, loss rate), not of the schedule")
	return res, nil
}

// runAblateFloor ablates the probability floor (MinP) on the Theorem 1
// clique family. The paper's algorithm has no floor; a floor that is too
// high prevents nodes in large cliques from backing off far enough, so
// unique-beeper events become rare and convergence stalls — demonstrated
// here by censoring at a round cap.
func runAblateFloor(cfg Config) (*Result, error) {
	ks := []int{4, 8, 12}
	var ns []int
	for _, k := range ks {
		ns = append(ns, k*k*(k+1)/2)
	}
	ns = cfg.sizes(ns)
	floors := []struct {
		name string
		minP float64
	}{
		{"no floor (paper)", 0},
		{"floor 1/64", 1.0 / 64},
		{"floor 1/8", 1.0 / 8},
	}
	trials := cfg.trials(30)
	const roundCap = 20000
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "ablate-floor",
		Title:  "probability floor on the union-of-cliques family",
		XLabel: "n",
		YLabel: fmt.Sprintf("time steps (censored at %d)", roundCap),
	}
	for fi, fl := range floors {
		fbCfg := mis.FeedbackConfig{MinP: fl.minP}
		factory, err := mis.NewFeedback(fbCfg)
		if err != nil {
			return nil, err
		}
		bulk, err := mis.NewFeedbackBulk(fbCfg)
		if err != nil {
			return nil, err
		}
		series := Series{Name: fl.name}
		for si, n := range ns {
			n := n
			pt, censored, err := sweepPoint(cfg, master, fi*1000+si, trials, roundCap, factory, bulk,
				func(*rng.Source) *graph.Graph { return graph.CliqueFamily(n) },
				roundsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", fl.name, n, err)
			}
			if censored > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s n=%d: %d/%d trials censored at %d rounds", fl.name, n, censored, trials, roundCap))
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	res.Notes = append(res.Notes, "a fixed floor must lose to growing clique sizes; the paper's floorless rule adapts")
	return res, nil
}
