package experiment

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonResult mirrors Result with explicit field tags: the JSON form is a
// contract consumed by external tooling (plotting scripts, CI
// comparisons), so field names are pinned independently of the Go names.
type jsonResult struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xLabel"`
	YLabel string       `json:"yLabel"`
	Series []jsonSeries `json:"series"`
	Notes  []string     `json:"notes,omitempty"`
}

type jsonSeries struct {
	Name      string      `json:"name"`
	Reference bool        `json:"reference,omitempty"`
	Points    []jsonPoint `json:"points"`
}

type jsonPoint struct {
	X      float64 `json:"x"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Trials int     `json:"trials"`
}

// WriteJSON writes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	out := jsonResult{
		ID:     r.ID,
		Title:  r.Title,
		XLabel: r.XLabel,
		YLabel: r.YLabel,
		Notes:  r.Notes,
	}
	for _, s := range r.Series {
		js := jsonSeries{Name: s.Name, Reference: s.Reference, Points: []jsonPoint{}}
		for _, p := range s.Points {
			js.Points = append(js.Points, jsonPoint{X: p.X, Mean: p.Mean, Std: p.Std, Trials: p.Trials})
		}
		out.Series = append(out.Series, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("encode result json: %w", err)
	}
	return nil
}

// ReadJSON parses a result previously written by WriteJSON, for tooling
// that post-processes saved runs.
func ReadJSON(r io.Reader) (*Result, error) {
	var in jsonResult
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("decode result json: %w", err)
	}
	out := &Result{
		ID:     in.ID,
		Title:  in.Title,
		XLabel: in.XLabel,
		YLabel: in.YLabel,
		Notes:  in.Notes,
	}
	for _, s := range in.Series {
		rs := Series{Name: s.Name, Reference: s.Reference}
		for _, p := range s.Points {
			rs.Points = append(rs.Points, Point{X: p.X, Mean: p.Mean, Std: p.Std, Trials: p.Trials})
		}
		out.Series = append(out.Series, rs)
	}
	return out, nil
}
