package experiment

import (
	"fmt"
	"math"
)

// Compare diffs two results of the same experiment (e.g. a saved
// baseline JSON and a fresh run) and returns human-readable findings for
// every point whose means differ by more than tolerance, expressed as a
// fraction of the baseline mean (tolerance 0.2 = 20%). Missing series or
// points are reported too. An empty return means the runs agree within
// tolerance — the CI contract for "the reproduction still reproduces".
func Compare(baseline, current *Result, tolerance float64) []string {
	var findings []string
	if baseline.ID != current.ID {
		findings = append(findings, fmt.Sprintf("experiment id differs: %q vs %q", baseline.ID, current.ID))
		return findings
	}
	if tolerance <= 0 {
		tolerance = 0.2
	}
	curSeries := make(map[string]Series, len(current.Series))
	for _, s := range current.Series {
		curSeries[s.Name] = s
	}
	for _, bs := range baseline.Series {
		cs, ok := curSeries[bs.Name]
		if !ok {
			findings = append(findings, fmt.Sprintf("series %q missing from current run", bs.Name))
			continue
		}
		curPoints := make(map[float64]Point, len(cs.Points))
		for _, p := range cs.Points {
			curPoints[p.X] = p
		}
		for _, bp := range bs.Points {
			cp, ok := curPoints[bp.X]
			if !ok {
				findings = append(findings, fmt.Sprintf("series %q: point x=%v missing from current run", bs.Name, bp.X))
				continue
			}
			denom := math.Abs(bp.Mean)
			if denom < 1e-12 {
				if math.Abs(cp.Mean) > tolerance {
					findings = append(findings, fmt.Sprintf(
						"series %q x=%v: baseline mean 0, current %v", bs.Name, bp.X, cp.Mean))
				}
				continue
			}
			rel := math.Abs(cp.Mean-bp.Mean) / denom
			if rel > tolerance {
				findings = append(findings, fmt.Sprintf(
					"series %q x=%v: mean %.3f vs baseline %.3f (%.0f%% drift > %.0f%% tolerance)",
					bs.Name, bp.X, cp.Mean, bp.Mean, 100*rel, 100*tolerance))
			}
		}
	}
	return findings
}
