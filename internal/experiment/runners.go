package experiment

import (
	"errors"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/stats"
)

// Registration of every experiment. The blank assignments run at package
// initialisation; the registry is read-only afterwards.
var (
	_ = register("fig3", "Figure 3: mean time steps on G(n,1/2), global sweep vs local feedback", runFig3)
	_ = register("fig5", "Figure 5: mean beeps per node on G(n,1/2), global sweep vs local feedback", runFig5)
	_ = register("thm1", "Theorem 1: union-of-cliques lower-bound family, preset schedules vs feedback", runThm1)
	_ = register("thm6", "Theorem 6: feedback beeps per node stay O(1) on G(n,1/2) and grids", runThm6)
	_ = register("luby", "§1 comparison: Luby's algorithm vs the feedback algorithm, rounds on G(n,1/2)", runLuby)
	_ = register("ablate-factor", "Robustness (§6): feedback update factor swept away from 2", runAblateFactor)
	_ = register("ablate-init", "Robustness (§6): non-default and per-node-random initial probabilities", runAblateInit)
	_ = register("ablate-loss", "Robustness beyond paper: beep loss — rounds and independence violations", runAblateLoss)
	_ = register("ablate-noise", "Robustness beyond paper: per-listener channel noise (fault layer, all engines) — rounds, tail percentiles, violations", runAblateNoise)
	_ = register("ablate-floor", "Design ablation: probability floor on the clique family", runAblateFloor)
)

// trials returns the effective trial count.
func (c Config) trials(paperDefault int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return paperDefault
}

// sizes filters a sweep by MaxN.
func (c Config) sizes(all []int) []int {
	if c.MaxN <= 0 {
		return all
	}
	out := make([]int, 0, len(all))
	for _, n := range all {
		if n <= c.MaxN {
			out = append(out, n)
		}
	}
	if len(out) == 0 && len(all) > 0 {
		out = append(out, all[0])
	}
	return out
}

// intRange returns lo, lo+step, ..., hi.
func intRange(lo, hi, step int) []int {
	var out []int
	for n := lo; n <= hi; n += step {
		out = append(out, n)
	}
	return out
}

// trialKeys derives disjoint rng stream keys for (size index, trial,
// purpose).
func trialKey(sizeIdx, trial, purpose int) uint64 {
	return uint64(sizeIdx)<<40 | uint64(trial)<<8 | uint64(purpose)
}

// sweepPoint runs `trials` simulations at one sweep position on the
// bounded worker pool and aggregates metric over them. gen builds the
// trial's graph; metric maps the simulation result to the measured
// quantity; bulk is the factory's columnar kernel (nil when the
// algorithm has none, falling back to per-node engines). A run that hits maxRounds is recorded at the cap (censored),
// which the callers note. Each trial draws from rng streams keyed by its
// index and writes into its own slot, so the aggregate is bit-identical
// for any worker count.
func sweepPoint(
	cfg Config,
	master *rng.Source,
	sizeIdx, trials, maxRounds int,
	factory beep.Factory,
	bulk beep.BulkFactory,
	gen func(src *rng.Source) *graph.Graph,
	metric func(res *sim.Result, g *graph.Graph) float64,
) (Point, int, error) {
	vals := make([]float64, trials)
	capped := make([]bool, trials)
	opts := cfg.simOpts(bulk)
	opts.MaxRounds = maxRounds
	err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
		g := gen(master.Stream(trialKey(sizeIdx, trial, 1)))
		res, err := sim.Run(g, factory, master.Stream(trialKey(sizeIdx, trial, 2)), opts)
		if err != nil {
			if !errors.Is(err, sim.ErrTooManyRounds) {
				return err
			}
			capped[trial] = true
		}
		vals[trial] = metric(res, g)
		return nil
	})
	if err != nil {
		return Point{}, 0, err
	}
	censored := countTrue(capped)
	return Point{
		Mean:   stats.Mean(vals),
		Std:    stats.StdDev(vals),
		Trials: trials,
	}, censored, nil
}
