package experiment

import (
	"fmt"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// runThm1 validates Theorem 1 empirically: on the union-of-cliques
// family (k copies of K_d for d = 1..k), any preset global schedule —
// here the DISC'11 sweep and the Science'11 schedule — needs time that
// grows like log²n, while the feedback algorithm stays logarithmic.
func runThm1(cfg Config) (*Result, error) {
	// k = 4..16 gives n = k²(k+1)/2 between 40 and 2176, cubically
	// spaced as in the theorem's n^(1/3) construction.
	ks := []int{4, 6, 8, 10, 12, 14, 16}
	var ns []int
	for _, k := range ks {
		ns = append(ns, k*k*(k+1)/2)
	}
	ns = cfg.sizes(ns)
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "thm1",
		Title:  "union-of-cliques family: preset schedules vs feedback",
		XLabel: "n",
		YLabel: "time steps",
	}
	algos := []struct {
		name string
		spec mis.Spec
	}{
		{"globalsweep", mis.Spec{Name: mis.NameGlobalSweep}},
		{"afek-original", mis.Spec{Name: mis.NameAfek}},
		{"feedback", mis.Spec{Name: mis.NameFeedback}},
	}
	for ai, algo := range algos {
		factory, bulk, err := mis.NewFactories(algo.spec)
		if err != nil {
			return nil, err
		}
		series := Series{Name: algo.name}
		for si, n := range ns {
			n := n
			pt, censored, err := sweepPoint(cfg, master, ai*1000+si, trials, 0, factory, bulk,
				func(*rng.Source) *graph.Graph { return graph.CliqueFamily(n) },
				roundsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", algo.name, n, err)
			}
			if censored > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s n=%d: %d/%d trials censored", algo.name, n, censored, trials))
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	appendFitNotes(res, "globalsweep", "afek-original", "feedback")
	return res, nil
}

// runThm6 validates Theorem 6 empirically: the feedback algorithm's
// expected beeps per node are bounded by a constant — around 1.1 on both
// G(n,1/2) and rectangular grids, per §5 of the paper.
func runThm6(cfg Config) (*Result, error) {
	trials := cfg.trials(200)
	master := rng.New(cfg.Seed)
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "thm6",
		Title:  "feedback beeps per node: O(1) on G(n,1/2) and grids",
		XLabel: "n",
		YLabel: "beeps/node",
	}

	gnpSizes := cfg.sizes(intRange(25, 200, 25))
	gnpSeries := Series{Name: "gnp-half"}
	for si, n := range gnpSizes {
		pt, _, err := sweepPoint(cfg, master, si, trials, 0, factory, bulk, gnpHalf(n), beepsMetric)
		if err != nil {
			return nil, fmt.Errorf("gnp n=%d: %w", n, err)
		}
		pt.X = float64(n)
		gnpSeries.Points = append(gnpSeries.Points, pt)
	}
	res.Series = append(res.Series, gnpSeries)

	// Square grids of comparable vertex counts.
	gridSeries := Series{Name: "grid"}
	var gridSizes []int
	for k := 5; k <= 14; k++ {
		gridSizes = append(gridSizes, k)
	}
	for si, k := range gridSizes {
		k := k
		if cfg.MaxN > 0 && k*k > cfg.MaxN {
			continue
		}
		pt, _, err := sweepPoint(cfg, master, 1000+si, trials, 0, factory, bulk,
			func(*rng.Source) *graph.Graph { return graph.Grid(k, k) },
			beepsMetric)
		if err != nil {
			return nil, fmt.Errorf("grid %dx%d: %w", k, k, err)
		}
		pt.X = float64(k * k)
		gridSeries.Points = append(gridSeries.Points, pt)
	}
	res.Series = append(res.Series, gridSeries)

	for _, s := range res.Series {
		lo, hi := 0.0, 0.0
		for i, p := range s.Points {
			if i == 0 || p.Mean < lo {
				lo = p.Mean
			}
			if p.Mean > hi {
				hi = p.Mean
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf("%s: beeps/node range [%.3f, %.3f] across sweep (paper: ≈1.1, flat)", s.Name, lo, hi))
	}
	return res, nil
}
