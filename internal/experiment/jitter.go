package experiment

import (
	"fmt"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

var _ = register("ablate-jitter",
	"Robustness (§6): update factors varying per node and per time step", runAblateJitter)

// runAblateJitter tests the strongest form of the paper's §6 robustness
// claim: the update factor "may vary between nodes and over time". Each
// probability adjustment draws a fresh factor uniformly from [lo, hi];
// per-node random initial probabilities are layered on top. Rounds on
// G(n,1/2) should track the fixed-factor baseline within a modest
// constant.
func runAblateJitter(cfg Config) (*Result, error) {
	ns := cfg.sizes(intRange(100, 500, 100))
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "ablate-jitter",
		Title:  "feedback with per-node, per-step random factors on G(n,1/2)",
		XLabel: "n",
		YLabel: "time steps",
	}
	variants := []struct {
		name string
		cfg  mis.VariableConfig
	}{
		{"fixed factor 2 (paper)", mis.VariableConfig{}},
		{"factor ~ U[1.5, 3]", mis.VariableConfig{FactorLo: 1.5, FactorHi: 3}},
		{"factor ~ U[1.2, 5]", mis.VariableConfig{FactorLo: 1.2, FactorHi: 5}},
		{"U[1.5,3] + random p0", mis.VariableConfig{
			FactorLo: 1.5, FactorHi: 3,
			PerNode: func(id int) float64 { return 1 / float64(int(2)<<uint(id%5)) },
		}},
	}
	for vi, variant := range variants {
		factory, err := mis.NewFeedbackVariable(variant.cfg)
		if err != nil {
			return nil, err
		}
		series := Series{Name: variant.name}
		for si, n := range ns {
			// Per-step random factors draw from the node stream inside
			// Observe; there is no columnar kernel for that, so the nil
			// bulk keeps the per-node engines.
			pt, censored, err := sweepPoint(cfg, master, vi*1000+si, trials, 0, factory, nil, gnpHalf(n), roundsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", variant.name, n, err)
			}
			if censored > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s n=%d: %d/%d censored", variant.name, n, censored, trials))
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	// Every jittered variant must still produce valid MIS outputs — a
	// direct spot-check beyond round counts.
	factory, err := mis.NewFeedbackVariable(variants[2].cfg)
	if err != nil {
		return nil, err
	}
	bad := make([]bool, trials)
	if err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
		g := graph.GNP(200, 0.5, master.Stream(trialKey(9000, trial, 1)))
		r, err := sim.Run(g, factory, master.Stream(trialKey(9000, trial, 2)), cfg.simOpts(nil))
		if err != nil {
			return err
		}
		bad[trial] = graph.VerifyMIS(g, r.InMIS) != nil
		return nil
	}); err != nil {
		return nil, err
	}
	invalid := countTrue(bad)
	res.Notes = append(res.Notes,
		fmt.Sprintf("validity spot-check at n=200 under U[1.2,5]: %d/%d invalid (must be 0)", invalid, trials),
		"paper §6: factors may vary between nodes and over time without losing O(log n)")
	return res, nil
}
