package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func sampleResult() *Result {
	return &Result{
		ID: "fig3", Title: "t", XLabel: "n", YLabel: "rounds",
		Series: []Series{
			{Name: "feedback", Points: []Point{{X: 100, Mean: 13.6, Std: 3.6, Trials: 100}}},
			{Name: "ref", Reference: true, Points: []Point{{X: 100, Mean: 44.1}}},
		},
		Notes: []string{"a note"},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := sampleResult()
	if back.ID != orig.ID || back.Title != orig.Title || len(back.Series) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if !back.Series[1].Reference {
		t.Fatal("reference flag lost")
	}
	p := back.Series[0].Points[0]
	if p.X != 100 || p.Mean != 13.6 || p.Std != 3.6 || p.Trials != 100 {
		t.Fatalf("point mangled: %+v", p)
	}
	if len(back.Notes) != 1 || back.Notes[0] != "a note" {
		t.Fatalf("notes mangled: %v", back.Notes)
	}
}

func TestJSONFieldNamesStable(t *testing.T) {
	// The JSON field names are a contract with external tooling.
	var buf bytes.Buffer
	if err := sampleResult().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id"`, `"series"`, `"points"`, `"mean"`, `"std"`, `"trials"`, `"xLabel"`, `"reference"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("json missing field %s:\n%s", want, buf.String())
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("invalid json accepted")
	}
}
