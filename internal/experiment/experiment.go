// Package experiment regenerates every figure and table of the paper's
// evaluation as a named, parameterised experiment. Each experiment
// produces a Result holding one series per algorithm (mean ± standard
// deviation per point, as in the paper's error bars) plus notes with
// fitted growth coefficients, and can render itself as an aligned text
// table, CSV, or an ASCII plot.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"beepmis/internal/beep"
	"beepmis/internal/fault"
	"beepmis/internal/plot"
	"beepmis/internal/sim"
)

// Config scales an experiment run. The zero value reproduces the paper's
// trial counts and sizes.
type Config struct {
	// Seed is the master seed; runs with equal seeds are identical.
	Seed uint64
	// Trials overrides the paper's per-point trial count when > 0 (use
	// a small value for quick smoke runs).
	Trials int
	// MaxN caps the largest workload size when > 0, shrinking the sweep
	// for quick runs.
	MaxN int
	// Workers bounds the per-point trial worker pool; 0 means
	// GOMAXPROCS. Results are bit-identical for any worker count — each
	// trial draws from its own rng streams and aggregation happens in
	// trial order.
	Workers int
	// Engine selects the simulation engine for every trial (the zero
	// value is sim.EngineAuto). Lossy-exchange experiments always use
	// the scalar path regardless, since per-edge loss draws need it.
	Engine sim.Engine
	// Shards bounds the columnar and sparse engines' propagation
	// goroutines per trial; 0 means GOMAXPROCS, 1 keeps propagation
	// serial. Results are bit-identical for any value. With many
	// parallel trial workers already saturating the cores, 1 is usually
	// the right choice — which is what the trial pool defaults to when
	// Workers exceeds 1.
	Shards int
	// MemoryBudget caps the adjacency-representation bytes the auto
	// engine selection may spend per trial (see sim.Options); 0 means
	// the 2 GiB default. Purely a selection knob — results are
	// bit-identical whichever engine the budget admits.
	MemoryBudget int64
	// Faults overlays every trial with a fault model (channel noise,
	// adversarial wake-up, outages — see internal/fault). Unlike the
	// knobs above this one changes results; it exists so misbench can
	// quantify noise overhead and robustness on any experiment.
	Faults *fault.Spec
}

// simOpts assembles the sim.Options shared by every trial of an
// experiment: the engine pin, the shard bound, and the algorithm's bulk
// kernel (nil for algorithms without one). When the trial pool itself
// runs many workers, sharding propagation on top would oversubscribe
// the cores, so an unset Shards collapses to serial propagation unless
// the pool is serial.
func (c Config) simOpts(bulk beep.BulkFactory) sim.Options {
	shards := c.Shards
	if shards == 0 && c.EffectiveWorkers() > 1 {
		shards = 1
	}
	return sim.Options{Engine: c.Engine, Bulk: bulk, Shards: shards, MemoryBudget: c.MemoryBudget, Faults: c.Faults}
}

// Point is one x position of a series.
type Point struct {
	// X is the sweep coordinate (usually the node count n).
	X float64
	// Mean and Std are the trial mean and sample standard deviation.
	Mean, Std float64
	// Trials is the number of trials aggregated.
	Trials int
}

// Series is one line of a figure.
type Series struct {
	// Name labels the series (algorithm or reference curve).
	Name string
	// Points are the sweep results in ascending X.
	Points []Point
	// Reference marks analytically computed curves (no error bars).
	Reference bool
}

// Result is a regenerated figure or table.
type Result struct {
	// ID is the experiment identifier (e.g. "fig3").
	ID string
	// Title describes the paper artifact.
	Title string
	// XLabel and YLabel name the sweep coordinate and measurement.
	XLabel, YLabel string
	// Series holds one entry per algorithm/reference curve.
	Series []Series
	// Notes carries fits and observations appended by the runner.
	Notes []string
}

// Runner executes an experiment.
type Runner func(cfg Config) (*Result, error)

// descriptor ties an ID to its runner and a short description.
type descriptor struct {
	title string
	run   Runner
}

// registry is populated in runners.go. It is written once during package
// initialisation and read-only afterwards.
var registry = map[string]descriptor{}

// register adds an experiment; it is called only from this package's
// variable initialisers.
func register(id, title string, run Runner) struct{} {
	registry[id] = descriptor{title: title, run: run}
	return struct{}{}
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line title of an experiment id.
func Describe(id string) (string, error) {
	d, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	return d.title, nil
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Result, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %v)", id, IDs())
	}
	res, err := d.run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", id, err)
	}
	return res, nil
}

// Table renders the result as an aligned text table: one row per X
// value, one column per series showing "mean ± std".
func (r *Result) Table() string {
	xs := r.xValues()
	header := make([]string, 0, len(r.Series)+1)
	header = append(header, r.XLabel)
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(xs)+1)
	rows = append(rows, header)
	for _, x := range xs {
		row := make([]string, 0, len(header))
		row = append(row, trimFloat(x))
		for _, s := range r.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					if s.Reference {
						cell = fmt.Sprintf("%.2f", p.Mean)
					} else {
						cell = fmt.Sprintf("%.2f ± %.2f", p.Mean, p.Std)
					}
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	for ri, row := range rows {
		for c, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[c]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
	}
	for _, note := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// CSV writes the result as comma-separated values with columns
// x,series,mean,std,trials.
func (r *Result) CSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "x,series,mean,std,trials\n"); err != nil {
		return fmt.Errorf("write csv header: %w", err)
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			name := strings.ReplaceAll(s.Name, ",", ";")
			if _, err := fmt.Fprintf(w, "%v,%s,%v,%v,%d\n", p.X, name, p.Mean, p.Std, p.Trials); err != nil {
				return fmt.Errorf("write csv row: %w", err)
			}
		}
	}
	return nil
}

// Plot renders the result's series as an ASCII chart.
func (r *Result) Plot() (string, error) {
	series := make([]plot.Series, 0, len(r.Series))
	for _, s := range r.Series {
		ps := plot.Series{Name: s.Name}
		for _, p := range s.Points {
			ps.Xs = append(ps.Xs, p.X)
			ps.Ys = append(ps.Ys, p.Mean)
		}
		series = append(series, ps)
	}
	return plot.Render(series, plot.Options{
		Title:  fmt.Sprintf("%s — %s", r.ID, r.Title),
		XLabel: r.XLabel,
		YLabel: r.YLabel,
	})
}

// xValues returns the sorted union of X coordinates across series.
func (r *Result) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// trimFloat prints integers without a decimal point.
func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
