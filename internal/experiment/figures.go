package experiment

import (
	"fmt"
	"math"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/stats"
)

// roundsMetric measures the paper's Figure 3 quantity.
func roundsMetric(res *sim.Result, _ *graph.Graph) float64 { return float64(res.Rounds) }

// beepsMetric measures the paper's Figure 5 quantity.
func beepsMetric(res *sim.Result, _ *graph.Graph) float64 { return res.MeanBeepsPerNode() }

// gnpHalf builds the paper's workload G(n, 1/2).
func gnpHalf(n int) func(src *rng.Source) *graph.Graph {
	return func(src *rng.Source) *graph.Graph { return graph.GNP(n, 0.5, src) }
}

// runFig3 regenerates Figure 3: mean number of time steps over 100
// trials on G(n,1/2) for n = 100..1000, for the global sweeping schedule
// (upper curve, ≈ log₂²n) and the feedback algorithm (lower curve,
// ≈ 2.5·log₂n). The dashed reference curves of the figure are emitted as
// Reference series.
func runFig3(cfg Config) (*Result, error) {
	ns := cfg.sizes(intRange(100, 1000, 100))
	trials := cfg.trials(100)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "fig3",
		Title:  "mean time steps on G(n,1/2)",
		XLabel: "n",
		YLabel: "time steps",
	}
	algos := []struct {
		name string
		spec mis.Spec
	}{
		{"globalsweep", mis.Spec{Name: mis.NameGlobalSweep}},
		{"feedback", mis.Spec{Name: mis.NameFeedback}},
	}
	for ai, algo := range algos {
		factory, bulk, err := mis.NewFactories(algo.spec)
		if err != nil {
			return nil, err
		}
		series := Series{Name: algo.name}
		for si, n := range ns {
			pt, censored, err := sweepPoint(cfg, master, ai*1000+si, trials, 0, factory, bulk, gnpHalf(n), roundsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", algo.name, n, err)
			}
			if censored > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s n=%d: %d/%d trials censored at the round cap", algo.name, n, censored, trials))
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	res.Series = append(res.Series,
		referenceCurve("log2²n (paper's upper dashed line)", ns, func(n float64) float64 {
			l := math.Log2(n)
			return l * l
		}),
		referenceCurve("2.5·log2n (paper's lower dotted line)", ns, func(n float64) float64 {
			return 2.5 * math.Log2(n)
		}),
	)
	appendFitNotes(res, "globalsweep", "feedback")
	return res, nil
}

// runFig5 regenerates Figure 5: mean number of beeps per node over 200
// trials on G(n,1/2) for n = 25..200. The paper reports the feedback
// algorithm flat around 1.1 beeps per node and the sweeping schedule
// growing with n.
func runFig5(cfg Config) (*Result, error) {
	ns := cfg.sizes(intRange(25, 200, 25))
	trials := cfg.trials(200)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "fig5",
		Title:  "mean beeps per node on G(n,1/2)",
		XLabel: "n",
		YLabel: "beeps/node",
	}
	algos := []struct {
		name string
		spec mis.Spec
	}{
		{"globalsweep", mis.Spec{Name: mis.NameGlobalSweep}},
		{"feedback", mis.Spec{Name: mis.NameFeedback}},
		{"afek-original", mis.Spec{Name: mis.NameAfek}},
	}
	for ai, algo := range algos {
		factory, bulk, err := mis.NewFactories(algo.spec)
		if err != nil {
			return nil, err
		}
		series := Series{Name: algo.name}
		for si, n := range ns {
			pt, _, err := sweepPoint(cfg, master, ai*1000+si, trials, 0, factory, bulk, gnpHalf(n), beepsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", algo.name, n, err)
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
	}
	if af, ok := findSeries(res, "afek-original"); ok {
		maxMean := 0.0
		for _, p := range af.Points {
			if p.Mean > maxMean {
				maxMean = p.Mean
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"afek-original beeps/node max over sweep = %.3f (§5: bounded by a constant when probabilities derive from n and D)", maxMean))
	}
	if fb, ok := findSeries(res, "feedback"); ok {
		maxMean := 0.0
		for _, p := range fb.Points {
			if p.Mean > maxMean {
				maxMean = p.Mean
			}
		}
		res.Notes = append(res.Notes, fmt.Sprintf("feedback beeps/node max over sweep = %.3f (paper: ≈1.1, constant)", maxMean))
	}
	return res, nil
}

// referenceCurve builds an analytic Reference series over the sweep.
func referenceCurve(name string, ns []int, f func(n float64) float64) Series {
	s := Series{Name: name, Reference: true}
	for _, n := range ns {
		s.Points = append(s.Points, Point{X: float64(n), Mean: f(float64(n))})
	}
	return s
}

// findSeries locates a series by name.
func findSeries(r *Result, name string) (Series, bool) {
	for _, s := range r.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// appendFitNotes fits a·log₂n+b and a·log₂²n+b to the named series and
// records which model explains each better — the quantitative version of
// "who wins, by what shape".
func appendFitNotes(r *Result, names ...string) {
	for _, name := range names {
		s, ok := findSeries(r, name)
		if !ok || len(s.Points) < 2 {
			continue
		}
		xs := make([]float64, len(s.Points))
		ys := make([]float64, len(s.Points))
		for i, p := range s.Points {
			xs[i] = p.X
			ys[i] = p.Mean
		}
		logFit, err1 := stats.FitLogN(xs, ys)
		log2Fit, err2 := stats.FitLog2N(xs, ys)
		if err1 != nil || err2 != nil {
			continue
		}
		best := "a·log2(n)+b"
		if log2Fit.R2 > logFit.R2 {
			best = "a·log2²(n)+b"
		}
		r.Notes = append(r.Notes, fmt.Sprintf(
			"%s: fit a·log2(n)+b → %s; fit a·log2²(n)+b → %s; better: %s",
			name, logFit, log2Fit, best))
	}
}
