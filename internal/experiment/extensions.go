package experiment

import (
	"fmt"
	"math"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
	"beepmis/internal/stats"
)

// Extension experiments beyond the paper's figures: the §5 bit-complexity
// comparison quantified against the strongest classical baselines, the
// asynchronous wake-up robustness check, and the O(log n) claim across
// graph families.
var (
	_ = register("bits", "§5 quantified: message bits per channel — feedback vs Métivier vs Luby", runBits)
	_ = register("wakeup", "Extension: staggered node wake-up (Afek et al. DISC'11 robustness dimension)", runWakeup)
	_ = register("families", "Extension: feedback stays O(log n) across graph families", runFamilies)
)

// runBits compares expected message bits per channel on G(n,1/2).
// Theorem 6 gives the feedback algorithm O(1) bits per channel; Métivier
// et al. (the paper's ref [18]) achieve the optimal O(log n) bits per
// channel among algorithms that compute with random duels; Luby's
// variants pay for numeric payloads.
func runBits(cfg Config) (*Result, error) {
	ns := cfg.sizes(intRange(100, 1000, 100))
	trials := cfg.trials(30)
	master := rng.New(cfg.Seed)

	res := &Result{
		ID:     "bits",
		Title:  "message bits per channel on G(n,1/2)",
		XLabel: "n",
		YLabel: "bits/channel",
	}

	// Feedback: each beep is one bit on each incident channel; per
	// channel {u,v} the bits are beeps(u) + beeps(v). Averaged over
	// channels this is Σ_v beeps(v)·deg(v) / m.
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}
	fbSeries := Series{Name: "feedback"}
	for si, n := range ns {
		slots := make([]float64, trials)
		ok := make([]bool, trials)
		err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
			g := graph.GNP(n, 0.5, master.Stream(trialKey(si, trial, 1)))
			r, err := sim.Run(g, factory, master.Stream(trialKey(si, trial, 2)), cfg.simOpts(bulk))
			if err != nil {
				return fmt.Errorf("feedback n=%d: %w", n, err)
			}
			weighted := 0.0
			for v, b := range r.Beeps {
				weighted += float64(b) * float64(g.Degree(v))
			}
			if g.M() > 0 {
				slots[trial] = weighted / float64(g.M())
				ok[trial] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		vals := collectOK(slots, ok)
		fbSeries.Points = append(fbSeries.Points, Point{
			X: float64(n), Mean: stats.Mean(vals), Std: stats.StdDev(vals), Trials: trials,
		})
	}
	res.Series = append(res.Series, fbSeries)

	// Métivier: duel bits counted exactly by the implementation.
	metSeries := Series{Name: "metivier"}
	for si, n := range ns {
		slots := make([]float64, trials)
		ok := make([]bool, trials)
		err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
			g := graph.GNP(n, 0.5, master.Stream(trialKey(1000+si, trial, 1)))
			r := mis.Metivier(g, master.Stream(trialKey(1000+si, trial, 2)))
			if g.M() > 0 {
				slots[trial] = float64(r.Bits) / float64(g.M())
				ok[trial] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		vals := collectOK(slots, ok)
		metSeries.Points = append(metSeries.Points, Point{
			X: float64(n), Mean: stats.Mean(vals), Std: stats.StdDev(vals), Trials: trials,
		})
	}
	res.Series = append(res.Series, metSeries)

	// Luby probability variant: payload bits counted by the
	// implementation (64-bit degree/mark messages + join bits).
	lubySeries := Series{Name: "luby-probability"}
	for si, n := range ns {
		slots := make([]float64, trials)
		ok := make([]bool, trials)
		err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
			g := graph.GNP(n, 0.5, master.Stream(trialKey(2000+si, trial, 1)))
			r, err := mis.Luby(g, mis.LubyProbability, master.Stream(trialKey(2000+si, trial, 2)))
			if err != nil {
				return fmt.Errorf("luby n=%d: %w", n, err)
			}
			if g.M() > 0 {
				slots[trial] = float64(r.Bits) / float64(g.M())
				ok[trial] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		vals := collectOK(slots, ok)
		lubySeries.Points = append(lubySeries.Points, Point{
			X: float64(n), Mean: stats.Mean(vals), Std: stats.StdDev(vals), Trials: trials,
		})
	}
	res.Series = append(res.Series, lubySeries)

	res.Notes = append(res.Notes,
		"feedback: Theorem 6 — O(1) bits per channel, flat in n",
		"metivier: optimal O(log n)-class baseline; duels end at the first differing random bit",
		"luby-probability: numeric payloads (64-bit values) dominate its channel cost")
	return res, nil
}

// runWakeup staggers node start times uniformly over a window W and
// measures completion time and validity. Completion should track
// W + O(log n): the algorithm loses nothing to asynchronous starts, the
// robustness dimension Afek et al. (DISC'11) designed for.
func runWakeup(cfg Config) (*Result, error) {
	n := 300
	if cfg.MaxN > 0 && cfg.MaxN < n {
		n = cfg.MaxN
	}
	windows := []int{1, 10, 25, 50, 100}
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}

	res := &Result{
		ID:     "wakeup",
		Title:  fmt.Sprintf("staggered wake-up on G(%d,1/2)", n),
		XLabel: "wake window W",
		YLabel: "completion round",
	}
	series := Series{Name: "completion"}
	excess := Series{Name: "completion − W"}
	invalid := 0
	for wi, w := range windows {
		vals := make([]float64, trials)
		exVals := make([]float64, trials)
		bad := make([]bool, trials)
		err := ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
			g := graph.GNP(n, 0.5, master.Stream(trialKey(wi, trial, 1)))
			wakeSrc := master.Stream(trialKey(wi, trial, 3))
			wake := make([]int, g.N())
			for v := range wake {
				wake[v] = 1 + wakeSrc.Intn(w)
			}
			opts := cfg.simOpts(bulk)
			opts.WakeAt = wake
			r, err := sim.Run(g, factory, master.Stream(trialKey(wi, trial, 2)), opts)
			if err != nil {
				return fmt.Errorf("window %d: %w", w, err)
			}
			bad[trial] = graph.VerifyMIS(g, r.InMIS) != nil
			vals[trial] = float64(r.Rounds)
			exVals[trial] = float64(r.Rounds - w)
			return nil
		})
		if err != nil {
			return nil, err
		}
		invalid += countTrue(bad)
		series.Points = append(series.Points, Point{
			X: float64(w), Mean: stats.Mean(vals), Std: stats.StdDev(vals), Trials: trials,
		})
		excess.Points = append(excess.Points, Point{
			X: float64(w), Mean: stats.Mean(exVals), Std: stats.StdDev(exVals), Trials: trials,
		})
	}
	res.Series = append(res.Series, series, excess)
	res.Notes = append(res.Notes,
		fmt.Sprintf("invalid results across all windows: %d (must be 0 — persistent announcements guarantee safety)", invalid),
		"completion ≈ W + O(log n): staggered starts cost only the stagger itself")
	return res, nil
}

// runFamilies sweeps the feedback algorithm across structurally
// different graph families at matched sizes, checking that the O(log n)
// round bound — proved for any graph — holds with similar constants
// everywhere.
func runFamilies(cfg Config) (*Result, error) {
	ns := cfg.sizes([]int{64, 144, 256, 400, 576, 784, 1024})
	trials := cfg.trials(50)
	master := rng.New(cfg.Seed)
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}

	families := []struct {
		name string
		gen  func(n int, src *rng.Source) *graph.Graph
	}{
		{"gnp-half", func(n int, src *rng.Source) *graph.Graph { return graph.GNP(n, 0.5, src) }},
		{"grid", func(n int, _ *rng.Source) *graph.Graph { return squareGrid(n) }},
		{"tree", func(n int, src *rng.Source) *graph.Graph { return graph.RandomTree(n, src) }},
		{"ba-3", func(n int, src *rng.Source) *graph.Graph {
			g, err := graph.BarabasiAlbert(n, 3, src)
			if err != nil {
				return graph.Empty(n)
			}
			return g
		}},
		{"unitdisk", func(n int, src *rng.Source) *graph.Graph {
			// Radius tuned for expected degree ≈ 10 independent of n.
			r := radiusForDegree(n, 10)
			return graph.UnitDisk(n, r, src)
		}},
	}

	res := &Result{
		ID:     "families",
		Title:  "feedback rounds across graph families",
		XLabel: "n",
		YLabel: "time steps",
	}
	for fi, fam := range families {
		series := Series{Name: fam.name}
		for si, n := range ns {
			n, fam := n, fam
			pt, censored, err := sweepPoint(cfg, master, fi*1000+si, trials, 0, factory, bulk,
				func(src *rng.Source) *graph.Graph { return fam.gen(n, src) },
				roundsMetric)
			if err != nil {
				return nil, fmt.Errorf("%s n=%d: %w", fam.name, n, err)
			}
			if censored > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s n=%d: %d/%d censored", fam.name, n, censored, trials))
			}
			pt.X = float64(n)
			series.Points = append(series.Points, pt)
		}
		res.Series = append(res.Series, series)
		appendFitNotes(res, fam.name)
	}
	return res, nil
}

// squareGrid returns the ⌊√n⌋×⌊√n⌋ grid.
func squareGrid(n int) *graph.Graph {
	k := 1
	for (k+1)*(k+1) <= n {
		k++
	}
	return graph.Grid(k, k)
}

// radiusForDegree returns the unit-square radius giving expected degree
// d: π r² (n−1) ≈ d.
func radiusForDegree(n, d int) float64 {
	if n <= 1 {
		return 0.5
	}
	return math.Sqrt(float64(d) / (math.Pi * float64(n-1)))
}
