package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg keeps experiment smoke tests fast: 2 trials, small sweeps.
var quickCfg = Config{Seed: 7, Trials: 2, MaxN: 150}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ablate-factor", "ablate-floor", "ablate-init", "ablate-jitter",
		"ablate-loss", "ablate-noise", "bits", "families", "fig3", "fig5",
		"luby", "thm1", "thm6", "wakeup",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
}

func TestDescribe(t *testing.T) {
	for _, id := range IDs() {
		title, err := Describe(id)
		if err != nil || title == "" {
			t.Fatalf("Describe(%q) = %q, %v", id, title, err)
		}
	}
	if _, err := Describe("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickCfg); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, quickCfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != id {
				t.Fatalf("result ID %q", res.ID)
			}
			if len(res.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range res.Series {
				if len(s.Points) == 0 {
					t.Fatalf("series %q empty", s.Name)
				}
				for _, p := range s.Points {
					if p.Mean < 0 {
						t.Fatalf("series %q has negative mean %v", s.Name, p.Mean)
					}
				}
			}
			table := res.Table()
			if !strings.Contains(table, id) {
				t.Fatalf("table missing id:\n%s", table)
			}
			var csv bytes.Buffer
			if err := res.CSV(&csv); err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(csv.String(), "x,series,mean,std,trials\n") {
				t.Fatalf("csv header wrong:\n%s", csv.String())
			}
			if _, err := res.Plot(); err != nil {
				t.Fatalf("plot: %v", err)
			}
		})
	}
}

func TestFig3ShapeQuick(t *testing.T) {
	// Even a quick run must show the headline result: globalsweep takes
	// more rounds than feedback at the largest common size.
	res, err := Run("fig3", Config{Seed: 3, Trials: 3, MaxN: 300})
	if err != nil {
		t.Fatal(err)
	}
	sweep, ok1 := findSeries(res, "globalsweep")
	fb, ok2 := findSeries(res, "feedback")
	if !ok1 || !ok2 {
		t.Fatal("missing series")
	}
	lastSweep := sweep.Points[len(sweep.Points)-1]
	lastFb := fb.Points[len(fb.Points)-1]
	if lastSweep.Mean <= lastFb.Mean {
		t.Fatalf("globalsweep %.1f rounds <= feedback %.1f rounds — paper's ordering violated",
			lastSweep.Mean, lastFb.Mean)
	}
}

func TestFig5ShapeQuick(t *testing.T) {
	res, err := Run("fig5", Config{Seed: 4, Trials: 5, MaxN: 150})
	if err != nil {
		t.Fatal(err)
	}
	fb, ok := findSeries(res, "feedback")
	if !ok {
		t.Fatal("missing feedback series")
	}
	for _, p := range fb.Points {
		if p.Mean > 2.0 {
			t.Fatalf("feedback beeps/node %.2f at n=%v — paper says ≈1.1", p.Mean, p.X)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run("fig5", Config{Seed: 11, Trials: 2, MaxN: 75})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig5", Config{Seed: 11, Trials: 2, MaxN: 75})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Fatal("same seed produced different experiment results")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{}
	if c.trials(7) != 7 {
		t.Fatal("default trials")
	}
	c.Trials = 3
	if c.trials(7) != 3 {
		t.Fatal("override trials")
	}
	c.MaxN = 50
	got := c.sizes([]int{10, 50, 100})
	if len(got) != 2 || got[1] != 50 {
		t.Fatalf("sizes = %v", got)
	}
	// MaxN below every size keeps the smallest so sweeps stay non-empty.
	c.MaxN = 5
	got = c.sizes([]int{10, 50})
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("sizes = %v", got)
	}
}

func TestTableFormatting(t *testing.T) {
	r := &Result{
		ID: "x", Title: "t", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Mean: 2.5, Std: 0.5, Trials: 3}}},
			{Name: "ref", Reference: true, Points: []Point{{X: 1, Mean: 9}}},
		},
		Notes: []string{"hello"},
	}
	table := r.Table()
	for _, want := range []string{"2.50 ± 0.50", "9.00", "note: hello", "n", "a", "ref"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestCSVEscapesCommas(t *testing.T) {
	r := &Result{
		ID: "x",
		Series: []Series{
			{Name: "a,b", Points: []Point{{X: 1, Mean: 2}}},
		},
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(buf.String(), "\n")[1], "a,b") {
		t.Fatalf("comma in series name not escaped: %s", buf.String())
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" {
		t.Fatal(trimFloat(5))
	}
	if trimFloat(0.25) != "0.25" {
		t.Fatal(trimFloat(0.25))
	}
}
