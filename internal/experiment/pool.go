package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// EffectiveWorkers resolves Config.Workers to the effective trial pool
// size (GOMAXPROCS when unset). Exported for the scenario runner, which
// shares the pool.
func (c Config) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ForTrials runs fn(trial) for every trial in [0, trials) on a bounded
// pool of workers goroutines. On failure it stops handing out new trials
// and returns the lowest-indexed error among the trials that ran. It is
// exported because it is the repo's one trial pool: the scenario runner
// (internal/scenario) executes declarative workloads on it with exactly
// the determinism contract below.
//
// Determinism contract: trials are embarrassingly parallel because every
// trial draws from its own rng streams (derived from the master seed and
// the trial index, never from shared mutable state), and callers write
// results into per-trial slots which they aggregate in index order after
// the pool drains. Consequently the output is bit-identical for any
// worker count, including the sequential workers == 1 path.
func ForTrials(workers, trials int, fn func(trial int) error) error {
	if trials <= 0 {
		return nil
	}
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for trial := 0; trial < trials; trial++ {
			if err := fn(trial); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, trials)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				trial := int(next.Add(1)) - 1
				if trial >= trials || failed.Load() {
					return
				}
				if err := fn(trial); err != nil {
					errs[trial] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// countTrue counts set flags in a per-trial slot array — the
// parallel-safe equivalent of incrementing a counter inside a
// sequential trial loop.
func countTrue(flags []bool) int {
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return n
}

// collectOK gathers, in trial order, the slot values whose ok flag is
// set — the parallel-safe equivalent of conditionally appending inside a
// sequential trial loop.
func collectOK(slots []float64, ok []bool) []float64 {
	vals := make([]float64, 0, len(slots))
	for i, v := range slots {
		if ok[i] {
			vals = append(vals, v)
		}
	}
	return vals
}
