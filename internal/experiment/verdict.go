package experiment

import (
	"fmt"
	"math"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

// Check is one headline-claim verification.
type Check struct {
	// Name identifies the claim.
	Name string
	// Pass reports whether the measured behaviour matched it.
	Pass bool
	// Detail explains the measurement.
	Detail string
}

// Verdict runs a scaled-down measurement of every headline claim of the
// paper and reports pass/fail per claim — the one-command answer to
// "does the reproduction still reproduce?". With the zero Config it uses
// moderate trial counts (≈15 s total); Trials/MaxN shrink it further.
func Verdict(cfg Config) ([]Check, error) {
	trials := cfg.trials(20)
	n := 400
	if cfg.MaxN > 0 && cfg.MaxN < n {
		n = cfg.MaxN
	}
	master := rng.New(cfg.Seed)

	feedback, feedbackBulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		return nil, err
	}
	sweep, sweepBulk, err := mis.NewFactories(mis.Spec{Name: mis.NameGlobalSweep})
	if err != nil {
		return nil, err
	}

	type gnpTrial struct {
		fbRounds, swRounds, fbBeeps float64
		invalid                     bool
	}
	gnpTrials := make([]gnpTrial, trials)
	err = ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
		g := graph.GNP(n, 0.5, master.Stream(trialKey(1, trial, 1)))
		fb, err := sim.Run(g, feedback, master.Stream(trialKey(1, trial, 2)), cfg.simOpts(feedbackBulk))
		if err != nil {
			return fmt.Errorf("verdict feedback: %w", err)
		}
		sw, err := sim.Run(g, sweep, master.Stream(trialKey(1, trial, 3)), cfg.simOpts(sweepBulk))
		if err != nil {
			return fmt.Errorf("verdict sweep: %w", err)
		}
		gnpTrials[trial] = gnpTrial{
			fbRounds: float64(fb.Rounds),
			swRounds: float64(sw.Rounds),
			fbBeeps:  fb.MeanBeepsPerNode(),
			invalid:  graph.VerifyMIS(g, fb.InMIS) != nil,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var (
		fbRounds, swRounds, fbBeeps float64
		invalid                     int
	)
	for _, tr := range gnpTrials {
		fbRounds += tr.fbRounds
		swRounds += tr.swRounds
		fbBeeps += tr.fbBeeps
		if tr.invalid {
			invalid++
		}
	}
	fbRounds /= float64(trials)
	swRounds /= float64(trials)
	fbBeeps /= float64(trials)
	logN := math.Log2(float64(n))

	// Theorem 1 family gap at a fixed size.
	cf := graph.CliqueFamily(936)
	cfFbSlots := make([]float64, trials)
	cfSwSlots := make([]float64, trials)
	err = ForTrials(cfg.EffectiveWorkers(), trials, func(trial int) error {
		a, err := sim.Run(cf, feedback, master.Stream(trialKey(2, trial, 1)), cfg.simOpts(feedbackBulk))
		if err != nil {
			return err
		}
		b, err := sim.Run(cf, sweep, master.Stream(trialKey(2, trial, 2)), cfg.simOpts(sweepBulk))
		if err != nil {
			return err
		}
		cfFbSlots[trial] = float64(a.Rounds)
		cfSwSlots[trial] = float64(b.Rounds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var cfFb, cfSw float64
	for trial := 0; trial < trials; trial++ {
		cfFb += cfFbSlots[trial]
		cfSw += cfSwSlots[trial]
	}
	cfFb /= float64(trials)
	cfSw /= float64(trials)

	checks := []Check{
		{
			Name:   "correctness: every feedback run yields a verified MIS",
			Pass:   invalid == 0,
			Detail: fmt.Sprintf("%d/%d runs invalid on G(%d,1/2)", invalid, trials, n),
		},
		{
			Name:   "Corollary 5: feedback rounds ≈ 2.5·log2 n (within [1.5, 4]·log2 n)",
			Pass:   fbRounds >= 1.5*logN && fbRounds <= 4*logN,
			Detail: fmt.Sprintf("mean %.1f rounds vs log2(%d)=%.1f (ratio %.2f)", fbRounds, n, logN, fbRounds/logN),
		},
		{
			Name:   "Theorem 6: feedback beeps/node ≈ 1.1 (below 2)",
			Pass:   fbBeeps < 2,
			Detail: fmt.Sprintf("mean %.2f beeps/node on G(%d,1/2)", fbBeeps, n),
		},
		{
			Name:   "§1 ordering: global sweep ≥ 2× feedback rounds on G(n,1/2)",
			Pass:   swRounds >= 2*fbRounds,
			Detail: fmt.Sprintf("sweep %.1f vs feedback %.1f rounds", swRounds, fbRounds),
		},
		{
			Name:   "Theorem 1: preset schedule slower than feedback on the clique family",
			Pass:   cfSw > cfFb*1.3,
			Detail: fmt.Sprintf("sweep %.1f vs feedback %.1f rounds on CliqueFamily(936)", cfSw, cfFb),
		},
	}
	return checks, nil
}
