package experiment

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"beepmis/internal/sim"
)

func TestForTrialsRunsEveryTrial(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var ran [50]atomic.Int32
		err := ForTrials(workers, 50, func(trial int) error {
			ran[trial].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: trial %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForTrialsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	err := ForTrials(1, 10, func(trial int) error {
		if trial >= 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if err := ForTrials(4, 0, func(int) error { return boom }); err != nil {
		t.Fatalf("zero trials returned %v", err)
	}
}

func TestCollectOK(t *testing.T) {
	vals := collectOK([]float64{1, 2, 3, 4}, []bool{true, false, true, false})
	if !reflect.DeepEqual(vals, []float64{1, 3}) {
		t.Fatalf("collectOK = %v", vals)
	}
}

// TestWorkerCountInvariance is the parallel runner's core contract:
// the same experiment with the same seed must produce bit-identical
// results for any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	base := Config{Seed: 3, Trials: 4, MaxN: 150}
	for _, id := range []string{"fig3", "thm1", "wakeup", "luby", "bits"} {
		var first *Result
		for _, workers := range []int{1, 4} {
			cfg := base
			cfg.Workers = workers
			res, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			if first == nil {
				first = res
				continue
			}
			if !reflect.DeepEqual(first, res) {
				t.Fatalf("%s: results differ between 1 and %d workers", id, workers)
			}
		}
	}
}

// TestEngineInvariance pins experiment outputs across simulation
// engines and shard counts: scalar, bitset, and columnar trials must
// aggregate identically.
func TestEngineInvariance(t *testing.T) {
	base := Config{Seed: 5, Trials: 3, MaxN: 120}
	var first *Result
	for _, tc := range []struct {
		name   string
		engine sim.Engine
		shards int
	}{
		{"scalar", sim.EngineScalar, 0},
		{"bitset", sim.EngineBitset, 0},
		{"columnar-serial", sim.EngineColumnar, 1},
		{"columnar-sharded", sim.EngineColumnar, 3},
	} {
		cfg := base
		cfg.Engine = tc.engine
		cfg.Shards = tc.shards
		res, err := Run("fig3", cfg)
		if err != nil {
			t.Fatalf("engine %s: %v", tc.name, err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(first, res) {
			t.Fatalf("fig3 differs between scalar and %s engines", tc.name)
		}
	}
}
