package experiment

import (
	"strings"
	"testing"
)

func mkResult(id string, mean float64) *Result {
	return &Result{
		ID: id,
		Series: []Series{
			{Name: "s", Points: []Point{{X: 100, Mean: mean, Trials: 10}}},
		},
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	findings := Compare(mkResult("fig3", 20), mkResult("fig3", 22), 0.2)
	if len(findings) != 0 {
		t.Fatalf("10%% drift flagged at 20%% tolerance: %v", findings)
	}
}

func TestCompareFlagsDrift(t *testing.T) {
	findings := Compare(mkResult("fig3", 20), mkResult("fig3", 30), 0.2)
	if len(findings) != 1 || !strings.Contains(findings[0], "drift") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestCompareIDMismatch(t *testing.T) {
	findings := Compare(mkResult("fig3", 20), mkResult("fig5", 20), 0.2)
	if len(findings) != 1 || !strings.Contains(findings[0], "id differs") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestCompareMissingSeriesAndPoints(t *testing.T) {
	base := &Result{ID: "x", Series: []Series{
		{Name: "a", Points: []Point{{X: 1, Mean: 5}, {X: 2, Mean: 6}}},
		{Name: "b", Points: []Point{{X: 1, Mean: 7}}},
	}}
	cur := &Result{ID: "x", Series: []Series{
		{Name: "a", Points: []Point{{X: 1, Mean: 5}}},
	}}
	findings := Compare(base, cur, 0.2)
	if len(findings) != 2 {
		t.Fatalf("findings = %v", findings)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := mkResult("x", 0)
	if f := Compare(base, mkResult("x", 0.1), 0.2); len(f) != 0 {
		t.Fatalf("small absolute drift from zero flagged: %v", f)
	}
	if f := Compare(base, mkResult("x", 5), 0.2); len(f) != 1 {
		t.Fatalf("large drift from zero not flagged: %v", f)
	}
}

func TestCompareDefaultTolerance(t *testing.T) {
	// tolerance <= 0 falls back to 20%.
	if f := Compare(mkResult("x", 10), mkResult("x", 11), 0); len(f) != 0 {
		t.Fatalf("10%% drift flagged under default tolerance: %v", f)
	}
}

func TestCompareAgainstSelfRun(t *testing.T) {
	// A real experiment compared against itself must agree exactly.
	res, err := Run("fig5", Config{Seed: 5, Trials: 2, MaxN: 50})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run("fig5", Config{Seed: 5, Trials: 2, MaxN: 50})
	if err != nil {
		t.Fatal(err)
	}
	if f := Compare(res, res2, 0.01); len(f) != 0 {
		t.Fatalf("identical runs differ: %v", f)
	}
}
