package mis

import (
	"testing"
	"testing/quick"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func TestLubyVariantsProduceMIS(t *testing.T) {
	src := rng.New(1)
	graphs := map[string]*graph.Graph{
		"gnp-dense":  graph.GNP(80, 0.5, src),
		"gnp-sparse": graph.GNP(200, 0.02, src),
		"complete":   graph.Complete(40),
		"grid":       graph.Grid(8, 9),
		"star":       graph.Star(30),
		"path":       graph.Path(50),
		"cliques":    graph.CliqueFamily(500),
		"empty":      graph.Empty(25),
	}
	for name, g := range graphs {
		for _, variant := range []LubyVariant{LubyPermutation, LubyProbability} {
			res, err := Luby(g, variant, rng.New(7))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, variant, err)
			}
			if err := graph.VerifyMIS(g, res.InMIS); err != nil {
				t.Fatalf("%s/%v: invalid MIS: %v", name, variant, err)
			}
			if g.N() > 0 && res.Rounds < 1 {
				t.Fatalf("%s/%v: rounds = %d", name, variant, res.Rounds)
			}
		}
	}
}

func TestLubyCompleteGraphSingleton(t *testing.T) {
	g := graph.Complete(25)
	for _, variant := range []LubyVariant{LubyPermutation, LubyProbability} {
		res, err := Luby(g, variant, rng.New(2))
		if err != nil {
			t.Fatal(err)
		}
		count := len(graph.SetToList(res.InMIS))
		if count != 1 {
			t.Fatalf("%v: MIS of K_25 has %d vertices", variant, count)
		}
	}
}

func TestLubyPermutationOneRoundOnComplete(t *testing.T) {
	// On a complete graph the unique minimum wins immediately and
	// everyone else retires: exactly one round.
	res, err := Luby(graph.Complete(30), LubyPermutation, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestLubyEmptyGraphAllJoin(t *testing.T) {
	res, err := Luby(graph.Empty(10), LubyPermutation, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range res.InMIS {
		if !in {
			t.Fatalf("isolated vertex %d not in MIS", v)
		}
	}
	if res.Messages != 0 || res.Bits != 0 {
		t.Fatal("edgeless graph should exchange no messages")
	}
}

func TestLubyZeroVertices(t *testing.T) {
	res, err := Luby(graph.Empty(0), LubyProbability, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Fatalf("rounds = %d on empty input", res.Rounds)
	}
}

func TestLubyUnknownVariant(t *testing.T) {
	if _, err := Luby(graph.Empty(1), LubyVariant(99), rng.New(1)); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestLubyDeterminism(t *testing.T) {
	g := graph.GNP(60, 0.3, rng.New(6))
	a, err := Luby(g, LubyPermutation, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Luby(g, LubyPermutation, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatal("same seed gave different executions")
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("same seed gave different sets")
		}
	}
}

func TestLubyMessagesCounted(t *testing.T) {
	g := graph.Complete(10)
	res, err := Luby(g, LubyPermutation, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// One round on K_10: 10 nodes × 9 neighbours value messages, plus 9
	// join announcements from the winner.
	if res.Messages != 90+9 {
		t.Fatalf("messages = %d, want 99", res.Messages)
	}
	if res.Bits != 90*64+9 {
		t.Fatalf("bits = %d, want %d", res.Bits, 90*64+9)
	}
}

func TestLubyPropertyRandomGraphs(t *testing.T) {
	src := rng.New(9)
	f := func(nSeed, pSeed, algoSeed uint8) bool {
		n := int(nSeed%50) + 1
		p := float64(pSeed%10) / 10
		g := graph.GNP(n, p, src)
		variant := LubyPermutation
		if algoSeed%2 == 0 {
			variant = LubyProbability
		}
		res, err := Luby(g, variant, rng.New(uint64(algoSeed)+100))
		if err != nil {
			return false
		}
		return graph.VerifyMIS(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLubyVariantString(t *testing.T) {
	if LubyPermutation.String() != "luby-permutation" {
		t.Fatal(LubyPermutation.String())
	}
	if LubyProbability.String() != "luby-probability" {
		t.Fatal(LubyProbability.String())
	}
	if LubyVariant(42).String() == "" {
		t.Fatal("unknown variant should still stringify")
	}
}

func TestGreedyMIS(t *testing.T) {
	src := rng.New(10)
	for _, g := range []*graph.Graph{
		graph.GNP(100, 0.4, src),
		graph.Complete(20),
		graph.Grid(5, 5),
		graph.Empty(10),
		graph.Star(15),
		graph.Empty(0),
	} {
		set := Greedy(g)
		if err := graph.VerifyMIS(g, set); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g := graph.GNP(50, 0.3, rng.New(11))
	a, b := Greedy(g), Greedy(g)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("Greedy is not deterministic")
		}
	}
}

func TestGreedyFirstVertexAlwaysIn(t *testing.T) {
	g := graph.Complete(5)
	set := Greedy(g)
	if !set[0] {
		t.Fatal("vertex 0 must enter the set on a fresh scan")
	}
	for v := 1; v < 5; v++ {
		if set[v] {
			t.Fatalf("vertex %d in MIS of complete graph alongside 0", v)
		}
	}
}

func TestGreedyRandomOrder(t *testing.T) {
	g := graph.GNP(80, 0.2, rng.New(12))
	seen := make(map[int]bool)
	for seed := uint64(0); seed < 10; seed++ {
		set := GreedyRandomOrder(g, rng.New(seed))
		if err := graph.VerifyMIS(g, set); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		seen[len(graph.SetToList(set))] = true
	}
	// Different orders should explore at least two different MIS sizes
	// on a graph this size (sanity that the order actually varies).
	if len(seen) < 2 {
		t.Log("warning: all random orders produced the same MIS size; not failing but suspicious")
	}
}
