package mis

import (
	"fmt"
	"math"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// bulkSpecs enumerates every algorithm with a columnar kernel, under a
// spread of configurations, for the kernel-vs-automata property tests.
func bulkSpecs() []Spec {
	return []Spec{
		{Name: NameFeedback},
		{Name: NameFeedback, Feedback: FeedbackConfig{Factor: 1.5}},
		{Name: NameFeedback, Feedback: FeedbackConfig{Factor: 3, InitialP: 1.0 / 16}},
		{Name: NameFeedback, Feedback: FeedbackConfig{MinP: 1.0 / 64}},
		{Name: NameFeedback, Feedback: FeedbackConfig{InitialP: 1, MaxP: 0.25}},
		{Name: NameGlobalSweep},
		{Name: NameAfek},
		{Name: NameAfek, Afek: AfekOriginalConfig{StepsPerLevel: 3}},
	}
}

// driveKernelAndAutomata runs `rounds` steps of (BeepAll, ObserveAll)
// against the per-node reference on arbitrary masks drawn from maskSrc,
// failing on the first divergence in beep decisions or reported
// probabilities. The masks need not come from any actual graph — the
// kernel contract is purely per-node, so ANY mask sequence a simulator
// could produce must agree.
func driveKernelAndAutomata(t testing.TB, spec Spec, n, rounds int, seed uint64, maskSrc *rng.Source) {
	factory, bulkFactory, err := NewFactories(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bulkFactory == nil {
		t.Fatalf("spec %+v has no bulk kernel", spec)
	}
	degrees := make([]int, n)
	maxDeg := 0
	for v := range degrees {
		degrees[v] = maskSrc.Intn(n + 1)
		if degrees[v] > maxDeg {
			maxDeg = degrees[v]
		}
	}
	autos := make([]beep.Automaton, n)
	autoStreams := make([]*rng.Source, n)
	kernelStreams := make([]*rng.Source, n)
	for v := 0; v < n; v++ {
		autos[v] = factory(beep.NodeInfo{ID: v, N: n, Degree: degrees[v], MaxDegree: maxDeg})
		// Two independent copies of the same per-node stream: the
		// kernel must consume exactly what the automaton consumes.
		autoStreams[v] = rng.New(seed).Stream(uint64(v))
		kernelStreams[v] = rng.New(seed).Stream(uint64(v))
	}
	kernel := bulkFactory(beep.NetworkInfo{N: n, Degrees: degrees, MaxDegree: maxDeg})

	active := graph.NewBitset(n)
	heard := graph.NewBitset(n)
	observed := graph.NewBitset(n)
	beeped := graph.NewBitset(n)
	wantProbs := make([]float64, n)
	gotProbs := make([]float64, n)
	randomMask := func(b graph.Bitset, within graph.Bitset) {
		b.Zero()
		for v := 0; v < n; v++ {
			if (within == nil || within.Test(v)) && maskSrc.Intn(2) == 1 {
				b.Set(v)
			}
		}
	}
	for round := 0; round < rounds; round++ {
		randomMask(active, nil)
		randomMask(heard, nil)
		randomMask(observed, active)

		beeped.Zero()
		kernel.BeepAll(active, kernelStreams, beeped)
		for v := 0; v < n; v++ {
			if !active.Test(v) {
				continue
			}
			want := autos[v].Beep(autoStreams[v])
			if beeped.Test(v) != want {
				t.Fatalf("round %d node %d: kernel beeped=%v, automaton %v (spec %+v seed %d)",
					round, v, beeped.Test(v), want, spec, seed)
			}
		}
		for v := 0; v < n; v++ {
			if observed.Test(v) {
				autos[v].Observe(beep.Outcome{Beeped: beeped.Test(v), Heard: heard.Test(v)})
			}
		}
		kernel.ObserveAll(observed, beeped, heard)

		reporter, ok := kernel.(beep.BulkProbabilityReporter)
		if !ok {
			t.Fatalf("kernel for %+v does not report probabilities", spec)
		}
		reporter.BeepProbabilities(gotProbs)
		for v := 0; v < n; v++ {
			wantProbs[v] = autos[v].(beep.ProbabilityReporter).BeepProbability()
			if wantProbs[v] != gotProbs[v] && !(math.IsNaN(wantProbs[v]) && math.IsNaN(gotProbs[v])) {
				t.Fatalf("round %d node %d: kernel p=%v, automaton p=%v (spec %+v seed %d)",
					round, v, gotProbs[v], wantProbs[v], spec, seed)
			}
		}
	}
}

// TestBulkKernelsMatchAutomata is the kernel-level property test: on
// hundreds of random mask sequences, sizes straddling word boundaries,
// and a spread of configurations, every bulk kernel must make exactly
// the per-node automaton's decisions and probability updates.
func TestBulkKernelsMatchAutomata(t *testing.T) {
	sizes := []int{1, 7, 63, 64, 65, 130, 200}
	trials := 6
	if testing.Short() {
		sizes = []int{65, 130}
		trials = 2
	}
	for _, spec := range bulkSpecs() {
		name := spec.Name
		if spec.Feedback != (FeedbackConfig{}) || spec.Afek != (AfekOriginalConfig{}) {
			name = fmt.Sprintf("%s/%+v%+v", spec.Name, spec.Feedback, spec.Afek)
		}
		t.Run(name, func(t *testing.T) {
			for _, n := range sizes {
				for trial := 0; trial < trials; trial++ {
					seed := uint64(n*1000 + trial)
					maskSrc := rng.New(seed ^ 0xabcdef)
					driveKernelAndAutomata(t, spec, n, 30, seed, maskSrc)
				}
			}
		})
	}
}

// TestBulkKernelsOnGraphs drives kernels through sim-shaped mask
// sequences derived from random graphs: active sets shrink monotonically
// and heard sets come from actual neighbourhoods, complementing the
// arbitrary-mask property test above with realistic trajectories.
func TestBulkKernelsOnGraphs(t *testing.T) {
	for _, spec := range bulkSpecs() {
		for gseed := uint64(0); gseed < 3; gseed++ {
			g := graph.GNP(150, 0.1*float64(gseed+1), rng.New(gseed))
			n := g.N()
			mat := g.Matrix()
			factory, bulkFactory, err := NewFactories(spec)
			if err != nil {
				t.Fatal(err)
			}
			degrees := make([]int, n)
			for v := range degrees {
				degrees[v] = g.Degree(v)
			}
			autos := make([]beep.Automaton, n)
			autoStreams := make([]*rng.Source, n)
			kernelStreams := make([]*rng.Source, n)
			for v := 0; v < n; v++ {
				autos[v] = factory(beep.NodeInfo{ID: v, N: n, Degree: g.Degree(v), MaxDegree: g.MaxDegree()})
				autoStreams[v] = rng.New(gseed).Stream(uint64(v))
				kernelStreams[v] = rng.New(gseed).Stream(uint64(v))
			}
			kernel := bulkFactory(beep.NetworkInfo{N: n, Degrees: degrees, MaxDegree: g.MaxDegree()})

			active := graph.NewBitset(n)
			active.Fill(n)
			beeped := graph.NewBitset(n)
			heard := graph.NewBitset(n)
			observed := graph.NewBitset(n)
			dropSrc := rng.New(gseed + 77)
			for round := 0; round < 25 && active.Any(); round++ {
				beeped.Zero()
				kernel.BeepAll(active, kernelStreams, beeped)
				for v := 0; v < n; v++ {
					if active.Test(v) && autos[v].Beep(autoStreams[v]) != beeped.Test(v) {
						t.Fatalf("%s g=%d round %d node %d: beep divergence", spec.Name, gseed, round, v)
					}
				}
				mat.PropagateInto(heard, beeped, 1)
				// Observe the active nodes, then retire a random subset
				// to emulate joins/dominations shrinking the active set.
				copy(observed, active)
				for v := 0; v < n; v++ {
					if observed.Test(v) {
						autos[v].Observe(beep.Outcome{Beeped: beeped.Test(v), Heard: heard.Test(v)})
					}
				}
				kernel.ObserveAll(observed, beeped, heard)
				for v := 0; v < n; v++ {
					if active.Test(v) && dropSrc.Intn(5) == 0 {
						active.Clear(v)
					}
				}
			}
		}
	}
}

// TestBulkKernelsResetMatchFreshAutomata pins the beep.BulkResetter
// contract every kernel implements for the fault layer's reset
// recoveries: after driving the kernel for a while and resetting a
// subset of nodes, those nodes must behave exactly like freshly
// constructed per-node automata — same draws, same probabilities —
// while untouched nodes keep their advanced state.
func TestBulkKernelsResetMatchFreshAutomata(t *testing.T) {
	const n = 130
	for _, spec := range bulkSpecs() {
		factory, bulkFactory, err := NewFactories(spec)
		if err != nil {
			t.Fatal(err)
		}
		degrees := make([]int, n)
		maskSrc := rng.New(99)
		maxDeg := 0
		for v := range degrees {
			degrees[v] = maskSrc.Intn(n)
			if degrees[v] > maxDeg {
				maxDeg = degrees[v]
			}
		}
		kernel := bulkFactory(beep.NetworkInfo{N: n, Degrees: degrees, MaxDegree: maxDeg})
		resetter, ok := kernel.(beep.BulkResetter)
		if !ok {
			t.Fatalf("%s kernel does not implement beep.BulkResetter", spec.Name)
		}
		streams := make([]*rng.Source, n)
		for v := range streams {
			streams[v] = rng.New(5).Stream(uint64(v))
		}
		// Advance every node's state for several rounds.
		active := graph.NewBitset(n)
		active.Fill(n)
		beeped := graph.NewBitset(n)
		heard := graph.NewBitset(n)
		for round := 0; round < 10; round++ {
			beeped.Zero()
			kernel.BeepAll(active, streams, beeped)
			heard.Zero()
			for v := 0; v < n; v++ {
				if maskSrc.Intn(2) == 1 {
					heard.Set(v)
				}
			}
			kernel.ObserveAll(active, beeped, heard)
		}
		before := make([]float64, n)
		kernel.(beep.BulkProbabilityReporter).BeepProbabilities(before)

		resetNodes := []int{0, 63, 64, 100}
		resetter.ResetNodes(resetNodes)
		after := make([]float64, n)
		kernel.(beep.BulkProbabilityReporter).BeepProbabilities(after)
		isReset := make(map[int]bool, len(resetNodes))
		for _, v := range resetNodes {
			isReset[v] = true
			fresh := factory(beep.NodeInfo{ID: v, N: n, Degree: degrees[v], MaxDegree: maxDeg})
			if want := fresh.(beep.ProbabilityReporter).BeepProbability(); after[v] != want {
				t.Fatalf("%s: reset node %d reports p=%v, fresh automaton %v", spec.Name, v, after[v], want)
			}
		}
		for v := 0; v < n; v++ {
			if !isReset[v] && after[v] != before[v] {
				t.Fatalf("%s: ResetNodes touched unlisted node %d (p %v → %v)", spec.Name, v, before[v], after[v])
			}
		}
	}
}

// FuzzBulkFeedbackKernel fuzzes the feedback kernel against its per-node
// automaton over fuzzer-chosen configurations, sizes, and seeds.
func FuzzBulkFeedbackKernel(f *testing.F) {
	f.Add(uint64(1), uint16(100), byte(4), byte(1), byte(4), byte(0))
	f.Add(uint64(42), uint16(64), byte(2), byte(2), byte(2), byte(6))
	f.Add(uint64(7), uint16(65), byte(6), byte(4), byte(1), byte(2))
	f.Fuzz(func(t *testing.T, seed uint64, size uint16, factorQ, initQ, maxQ, minQ byte) {
		n := int(size)%256 + 1
		cfg := FeedbackConfig{
			// Quantised parameters keep the config in Validate's domain
			// while letting the fuzzer explore it.
			Factor:   1 + float64(factorQ%16+1)/4,
			InitialP: 1 / float64(initQ%7+1),
			MaxP:     1 / float64(maxQ%4+1),
		}
		if minQ%2 == 1 {
			cfg.MinP = cfg.MaxP / float64(minQ%8+2)
		}
		if cfg.Validate() != nil {
			t.Skip()
		}
		maskSrc := rng.New(seed ^ 0x5eed)
		driveKernelAndAutomata(t, Spec{Name: NameFeedback, Feedback: cfg}, n, 12, seed, maskSrc)
	})
}
