package mis

import (
	"testing"
	"testing/quick"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func TestMetivierProducesMIS(t *testing.T) {
	src := rng.New(1)
	graphs := map[string]*graph.Graph{
		"gnp-dense":  graph.GNP(80, 0.5, src),
		"gnp-sparse": graph.GNP(200, 0.02, src),
		"complete":   graph.Complete(40),
		"grid":       graph.Grid(8, 9),
		"star":       graph.Star(30),
		"cliques":    graph.CliqueFamily(500),
		"empty":      graph.Empty(25),
		"zero":       graph.Empty(0),
	}
	for name, g := range graphs {
		res := Metivier(g, rng.New(7))
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMetivierCompleteGraphSingleton(t *testing.T) {
	res := Metivier(graph.Complete(25), rng.New(2))
	if got := len(graph.SetToList(res.InMIS)); got != 1 {
		t.Fatalf("MIS of K_25 has %d vertices", got)
	}
	// A complete graph resolves in one phase: the unique global maximum
	// beats everyone.
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
}

func TestMetivierBitAccounting(t *testing.T) {
	g := graph.GNP(60, 0.3, rng.New(3))
	res := Metivier(g, rng.New(4))
	if res.Bits <= 0 || res.Messages <= 0 {
		t.Fatalf("bits=%d messages=%d", res.Bits, res.Messages)
	}
	// Expected bits per duel is small (geometric with mean 2 per side);
	// allow a generous constant bound to catch regressions to whole-word
	// counting.
	duels := 0
	// Upper bound on duels: active edges summed over rounds <= m * rounds.
	duels = g.M() * res.Rounds
	if res.Bits > duels*32 {
		t.Fatalf("bits = %d for at most %d duels — lazy bit exchange broken?", res.Bits, duels)
	}
}

func TestMetivierBitsPerChannelLogarithmic(t *testing.T) {
	// §5 comparison: Métivier uses O(log n) bits per channel in
	// expectation; sanity-check the constant stays small.
	for _, n := range []int{50, 200} {
		g := graph.GNP(n, 0.5, rng.New(5))
		res := Metivier(g, rng.New(6))
		perChannel := float64(res.Bits) / float64(2*g.M())
		if perChannel > 16 {
			t.Fatalf("n=%d: %.1f bits per channel — far above O(log n) expectations", n, perChannel)
		}
	}
}

func TestMetivierDeterminism(t *testing.T) {
	g := graph.GNP(50, 0.4, rng.New(7))
	a := Metivier(g, rng.New(9))
	b := Metivier(g, rng.New(9))
	if a.Rounds != b.Rounds || a.Bits != b.Bits {
		t.Fatal("same seed diverged")
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("same seed gave different sets")
		}
	}
}

func TestMetivierProperty(t *testing.T) {
	src := rng.New(8)
	f := func(nSeed, pSeed, seed uint8) bool {
		n := int(nSeed%50) + 1
		p := float64(pSeed%10) / 10
		g := graph.GNP(n, p, src)
		res := Metivier(g, rng.New(uint64(seed)+50))
		return graph.VerifyMIS(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDuelConsumesMinimalBits(t *testing.T) {
	// Two strings differing in the first (most significant) bit must
	// duel in exactly 1 bit position.
	words := map[int][]uint64{
		0: {0x8000000000000000},
		1: {0x0000000000000000},
	}
	word := func(v, i int) uint64 { return words[v][i] }
	uWins, used := duel(0, 1, word)
	if !uWins || used != 1 {
		t.Fatalf("duel = %v, %d bits; want win with 1 bit", uWins, used)
	}
	// Differing at the last bit of the first word: 64 positions.
	words[0] = []uint64{1}
	words[1] = []uint64{0}
	uWins, used = duel(0, 1, word)
	if !uWins || used != 64 {
		t.Fatalf("duel = %v, %d bits; want win with 64 bits", uWins, used)
	}
	// Identical first word, differing in second: 64 + k.
	words[0] = []uint64{7, 0x8000000000000000}
	words[1] = []uint64{7, 0}
	uWins, used = duel(0, 1, word)
	if !uWins || used != 65 {
		t.Fatalf("duel = %v, %d bits; want win with 65 bits", uWins, used)
	}
}

func TestDuelTieFallback(t *testing.T) {
	// Five identical words trigger the id fallback.
	word := func(v, i int) uint64 { return 42 }
	uWins, used := duel(0, 1, word)
	if !uWins {
		t.Fatal("tie fallback should favour the smaller id")
	}
	if used != 5*64 {
		t.Fatalf("tie fallback consumed %d bits", used)
	}
	wWins, _ := duel(1, 0, word)
	if wWins {
		t.Fatal("tie fallback inverted")
	}
}
