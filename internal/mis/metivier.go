package mis

import (
	"math/bits"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// MetivierResult reports an execution of the Métivier–Robson–
// Saheb-Djahromi–Zemmari algorithm.
type MetivierResult struct {
	// InMIS is the computed maximal independent set.
	InMIS []bool
	// Rounds is the number of phases executed.
	Rounds int
	// Bits counts random bits actually exchanged across channels (both
	// directions), the algorithm's headline metric.
	Bits int
	// Messages counts directed per-channel transmissions (each carrying
	// one bit).
	Messages int
}

// Metivier computes an MIS with the optimal-bit-complexity algorithm of
// Métivier et al. (Distributed Computing 2011) — reference [18] of the
// paper and the strongest classical baseline for §5's bit-complexity
// comparison.
//
// Per phase, each active vertex draws an infinite random bit string and
// adjacent vertices exchange bits one position at a time *only until
// they first differ*; the vertex whose bit is 1 at the first difference
// beats the other. A vertex that beats every active neighbour joins the
// MIS; joiners and their neighbours retire. In expectation each edge
// resolves after O(1) exchanged bits and the algorithm finishes in
// O(log n) phases, giving O(log n) expected bits per channel overall.
//
// The implementation draws 64-bit words lazily per vertex; a pairwise
// comparison consumes exactly first-difference+1 bit positions on each
// side, which is what Bits counts. Ties beyond a whole word simply draw
// the next word (probability 2⁻⁶⁴ per word).
func Metivier(g *graph.Graph, src *rng.Source) *MetivierResult {
	n := g.N()
	res := &MetivierResult{InMIS: make([]bool, n)}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	remaining := n
	// words[v] holds the random bit string of v for the current phase,
	// most significant bit first, extended on demand.
	words := make([][]uint64, n)
	for remaining > 0 {
		res.Rounds++
		for v := 0; v < n; v++ {
			words[v] = words[v][:0]
		}
		word := func(v, i int) uint64 {
			for len(words[v]) <= i {
				words[v] = append(words[v], src.Uint64())
			}
			return words[v][i]
		}
		// Pairwise duels; beats[u][...] condensed into a per-vertex
		// "still a winner" flag.
		winner := make([]bool, n)
		for v := 0; v < n; v++ {
			winner[v] = active[v]
		}
		for u := 0; u < n; u++ {
			if !active[u] {
				continue
			}
			for _, w32 := range g.Neighbors(u) {
				w := int(w32)
				if w < u || !active[w] {
					continue // each active edge dueled once
				}
				uWins, bitsUsed := duel(u, w, word)
				// Both endpoints transmitted bitsUsed bits on this
				// channel.
				res.Bits += 2 * bitsUsed
				res.Messages += 2 * bitsUsed
				if uWins {
					winner[w] = false
				} else {
					winner[u] = false
				}
			}
		}
		// Winners join; they and their neighbours retire.
		for v := 0; v < n; v++ {
			if !winner[v] || !active[v] {
				continue
			}
			res.InMIS[v] = true
			active[v] = false
			remaining--
			for _, w := range g.Neighbors(v) {
				res.Messages++ // join notification
				res.Bits++
				if active[w] {
					active[w] = false
					remaining--
				}
			}
		}
	}
	return res
}

// duel compares the bit strings of u and w and reports whether u wins,
// plus the number of bit positions each side revealed (first difference
// + 1). Ties within a word continue into the next; a full-id tie (never
// in practice) falls back to the smaller id after one word.
func duel(u, w int, word func(v, i int) uint64) (uWins bool, bitsUsed int) {
	for i := 0; ; i++ {
		a, b := word(u, i), word(w, i)
		if a == b {
			if i >= 4 {
				// 256 identical random bits: probability 2⁻²⁵⁶. Resolve
				// by id so the algorithm cannot loop forever.
				return u < w, (i + 1) * 64
			}
			continue
		}
		diff := bits.LeadingZeros64(a ^ b)
		return a > b, i*64 + diff + 1
	}
}
