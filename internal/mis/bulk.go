package mis

import (
	"math"
	"math/bits"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// Bulk (columnar) kernels: one object per algorithm holding every node's
// state as packed arrays, fulfilling beep.BulkAutomaton. Each kernel is
// the struct-of-arrays transliteration of its per-node automaton and
// must draw from the per-node rng streams exactly what the automaton
// would — the per-node types in feedback.go and schedules.go stay as the
// executable reference, and TestBulkKernelsMatchAutomata pins the two
// against each other on random masks, configs, and seeds.

// feedbackBulk is feedbackNode over packed probabilities: Table 1's
// halve/double rule applied 64 nodes per observed word.
type feedbackBulk struct {
	p     []float64
	start float64 // initial probability, restored by ResetNodes
	cfg   FeedbackConfig
}

var _ beep.BulkAutomaton = (*feedbackBulk)(nil)
var _ beep.BulkProbabilityReporter = (*feedbackBulk)(nil)
var _ beep.BulkResetter = (*feedbackBulk)(nil)
var _ beep.BulkRanger = (*feedbackBulk)(nil)

// NewFeedbackBulk returns the columnar kernel of the feedback algorithm
// configured like NewFeedback(cfg). The two are interchangeable beyond
// speed: for any seed the kernel reproduces the per-node automata
// bit-for-bit.
func NewFeedbackBulk(cfg FeedbackConfig) (beep.BulkFactory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := cfg.InitialP
	if start > cfg.MaxP {
		start = cfg.MaxP
	}
	return func(net beep.NetworkInfo) beep.BulkAutomaton {
		k := &feedbackBulk{p: make([]float64, net.N), start: start, cfg: cfg}
		for v := range k.p {
			k.p[v] = start
		}
		return k
	}, nil
}

func (k *feedbackBulk) ResetNodes(nodes []int) {
	for _, v := range nodes {
		k.p[v] = k.start
	}
}

func (k *feedbackBulk) BeepAll(active graph.Bitset, streams []*rng.Source, out graph.Bitset) {
	k.BeepRange(active, streams, out, 0, len(active))
}

//misvet:noalloc
func (k *feedbackBulk) BeepRange(active graph.Bitset, streams []*rng.Source, out graph.Bitset, loWord, hiWord int) {
	for wi := loWord; wi < hiWord; wi++ {
		w := active[wi]
		base := wi << 6
		var beeps uint64
		for w != 0 {
			b := uint(bits.TrailingZeros64(w))
			w &= w - 1
			if streams[base+int(b)].Bernoulli(k.p[base+int(b)]) {
				beeps |= 1 << b
			}
		}
		out[wi] |= beeps
	}
}

func (k *feedbackBulk) ObserveAll(observed, beeped, heard graph.Bitset) {
	k.ObserveRange(observed, beeped, heard, 0, len(observed))
}

//misvet:noalloc
func (k *feedbackBulk) ObserveRange(observed, beeped, heard graph.Bitset, loWord, hiWord int) {
	cfg := k.cfg
	for wi := loWord; wi < hiWord; wi++ {
		w := observed[wi]
		base := wi << 6
		hw := heard[wi]
		for w != 0 {
			b := uint(bits.TrailingZeros64(w))
			w &= w - 1
			v := base + int(b)
			if hw&(1<<b) != 0 {
				k.p[v] /= cfg.Factor
				if cfg.MinP > 0 && k.p[v] < cfg.MinP {
					k.p[v] = cfg.MinP
				}
			} else {
				k.p[v] *= cfg.Factor
				if k.p[v] > cfg.MaxP {
					k.p[v] = cfg.MaxP
				}
			}
		}
	}
}

func (k *feedbackBulk) BeepProbabilities(dst []float64) { copy(dst, k.p) }

// sweepBulk is sweepNode over packed phase/step counters. Counters
// advance only on BeepAll, so dormant (not yet woken) nodes hold their
// schedule position exactly as per-node automata do.
type sweepBulk struct {
	phase, step []int32
}

var _ beep.BulkAutomaton = (*sweepBulk)(nil)
var _ beep.BulkProbabilityReporter = (*sweepBulk)(nil)
var _ beep.BulkResetter = (*sweepBulk)(nil)
var _ beep.BulkRanger = (*sweepBulk)(nil)

// NewGlobalSweepBulk returns the columnar kernel of the DISC'11 sweeping
// schedule, interchangeable with NewGlobalSweep.
func NewGlobalSweepBulk() beep.BulkFactory {
	return func(net beep.NetworkInfo) beep.BulkAutomaton {
		k := &sweepBulk{phase: make([]int32, net.N), step: make([]int32, net.N)}
		for v := range k.phase {
			k.phase[v] = 1
		}
		return k
	}
}

func (k *sweepBulk) BeepAll(active graph.Bitset, streams []*rng.Source, out graph.Bitset) {
	k.BeepRange(active, streams, out, 0, len(active))
}

//misvet:noalloc
func (k *sweepBulk) BeepRange(active graph.Bitset, streams []*rng.Source, out graph.Bitset, loWord, hiWord int) {
	for wi := loWord; wi < hiWord; wi++ {
		w := active[wi]
		base := wi << 6
		var beeps uint64
		for w != 0 {
			b := uint(bits.TrailingZeros64(w))
			w &= w - 1
			v := base + int(b)
			p := math.Ldexp(1, -int(k.step[v]))
			k.step[v]++
			if k.step[v] > k.phase[v] {
				k.phase[v]++
				k.step[v] = 0
			}
			if streams[v].Bernoulli(p) {
				beeps |= 1 << b
			}
		}
		out[wi] |= beeps
	}
}

func (k *sweepBulk) ObserveAll(observed, beeped, heard graph.Bitset) {} // global schedule: feedback unused

func (k *sweepBulk) ObserveRange(observed, beeped, heard graph.Bitset, loWord, hiWord int) {}

func (k *sweepBulk) ResetNodes(nodes []int) {
	for _, v := range nodes {
		k.phase[v] = 1
		k.step[v] = 0
	}
}

func (k *sweepBulk) BeepProbabilities(dst []float64) {
	for v := range dst {
		dst[v] = math.Ldexp(1, -int(k.step[v]))
	}
}

// afekBulk is afekNode over packed probability and level-counter arrays.
type afekBulk struct {
	p       []float64
	counter []int32
	perLvl  int32
	initial float64 // starting probability 1/(D+1), restored by ResetNodes
}

var _ beep.BulkAutomaton = (*afekBulk)(nil)
var _ beep.BulkProbabilityReporter = (*afekBulk)(nil)
var _ beep.BulkResetter = (*afekBulk)(nil)
var _ beep.BulkRanger = (*afekBulk)(nil)

// NewAfekOriginalBulk returns the columnar kernel of the Science'11
// schedule, interchangeable with NewAfekOriginal.
func NewAfekOriginalBulk(cfg AfekOriginalConfig) beep.BulkFactory {
	return func(net beep.NetworkInfo) beep.BulkAutomaton {
		perLvl := cfg.StepsPerLevel
		if perLvl <= 0 {
			perLvl = int(math.Ceil(math.Log2(float64(net.N + 1))))
			if perLvl < 1 {
				perLvl = 1
			}
		}
		d := net.MaxDegree
		if d < 1 {
			d = 1
		}
		k := &afekBulk{
			p:       make([]float64, net.N),
			counter: make([]int32, net.N),
			perLvl:  int32(perLvl),
			initial: 1 / float64(d+1),
		}
		for v := range k.p {
			k.p[v] = k.initial
		}
		return k
	}
}

func (k *afekBulk) BeepAll(active graph.Bitset, streams []*rng.Source, out graph.Bitset) {
	k.BeepRange(active, streams, out, 0, len(active))
}

//misvet:noalloc
func (k *afekBulk) BeepRange(active graph.Bitset, streams []*rng.Source, out graph.Bitset, loWord, hiWord int) {
	for wi := loWord; wi < hiWord; wi++ {
		w := active[wi]
		base := wi << 6
		var beeps uint64
		for w != 0 {
			b := uint(bits.TrailingZeros64(w))
			w &= w - 1
			v := base + int(b)
			p := k.p[v]
			k.counter[v]++
			if k.counter[v] >= k.perLvl && k.p[v] < 0.5 {
				k.counter[v] = 0
				k.p[v] *= 2
				if k.p[v] > 0.5 {
					k.p[v] = 0.5
				}
			}
			if streams[v].Bernoulli(p) {
				beeps |= 1 << b
			}
		}
		out[wi] |= beeps
	}
}

func (k *afekBulk) ObserveAll(observed, beeped, heard graph.Bitset) {} // global schedule: feedback unused

func (k *afekBulk) ObserveRange(observed, beeped, heard graph.Bitset, loWord, hiWord int) {}

func (k *afekBulk) ResetNodes(nodes []int) {
	for _, v := range nodes {
		k.p[v] = k.initial
		k.counter[v] = 0
	}
}

func (k *afekBulk) BeepProbabilities(dst []float64) { copy(dst, k.p) }
