package mis

import (
	"fmt"
	"math"

	"beepmis/internal/beep"
	"beepmis/internal/rng"
)

// sweepNode implements the refined Afek et al. DISC'11 schedule described
// in §1 of the paper: the computation is divided into phases 1, 2, 3, …;
// phase k has k+1 steps during which p takes the values
// 1, 1/2, 1/4, …, 2^-k. All nodes advance through the same global
// schedule in lockstep, ignoring feedback — which is exactly the class of
// algorithms Theorem 1 proves needs Ω(log² n) steps.
type sweepNode struct {
	phase int // current phase k >= 1
	step  int // step within phase, 0..phase
}

var _ beep.Automaton = (*sweepNode)(nil)
var _ beep.ProbabilityReporter = (*sweepNode)(nil)

func (s *sweepNode) BeepProbability() float64 {
	return math.Ldexp(1, -s.step) // 2^-step
}

func (s *sweepNode) Beep(r *rng.Source) bool {
	p := s.BeepProbability()
	s.step++
	if s.step > s.phase {
		s.phase++
		s.step = 0
	}
	return r.Bernoulli(p)
}

func (s *sweepNode) Observe(beep.Outcome) {} // global schedule: feedback unused

// NewGlobalSweep returns a factory for the DISC'11 sweeping schedule.
func NewGlobalSweep() beep.Factory {
	return func(beep.NodeInfo) beep.Automaton {
		return &sweepNode{phase: 1, step: 0}
	}
}

// AfekOriginalConfig parameterises the Science'11 schedule, which —
// unlike the DISC'11 refinement — assumes every node knows the network
// size n and (an upper bound on) the maximum degree D.
type AfekOriginalConfig struct {
	// StepsPerLevel is the number of time steps spent at each
	// probability level before doubling; the paper's analysis takes it
	// Θ(log n). If zero it defaults to ceil(log2 n) computed per network.
	StepsPerLevel int
}

// afekNode starts at p = 1/(D+1) and doubles p every StepsPerLevel steps
// up to 1/2, then stays there. This reproduces the Science'11 scheme of
// "gradually increasing" globally-computed probabilities.
type afekNode struct {
	p       float64
	level   int
	perLvl  int
	counter int
}

var _ beep.Automaton = (*afekNode)(nil)
var _ beep.ProbabilityReporter = (*afekNode)(nil)

func (a *afekNode) BeepProbability() float64 { return a.p }

func (a *afekNode) Beep(r *rng.Source) bool {
	p := a.p
	a.counter++
	if a.counter >= a.perLvl && a.p < 0.5 {
		a.counter = 0
		a.p *= 2
		if a.p > 0.5 {
			a.p = 0.5
		}
	}
	return r.Bernoulli(p)
}

func (a *afekNode) Observe(beep.Outcome) {} // global schedule: feedback unused

// NewAfekOriginal returns a factory for the Science'11 schedule.
func NewAfekOriginal(cfg AfekOriginalConfig) beep.Factory {
	return func(info beep.NodeInfo) beep.Automaton {
		perLvl := cfg.StepsPerLevel
		if perLvl <= 0 {
			perLvl = int(math.Ceil(math.Log2(float64(info.N + 1))))
			if perLvl < 1 {
				perLvl = 1
			}
		}
		d := info.MaxDegree
		if d < 1 {
			d = 1
		}
		return &afekNode{p: 1 / float64(d+1), perLvl: perLvl}
	}
}

// fixedNode beeps with a constant probability forever: the simplest
// member of the globally-preset class, useful as a floor in the Theorem 1
// experiment.
type fixedNode struct{ p float64 }

var _ beep.Automaton = (*fixedNode)(nil)
var _ beep.ProbabilityReporter = (*fixedNode)(nil)

func (f *fixedNode) Beep(r *rng.Source) bool  { return r.Bernoulli(f.p) }
func (f *fixedNode) Observe(beep.Outcome)     {}
func (f *fixedNode) BeepProbability() float64 { return f.p }

// NewFixedProb returns a factory whose nodes beep with constant
// probability p.
func NewFixedProb(p float64) (beep.Factory, error) {
	if p <= 0 || p > 1 {
		return nil, fmt.Errorf("mis: fixed probability %v outside (0,1]", p)
	}
	return func(beep.NodeInfo) beep.Automaton {
		return &fixedNode{p: p}
	}, nil
}
