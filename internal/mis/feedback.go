// Package mis implements the paper's maximal-independent-set algorithms:
// the feedback algorithm of Scott, Jeavons & Xu (the core contribution,
// §4 Definition 1 / Table 1), the globally-swept schedule of Afek et al.
// DISC'11 (§1), the original Afek et al. Science'11 schedule that assumes
// knowledge of n and the maximum degree, a fixed-probability strawman
// (the simplest member of the Theorem 1 lower-bound class), Luby's
// algorithm as the classical O(log n) baseline, and a centralised greedy
// reference.
package mis

import (
	"fmt"

	"beepmis/internal/beep"
	"beepmis/internal/rng"
)

// FeedbackConfig parameterises the paper's feedback algorithm. The paper
// proves O(log n) expected time for halving/doubling (Factor = 2) with
// InitialP = MaxP = 1/2, and its conclusion notes the analysis tolerates a
// wide range of factors and initial values — which the ablation
// experiments sweep.
type FeedbackConfig struct {
	// InitialP is the starting beep probability. Default 1/2.
	InitialP float64
	// Factor is the multiplicative feedback step: hearing a beep divides
	// p by Factor, silence multiplies it by Factor (capped at MaxP).
	// Default 2 (the paper's halve/double rule). Must be > 1.
	Factor float64
	// MaxP caps the beep probability. Default 1/2, per Definition 1
	// (n(t,v) >= 1 ⇔ p <= 1/2).
	MaxP float64
	// MinP floors the beep probability; 0 means no floor (the paper has
	// none — p may shrink indefinitely while a node keeps hearing
	// beeps). Exposed for the probability-floor ablation.
	MinP float64
}

func (c FeedbackConfig) withDefaults() FeedbackConfig {
	if c.InitialP == 0 {
		c.InitialP = 0.5
	}
	if c.Factor == 0 {
		c.Factor = 2
	}
	if c.MaxP == 0 {
		c.MaxP = 0.5
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c FeedbackConfig) Validate() error {
	c = c.withDefaults()
	if c.Factor <= 1 {
		return fmt.Errorf("mis: feedback factor must be > 1, got %v", c.Factor)
	}
	if c.InitialP <= 0 || c.InitialP > 1 {
		return fmt.Errorf("mis: feedback initial probability %v outside (0,1]", c.InitialP)
	}
	if c.MaxP <= 0 || c.MaxP > 1 {
		return fmt.Errorf("mis: feedback max probability %v outside (0,1]", c.MaxP)
	}
	if c.MinP < 0 || c.MinP > c.MaxP {
		return fmt.Errorf("mis: feedback min probability %v outside [0, MaxP]", c.MinP)
	}
	return nil
}

// feedbackNode is the per-node automaton of Table 1: beep with local
// probability p; halve p when a neighbour beeps, double it (up to MaxP)
// otherwise. With the default Factor = 2 every value of p is a power of
// two, which float64 represents exactly, so the executions match
// Definition 1's integer-exponent formulation bit-for-bit.
type feedbackNode struct {
	p   float64
	cfg FeedbackConfig
}

var _ beep.Automaton = (*feedbackNode)(nil)
var _ beep.ProbabilityReporter = (*feedbackNode)(nil)

func (f *feedbackNode) Beep(r *rng.Source) bool { return r.Bernoulli(f.p) }

func (f *feedbackNode) Observe(o beep.Outcome) {
	if o.Heard {
		f.p /= f.cfg.Factor
		if f.cfg.MinP > 0 && f.p < f.cfg.MinP {
			f.p = f.cfg.MinP
		}
		return
	}
	f.p *= f.cfg.Factor
	if f.p > f.cfg.MaxP {
		f.p = f.cfg.MaxP
	}
}

func (f *feedbackNode) BeepProbability() float64 { return f.p }

// NewFeedback returns a factory for the paper's feedback algorithm.
// NewFeedback(FeedbackConfig{}) gives exactly the published algorithm.
func NewFeedback(cfg FeedbackConfig) (beep.Factory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	start := cfg.InitialP
	if start > cfg.MaxP {
		start = cfg.MaxP
	}
	return func(beep.NodeInfo) beep.Automaton {
		return &feedbackNode{p: start, cfg: cfg}
	}, nil
}

// NewFeedbackHeterogeneous returns a feedback factory whose initial
// probability varies per node, supplied by initial(id). Used by the
// ablate-init experiment exercising the paper's robustness claim that
// initial values "may vary from node to node".
func NewFeedbackHeterogeneous(cfg FeedbackConfig, initial func(id int) float64) (beep.Factory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return func(info beep.NodeInfo) beep.Automaton {
		p := initial(info.ID)
		if p <= 0 {
			p = cfg.InitialP
		}
		if p > cfg.MaxP {
			p = cfg.MaxP
		}
		return &feedbackNode{p: p, cfg: cfg}
	}, nil
}
