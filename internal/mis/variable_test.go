package mis

import (
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/rng"
)

func TestVariableConfigValidate(t *testing.T) {
	good := []VariableConfig{
		{},
		{FactorLo: 1.5, FactorHi: 3},
		{FactorLo: 2, FactorHi: 2},
		{PerNode: func(int) float64 { return 0.25 }},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
	bad := []VariableConfig{
		{FactorLo: 1, FactorHi: 2},
		{FactorLo: 3, FactorHi: 2},
		{FactorLo: 0.5, FactorHi: 0.9},
		{Base: FeedbackConfig{Factor: 0.5}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad case %d accepted: %+v", i, cfg)
		}
	}
}

func TestVariablePerNodeInitial(t *testing.T) {
	f, err := NewFeedbackVariable(VariableConfig{
		PerNode: func(id int) float64 {
			if id == 0 {
				return 0.25
			}
			return 9 // invalid → fallback to base
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a0 := f(beep.NodeInfo{ID: 0})
	a1 := f(beep.NodeInfo{ID: 1})
	if p := probOf(t, a0); p != 0.25 {
		t.Fatalf("node 0 p = %v", p)
	}
	if p := probOf(t, a1); p != 0.5 {
		t.Fatalf("node 1 p = %v (fallback)", p)
	}
}

func TestVariableJitteredFactorStaysInRange(t *testing.T) {
	f, err := NewFeedbackVariable(VariableConfig{FactorLo: 1.5, FactorHi: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := f(beep.NodeInfo{})
	src := rng.New(3)
	p := probOf(t, a)
	for i := 0; i < 200; i++ {
		a.Beep(src)
		prev := p
		a.Observe(beep.Outcome{Heard: true})
		p = probOf(t, a)
		ratio := prev / p
		if ratio < 1.5-1e-9 || ratio > 4+1e-9 {
			t.Fatalf("step %d: factor %v outside [1.5, 4]", i, ratio)
		}
	}
	// Recovery is capped at MaxP.
	for i := 0; i < 300; i++ {
		a.Beep(src)
		a.Observe(beep.Outcome{})
	}
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("p = %v, want capped at 0.5", p)
	}
}

func TestVariableFixedLoEqualsHi(t *testing.T) {
	f, err := NewFeedbackVariable(VariableConfig{FactorLo: 3, FactorHi: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := f(beep.NodeInfo{})
	src := rng.New(4)
	a.Beep(src)
	a.Observe(beep.Outcome{Heard: true})
	if p := probOf(t, a); p != 0.5/3 {
		t.Fatalf("p = %v, want 1/6", p)
	}
}

func TestVariableObserveBeforeBeepSafe(t *testing.T) {
	f, err := NewFeedbackVariable(VariableConfig{FactorLo: 2, FactorHi: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := f(beep.NodeInfo{})
	// Defensive path: must not panic and must use the base factor.
	a.Observe(beep.Outcome{Heard: true})
	if p := probOf(t, a); p != 0.25 {
		t.Fatalf("p = %v, want 0.25 via base factor", p)
	}
}
