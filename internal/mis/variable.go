package mis

import (
	"fmt"

	"beepmis/internal/beep"
	"beepmis/internal/rng"
)

// VariableConfig parameterises the fully-general feedback variant the
// paper's conclusion sketches: "the probabilities at each node do not
// need to increase and decrease by a precise factor — the analysis we
// have given here can be adapted to a wide range of different values for
// these factors, which may vary between nodes and over time".
type VariableConfig struct {
	// Base is the reference configuration (defaults as in
	// FeedbackConfig).
	Base FeedbackConfig
	// FactorLo and FactorHi bound the per-step update factor: each time
	// a node adjusts its probability it draws a fresh factor uniformly
	// from [FactorLo, FactorHi]. Both must be > 1; zero values default
	// to the base factor (no jitter).
	FactorLo, FactorHi float64
	// PerNode, if non-nil, overrides the initial probability per node
	// (values outside (0, MaxP] fall back to the base initial).
	PerNode func(id int) float64
}

// Validate reports whether the configuration is usable.
func (c VariableConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.FactorLo == 0 && c.FactorHi == 0 {
		return nil
	}
	if c.FactorLo <= 1 || c.FactorHi < c.FactorLo {
		return fmt.Errorf("mis: variable factor range [%v, %v] invalid (need 1 < lo <= hi)", c.FactorLo, c.FactorHi)
	}
	return nil
}

// variableNode is feedbackNode with a per-step random factor: the same
// halve/double structure, but the multiplicative step is drawn fresh
// from [lo, hi] at every adjustment, making the schedule heterogeneous
// across both nodes and time.
type variableNode struct {
	p      float64
	cfg    FeedbackConfig
	lo, hi float64
	// factorSrc supplies the per-step factors. It is the node's own
	// stream, shared with the beep draws — the factor draw happens
	// inside Observe, which the engines call in the same positions, so
	// engine equivalence is preserved.
	factorSrc *rng.Source
}

var _ beep.Automaton = (*variableNode)(nil)
var _ beep.ProbabilityReporter = (*variableNode)(nil)

func (v *variableNode) Beep(r *rng.Source) bool {
	// Capture the node's stream on first use so Observe can draw
	// factors from the same deterministic sequence.
	v.factorSrc = r
	return r.Bernoulli(v.p)
}

func (v *variableNode) Observe(o beep.Outcome) {
	factor := v.cfg.Factor
	switch {
	case v.factorSrc == nil:
		// Observe before any Beep cannot happen under either engine's
		// contract; fall back to the base factor defensively.
	case v.hi > v.lo:
		factor = v.lo + (v.hi-v.lo)*v.factorSrc.Float64()
	case v.lo > 1:
		factor = v.lo
	}
	if o.Heard {
		v.p /= factor
		if v.cfg.MinP > 0 && v.p < v.cfg.MinP {
			v.p = v.cfg.MinP
		}
		return
	}
	v.p *= factor
	if v.p > v.cfg.MaxP {
		v.p = v.cfg.MaxP
	}
}

func (v *variableNode) BeepProbability() float64 { return v.p }

// NewFeedbackVariable returns a factory for the generalised feedback
// algorithm with per-node initial probabilities and per-step random
// factors.
func NewFeedbackVariable(cfg VariableConfig) (beep.Factory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base := cfg.Base.withDefaults()
	return func(info beep.NodeInfo) beep.Automaton {
		p := base.InitialP
		if cfg.PerNode != nil {
			if custom := cfg.PerNode(info.ID); custom > 0 && custom <= base.MaxP {
				p = custom
			}
		}
		if p > base.MaxP {
			p = base.MaxP
		}
		return &variableNode{p: p, cfg: base, lo: cfg.FactorLo, hi: cfg.FactorHi}
	}, nil
}
