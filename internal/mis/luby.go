package mis

import (
	"fmt"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// LubyVariant selects which formulation of Luby's algorithm to run.
type LubyVariant int

const (
	// LubyPermutation is the random-priority variant: each round every
	// active node draws a random 64-bit value and joins if it is a
	// strict local minimum among active neighbours.
	LubyPermutation LubyVariant = iota + 1
	// LubyProbability is Luby's original marking variant: each active
	// node marks itself with probability 1/(2d), conflicts between
	// adjacent marked nodes are resolved in favour of the higher degree
	// (ties by id), and surviving marked nodes join.
	LubyProbability
)

// String implements fmt.Stringer.
func (v LubyVariant) String() string {
	switch v {
	case LubyPermutation:
		return "luby-permutation"
	case LubyProbability:
		return "luby-probability"
	default:
		return fmt.Sprintf("luby-variant(%d)", int(v))
	}
}

// LubyResult reports a Luby execution. Unlike the beeping algorithms,
// Luby's algorithm exchanges multi-bit numeric messages; Messages and
// Bits make that cost visible next to the beeping algorithms' one-bit
// channel use (cf. §5 of the paper).
type LubyResult struct {
	// InMIS is the computed maximal independent set.
	InMIS []bool
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Messages counts directed node-to-neighbour messages sent.
	Messages int
	// Bits counts total message payload bits (64 per value message, 1
	// per mark/join notification).
	Bits int
}

// Luby computes an MIS with the selected variant of Luby's algorithm.
// It is the classical O(log n) distributed baseline the paper compares
// against. The execution is deterministic given src.
func Luby(g *graph.Graph, variant LubyVariant, src *rng.Source) (*LubyResult, error) {
	switch variant {
	case LubyPermutation:
		return lubyPermutation(g, src), nil
	case LubyProbability:
		return lubyProbability(g, src), nil
	default:
		return nil, fmt.Errorf("mis: unknown Luby variant %d", int(variant))
	}
}

func lubyPermutation(g *graph.Graph, src *rng.Source) *LubyResult {
	n := g.N()
	res := &LubyResult{InMIS: make([]bool, n)}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	remaining := n
	vals := make([]uint64, n)
	for remaining > 0 {
		res.Rounds++
		// Each active node draws a priority and sends it to all active
		// neighbours.
		for v := 0; v < n; v++ {
			if active[v] {
				vals[v] = src.Uint64()
			}
		}
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if active[w] {
					res.Messages++
					res.Bits += 64
				}
			}
		}
		// Local minima join; they and their neighbours retire.
		joined := make([]bool, n)
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			isMin := true
			for _, w := range g.Neighbors(v) {
				if !active[w] {
					continue
				}
				// Strict comparison with id tie-break keeps the rule a
				// total order even on (vanishingly unlikely) collisions.
				if vals[w] < vals[v] || (vals[w] == vals[v] && int(w) < v) {
					isMin = false
					break
				}
			}
			if isMin {
				joined[v] = true
			}
		}
		for v := 0; v < n; v++ {
			if !joined[v] {
				continue
			}
			res.InMIS[v] = true
			if active[v] {
				active[v] = false
				remaining--
			}
			for _, w := range g.Neighbors(v) {
				res.Messages++ // join announcement
				res.Bits++
				if active[w] {
					active[w] = false
					remaining--
				}
			}
		}
	}
	return res
}

func lubyProbability(g *graph.Graph, src *rng.Source) *LubyResult {
	n := g.N()
	res := &LubyResult{InMIS: make([]bool, n)}
	active := make([]bool, n)
	deg := make([]int, n) // degree within the residual (active) graph
	for v := 0; v < n; v++ {
		active[v] = true
		deg[v] = g.Degree(v)
	}
	remaining := n
	marked := make([]bool, n)
	for remaining > 0 {
		res.Rounds++
		for v := 0; v < n; v++ {
			if !active[v] {
				marked[v] = false
				continue
			}
			if deg[v] == 0 {
				marked[v] = true // isolated in residual graph: join outright
				continue
			}
			marked[v] = src.Bernoulli(1 / (2 * float64(deg[v])))
		}
		// Marked nodes tell neighbours their mark and degree.
		for v := 0; v < n; v++ {
			if !active[v] || !marked[v] {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if active[w] {
					res.Messages++
					res.Bits += 64
				}
			}
		}
		// Conflict resolution: between adjacent marked nodes, the one of
		// lower degree (ties: lower id) unmarks.
		joined := make([]bool, n)
		for v := 0; v < n; v++ {
			if !active[v] || !marked[v] {
				continue
			}
			win := true
			for _, w := range g.Neighbors(v) {
				if !active[w] || !marked[w] {
					continue
				}
				if deg[w] > deg[v] || (deg[w] == deg[v] && int(w) > v) {
					win = false
					break
				}
			}
			if win {
				joined[v] = true
			}
		}
		// Retire joiners and their neighbours; update residual degrees.
		retired := make([]int32, 0, 16)
		for v := 0; v < n; v++ {
			if !joined[v] {
				continue
			}
			res.InMIS[v] = true
			if active[v] {
				active[v] = false
				remaining--
				retired = append(retired, int32(v))
			}
			for _, w := range g.Neighbors(v) {
				res.Messages++
				res.Bits++
				if active[w] {
					active[w] = false
					remaining--
					retired = append(retired, w)
				}
			}
		}
		for _, v := range retired {
			for _, w := range g.Neighbors(int(v)) {
				if active[w] {
					deg[w]--
				}
			}
		}
	}
	return res
}
