package mis

import (
	"fmt"
	"math"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// TestBulkRangePartitionMatchesFull is the kernel-level contract test
// behind the simulator's sharded eligible-draw phase: for every kernel,
// running BeepRange/ObserveRange over an arbitrary partition of the
// word space — visited in REVERSE order, the harshest legal schedule a
// concurrent pool could produce — must be bit-identical to one
// BeepAll/ObserveAll sweep on a twin kernel, including the reported
// probabilities. Per-node packed state and per-node streams make each
// node's draw independent of every other's; this test is what keeps a
// future kernel from quietly breaking that property.
func TestBulkRangePartitionMatchesFull(t *testing.T) {
	for _, spec := range bulkSpecs() {
		for _, n := range []int{63, 65, 130, 521} {
			for _, parts := range []int{2, 3, 7} {
				name := fmt.Sprintf("%s/n=%d/parts=%d", spec.Name, n, parts)
				t.Run(name, func(t *testing.T) {
					driveRangedAgainstFull(t, spec, n, parts, 12, uint64(n)*uint64(parts)+7)
				})
			}
		}
	}
}

func driveRangedAgainstFull(t *testing.T, spec Spec, n, parts, rounds int, seed uint64) {
	t.Helper()
	_, bulkFactory, err := NewFactories(spec)
	if err != nil {
		t.Fatal(err)
	}
	degrees := make([]int, n)
	maskSrc := rng.New(seed ^ 0xdecaf)
	maxDeg := 0
	for v := range degrees {
		degrees[v] = maskSrc.Intn(n)
		if degrees[v] > maxDeg {
			maxDeg = degrees[v]
		}
	}
	net := beep.NetworkInfo{N: n, Degrees: degrees, MaxDegree: maxDeg}
	full := bulkFactory(net)
	ranged := bulkFactory(net)
	ranger, ok := ranged.(beep.BulkRanger)
	if !ok {
		t.Fatalf("kernel %T does not implement beep.BulkRanger", ranged)
	}
	fullStreams := make([]*rng.Source, n)
	rangedStreams := make([]*rng.Source, n)
	for v := 0; v < n; v++ {
		fullStreams[v] = rng.New(seed).Stream(uint64(v))
		rangedStreams[v] = rng.New(seed).Stream(uint64(v))
	}

	words := (n + 63) / 64
	chunk := (words + parts - 1) / parts
	var bounds [][2]int
	for lo := 0; lo < words; lo += chunk {
		bounds = append(bounds, [2]int{lo, min(lo+chunk, words)})
	}

	active := graph.NewBitset(n)
	heard := graph.NewBitset(n)
	observed := graph.NewBitset(n)
	beepedFull := graph.NewBitset(n)
	beepedRanged := graph.NewBitset(n)
	probsFull := make([]float64, n)
	probsRanged := make([]float64, n)
	randomMask := func(b graph.Bitset, within graph.Bitset) {
		b.Zero()
		for v := 0; v < n; v++ {
			if (within == nil || within.Test(v)) && maskSrc.Intn(2) == 1 {
				b.Set(v)
			}
		}
	}
	for round := 0; round < rounds; round++ {
		randomMask(active, nil)
		randomMask(heard, nil)
		randomMask(observed, active)

		beepedFull.Zero()
		full.BeepAll(active, fullStreams, beepedFull)
		beepedRanged.Zero()
		for i := len(bounds) - 1; i >= 0; i-- {
			ranger.BeepRange(active, rangedStreams, beepedRanged, bounds[i][0], bounds[i][1])
		}
		for wi := 0; wi < words; wi++ {
			if beepedFull[wi] != beepedRanged[wi] {
				t.Fatalf("round %d word %d: ranged beeps %064b, full %064b", round, wi, beepedRanged[wi], beepedFull[wi])
			}
		}

		full.ObserveAll(observed, beepedFull, heard)
		for i := len(bounds) - 1; i >= 0; i-- {
			ranger.ObserveRange(observed, beepedRanged, heard, bounds[i][0], bounds[i][1])
		}

		full.(beep.BulkProbabilityReporter).BeepProbabilities(probsFull)
		ranged.(beep.BulkProbabilityReporter).BeepProbabilities(probsRanged)
		for v := 0; v < n; v++ {
			if probsFull[v] != probsRanged[v] && !(math.IsNaN(probsFull[v]) && math.IsNaN(probsRanged[v])) {
				t.Fatalf("round %d node %d: ranged p=%v, full p=%v", round, v, probsRanged[v], probsFull[v])
			}
		}
	}
}
