package mis

import (
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// Greedy computes an MIS with the trivial centralised sequential scan the
// paper's introduction describes: visit vertices in order, adding each
// vertex that does not violate independence. It is the correctness
// reference for every distributed algorithm's output and the
// "centralised" baseline (Θ(n + m) sequential work, versus the
// distributed algorithms' O(log n) parallel rounds).
func Greedy(g *graph.Graph) []bool {
	return greedyOrder(g, nil)
}

// GreedyRandomOrder is Greedy over a uniformly random vertex order, which
// yields the same output distribution as one full run of Luby's
// permutation variant collapsed to a sequential process.
func GreedyRandomOrder(g *graph.Graph, src *rng.Source) []bool {
	return greedyOrder(g, src.Perm(g.N()))
}

func greedyOrder(g *graph.Graph, order []int) []bool {
	n := g.N()
	set := make([]bool, n)
	blocked := make([]bool, n)
	visit := func(v int) {
		if blocked[v] {
			return
		}
		set[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	if order == nil {
		for v := 0; v < n; v++ {
			visit(v)
		}
	} else {
		for _, v := range order {
			visit(v)
		}
	}
	return set
}
