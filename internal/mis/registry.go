package mis

import (
	"fmt"
	"sort"

	"beepmis/internal/beep"
)

// Algorithm names accepted by NewFactory and the CLIs.
const (
	NameFeedback    = "feedback"
	NameGlobalSweep = "globalsweep"
	NameAfek        = "afek"
	NameFixed       = "fixed"
)

// Spec selects and configures a beeping algorithm by name; the zero
// values of the embedded configs mean "paper defaults".
type Spec struct {
	// Name is one of NameFeedback, NameGlobalSweep, NameAfek, NameFixed.
	Name string
	// Feedback configures the feedback algorithm (Name == NameFeedback).
	Feedback FeedbackConfig
	// Afek configures the Science'11 schedule (Name == NameAfek).
	Afek AfekOriginalConfig
	// FixedP is the constant probability for Name == NameFixed; zero
	// defaults to 1/2.
	FixedP float64
}

// NewFactory builds the automaton factory for spec.
func NewFactory(spec Spec) (beep.Factory, error) {
	switch spec.Name {
	case NameFeedback:
		return NewFeedback(spec.Feedback)
	case NameGlobalSweep:
		return NewGlobalSweep(), nil
	case NameAfek:
		return NewAfekOriginal(spec.Afek), nil
	case NameFixed:
		p := spec.FixedP
		if p == 0 {
			p = 0.5
		}
		return NewFixedProb(p)
	default:
		return nil, fmt.Errorf("mis: unknown algorithm %q (have %v)", spec.Name, Names())
	}
}

// Names returns the registered beeping-algorithm names, sorted.
func Names() []string {
	names := []string{NameFeedback, NameGlobalSweep, NameAfek, NameFixed}
	sort.Strings(names)
	return names
}
