package mis

import (
	"fmt"
	"sort"

	"beepmis/internal/beep"
)

// Algorithm names accepted by NewFactory and the CLIs.
const (
	NameFeedback    = "feedback"
	NameGlobalSweep = "globalsweep"
	NameAfek        = "afek"
	NameFixed       = "fixed"
)

// Spec selects and configures a beeping algorithm by name; the zero
// values of the embedded configs mean "paper defaults".
type Spec struct {
	// Name is one of NameFeedback, NameGlobalSweep, NameAfek, NameFixed.
	Name string
	// Feedback configures the feedback algorithm (Name == NameFeedback).
	Feedback FeedbackConfig
	// Afek configures the Science'11 schedule (Name == NameAfek).
	Afek AfekOriginalConfig
	// FixedP is the constant probability for Name == NameFixed; zero
	// defaults to 1/2.
	FixedP float64
}

// NewFactory builds the per-node automaton factory for spec.
func NewFactory(spec Spec) (beep.Factory, error) {
	factory, _, err := NewFactories(spec)
	return factory, err
}

// NewFactories builds both execution forms of spec's algorithm: the
// per-node automaton factory (every engine) and the columnar bulk kernel
// (the columnar engine's fast path). The bulk factory is nil for
// algorithms without a kernel — currently the fixed-probability strawman
// — in which case engines fall back to per-node automata. Both forms are
// bit-identical for any seed.
func NewFactories(spec Spec) (beep.Factory, beep.BulkFactory, error) {
	switch spec.Name {
	case NameFeedback:
		factory, err := NewFeedback(spec.Feedback)
		if err != nil {
			return nil, nil, err
		}
		bulk, err := NewFeedbackBulk(spec.Feedback)
		if err != nil {
			return nil, nil, err
		}
		return factory, bulk, nil
	case NameGlobalSweep:
		return NewGlobalSweep(), NewGlobalSweepBulk(), nil
	case NameAfek:
		return NewAfekOriginal(spec.Afek), NewAfekOriginalBulk(spec.Afek), nil
	case NameFixed:
		p := spec.FixedP
		if p == 0 {
			p = 0.5
		}
		factory, err := NewFixedProb(p)
		if err != nil {
			return nil, nil, err
		}
		return factory, nil, nil
	default:
		return nil, nil, fmt.Errorf("mis: unknown algorithm %q (have %v)", spec.Name, Names())
	}
}

// Names returns the registered beeping-algorithm names, sorted.
func Names() []string {
	names := []string{NameFeedback, NameGlobalSweep, NameAfek, NameFixed}
	sort.Strings(names)
	return names
}
