package mis

import (
	"math"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/rng"
)

func mustFeedback(t *testing.T, cfg FeedbackConfig) beep.Automaton {
	t.Helper()
	f, err := NewFeedback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f(beep.NodeInfo{ID: 0, N: 10, Degree: 3, MaxDegree: 5})
}

func probOf(t *testing.T, a beep.Automaton) float64 {
	t.Helper()
	pr, ok := a.(beep.ProbabilityReporter)
	if !ok {
		t.Fatal("automaton does not report probability")
	}
	return pr.BeepProbability()
}

func TestFeedbackDefaults(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{})
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("initial p = %v, want 0.5", p)
	}
}

func TestFeedbackHalvesOnBeep(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{})
	a.Observe(beep.Outcome{Heard: true})
	if p := probOf(t, a); p != 0.25 {
		t.Fatalf("p = %v after one heard beep, want 0.25", p)
	}
	a.Observe(beep.Outcome{Heard: true})
	if p := probOf(t, a); p != 0.125 {
		t.Fatalf("p = %v after two heard beeps, want 0.125", p)
	}
}

func TestFeedbackDoublesOnSilenceCapped(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{})
	a.Observe(beep.Outcome{Heard: true})
	a.Observe(beep.Outcome{Heard: true}) // p = 1/8
	a.Observe(beep.Outcome{})            // p = 1/4
	if p := probOf(t, a); p != 0.25 {
		t.Fatalf("p = %v, want 0.25", p)
	}
	a.Observe(beep.Outcome{}) // p = 1/2
	a.Observe(beep.Outcome{}) // capped
	a.Observe(beep.Outcome{}) // capped
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("p = %v, want capped at 0.5", p)
	}
}

func TestFeedbackPowersOfTwoExact(t *testing.T) {
	// With factor 2 every reachable p must be an exact power of two, so
	// the float implementation matches Definition 1's integer exponents.
	a := mustFeedback(t, FeedbackConfig{})
	for i := 0; i < 100; i++ {
		a.Observe(beep.Outcome{Heard: i%3 != 0})
		p := probOf(t, a)
		frac, exp := math.Frexp(p)
		if frac != 0.5 {
			t.Fatalf("p = %v (frexp %v,%d) is not a power of two", p, frac, exp)
		}
	}
}

func TestFeedbackCustomFactor(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{Factor: 3})
	a.Observe(beep.Outcome{Heard: true})
	if p := probOf(t, a); math.Abs(p-0.5/3) > 1e-15 {
		t.Fatalf("p = %v, want 1/6", p)
	}
	a.Observe(beep.Outcome{})
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("p = %v, want back at 0.5", p)
	}
}

func TestFeedbackMinPFloor(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{MinP: 0.1})
	for i := 0; i < 10; i++ {
		a.Observe(beep.Outcome{Heard: true})
	}
	if p := probOf(t, a); p != 0.1 {
		t.Fatalf("p = %v, want floored at 0.1", p)
	}
}

func TestFeedbackConfigValidate(t *testing.T) {
	bad := []FeedbackConfig{
		{Factor: 1},
		{Factor: 0.5},
		{InitialP: -0.1},
		{InitialP: 1.5},
		{MaxP: 2},
		{MinP: -1},
		{MinP: 0.9, MaxP: 0.5},
	}
	for i, cfg := range bad {
		if _, err := NewFeedback(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if _, err := NewFeedback(FeedbackConfig{}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestFeedbackInitialAboveCapClamped(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{InitialP: 1.0, MaxP: 0.5})
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("p = %v, want clamped to 0.5", p)
	}
}

func TestFeedbackBeepRate(t *testing.T) {
	a := mustFeedback(t, FeedbackConfig{})
	src := rng.New(42)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if a.Beep(src) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("beep rate %v, want ~0.5", rate)
	}
}

func TestFeedbackHeterogeneous(t *testing.T) {
	f, err := NewFeedbackHeterogeneous(FeedbackConfig{}, func(id int) float64 {
		return 1 / float64(id+2)
	})
	if err != nil {
		t.Fatal(err)
	}
	a0 := f(beep.NodeInfo{ID: 0})
	a2 := f(beep.NodeInfo{ID: 2})
	if p := probOf(t, a0); p != 0.5 {
		t.Fatalf("node 0 p = %v", p)
	}
	if p := probOf(t, a2); p != 0.25 {
		t.Fatalf("node 2 p = %v", p)
	}
	// Non-positive initial falls back to the config default.
	fz, err := NewFeedbackHeterogeneous(FeedbackConfig{}, func(int) float64 { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	if p := probOf(t, fz(beep.NodeInfo{})); p != 0.5 {
		t.Fatalf("fallback p = %v", p)
	}
}

func TestGlobalSweepSchedule(t *testing.T) {
	a := NewGlobalSweep()(beep.NodeInfo{})
	src := rng.New(1)
	// The paper's sequence: 1, 1/2 | 1, 1/2, 1/4 | 1, 1/2, 1/4, 1/8 | ...
	want := []float64{1, 0.5, 1, 0.5, 0.25, 1, 0.5, 0.25, 0.125, 1, 0.5, 0.25, 0.125, 0.0625}
	for i, w := range want {
		got := probOf(t, a)
		if got != w {
			t.Fatalf("step %d: p = %v, want %v", i, got, w)
		}
		a.Beep(src) // advance the schedule
	}
}

func TestGlobalSweepBeepsAtP1(t *testing.T) {
	a := NewGlobalSweep()(beep.NodeInfo{})
	src := rng.New(2)
	if !a.Beep(src) {
		t.Fatal("first step has p=1 and must beep")
	}
}

func TestAfekOriginalSchedule(t *testing.T) {
	f := NewAfekOriginal(AfekOriginalConfig{StepsPerLevel: 2})
	a := f(beep.NodeInfo{N: 16, MaxDegree: 7})
	src := rng.New(3)
	// p starts at 1/8, doubles every 2 steps: 1/8,1/8, 1/4,1/4, 1/2,...
	want := []float64{0.125, 0.125, 0.25, 0.25, 0.5, 0.5, 0.5}
	for i, w := range want {
		got := probOf(t, a)
		if got != w {
			t.Fatalf("step %d: p = %v, want %v", i, got, w)
		}
		a.Beep(src)
	}
}

func TestAfekOriginalDefaultStepsPerLevel(t *testing.T) {
	f := NewAfekOriginal(AfekOriginalConfig{})
	a := f(beep.NodeInfo{N: 1024, MaxDegree: 3})
	src := rng.New(4)
	// StepsPerLevel defaults to ceil(log2(1025)) = 11.
	for i := 0; i < 11; i++ {
		if p := probOf(t, a); p != 0.25 {
			t.Fatalf("step %d: p = %v, want 0.25", i, p)
		}
		a.Beep(src)
	}
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("after level: p = %v, want 0.5", p)
	}
}

func TestAfekOriginalDegreeZero(t *testing.T) {
	f := NewAfekOriginal(AfekOriginalConfig{StepsPerLevel: 1})
	a := f(beep.NodeInfo{N: 1, MaxDegree: 0})
	if p := probOf(t, a); p != 0.5 {
		t.Fatalf("isolated-network p = %v, want 1/2", p)
	}
}

func TestFixedProb(t *testing.T) {
	f, err := NewFixedProb(0.3)
	if err != nil {
		t.Fatal(err)
	}
	a := f(beep.NodeInfo{})
	if p := probOf(t, a); p != 0.3 {
		t.Fatalf("p = %v", p)
	}
	a.Observe(beep.Outcome{Heard: true})
	if p := probOf(t, a); p != 0.3 {
		t.Fatal("fixed probability must ignore feedback")
	}
	for _, bad := range []float64{0, -0.5, 1.5} {
		if _, err := NewFixedProb(bad); err == nil {
			t.Errorf("NewFixedProb(%v) accepted", bad)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		f, err := NewFactory(Spec{Name: name})
		if err != nil {
			t.Fatalf("NewFactory(%q): %v", name, err)
		}
		a := f(beep.NodeInfo{N: 4, MaxDegree: 2})
		if a == nil {
			t.Fatalf("factory %q returned nil automaton", name)
		}
	}
	if _, err := NewFactory(Spec{Name: "nope"}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := NewFactory(Spec{Name: NameFeedback, Feedback: FeedbackConfig{Factor: 0.5}}); err == nil {
		t.Fatal("invalid feedback config accepted through registry")
	}
}
