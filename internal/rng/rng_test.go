package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with same seed diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	a := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = a.Uint64()
	}
	a.Reseed(7)
	for i := range first {
		if got := a.Uint64(); got != first[i] {
			t.Fatalf("after Reseed draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestStreamStableAndIndependent(t *testing.T) {
	master := New(99)
	s1 := master.Stream(5)
	s2 := master.Stream(5)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("same stream id must yield identical streams")
		}
	}
	// Stream derivation must not depend on how much the master advanced.
	master2 := New(99)
	master2.Uint64()
	master2.Uint64()
	s3 := master2.Stream(5)
	s4 := New(99).Stream(5)
	for i := 0; i < 100; i++ {
		if s3.Uint64() != s4.Uint64() {
			t.Fatal("stream derivation must be independent of master draw position")
		}
	}
	// Distinct ids should not collide.
	sa, sb := New(99).Stream(1), New(99).Stream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if sa.Uint64() == sb.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 matched on %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniforms = %v, want ~0.5", n, mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(7): value %d occurred %d/70000 times, far from uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdge(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) empirical rate %v", rate)
	}
}

func TestBernoulliExp2(t *testing.T) {
	s := New(8)
	// k=1 should fire about half the time.
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.BernoulliExp2(1) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.5) > 0.01 {
		t.Fatalf("BernoulliExp2(1) rate = %v, want ~0.5", rate)
	}
	// k=3 -> 1/8.
	hits = 0
	for i := 0; i < n; i++ {
		if s.BernoulliExp2(3) {
			hits++
		}
	}
	rate = float64(hits) / n
	if math.Abs(rate-0.125) > 0.01 {
		t.Fatalf("BernoulliExp2(3) rate = %v, want ~0.125", rate)
	}
	// k=0 is probability 1.
	if !s.BernoulliExp2(0) {
		t.Fatal("BernoulliExp2(0) must always be true")
	}
}

func TestBernoulliExp2LargeK(t *testing.T) {
	s := New(9)
	// 2^-100 should essentially never fire; mostly this exercises the
	// multi-word path for k > 64.
	for i := 0; i < 1000; i++ {
		if s.BernoulliExp2(100) {
			t.Fatal("BernoulliExp2(100) fired, astronomically unlikely — bug")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(12)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v, want ~1", mean)
	}
}

func TestLogAgreesWithMath(t *testing.T) {
	for _, x := range []float64{1e-9, 0.001, 0.5, 0.9999, 1, 1.0001, 2, math.E, 10, 12345.678, 1e12} {
		got := log(x)
		want := math.Log(x)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("log(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLogPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("log(0) did not panic")
		}
	}()
	log(0)
}

// Property: Intn(n) is always within range for any positive n.
func TestIntnPropertyRange(t *testing.T) {
	s := New(14)
	f := func(n uint16, _ uint8) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Stream is a pure function of (state-at-seed, id).
func TestStreamPropertyPure(t *testing.T) {
	f := func(seed, id uint64) bool {
		a := New(seed).Stream(id)
		b := New(seed).Stream(id)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkBernoulliExp2(b *testing.B) {
	s := New(1)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = s.BernoulliExp2(3)
	}
	_ = sink
}
