// Package rng provides small, fast, deterministic random number generation
// for the simulator and the concurrent runtime.
//
// Reproducibility is load-bearing here: the synchronous simulator and the
// goroutine-per-node runtime must make exactly the same random choices when
// started from the same seed, so that executions can be cross-validated.
// Each node draws from its own independent stream derived from the master
// seed, which makes the draws insensitive to scheduling order.
//
// The generator is xoshiro256** seeded via SplitMix64, both public-domain
// algorithms by Blackman and Vigna. They are implemented here directly so
// the module stays dependency-free and the sequences are stable across Go
// releases (unlike math/rand's unspecified default source).
package rng

import "math/bits"

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive one Source per goroutine via Stream.
type Source struct {
	s    [4]uint64
	seed uint64 // seed this source was created from; anchors Stream derivation
}

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used only for seeding xoshiro state, per the authors' guidance.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources built from the same
// seed produce identical sequences.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the state derived from seed.
func (s *Source) Reseed(seed uint64) {
	s.seed = seed
	sm := seed
	for i := range s.s {
		s.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 cannot emit
	// four zeros from any seed, but guard anyway for safety.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
}

// Stream derives an independent sub-stream of s identified by id, without
// advancing s. Streams with different ids are statistically independent;
// the same (seed, id) pair always yields the same stream, no matter how
// far s has advanced. This is how each simulated node gets its own private
// randomness, insensitive to goroutine scheduling order.
//
// Because derivation reads only the immutable origin seed, Stream may be
// called concurrently from many goroutines (absent a concurrent Reseed);
// the experiment trial pool leans on this to hand every parallel trial
// its own deterministic streams.
func (s *Source) Stream(id uint64) *Source {
	sub := &Source{}
	s.StreamInto(sub, id)
	return sub
}

// StreamInto derives the same sub-stream as Stream(id) into an
// existing Source, avoiding the allocation. A simulation over 10⁶
// nodes initialises 10⁶ per-node streams per run; deriving them into
// one contiguous backing array is measurably cheaper than 10⁶ heap
// objects, and keeps the hot per-node state cache-adjacent.
func (s *Source) StreamInto(dst *Source, id uint64) {
	// Mix the origin seed (not the mutable state) with the stream id
	// through SplitMix64 so derivation is a pure function of (seed, id).
	sm := s.seed ^ bits.RotateLeft64(id, 17) ^ 0xd1342543de82ef95
	dst.seed = sm
	for i := range dst.s {
		dst.s[i] = splitMix64(&sm)
	}
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics only on n <= 0, which is
// a programming error at the call site, consistent with math/rand.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(s.uint64n(uint64(n)))
}

// uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method, which avoids modulo bias.
func (s *Source) uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// BernoulliExp2 returns true with probability 2^-k for k >= 0. It draws k
// bits at a time and is exact (no floating point), matching the paper's
// beeping probabilities p = 2^-n(t,v).
func (s *Source) BernoulliExp2(k uint) bool {
	for k > 0 {
		take := k
		if take > 64 {
			take = 64
		}
		mask := ^uint64(0)
		if take < 64 {
			mask = (uint64(1) << take) - 1
		}
		if s.Uint64()&mask != 0 {
			return false
		}
		k -= take
	}
	return true
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1,
// via inverse transform sampling. Used by workload generators.
func (s *Source) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log argument is never zero.
	return -log(1 - s.Float64())
}

// log is a minimal natural logarithm for positive arguments, implemented
// with frexp-style range reduction and an atanh series, so the package
// avoids importing math (keeping it trivially portable) — and precise to
// ~1e-15 relative error, far better than the simulation needs.
func log(x float64) float64 {
	if x <= 0 {
		panic("rng: log of non-positive value")
	}
	// Range-reduce x = m * 2^e with m in [sqrt(2)/2, sqrt(2)).
	e := 0
	for x >= 1.4142135623730951 {
		x /= 2
		e++
	}
	for x < 0.7071067811865476 {
		x *= 2
		e--
	}
	// ln(m) via atanh series: ln(m) = 2*atanh((m-1)/(m+1)).
	t := (x - 1) / (x + 1)
	t2 := t * t
	sum := t
	term := t
	for k := 3; k <= 23; k += 2 {
		term *= t2
		sum += term / float64(k)
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(e)*ln2
}
