package graph

import (
	"fmt"
	"testing"

	"beepmis/internal/rng"
)

// exchangeReps pairs each adjacency representation of a graph with its
// planner, so the partition test drives both through the same contract.
type exchangeRep struct {
	name string
	plan func(targets, emitters Bitset, shards int) ExchangePlan
	exec func(p ExchangePlan, dst, targets, emitters Bitset, loWord, hiWord int)
}

func repsOf(g *Graph) []exchangeRep {
	mat := g.Matrix()
	c := g.CSR()
	return []exchangeRep{
		{"matrix", mat.PlanExchange, mat.ExchangeRange},
		{"csr", c.PlanExchange, c.ExchangeRange},
	}
}

// TestExchangeRangePartitionMatchesSerial is the contract behind the
// simulator's pooled exchanges: for any plan the representation
// produces — push or pull, at any requested shard count — executing
// ExchangeRange over an arbitrary partition of the word space (visited
// in reverse, the harshest legal order) must agree with one full-range
// call at every bit the targets mask covers, and everywhere for push
// plans. This is what lets a persistent worker pool replace the ad-hoc
// goroutines of PropagateToTargets without re-deriving correctness per
// representation.
func TestExchangeRangePartitionMatchesSerial(t *testing.T) {
	for name, g := range buildCSRGraphs() {
		n := g.N()
		words := (n + 63) / 64
		src := rng.New(11)
		for _, rep := range repsOf(g) {
			for trial := 0; trial < 6; trial++ {
				emitters := NewBitset(n)
				targets := NewBitset(n)
				if n > 0 {
					switch trial % 3 {
					case 0:
						for i := 0; i < 3; i++ {
							emitters.Set(src.Intn(n))
						}
					case 1:
						for v := 0; v < n; v++ {
							if src.Bernoulli(0.5) {
								emitters.Set(v)
							}
						}
					case 2:
						emitters.Fill(n)
					}
					for v := 0; v < n; v++ {
						if src.Bernoulli(0.6) {
							targets.Set(v)
						}
					}
				}
				for _, shards := range []int{1, 4} {
					plan := rep.plan(targets, emitters, shards)
					want := NewBitset(n)
					rep.exec(plan, want, targets, emitters, 0, words)
					for _, parts := range []int{2, 3, 7, 64} {
						got := NewBitset(n)
						for i := range got {
							got[i] = ^uint64(0) // ranges own their words outright
						}
						chunk := (words + parts - 1) / parts
						if chunk == 0 {
							chunk = 1
						}
						var bounds [][2]int
						for lo := 0; lo < words; lo += chunk {
							bounds = append(bounds, [2]int{lo, min(lo+chunk, words)})
						}
						for i := len(bounds) - 1; i >= 0; i-- {
							rep.exec(plan, got, targets, emitters, bounds[i][0], bounds[i][1])
						}
						for i := range want {
							gw, ww := got[i], want[i]
							if plan.Pull {
								gw &= targets[i]
								ww &= targets[i]
							}
							if gw != ww {
								t.Fatalf("%s/%s trial %d shards %d parts %d (plan %+v): word %d = %x, want %x",
									name, rep.name, trial, shards, parts, plan, i, gw, ww)
							}
						}
					}
				}
			}
		}
	}
}

// TestCSRPlanExchangeDirections pins the planner's decision on the
// regimes it exists for: a crowded exchange (everyone emitting, sparse
// graph) must pull, a sparse-frontier exchange (a handful of emitters)
// must push, and the empty exchange must not pull.
func TestCSRPlanExchangeDirections(t *testing.T) {
	g := GNP(20000, 0.0005, rng.New(3)) // avg degree ~10
	c := g.CSR()
	n := g.N()
	everyone := NewBitset(n)
	everyone.Fill(n)
	few := NewBitset(n)
	few.Set(1)
	few.Set(4000)
	none := NewBitset(n)
	cases := []struct {
		name              string
		targets, emitters Bitset
		wantPull          bool
	}{
		{"crowded", everyone, everyone, true},
		{"sparse-frontier", everyone, few, false},
		{"no-emitters", everyone, none, false},
		{"no-targets", none, everyone, true}, // zero listeners: pull costs nothing
	}
	for _, tc := range cases {
		if plan := c.PlanExchange(tc.targets, tc.emitters, 4); plan.Pull != tc.wantPull {
			t.Fatalf("%s: plan %+v, want Pull=%v", tc.name, plan, tc.wantPull)
		}
	}
}

// TestPlanExchangeSerialThresholds pins that tiny workloads never fan
// out (Serial plans) and big ones do when shards allow, for both
// representations.
func TestPlanExchangeSerialThresholds(t *testing.T) {
	dense := GNP(3000, 0.3, rng.New(5))
	n := dense.N()
	everyone := NewBitset(n)
	everyone.Fill(n)
	few := NewBitset(n)
	few.Set(7)
	for _, tc := range []struct {
		rep        string
		plan       func(targets, emitters Bitset, shards int) ExchangePlan
		emitters   Bitset
		shards     int
		wantSerial bool
	}{
		{"matrix", dense.Matrix().PlanExchange, everyone, 4, false},
		{"matrix", dense.Matrix().PlanExchange, few, 4, true},
		{"matrix", dense.Matrix().PlanExchange, everyone, 1, true},
		{"csr", dense.CSR().PlanExchange, few, 4, true},
		{"csr", dense.CSR().PlanExchange, few, 1, true},
	} {
		name := fmt.Sprintf("%s/emitters=%d/shards=%d", tc.rep, tc.emitters.Count(), tc.shards)
		if plan := tc.plan(everyone, tc.emitters, tc.shards); plan.Serial != tc.wantSerial {
			t.Fatalf("%s: plan %+v, want Serial=%v", name, plan, tc.wantSerial)
		}
	}
}
