package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format:
//
//	# optional comment lines
//	n <vertices>
//	<u> <v>          (one edge per line, u < v)
//
// The format round-trips through ReadEdgeList, including isolated
// vertices (carried by the n header).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N()); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
					return fmt.Errorf("write edge: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// MaxEdgeListVertices caps the vertex count ReadEdgeList accepts. The
// header is attacker-controlled in any setting where graphs arrive over
// the network, and the count drives an O(n) allocation (~24 bytes per
// vertex of empty adjacency headers) before a single edge is read.
// 2^22 vertices (~100 MiB) is far beyond what the simulator can process
// in reasonable time anyway; construct larger graphs programmatically.
const MaxEdgeListVertices = 1 << 22

// ReadEdgeList parses the format emitted by WriteEdgeList. Lines starting
// with '#' and blank lines are ignored. Errors carry the offending line
// number. Headers declaring more than MaxEdgeListVertices vertices are
// rejected.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if b == nil {
			if len(fields) != 2 || fields[0] != "n" {
				return nil, fmt.Errorf("line %d: expected header \"n <count>\", got %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[1])
			}
			if n > MaxEdgeListVertices {
				return nil, fmt.Errorf("line %d: vertex count %d exceeds limit %d", lineNo, n, MaxEdgeListVertices)
			}
			b = NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad vertex %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad vertex %q", lineNo, fields[1])
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan edge list: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("edge list: missing \"n <count>\" header")
	}
	return b.Build(), nil
}
