package graph

import (
	"errors"
	"fmt"
)

// Errors returned by VerifyMIS, exported so tests and callers can match
// the specific violation.
var (
	// ErrNotIndependent indicates two adjacent vertices are in the set.
	ErrNotIndependent = errors.New("graph: set is not independent")
	// ErrNotMaximal indicates some vertex could still join the set.
	ErrNotMaximal = errors.New("graph: independent set is not maximal")
)

// IsIndependent reports whether no two vertices of set are adjacent.
// set[v] must be indexable for all v in [0, g.N()).
func IsIndependent(g *Graph, set []bool) bool {
	return firstDependentEdge(g, set) == [2]int{-1, -1}
}

func firstDependentEdge(g *Graph, set []bool) [2]int {
	for v := 0; v < g.N(); v++ {
		if !set[v] {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if int(w) > v && set[w] {
				return [2]int{v, int(w)}
			}
		}
	}
	return [2]int{-1, -1}
}

// VerifyMIS checks that set is a maximal independent set of g: no two
// members adjacent, and every non-member has a member neighbour. It
// returns nil on success, or an error wrapping ErrNotIndependent /
// ErrNotMaximal naming a witness vertex or edge.
func VerifyMIS(g *Graph, set []bool) error {
	if len(set) != g.N() {
		return fmt.Errorf("graph: set length %d does not match n=%d", len(set), g.N())
	}
	if e := firstDependentEdge(g, set); e != [2]int{-1, -1} {
		return fmt.Errorf("%w: edge {%d,%d} inside set", ErrNotIndependent, e[0], e[1])
	}
	for v := 0; v < g.N(); v++ {
		if set[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if set[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("%w: vertex %d has no neighbour in the set", ErrNotMaximal, v)
		}
	}
	return nil
}

// SetToList converts a membership vector to a sorted vertex list.
func SetToList(set []bool) []int {
	var out []int
	for v, in := range set {
		if in {
			out = append(out, v)
		}
	}
	return out
}

// ListToSet converts a vertex list to a membership vector of length n.
// Out-of-range vertices yield an error.
func ListToSet(n int, list []int) ([]bool, error) {
	set := make([]bool, n)
	for _, v := range list {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: vertex %d with n=%d", ErrVertexRange, v, n)
		}
		set[v] = true
	}
	return set, nil
}
