package graph

import (
	"testing"

	"beepmis/internal/rng"
)

// buildCSRGraphs returns a spread of shapes that straddle word
// boundaries so packing bugs cannot hide.
func buildCSRGraphs() map[string]*Graph {
	return map[string]*Graph{
		"empty":      Empty(0),
		"isolated":   Empty(100),
		"path-65":    Path(65),
		"star-129":   Star(129),
		"complete":   Complete(96),
		"gnp-dense":  GNP(200, 0.5, rng.New(1)),
		"gnp-sparse": GNP(1000, 0.004, rng.New(2)),
		"grid":       Grid(13, 17),
	}
}

func TestCSRMatchesGraph(t *testing.T) {
	for name, g := range buildCSRGraphs() {
		c := g.CSR()
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("%s: CSR n=%d m=%d, graph n=%d m=%d", name, c.N(), c.M(), g.N(), g.M())
		}
		if again := g.CSR(); again != c {
			t.Fatalf("%s: CSR cache rebuilt", name)
		}
		for v := 0; v < g.N(); v++ {
			row := c.Row(v)
			adj := g.Neighbors(v)
			if len(row) != len(adj) || c.Degree(v) != g.Degree(v) {
				t.Fatalf("%s: row %d length %d, want %d", name, v, len(row), len(adj))
			}
			for i := range row {
				if row[i] != adj[i] {
					t.Fatalf("%s: row %d entry %d is %d, want %d", name, v, i, row[i], adj[i])
				}
			}
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if c.HasEdge(u, v) != g.HasEdge(u, v) {
					t.Fatalf("%s: HasEdge(%d,%d) disagrees with graph", name, u, v)
				}
			}
		}
		if c.HasEdge(-1, 0) || c.HasEdge(0, g.N()) {
			t.Fatalf("%s: out-of-range HasEdge returned true", name)
		}
	}
}

// TestCSRBytes pins the footprint formula the auto-engine heuristic
// budgets with.
func TestCSRBytes(t *testing.T) {
	if got := CSRBytes(0, 0); got != 8 {
		t.Fatalf("CSRBytes(0,0) = %d, want 8", got)
	}
	// n = 10⁶, avg degree 10: 8·(n+1) offsets + 4·2m columns ≈ 48 MB —
	// the regime the dense matrix (125 GB) can never reach.
	if got := CSRBytes(1_000_000, 5_000_000); got != 8_000_008+40_000_000 {
		t.Fatalf("CSRBytes(1e6, 5e6) = %d", got)
	}
}

// TestCSRPropagateMatchesMatrix cross-checks sparse propagation against
// the dense matrix implementation for every shard count, including
// emitter sets dense enough to trigger the saturation early-exit.
func TestCSRPropagateMatchesMatrix(t *testing.T) {
	for name, g := range buildCSRGraphs() {
		n := g.N()
		c := g.CSR()
		mat := g.Matrix()
		src := rng.New(7)
		for trial := 0; trial < 8; trial++ {
			emitters := NewBitset(n)
			if n > 0 {
				switch trial % 3 {
				case 0: // a few emitters
					for i := 0; i < 3; i++ {
						emitters.Set(src.Intn(n))
					}
				case 1: // half the nodes
					for v := 0; v < n; v++ {
						if src.Bernoulli(0.5) {
							emitters.Set(v)
						}
					}
				case 2: // everyone — saturates dense graphs
					emitters.Fill(n)
				}
			}
			want := NewBitset(n)
			mat.PropagateInto(want, emitters, 1)
			targets := NewBitset(n)
			for v := 0; v < n; v++ {
				if src.Bernoulli(0.7) {
					targets.Set(v)
				}
			}
			for _, shards := range []int{1, 2, 3, 7, 64} {
				got := NewBitset(n)
				// Pre-soil the destination: PropagateInto owns it fully.
				for i := range got {
					got[i] = ^uint64(0)
				}
				c.PropagateInto(got, emitters, shards)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s trial %d shards %d: word %d = %x, want %x",
							name, trial, shards, i, got[i], want[i])
					}
				}
				// The direction-optimizing form must agree within the
				// targets mask whichever direction it picked.
				for i := range got {
					got[i] = ^uint64(0)
				}
				c.PropagateToTargets(got, targets, emitters, shards)
				for i := range want {
					if got[i]&targets[i] != want[i]&targets[i] {
						t.Fatalf("%s trial %d shards %d: PropagateToTargets word %d = %x, want %x (∧ targets %x)",
							name, trial, shards, i, got[i], want[i], targets[i])
					}
				}
				// The pull direction, forced, must also agree within targets.
				words := bitsetWords(n)
				for i := range got {
					got[i] = ^uint64(0)
				}
				c.PullRangeInto(got, targets, emitters, 0, words)
				for i := range want {
					if got[i]&targets[i] != want[i]&targets[i] {
						t.Fatalf("%s trial %d: PullRangeInto word %d = %x, want %x (∧ targets %x)",
							name, trial, i, got[i], want[i], targets[i])
					}
				}
			}
		}
	}
}
