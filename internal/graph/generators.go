package graph

import (
	"fmt"
	"math"
	"sort"

	"beepmis/internal/rng"
)

// GNP returns an Erdős–Rényi random graph G(n, p): each of the n(n-1)/2
// possible edges is present independently with probability p. This is the
// workload of Figures 3 and 5 of the paper (with p = 1/2).
func GNP(n int, p float64, src *rng.Source) *Graph {
	b := NewBuilder(n)
	switch {
	case p <= 0:
		return b.Build()
	case p >= 1:
		return Complete(n)
	}
	if p >= 0.1 {
		// Dense regime: test every pair directly.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if src.Bernoulli(p) {
					_ = b.AddEdge(u, v) // endpoints are in range by construction
				}
			}
		}
		return b.Build()
	}
	// Sparse regime: geometric skipping (Batagelj–Brandes) generates each
	// present edge in O(1) expected time instead of scanning all pairs.
	lq := math.Log(1 - p)
	u, v := 1, -1
	for u < n {
		r := src.Float64()
		v += 1 + int(math.Log(1-r)/lq)
		for v >= u && u < n {
			v -= u
			u++
		}
		if u < n {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			_ = b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Grid returns the rows×cols rectangular grid graph (4-neighbour
// adjacency). The paper's §5 reports ~1.1 mean beeps per node on
// rectangular grids.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				_ = b.AddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				_ = b.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols grid with wraparound edges (every vertex has
// degree exactly 4 when rows, cols >= 3).
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				_ = b.AddEdge(idx(r, c), idx(r, c+1))
			}
			if rows > 1 {
				_ = b.AddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return b.Build()
}

// Path returns the path graph P_n (n-1 edges).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		_ = b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n (for n >= 3).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	if n >= 3 {
		for v := 0; v < n; v++ {
			_ = b.AddEdge(v, (v+1)%n)
		}
	} else if n == 2 {
		_ = b.AddEdge(0, 1)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with vertex 0 as the hub.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, v)
	}
	return b.Build()
}

// RandomTree returns a uniformly random labelled tree on n vertices via a
// random Prüfer-like attachment: vertex i (i >= 1) attaches to a uniform
// earlier vertex. (This is a random recursive tree, not uniform over all
// labelled trees, which is fine for workload purposes.)
func RandomTree(n int, src *rng.Source) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(v, src.Intn(v))
	}
	return b.Build()
}

// CliqueUnion returns the disjoint union of cliques with the given sizes.
func CliqueUnion(sizes []int) *Graph {
	total := 0
	for _, s := range sizes {
		total += s
	}
	b := NewBuilder(total)
	base := 0
	for _, s := range sizes {
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				_ = b.AddEdge(base+u, base+v)
			}
		}
		base += s
	}
	return b.Build()
}

// CliqueFamily returns the Theorem 1 lower-bound family: for each
// d = 1..k, the graph contains k disjoint copies of the complete graph
// K_d, where k = floor(n^(1/3)) for the requested parameter n. The total
// vertex count is k·k(k+1)/2 = Θ(n) as in the paper. Any algorithm that
// uses one global preset probability schedule needs Ω(log² n) rounds on
// this family; the feedback algorithm does not.
func CliqueFamily(n int) *Graph {
	k := int(math.Cbrt(float64(n)))
	if k < 1 {
		k = 1
	}
	sizes := make([]int, 0, k*k)
	for d := 1; d <= k; d++ {
		for c := 0; c < k; c++ {
			sizes = append(sizes, d)
		}
	}
	return CliqueUnion(sizes)
}

// UnitDisk returns a random geometric (unit-disk) graph: n points uniform
// in the unit square, an edge between points at Euclidean distance <= r.
// This models an ad hoc wireless sensor network, the application the
// paper's conclusion motivates. Cells of side r bucket the points so the
// construction is near-linear for sparse radii.
func UnitDisk(n int, r float64, src *rng.Source) *Graph {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	return unitDiskFromPoints(xs, ys, r)
}

// UnitDiskPoints is UnitDisk but also returns the sampled coordinates,
// which the sensornet example uses for rendering.
func UnitDiskPoints(n int, r float64, src *rng.Source) (*Graph, []float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	return unitDiskFromPoints(xs, ys, r), xs, ys
}

func unitDiskFromPoints(xs, ys []float64, r float64) *Graph {
	n := len(xs)
	b := NewBuilder(n)
	if r <= 0 || n == 0 {
		return b.Build()
	}
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[[2]int][]int)
	cellOf := func(i int) [2]int {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		grid[c] = append(grid[c], i)
	}
	r2 := r * r
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						_ = b.AddEdge(i, j)
					}
				}
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// small clique of size m, each new vertex attaches to m existing vertices
// chosen proportionally to degree. Produces the heavy-tailed degree
// distributions typical of scale-free networks.
func BarabasiAlbert(n, m int, src *rng.Source) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("graph: BarabasiAlbert needs m >= 1, got %d", m)
	}
	if n < m+1 {
		return Complete(n), nil
	}
	b := NewBuilder(n)
	// repeated holds every edge endpoint once per incidence, so sampling a
	// uniform element samples a vertex proportionally to its degree.
	repeated := make([]int, 0, 2*m*n)
	for u := 0; u < m+1; u++ {
		for v := u + 1; v < m+1; v++ {
			_ = b.AddEdge(u, v)
			repeated = append(repeated, u, v)
		}
	}
	targets := make(map[int]bool, m)
	chosen := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		clear(targets)
		for len(targets) < m {
			targets[repeated[src.Intn(len(repeated))]] = true
		}
		// Drain the target set in sorted order: appending to `repeated`
		// in map iteration order would make every later draw — and so
		// the whole graph — depend on the runtime's randomized map
		// order, not just the seed. (Caught by misvet's determinism
		// analyzer; before the sort, two same-seed runs could diverge.)
		chosen = chosen[:0]
		for t := range targets {
			chosen = append(chosen, t)
		}
		sort.Ints(chosen)
		for _, t := range chosen {
			_ = b.AddEdge(v, t)
			repeated = append(repeated, v, t)
		}
	}
	return b.Build(), nil
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbours (k even), with each edge
// rewired to a uniform random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, src *rng.Source) (*Graph, error) {
	if k%2 != 0 || k < 2 {
		return nil, fmt.Errorf("graph: WattsStrogatz needs even k >= 2, got %d", k)
	}
	if k >= n {
		return Complete(n), nil
	}
	type edge struct{ u, v int }
	edges := make([]edge, 0, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			edges = append(edges, edge{v, (v + j) % n})
		}
	}
	present := make(map[edge]bool, len(edges))
	norm := func(e edge) edge {
		if e.u > e.v {
			e.u, e.v = e.v, e.u
		}
		return e
	}
	for _, e := range edges {
		present[norm(e)] = true
	}
	for i, e := range edges {
		if !src.Bernoulli(beta) {
			continue
		}
		// Rewire the far endpoint to a uniform vertex avoiding self-loops
		// and duplicates; give up after a few tries on dense corner cases.
		for tries := 0; tries < 16; tries++ {
			w := src.Intn(n)
			cand := norm(edge{e.u, w})
			if w == e.u || present[cand] {
				continue
			}
			delete(present, norm(e))
			present[cand] = true
			edges[i] = cand
			break
		}
	}
	b := NewBuilder(n)
	//misvet:allow(determinism) insertion order never reaches the output: the edge set is fixed and Builder.Build sorts and dedupes every adjacency row
	for e := range present {
		_ = b.AddEdge(e.u, e.v)
	}
	return b.Build(), nil
}

// Bipartite returns a random bipartite graph with sides of size l and r,
// each cross edge present independently with probability p.
func Bipartite(l, r int, p float64, src *rng.Source) *Graph {
	b := NewBuilder(l + r)
	for u := 0; u < l; u++ {
		for v := 0; v < r; v++ {
			if src.Bernoulli(p) {
				_ = b.AddEdge(u, l+v)
			}
		}
	}
	return b.Build()
}
