// Package graph provides the undirected-graph substrate used throughout the
// reproduction: a compact adjacency representation, the generators the
// paper's evaluation needs (Erdős–Rényi G(n,p), rectangular grids, the
// Theorem 1 union-of-cliques family), additional families for the examples
// (unit-disk, Barabási–Albert, Watts–Strogatz, trees, rings, stars),
// structural operations, serialization, and MIS verification.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Graph is a simple undirected graph on vertices 0..N()-1. The zero value
// is an empty graph with no vertices. Graph is immutable after Build and
// safe for concurrent readers.
type Graph struct {
	// adj[v] is the sorted neighbour list of v. Stored as int32 to halve
	// memory on large simulations; vertex counts here never exceed 2^31.
	adj [][]int32
	m   int // number of edges

	// mat is the lazily built packed adjacency-matrix form used by the
	// bitset simulation engine; matOnce guards its one-time construction
	// so concurrent readers stay safe.
	matOnce sync.Once
	mat     *AdjacencyMatrix

	// csr is the lazily built compressed-sparse-row form used by the
	// sparse simulation engine, with the same once-guarded discipline.
	csrOnce sync.Once
	csr     *CSR
}

// ErrVertexRange indicates a vertex index outside [0, N).
var ErrVertexRange = errors.New("graph: vertex out of range")

// Builder accumulates edges and produces an immutable Graph. Self-loops
// and out-of-range endpoints are rejected at AddEdge time; duplicate
// edges are accepted and removed by Build, so the finished graph is
// simple either way.
type Builder struct {
	n   int
	adj [][]int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, adj: make([][]int32, n)}
}

// AddEdge inserts the undirected edge {u, v}. It returns an error for
// self-loops or out-of-range endpoints. Duplicate insertions are
// accepted here and deduplicated by Build (a linear duplicate check per
// insert would be quadratic on dense graphs), so generators can be
// sloppy about multi-edges; the built graph's M() counts each edge
// once.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("%w: edge {%d,%d} with n=%d", ErrVertexRange, u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	b.adj[u] = append(b.adj[u], int32(v))
	b.adj[v] = append(b.adj[v], int32(u))
	return nil
}

// Build finalizes the builder into an immutable Graph, sorting adjacency
// lists and removing duplicate edges. The builder must not be used after
// Build.
func (b *Builder) Build() *Graph {
	m := 0
	for v := range b.adj {
		lst := b.adj[v]
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		// Dedupe in place.
		out := lst[:0]
		var prev int32 = -1
		for _, w := range lst {
			if w != prev {
				out = append(out, w)
				prev = w
			}
		}
		b.adj[v] = out
		m += len(out)
	}
	g := &Graph{adj: b.adj, m: m / 2}
	b.adj = nil
	return g
}

// Empty returns a graph with n vertices and no edges.
func Empty(n int) *Graph {
	return NewBuilder(n).Build()
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbour list of v. The returned slice is
// shared with the graph's internal storage and must not be modified; this
// is the hot path of the simulator, so we avoid a defensive copy and
// enforce the contract by documentation, mirroring the standard library's
// bytes.Buffer.Bytes.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether the edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	lst := g.adj[u]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= int32(v) })
	return i < len(lst) && lst[i] == int32(v)
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := range g.adj {
		if d := len(g.adj[v]); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for v := 1; v < len(g.adj); v++ {
		if d := len(g.adj[v]); d < min {
			min = d
		}
	}
	return min
}

// AvgDegree returns the average degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// Edges returns all edges as [2]int pairs with u < v, sorted
// lexicographically. It allocates; intended for I/O and tests, not the
// simulation hot path.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int32(u) < w {
				edges = append(edges, [2]int{u, int(w)})
			}
		}
	}
	return edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	adj := make([][]int32, len(g.adj))
	for v := range g.adj {
		adj[v] = append([]int32(nil), g.adj[v]...)
	}
	return &Graph{adj: adj, m: g.m}
}

// Validate checks internal invariants: sorted, deduplicated, symmetric
// adjacency with a consistent edge count. Generators are tested through
// this; it is O(m log m).
func (g *Graph) Validate() error {
	count := 0
	for v := range g.adj {
		lst := g.adj[v]
		for i, w := range lst {
			if w < 0 || int(w) >= len(g.adj) {
				return fmt.Errorf("%w: adj[%d] contains %d", ErrVertexRange, v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && lst[i-1] >= w {
				return fmt.Errorf("graph: adj[%d] not strictly sorted at index %d", v, i)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}", v, w)
			}
		}
		count += len(lst)
	}
	if count != 2*g.m {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency total %d", g.m, count)
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d maxdeg=%d}", g.N(), g.M(), g.MaxDegree())
}
