package graph

import (
	"fmt"

	"beepmis/internal/rng"
)

// Hypercube returns the d-dimensional hypercube graph Q_d on 2^d
// vertices; vertices are adjacent iff their indices differ in one bit.
func Hypercube(d int) (*Graph, error) {
	if d < 0 || d > 30 {
		return nil, fmt.Errorf("graph: hypercube dimension %d outside [0,30]", d)
	}
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				_ = b.AddEdge(v, w)
			}
		}
	}
	return b.Build(), nil
}

// CompleteBinaryTree returns the complete binary tree on n vertices
// (vertex 0 is the root; children of v are 2v+1 and 2v+2).
func CompleteBinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		if c := 2*v + 1; c < n {
			_ = b.AddEdge(v, c)
		}
		if c := 2*v + 2; c < n {
			_ = b.AddEdge(v, c)
		}
	}
	return b.Build()
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration model with restarts: d·n must be even and d < n. The
// pairing is retried until it is simple, which for d ≪ n succeeds in
// O(1) expected attempts; an attempt bound guards pathological inputs.
func RandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: random regular needs 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: random regular needs even d·n, got d=%d n=%d", d, n)
	}
	if d == 0 {
		return Empty(n), nil
	}
	const maxAttempts = 1000
	stubs := make([]int32, 0, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, int32(v))
			}
		}
		src.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[[2]int32]bool, len(stubs)/2)
		b := NewBuilder(n)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			key := [2]int32{u, v}
			if u > v {
				key = [2]int32{v, u}
			}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			_ = b.AddEdge(int(u), int(v))
		}
		if ok {
			return b.Build(), nil
		}
	}
	return nil, fmt.Errorf("graph: random regular pairing failed after %d attempts (d=%d too close to n=%d?)", maxAttempts, d, n)
}

// Caterpillar returns a caterpillar tree: a spine path of length
// spineLen with legs pendant legs attached round-robin to spine
// vertices. Caterpillars are a worst case for greedy MIS size variance.
func Caterpillar(spineLen, legs int) *Graph {
	if spineLen < 1 {
		spineLen = 1
	}
	b := NewBuilder(spineLen + legs)
	for v := 0; v+1 < spineLen; v++ {
		_ = b.AddEdge(v, v+1)
	}
	for i := 0; i < legs; i++ {
		_ = b.AddEdge(i%spineLen, spineLen+i)
	}
	return b.Build()
}
