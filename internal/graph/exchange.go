package graph

import "sync"

// ExchangePlan is the per-exchange decision both adjacency
// representations make before delivering a beeping exchange: which
// direction to run it in (push the emitters' rows, or — CSR only —
// pull each target's first emitting neighbour) and whether the
// workload is too small to pay goroutine fan-out. Planning is split
// from execution so a caller that owns a persistent worker pool (the
// simulator's round loop) can make the decision once per exchange and
// then drive ExchangeRange over its own word-range partition, instead
// of paying a goroutine spawn per exchange per round. The plan depends
// only on deterministic mask counts, so every caller computes the same
// plan for the same masks.
type ExchangePlan struct {
	// Pull runs the exchange in the pull direction: probe each target
	// for an emitting neighbour instead of scattering emitter rows.
	// Only the CSR representation ever sets it; dst bits outside
	// targets are then left unset (see CSR.PullRangeInto).
	Pull bool
	// Serial reports that the exchange is too small for fan-out to pay:
	// the caller should run ExchangeRange once over the full word range
	// on its own goroutine.
	Serial bool
}

// rangeExchanger delivers one exchange restricted to a destination
// word range; both adjacency representations implement it, and
// runExchange fans it out when the plan is not serial.
type rangeExchanger interface {
	ExchangeRange(p ExchangePlan, dst, targets, emitters Bitset, loWord, hiWord int)
}

// runExchange executes a planned exchange: inline over the full range
// when the plan is serial (or sharding is disabled), otherwise
// partitioned into up to `shards` contiguous destination word chunks
// on ad-hoc goroutines. Workers own disjoint destination ranges, so
// dst is bit-identical for every shard count.
func runExchange(x rangeExchanger, p ExchangePlan, dst, targets, emitters Bitset, shards, words int) {
	if shards > words {
		shards = words
	}
	if p.Serial || shards <= 1 {
		x.ExchangeRange(p, dst, targets, emitters, 0, words)
		return
	}
	chunk := (words + shards - 1) / shards
	var wg sync.WaitGroup
	for lo := 0; lo < words; lo += chunk {
		hi := min(lo+chunk, words)
		wg.Add(1)
		go func() {
			defer wg.Done()
			x.ExchangeRange(p, dst, targets, emitters, lo, hi)
		}()
	}
	wg.Wait()
}
