package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"beepmis/internal/rng"
)

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Complete(3), Path(4), Empty(2))
	if g.N() != 9 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 3+3+0 {
		t.Fatalf("M = %d", g.M())
	}
	_, comps := ConnectedComponents(g)
	if comps != 4 { // K3, P4, and two isolated vertices
		t.Fatalf("components = %d, want 4", comps)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 4) || g.HasEdge(2, 3) {
		t.Fatal("union edges misplaced")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, err := InducedSubgraph(g, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3 = %v", sub)
	}
	if _, err := InducedSubgraph(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate vertices accepted")
	}
	if _, err := InducedSubgraph(g, []int{0, 9}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := DisjointUnion(Cycle(3), Cycle(4))
	comp, count := ConnectedComponents(g)
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	for v := 0; v < 3; v++ {
		if comp[v] != 0 {
			t.Fatalf("comp[%d] = %d", v, comp[v])
		}
	}
	for v := 3; v < 7; v++ {
		if comp[v] != 1 {
			t.Fatalf("comp[%d] = %d", v, comp[v])
		}
	}
	if !IsConnected(Cycle(5)) || IsConnected(g) {
		t.Fatal("IsConnected wrong")
	}
	if !IsConnected(Empty(0)) {
		t.Fatal("empty graph should count as connected")
	}
}

func TestDegreeHistogram(t *testing.T) {
	hist := DegreeHistogram(Star(5))
	// Star(5): one vertex of degree 4, four of degree 1.
	want := []int{0, 4, 0, 0, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v", hist)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
	if DegreeHistogram(Empty(0)) != nil {
		t.Fatal("empty graph histogram should be nil")
	}
}

func TestComplement(t *testing.T) {
	g := Path(4) // edges 01,12,23; complement: 02,03,13
	c := Complement(g)
	if c.M() != 3 {
		t.Fatalf("complement M = %d", c.M())
	}
	for _, e := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !c.HasEdge(e[0], e[1]) {
			t.Fatalf("complement missing %v", e)
		}
	}
	// Property: complement of complement is the original.
	src := rng.New(3)
	f := func(seed uint8) bool {
		g := GNP(20, 0.4, src)
		cc := Complement(Complement(g))
		if cc.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			if !cc.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMIS(t *testing.T) {
	g := Path(4)
	ok := []bool{true, false, true, false} // vertex 3 is dominated by 2
	if err := VerifyMIS(g, ok); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	notInd := []bool{true, true, false, true}
	if err := VerifyMIS(g, notInd); !errors.Is(err, ErrNotIndependent) {
		t.Fatalf("err = %v, want ErrNotIndependent", err)
	}
	notMax := []bool{true, false, false, false}
	if err := VerifyMIS(g, notMax); !errors.Is(err, ErrNotMaximal) {
		t.Fatalf("err = %v, want ErrNotMaximal", err)
	}
	if err := VerifyMIS(g, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestVerifyMISEmptyGraph(t *testing.T) {
	// The empty set is the unique MIS of the empty graph.
	if err := VerifyMIS(Empty(0), nil); err != nil {
		t.Fatal(err)
	}
	// In an edgeless graph, all vertices must be chosen.
	if err := VerifyMIS(Empty(3), []bool{true, true, true}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(Empty(3), []bool{true, false, true}); !errors.Is(err, ErrNotMaximal) {
		t.Fatalf("err = %v", err)
	}
}

func TestIsIndependent(t *testing.T) {
	g := Complete(4)
	if !IsIndependent(g, []bool{true, false, false, false}) {
		t.Fatal("singleton must be independent")
	}
	if IsIndependent(g, []bool{true, true, false, false}) {
		t.Fatal("two clique vertices cannot be independent")
	}
}

func TestSetListRoundTrip(t *testing.T) {
	set := []bool{false, true, false, true, true}
	list := SetToList(set)
	want := []int{1, 3, 4}
	if len(list) != len(want) {
		t.Fatalf("list = %v", list)
	}
	for i := range want {
		if list[i] != want[i] {
			t.Fatalf("list = %v", list)
		}
	}
	back, err := ListToSet(5, list)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		if back[i] != set[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
	if _, err := ListToSet(2, []int{5}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GNP(40, 0.2, rng.New(14))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: got n=%d m=%d, want n=%d m=%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v after round trip", e)
		}
	}
}

func TestEdgeListIsolatedVertices(t *testing.T) {
	g := Empty(7)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 7 || g2.M() != 0 {
		t.Fatalf("round trip of edgeless graph: %v", g2)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",             // no header
		"x 5\n0 1\n",   // bad header keyword
		"n -1\n",       // negative count
		"n abc\n",      // non-numeric count
		"n 3\n0\n",     // short edge line
		"n 3\n0 x\n",   // bad vertex
		"n 3\nz 1\n",   // bad vertex (first)
		"n 3\n0 5\n",   // out of range
		"n 3\n1 1\n",   // self loop
		"n 3\n0 1 2\n", // too many fields
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3\n# another\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("g = %v", g)
	}
}
