package graph

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"beepmis/internal/rng"
)

// csrEqual reports whether two CSRs are bit-identical.
func csrEqual(a, b *CSR) bool {
	if a.n != b.n || len(a.offsets) != len(b.offsets) || len(a.cols) != len(b.cols) {
		return false
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.cols {
		if a.cols[i] != b.cols[i] {
			return false
		}
	}
	return true
}

// buildViaBuilder runs a graph's edge list through the two-pass
// builder on `workers` goroutines, splitting the edges into uneven
// contiguous spans so the parallel case really interleaves.
func buildViaBuilder(t *testing.T, g *Graph, workers int) *CSR {
	t.Helper()
	edges := g.Edges()
	b := NewCSRBuilder(g.N())
	feed := func(method func(u, v int32)) {
		if workers <= 1 {
			for _, e := range edges {
				method(int32(e[0]), int32(e[1]))
			}
			return
		}
		var wg sync.WaitGroup
		span := (len(edges) + workers - 1) / workers
		for lo := 0; lo < len(edges); lo += span {
			hi := min(lo+span, len(edges))
			wg.Add(1)
			go func(part [][2]int) {
				defer wg.Done()
				for _, e := range part {
					method(int32(e[0]), int32(e[1]))
				}
			}(edges[lo:hi])
		}
		wg.Wait()
	}
	feed(b.Count)
	if err := b.FinishCounts(); err != nil {
		t.Fatal(err)
	}
	feed(b.Place)
	c, err := b.Finish(workers)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCSRBuilderMatchesNewCSR is the construction-equivalence matrix:
// for every graph family, the two-pass builder must reproduce
// NewCSR(g) bit-for-bit at every worker count — the builder's
// determinism contract.
func TestCSRBuilderMatchesNewCSR(t *testing.T) {
	src := rng.New(7)
	graphs := map[string]*Graph{
		"empty":          Empty(5),
		"single":         Empty(1),
		"complete":       Complete(9),
		"path":           Path(40),
		"cycle":          Cycle(17),
		"star":           Star(33),
		"grid":           Grid(6, 7),
		"torus":          Torus(5, 5),
		"cliques":        CliqueFamily(64),
		"tree":           RandomTree(50, src.Stream(1)),
		"gnp":            GNP(80, 0.15, src.Stream(2)),
		"gnp-dense":      GNP(40, 0.9, src.Stream(3)),
		"unitdisk":       UnitDisk(60, 0.3, src.Stream(4)),
		"binarytree":     CompleteBinaryTree(31),
		"cliquefamily-1": CliqueFamily(1),
	}
	if g, err := BarabasiAlbert(60, 3, src.Stream(5)); err == nil {
		graphs["barabasialbert"] = g
	} else {
		t.Fatal(err)
	}
	if g, err := WattsStrogatz(48, 4, 0.2, src.Stream(6)); err == nil {
		graphs["wattsstrogatz"] = g
	} else {
		t.Fatal(err)
	}
	if g, err := Hypercube(6); err == nil {
		graphs["hypercube"] = g
	} else {
		t.Fatal(err)
	}
	if g, err := RandomRegular(40, 4, src.Stream(8)); err == nil {
		graphs["randomregular"] = g
	} else {
		t.Fatal(err)
	}
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for name, g := range graphs {
		want := NewCSR(g)
		for _, w := range workerCounts {
			t.Run(fmt.Sprintf("%s/workers=%d", name, w), func(t *testing.T) {
				got := buildViaBuilder(t, g, w)
				if !csrEqual(got, want) {
					t.Fatalf("builder CSR differs from NewCSR (n=%d m=%d)", g.N(), g.M())
				}
				if err := got.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCSRBuilderDeduplicates pins the builder half of the AddEdge
// contract: duplicate insertions collapse, and the final M() counts
// each undirected edge once.
func TestCSRBuilderDeduplicates(t *testing.T) {
	b := NewCSRBuilder(4)
	edges := [][2]int32{{0, 1}, {1, 0}, {0, 1}, {2, 3}, {3, 2}}
	for _, e := range edges {
		b.Count(e[0], e[1])
	}
	if err := b.FinishCounts(); err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		b.Place(e[0], e[1])
	}
	c, err := b.Finish(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != 2 {
		t.Fatalf("M() = %d after duplicate insertions, want 2", c.M())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCSRBuilderDropsSelfLoops: self-loops vanish silently (the
// generators rely on it — RMAT samples them freely).
func TestCSRBuilderDropsSelfLoops(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Count(0, 0)
	b.Count(1, 2)
	b.Count(2, 2)
	if err := b.FinishCounts(); err != nil {
		t.Fatal(err)
	}
	b.Place(0, 0)
	b.Place(1, 2)
	b.Place(2, 2)
	c, err := b.Finish(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.M() != 1 || !c.HasEdge(1, 2) {
		t.Fatalf("got m=%d, want exactly edge {1,2}", c.M())
	}
}

// TestCSRBuilderRangeError: an out-of-range endpoint is a sticky error
// reported at FinishCounts, never a panic or a silent drop.
func TestCSRBuilderRangeError(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Count(0, 5)
	if err := b.FinishCounts(); err == nil {
		t.Fatal("out-of-range endpoint did not error")
	}
}

// TestCSRBuilderPassMismatch: placing edges the count pass never saw
// must fail Finish with the pass-mismatch error — the guard that makes
// the two-pass contract checkable rather than trusted.
func TestCSRBuilderPassMismatch(t *testing.T) {
	b := NewCSRBuilder(4)
	b.Count(0, 1)
	b.Count(2, 3)
	if err := b.FinishCounts(); err != nil {
		t.Fatal(err)
	}
	b.Place(0, 1)
	b.Place(0, 2) // overflow of row 0: counted one arc, placing two
	if _, err := b.Finish(1); err == nil {
		t.Fatal("pass mismatch did not error")
	}
}

// TestCSRBuilderUnderflow: placing fewer edges than counted must also
// fail (the rows would silently carry garbage otherwise).
func TestCSRBuilderUnderflow(t *testing.T) {
	b := NewCSRBuilder(4)
	b.Count(0, 1)
	b.Count(2, 3)
	if err := b.FinishCounts(); err != nil {
		t.Fatal(err)
	}
	b.Place(0, 1)
	if _, err := b.Finish(1); err == nil {
		t.Fatal("under-placed builder did not error")
	}
}

// TestCSRBuilderPeakBytes asserts the pipeline's memory contract: peak
// transient bytes stay within 1.5× the final CSR's storage, for sparse
// and dense shapes alike.
func TestCSRBuilderPeakBytes(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{1, 0}, {100, 0}, {100, 50}, {100, 99}, {100, 1000}, {1000, 100000},
	} {
		b := NewCSRBuilder(tc.n)
		// PeakBytes is a function of n and the counted arcs; feed a
		// synthetic degree profile by counting m arbitrary (distinct
		// enough) pairs.
		for i := 0; i < tc.m; i++ {
			u := int32(i % tc.n)
			v := int32((i + 1 + i/tc.n) % tc.n)
			if u != v {
				b.Count(u, v)
			}
		}
		if err := b.FinishCounts(); err != nil {
			t.Fatal(err)
		}
		peak := b.PeakBytes()
		final := CSRBytes(tc.n, tc.m)
		if limit := final + final/2; peak > limit {
			t.Errorf("n=%d m=%d: peak %d bytes exceeds 1.5×CSRBytes = %d", tc.n, tc.m, peak, limit)
		}
	}
}

// TestFromCSRAliasesStorage: the Graph view must share the CSR's
// column storage (zero copy) and report the same counts; its cached
// CSR must be the original pointer.
func TestFromCSRAliasesStorage(t *testing.T) {
	g0 := GNP(50, 0.2, rng.New(3))
	c := NewCSR(g0)
	g := FromCSR(c)
	if g.N() != c.N() || g.M() != c.M() {
		t.Fatalf("view reports (n=%d, m=%d), want (%d, %d)", g.N(), g.M(), c.N(), c.M())
	}
	if g.CSR() != c {
		t.Fatal("view's CSR() is not the original CSR")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		row := c.Row(v)
		adj := g.Neighbors(v)
		if len(row) != len(adj) {
			t.Fatalf("vertex %d: view degree %d, CSR degree %d", v, len(adj), len(row))
		}
		if len(row) > 0 && &row[0] != &adj[0] {
			t.Fatalf("vertex %d: view adjacency does not alias CSR storage", v)
		}
	}
}

// TestCSRMaxDegree pins the CSR's own MaxDegree against the Graph's.
func TestCSRMaxDegree(t *testing.T) {
	g := GNP(60, 0.25, rng.New(5))
	if got, want := NewCSR(g).MaxDegree(), g.MaxDegree(); got != want {
		t.Fatalf("CSR MaxDegree = %d, Graph MaxDegree = %d", got, want)
	}
	if got := NewCSR(Empty(4)).MaxDegree(); got != 0 {
		t.Fatalf("empty CSR MaxDegree = %d, want 0", got)
	}
}
