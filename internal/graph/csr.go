package graph

import (
	"math/bits"
	"sort"
)

// CSR is the graph's adjacency relation in compressed-sparse-row form:
// one flat, sorted int32 column-index array plus per-row offsets. It
// occupies O(n + m) memory — 8·(n+1) bytes of offsets and 4·2m bytes of
// columns — against the adjacency matrix's O(n²/8), which is what lets
// the sparse simulation engine run million-node graphs that a packed
// matrix could never hold (n = 10⁶ would need ~125 GiB of matrix).
//
// Rows are sorted, so a destination-range worker can binary-search the
// slice of a row that lands in its range; that is the building block of
// sharded sparse propagation.
type CSR struct {
	n       int
	offsets []int64 // len n+1; row v is cols[offsets[v]:offsets[v+1]]
	cols    []int32 // len 2m, sorted within each row
}

// NewCSR flattens g's adjacency lists into compressed-sparse-row form.
// Cost: O(n + m) time and memory. For repeated simulations on the same
// graph prefer Graph.CSR, which builds once and caches.
func NewCSR(g *Graph) *CSR {
	n := g.N()
	c := &CSR{n: n, offsets: make([]int64, n+1)}
	total := 0
	for v := 0; v < n; v++ {
		total += g.Degree(v)
	}
	c.cols = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		c.cols = append(c.cols, g.Neighbors(v)...)
		c.offsets[v+1] = int64(len(c.cols))
	}
	return c
}

// CSRBytes returns the memory a CSR for an n-vertex, m-edge graph would
// occupy, without building it. The engine auto-selection heuristic uses
// this (alongside MatrixBytes) to pick a representation that fits the
// memory budget.
func CSRBytes(n, m int) int64 {
	return int64(n+1)*8 + int64(m)*2*4
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// M returns the number of edges.
func (c *CSR) M() int { return len(c.cols) / 2 }

// Row returns vertex v's sorted neighbour list sharing the CSR's
// storage; it must not be modified.
func (c *CSR) Row(v int) []int32 {
	return c.cols[c.offsets[v]:c.offsets[v+1]]
}

// Degree returns the degree of vertex v.
func (c *CSR) Degree(v int) int {
	return int(c.offsets[v+1] - c.offsets[v])
}

// HasEdge reports whether the edge {u, v} is present.
func (c *CSR) HasEdge(u, v int) bool {
	if u < 0 || u >= c.n || v < 0 || v >= c.n {
		return false
	}
	row := c.Row(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// orRowsVertexRangeInto sets dst's words [loWord, hiWord) to the union
// of the emitters' adjacency rows restricted to destination vertices
// [loWord·64, hiWord·64). Rows are sorted, so each emitter contributes
// the binary-searched sub-slice of its row that lands in the range —
// the per-emitter cost is O(log deg + hits), not O(deg).
//
// Saturation early-exit: once the entries written since the last check
// could have covered every bit of the range, the range is tested for
// saturation (all representable bits set) and the walk stops if so —
// further ORs cannot change a saturated union, so the result is exactly
// the full union either way. Gating the test on written volume (rather
// than a fixed row cadence, which the matrix walk uses) keeps its cost
// amortized O(1) per written entry: CSR rows are short on exactly the
// graphs this representation exists for, and an every-k-rows scan of
// the whole range would cost more than the writes it tries to save.
//
//misvet:noalloc
func (c *CSR) orRowsVertexRangeInto(dst, emitters Bitset, loWord, hiWord int) {
	for i := loWord; i < hiWord; i++ {
		dst[i] = 0
	}
	capacity := (hiWord - loWord) << 6
	written := 0
	if loWord == 0 && capacity >= c.n {
		// Full-range (serial) fast path: every row entry lands in range,
		// so the inner loop needs no boundary comparisons.
		for wi, w := range emitters {
			base := wi << 6
			for w != 0 {
				v := base + bits.TrailingZeros64(w)
				w &= w - 1
				row := c.Row(v)
				for _, t := range row {
					dst[t>>6] |= 1 << (uint(t) & 63)
				}
				written += len(row)
				if written >= capacity {
					if rangeSaturated(dst, c.n, loWord, hiWord) {
						return
					}
					written = 0
				}
			}
		}
		return
	}
	loVert := int32(loWord << 6)
	hiVert := int64(hiWord) << 6 // may exceed n; rows never do
	for wi, w := range emitters {
		base := wi << 6
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			w &= w - 1
			row := c.Row(v)
			start := 0
			if loVert > 0 {
				//misvet:allow(noalloc) the predicate closure does not escape sort.Search, so it stays on the stack
				start = sort.Search(len(row), func(i int) bool { return row[i] >= loVert })
			}
			i := start
			for ; i < len(row) && int64(row[i]) < hiVert; i++ {
				t := row[i]
				dst[t>>6] |= 1 << (uint(t) & 63)
			}
			written += i - start
			if written >= capacity {
				if rangeSaturated(dst, c.n, loWord, hiWord) {
					return
				}
				written = 0
			}
		}
	}
}

// PullRangeInto computes the same exchange as orRowsVertexRangeInto in
// the opposite direction: instead of scattering every emitter's row, it
// probes each *listener* in targets ∩ [loWord·64, hiWord·64) for an
// emitting neighbour, stopping at the first hit. For crowded exchanges
// — a constant fraction of each neighbourhood emitting, as in the
// opening rounds of every beeping algorithm — the expected probes per
// listener are O(1), so the pull direction costs O(listeners) where the
// push direction costs O(Σ deg(emitters)). dst words in range are fully
// owned (zeroed, then set only for hit targets), so range-sharded pull
// workers stay disjoint and deterministic exactly like push workers.
//
// dst bits outside targets are left unset; callers that read heard-bits
// only under a targets mask (the engine's round loop reads them only at
// eligible nodes) observe identical results from either direction.
//
//misvet:noalloc
func (c *CSR) PullRangeInto(dst, targets, emitters Bitset, loWord, hiWord int) {
	for i := loWord; i < hiWord; i++ {
		dst[i] = 0
	}
	hi := min(hiWord, len(targets))
	for wi := loWord; wi < hi; wi++ {
		w := targets[wi]
		base := wi << 6
		var hits uint64
		for w != 0 {
			b := uint(bits.TrailingZeros64(w))
			w &= w - 1
			row := c.Row(base + int(b))
			for _, t := range row {
				if emitters[t>>6]&(1<<(uint(t)&63)) != 0 {
					hits |= 1 << b
					break
				}
			}
		}
		dst[wi] = hits
	}
}

// rangeSaturated reports whether dst's words [lo, hi) have every bit
// that can name a vertex of an n-vertex graph set (the last word of a
// non-multiple-of-64 capacity is only partially populated, so its
// comparison mask is the tail mask).
func rangeSaturated(dst Bitset, n, lo, hi int) bool {
	words := bitsetWords(n)
	tail := uint(n & 63)
	for i := lo; i < hi; i++ {
		want := ^uint64(0)
		if i == words-1 && tail != 0 {
			want = (uint64(1) << tail) - 1
		}
		if dst[i] != want {
			return false
		}
	}
	return true
}

// propagateMinDegreeSum is the emitter-degree workload below which
// CSR.PropagateInto stays on one goroutine: fan-out costs a few
// microseconds per worker plus a per-emitter binary search per shard,
// which only pays once each worker has real scatter work to do.
const propagateMinDegreeSum = 1 << 14

// PropagateInto sets dst to the union of the adjacency rows of every
// vertex in emitters — one beeping exchange: after the call, dst holds
// exactly the vertices with at least one emitting neighbour. The
// destination word range is partitioned into up to `shards` contiguous
// chunks processed by independent goroutines. Each worker owns a
// disjoint destination word range and OR-ing set bits is commutative
// and associative, so dst is bit-identical for every shard count
// (including the inline shards <= 1 path); sharding changes only the
// wall clock. Small workloads run inline regardless of shards.
func (c *CSR) PropagateInto(dst, emitters Bitset, shards int) {
	plan := c.planPush(emitters, shards)
	runExchange(c, plan, dst, nil, emitters, shards, bitsetWords(c.n))
}

// planPush is the push-only half of PlanExchange: serial when the
// emitter degree sum is below the fan-out threshold. The degree sum is
// only worth computing when fan-out is even possible.
//
//misvet:noalloc
func (c *CSR) planPush(emitters Bitset, shards int) ExchangePlan {
	serial := shards <= 1
	if !serial {
		sum := 0
		for wi, w := range emitters {
			base := wi << 6
			for w != 0 {
				sum += c.Degree(base + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
		serial = sum < propagateMinDegreeSum
	}
	return ExchangePlan{Serial: serial}
}

// PlanExchange decides how one exchange should run: pushing the
// emitters' rows (cost Σ deg(emitters)) or pulling each target's first
// emitting neighbour (cost |targets| · expected probes), and whether
// the chosen direction's workload justifies goroutine fan-out. The
// choice depends only on deterministic mask counts, so dst restricted
// to targets is bit-identical for every shard count and either
// direction. Pull probes pay a bitset read each and touch every
// target's row, so the plan demands a clear margin before abandoning
// push; measured on G(10⁶, 10/n) the pull direction fires exactly in
// the crowded opening exchange (half the graph emitting), where it
// halves the exchange cost, and leaves the sparse-frontier tail to
// push.
//
//misvet:noalloc
func (c *CSR) PlanExchange(targets, emitters Bitset, shards int) ExchangePlan {
	e := emitters.Count()
	if e > 0 && len(c.cols) > 0 {
		t := targets.Count()
		avgDeg := float64(len(c.cols)) / float64(c.n)
		probes := float64(c.n) / float64(e) // expected probes to hit an emitter
		if probes > avgDeg {
			probes = avgDeg
		}
		pullCost := float64(t) * probes
		pushCost := float64(e) * avgDeg
		if pullCost < pushCost*0.75 {
			return ExchangePlan{Pull: true, Serial: shards <= 1 || pullCost < propagateMinDegreeSum}
		}
	}
	return c.planPush(emitters, shards)
}

// ExchangeRange executes a planned exchange restricted to destination
// words [loWord, hiWord), in the plan's direction. Workers own
// disjoint ranges, so any partition of the full range produces the
// same dst (at the bits in targets, for pull plans) as one serial
// pass.
//
//misvet:noalloc
func (c *CSR) ExchangeRange(p ExchangePlan, dst, targets, emitters Bitset, loWord, hiWord int) {
	if p.Pull {
		c.PullRangeInto(dst, targets, emitters, loWord, hiWord)
		return
	}
	c.orRowsVertexRangeInto(dst, emitters, loWord, hiWord)
}

// PropagateToTargets is the direction-optimizing exchange: it fills dst
// like PropagateInto, but is only required to be correct at the bits in
// targets. It plans with PlanExchange and fans out on ad-hoc
// goroutines; callers with a persistent worker pool (the simulator's
// round loop) use PlanExchange + ExchangeRange directly and skip the
// per-exchange spawns.
func (c *CSR) PropagateToTargets(dst, targets, emitters Bitset, shards int) {
	plan := c.PlanExchange(targets, emitters, shards)
	runExchange(c, plan, dst, targets, emitters, shards, bitsetWords(c.n))
}

// CSR returns g's compressed-sparse-row representation, building it on
// first use and caching it for the graph's lifetime. Safe for
// concurrent callers, like all Graph readers.
func (g *Graph) CSR() *CSR {
	g.csrOnce.Do(func() { g.csr = NewCSR(g) })
	return g.csr
}
