package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers packed
// 64 per word, the substrate of the word-parallel simulation engine: one
// bitwise operation combines membership information for 64 vertices at
// once. The zero value is an empty set of capacity 0; use NewBitset for
// a set over [0, n).
type Bitset []uint64

// bitsetWords returns the number of 64-bit words needed for n bits.
func bitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns an empty bitset with capacity for elements [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		n = 0
	}
	return make(Bitset, bitsetWords(n))
}

// Set adds i to the set. i must be within the capacity.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set. i must be within the capacity.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether i is in the set. i must be within the capacity.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Zero empties the set in place.
func (b Bitset) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets exactly the elements [0, n) and clears the rest. n must be
// within the capacity. This is how the columnar engine initialises its
// all-nodes-active mask.
func (b Bitset) Fill(n int) {
	b.Zero()
	if n <= 0 {
		return
	}
	full := n >> 6
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if rem := uint(n & 63); rem != 0 {
		b[full] = (1 << rem) - 1
	}
}

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or adds every element of other to b. The sets must have equal capacity.
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// And removes every element of b not in other. The sets must have equal
// capacity.
func (b Bitset) And(other Bitset) {
	for i, w := range other {
		b[i] &= w
	}
}

// AndNot removes every element of other from b. The sets must have equal
// capacity.
func (b Bitset) AndNot(other Bitset) {
	for i, w := range other {
		b[i] &^= w
	}
}

// AndCount returns |b ∩ other| without materialising the intersection.
// The sets must have equal capacity.
func (b Bitset) AndCount(other Bitset) int {
	c := 0
	for i, w := range other {
		c += bits.OnesCount64(b[i] & w)
	}
	return c
}

// ForEach calls fn for every element of the set in increasing order. It
// walks words and extracts set bits with trailing-zero counts, so the
// cost is proportional to the capacity in words plus the population, not
// the capacity in bits.
func (b Bitset) ForEach(fn func(i int)) {
	b.ForEachRange(0, len(b), fn)
}

// ForEachRange calls fn for every element packed in words
// [loWord, hiWord), in increasing order — the range form of ForEach
// that node-range-sharded sweeps (the columnar engine's eligible-draw
// phase) iterate their own partition with. hiWord is clamped to the
// capacity.
func (b Bitset) ForEachRange(loWord, hiWord int, fn func(i int)) {
	hiWord = min(hiWord, len(b))
	for wi := loWord; wi < hiWord; wi++ {
		w := b[wi]
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AdjacencyMatrix is the graph's adjacency relation as packed row
// bitsets: row v has bit w set iff {v, w} is an edge. It trades O(n²/8)
// bytes of memory for word-parallel neighbourhood operations — OR-ing a
// row into an accumulator informs 64 listeners per machine instruction,
// which is what makes the bitset simulation engine fast on dense graphs.
type AdjacencyMatrix struct {
	n     int
	words int      // words per row
	rows  []uint64 // n*words, row-major
}

// NewAdjacencyMatrix builds the packed adjacency representation of g
// from its CSR form. Cost: O(n²/64) words of memory, O(n²/64 + m) time.
// For repeated simulations on the same graph prefer Graph.Matrix, which
// builds once and caches.
func NewAdjacencyMatrix(g *Graph) *AdjacencyMatrix {
	n := g.N()
	words := bitsetWords(n)
	m := &AdjacencyMatrix{n: n, words: words, rows: make([]uint64, n*words)}
	for v := 0; v < n; v++ {
		row := m.rows[v*words : (v+1)*words]
		for _, w := range g.Neighbors(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}
	return m
}

// MatrixBytes returns the memory an AdjacencyMatrix for an n-vertex
// graph would occupy, without building it. The engine auto-selection
// heuristic uses this to refuse representations that would not fit.
func MatrixBytes(n int) int64 {
	return int64(n) * int64(bitsetWords(n)) * 8
}

// N returns the number of vertices.
func (m *AdjacencyMatrix) N() int { return m.n }

// Words returns the number of 64-bit words per row.
func (m *AdjacencyMatrix) Words() int { return m.words }

// Row returns vertex v's neighbourhood as a bitset sharing the matrix's
// storage; it must not be modified.
func (m *AdjacencyMatrix) Row(v int) Bitset {
	return Bitset(m.rows[v*m.words : (v+1)*m.words])
}

// OrRowInto ORs vertex v's neighbourhood row into dst, which must have
// capacity n. This is the engine's inner loop: one call delivers v's
// beep to all its neighbours, 64 of them per word operation.
//
//misvet:noalloc
func (m *AdjacencyMatrix) OrRowInto(dst Bitset, v int) {
	row := m.rows[v*m.words : (v+1)*m.words]
	for i, w := range row {
		dst[i] |= w
	}
}

// OrRowRangeInto ORs words [lo, hi) of vertex v's adjacency row into the
// same word range of dst. It is the building block of sharded
// propagation: a worker that owns destination words [lo, hi) delivers
// v's beep to just the listeners packed in that range.
//
//misvet:noalloc
func (m *AdjacencyMatrix) OrRowRangeInto(dst Bitset, v, lo, hi int) {
	row := m.rows[v*m.words+lo : v*m.words+hi]
	d := dst[lo:hi]
	for i, w := range row {
		d[i] |= w
	}
}

// orRowsRangeInto sets dst's words [lo, hi) to the union of the
// corresponding row words of every vertex in emitters. Every 64 rows it
// checks whether the range has saturated — every representable bit set —
// and stops early if so: further ORs cannot change a saturated union, so
// the result is exactly the full union either way. On dense graphs this
// turns the crowded early rounds (thousands of emitters whose
// neighbourhoods blanket the network within a few dozen rows) from
// O(emitters · words) into O(words).
//
//misvet:noalloc
func (m *AdjacencyMatrix) orRowsRangeInto(dst, emitters Bitset, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = 0
	}
	rows := 0
	for wi, w := range emitters {
		base := wi << 6
		for w != 0 {
			v := base + bits.TrailingZeros64(w)
			w &= w - 1
			row := m.rows[v*m.words+lo : v*m.words+hi]
			d := dst[lo:hi]
			for i, rw := range row {
				d[i] |= rw
			}
			rows++
			if rows&63 == 0 && rangeSaturated(dst, m.n, lo, hi) {
				return
			}
		}
	}
}

// propagateMinWords is the word-OR workload below which PropagateInto
// stays on one goroutine: fan-out costs a few microseconds per worker,
// which only pays off once each worker has tens of thousands of word
// operations to chew through.
const propagateMinWords = 1 << 15

// PropagateInto sets dst to the union of the adjacency rows of every
// vertex in emitters — one beeping exchange: after the call, dst holds
// exactly the vertices with at least one emitting neighbour. The
// destination word range is partitioned into up to `shards` contiguous
// chunks processed by independent goroutines. Each worker owns a
// disjoint destination range and OR is commutative and associative, so
// dst is bit-identical for every shard count (including the inline
// shards <= 1 path); sharding changes only the wall clock. Small
// workloads run inline regardless of shards.
func (m *AdjacencyMatrix) PropagateInto(dst, emitters Bitset, shards int) {
	plan := m.PlanExchange(nil, emitters, shards)
	runExchange(m, plan, dst, nil, emitters, shards, m.words)
}

// PlanExchange decides how one exchange of emitters' rows should run:
// the dense representation always pushes (a packed row OR already
// informs 64 listeners per word operation, so pull has nothing to
// win), and goes serial when the word-OR volume is below the fan-out
// threshold. The targets mask is ignored — a pushed dst is correct
// everywhere, a superset of the targets contract.
//
//misvet:noalloc
func (m *AdjacencyMatrix) PlanExchange(_, emitters Bitset, shards int) ExchangePlan {
	return ExchangePlan{
		Serial: shards <= 1 || emitters.Count()*m.words < propagateMinWords,
	}
}

// ExchangeRange executes a planned exchange restricted to destination
// words [loWord, hiWord): dst's range becomes the union of the
// corresponding row words of every emitter. Workers own disjoint
// ranges, so any partition of the full range produces the same dst as
// one serial pass.
//
//misvet:noalloc
func (m *AdjacencyMatrix) ExchangeRange(_ ExchangePlan, dst, _, emitters Bitset, loWord, hiWord int) {
	m.orRowsRangeInto(dst, emitters, loWord, hiWord)
}

// PropagateToTargets is the matrix form of CSR.PropagateToTargets,
// planning and fanning out on ad-hoc goroutines. Callers with a
// persistent worker pool use PlanExchange + ExchangeRange directly.
func (m *AdjacencyMatrix) PropagateToTargets(dst, targets, emitters Bitset, shards int) {
	plan := m.PlanExchange(targets, emitters, shards)
	runExchange(m, plan, dst, targets, emitters, shards, m.words)
}

// HasEdge reports whether the edge {u, v} is present.
func (m *AdjacencyMatrix) HasEdge(u, v int) bool {
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		return false
	}
	return m.Row(u).Test(v)
}

// Matrix returns g's packed adjacency-matrix representation, building it
// on first use and caching it for the graph's lifetime. Safe for
// concurrent callers, like all Graph readers.
func (g *Graph) Matrix() *AdjacencyMatrix {
	g.matOnce.Do(func() { g.mat = NewAdjacencyMatrix(g) })
	return g.mat
}
