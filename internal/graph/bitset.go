package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers packed
// 64 per word, the substrate of the word-parallel simulation engine: one
// bitwise operation combines membership information for 64 vertices at
// once. The zero value is an empty set of capacity 0; use NewBitset for
// a set over [0, n).
type Bitset []uint64

// bitsetWords returns the number of 64-bit words needed for n bits.
func bitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns an empty bitset with capacity for elements [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		n = 0
	}
	return make(Bitset, bitsetWords(n))
}

// Set adds i to the set. i must be within the capacity.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set. i must be within the capacity.
func (b Bitset) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether i is in the set. i must be within the capacity.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Zero empties the set in place.
func (b Bitset) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// Count returns the number of elements in the set.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// Or adds every element of other to b. The sets must have equal capacity.
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// AndNot removes every element of other from b. The sets must have equal
// capacity.
func (b Bitset) AndNot(other Bitset) {
	for i, w := range other {
		b[i] &^= w
	}
}

// ForEach calls fn for every element of the set in increasing order. It
// walks words and extracts set bits with trailing-zero counts, so the
// cost is proportional to the capacity in words plus the population, not
// the capacity in bits.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AdjacencyMatrix is the graph's adjacency relation as packed row
// bitsets: row v has bit w set iff {v, w} is an edge. It trades O(n²/8)
// bytes of memory for word-parallel neighbourhood operations — OR-ing a
// row into an accumulator informs 64 listeners per machine instruction,
// which is what makes the bitset simulation engine fast on dense graphs.
type AdjacencyMatrix struct {
	n     int
	words int      // words per row
	rows  []uint64 // n*words, row-major
}

// NewAdjacencyMatrix builds the packed adjacency representation of g
// from its CSR form. Cost: O(n²/64) words of memory, O(n²/64 + m) time.
// For repeated simulations on the same graph prefer Graph.Matrix, which
// builds once and caches.
func NewAdjacencyMatrix(g *Graph) *AdjacencyMatrix {
	n := g.N()
	words := bitsetWords(n)
	m := &AdjacencyMatrix{n: n, words: words, rows: make([]uint64, n*words)}
	for v := 0; v < n; v++ {
		row := m.rows[v*words : (v+1)*words]
		for _, w := range g.Neighbors(v) {
			row[w>>6] |= 1 << (uint(w) & 63)
		}
	}
	return m
}

// MatrixBytes returns the memory an AdjacencyMatrix for an n-vertex
// graph would occupy, without building it. The engine auto-selection
// heuristic uses this to refuse representations that would not fit.
func MatrixBytes(n int) int64 {
	return int64(n) * int64(bitsetWords(n)) * 8
}

// N returns the number of vertices.
func (m *AdjacencyMatrix) N() int { return m.n }

// Words returns the number of 64-bit words per row.
func (m *AdjacencyMatrix) Words() int { return m.words }

// Row returns vertex v's neighbourhood as a bitset sharing the matrix's
// storage; it must not be modified.
func (m *AdjacencyMatrix) Row(v int) Bitset {
	return Bitset(m.rows[v*m.words : (v+1)*m.words])
}

// OrRowInto ORs vertex v's neighbourhood row into dst, which must have
// capacity n. This is the engine's inner loop: one call delivers v's
// beep to all its neighbours, 64 of them per word operation.
func (m *AdjacencyMatrix) OrRowInto(dst Bitset, v int) {
	row := m.rows[v*m.words : (v+1)*m.words]
	for i, w := range row {
		dst[i] |= w
	}
}

// HasEdge reports whether the edge {u, v} is present.
func (m *AdjacencyMatrix) HasEdge(u, v int) bool {
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		return false
	}
	return m.Row(u).Test(v)
}

// Matrix returns g's packed adjacency-matrix representation, building it
// on first use and caching it for the graph's lifetime. Safe for
// concurrent callers, like all Graph readers.
func (g *Graph) Matrix() *AdjacencyMatrix {
	g.matOnce.Do(func() { g.mat = NewAdjacencyMatrix(g) })
	return g.mat
}
