package graph

import (
	"testing"

	"beepmis/internal/rng"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130) // spans three words, last one partial
	if got := len(b); got != 3 {
		t.Fatalf("NewBitset(130) has %d words, want 3", got)
	}
	if b.Any() {
		t.Fatal("fresh bitset is non-empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if !b.Test(64) || b.Test(2) {
		t.Fatal("Test disagrees with Set")
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 7 {
		t.Fatal("Clear did not remove the element")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 1, 63, 65, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach visited %v, want %v", got, want)
		}
	}
	b.Zero()
	if b.Any() || b.Count() != 0 {
		t.Fatal("Zero did not empty the set")
	}
}

func TestBitsetOrAndNot(t *testing.T) {
	a, b := NewBitset(200), NewBitset(200)
	for i := 0; i < 200; i += 3 {
		a.Set(i)
	}
	for i := 0; i < 200; i += 5 {
		b.Set(i)
	}
	u := NewBitset(200)
	u.Or(a)
	u.Or(b)
	d := NewBitset(200)
	d.Or(a)
	d.AndNot(b)
	for i := 0; i < 200; i++ {
		inA, inB := i%3 == 0, i%5 == 0
		if u.Test(i) != (inA || inB) {
			t.Fatalf("union wrong at %d", i)
		}
		if d.Test(i) != (inA && !inB) {
			t.Fatalf("difference wrong at %d", i)
		}
	}
}

// TestAdjacencyMatrixFamilies cross-checks the packed representation
// against the CSR form for every graph family the engine equivalence
// suite uses, plus shapes that stress word boundaries.
func TestAdjacencyMatrixFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
	}{
		{"empty", Empty(0)},
		{"isolated-65", Empty(65)},
		{"path-64", Path(64)},
		{"path-65", Path(65)},
		{"complete-40", Complete(40)},
		{"complete-129", Complete(129)},
		{"grid-9x9", Grid(9, 9)},
		{"gnp-200-half", GNP(200, 0.5, rng.New(1))},
		{"gnp-300-sparse", GNP(300, 0.02, rng.New(2))},
		{"cliquefamily-216", CliqueFamily(216)},
		{"unitdisk-150", UnitDisk(150, 0.15, rng.New(3))},
		{"star-100", Star(100)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := NewAdjacencyMatrix(tc.g)
			n := tc.g.N()
			if m.N() != n {
				t.Fatalf("matrix N = %d, want %d", m.N(), n)
			}
			for v := 0; v < n; v++ {
				row := m.Row(v)
				if got, want := row.Count(), tc.g.Degree(v); got != want {
					t.Fatalf("row %d popcount = %d, want degree %d", v, got, want)
				}
				var fromRow []int
				row.ForEach(func(w int) { fromRow = append(fromRow, w) })
				nbrs := tc.g.Neighbors(v)
				if len(fromRow) != len(nbrs) {
					t.Fatalf("row %d has %d bits, want %d neighbours", v, len(fromRow), len(nbrs))
				}
				for i, w := range nbrs {
					if fromRow[i] != int(w) {
						t.Fatalf("row %d bit %d = %d, want %d", v, i, fromRow[i], w)
					}
				}
				if m.HasEdge(v, v) {
					t.Fatalf("matrix reports self-loop at %d", v)
				}
			}
			// Spot-check HasEdge symmetry against the CSR query.
			for u := 0; u < n; u++ {
				for _, w := range tc.g.Neighbors(u) {
					if !m.HasEdge(u, int(w)) || !m.HasEdge(int(w), u) {
						t.Fatalf("matrix missing edge {%d,%d}", u, w)
					}
				}
			}
		})
	}
}

func TestAdjacencyMatrixOrRowInto(t *testing.T) {
	g := GNP(150, 0.3, rng.New(7))
	m := NewAdjacencyMatrix(g)
	// OR-ing rows 3, 77 and 149 must give exactly the union of their
	// neighbourhoods.
	dst := NewBitset(g.N())
	srcs := []int{3, 77, 149}
	for _, v := range srcs {
		m.OrRowInto(dst, v)
	}
	want := map[int]bool{}
	for _, v := range srcs {
		for _, w := range g.Neighbors(v) {
			want[int(w)] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if dst.Test(v) != want[v] {
			t.Fatalf("union bit %d = %v, want %v", v, dst.Test(v), want[v])
		}
	}
}

func TestGraphMatrixCached(t *testing.T) {
	g := Grid(8, 8)
	m1 := g.Matrix()
	m2 := g.Matrix()
	if m1 != m2 {
		t.Fatal("Matrix not cached: two calls returned distinct representations")
	}
	if m1.N() != g.N() {
		t.Fatalf("cached matrix N = %d, want %d", m1.N(), g.N())
	}
	// Clone must not share the cache (its matrix is built from its own
	// adjacency).
	c := g.Clone()
	if c.Matrix() == m1 {
		t.Fatal("Clone shares the original's cached matrix")
	}
}

func TestMatrixBytes(t *testing.T) {
	tests := []struct {
		n    int
		want int64
	}{
		{0, 0},
		{1, 8},
		{64, 8 * 64},
		{65, 16 * 65},
		{100000, 8 * 1563 * 100000},
	}
	for _, tc := range tests {
		if got := MatrixBytes(tc.n); got != tc.want {
			t.Fatalf("MatrixBytes(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestBitsetFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 200} {
		b := NewBitset(200)
		b.Set(199) // Fill must clear bits beyond n
		b.Fill(n)
		if got := b.Count(); got != n {
			t.Fatalf("Fill(%d): count %d", n, got)
		}
		for i := 0; i < 200; i++ {
			if b.Test(i) != (i < n) {
				t.Fatalf("Fill(%d): bit %d = %v", n, i, b.Test(i))
			}
		}
	}
}

func TestBitsetAndAndCount(t *testing.T) {
	src := rng.New(3)
	a := NewBitset(300)
	b := NewBitset(300)
	want := map[int]bool{}
	for i := 0; i < 300; i++ {
		inA := src.Intn(2) == 1
		inB := src.Intn(2) == 1
		if inA {
			a.Set(i)
		}
		if inB {
			b.Set(i)
		}
		want[i] = inA && inB
	}
	wantCount := 0
	for _, w := range want {
		if w {
			wantCount++
		}
	}
	if got := a.AndCount(b); got != wantCount {
		t.Fatalf("AndCount = %d, want %d", got, wantCount)
	}
	a.And(b)
	for i := 0; i < 300; i++ {
		if a.Test(i) != want[i] {
			t.Fatalf("And: bit %d = %v, want %v", i, a.Test(i), want[i])
		}
	}
	if got := a.Count(); got != wantCount {
		t.Fatalf("And: count %d, want %d", got, wantCount)
	}
}

func TestOrRowRangeInto(t *testing.T) {
	g := GNP(200, 0.3, rng.New(9))
	m := g.Matrix()
	for _, v := range []int{0, 63, 64, 150, 199} {
		whole := NewBitset(g.N())
		m.OrRowInto(whole, v)
		// Reassemble the row from word ranges; the pieces must tile it.
		pieced := NewBitset(g.N())
		for lo := 0; lo < m.Words(); lo += 2 {
			hi := lo + 2
			if hi > m.Words() {
				hi = m.Words()
			}
			m.OrRowRangeInto(pieced, v, lo, hi)
		}
		for i := range whole {
			if whole[i] != pieced[i] {
				t.Fatalf("vertex %d word %d: range-assembled row differs", v, i)
			}
		}
	}
}

// TestPropagateIntoShardInvariance is the determinism-under-sharding
// contract: for random graphs and emitter sets, PropagateInto yields
// word-identical output for every shard count, equal to the serial
// reference union of adjacency rows.
func TestPropagateIntoShardInvariance(t *testing.T) {
	src := rng.New(31)
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"gnp-400-dense", GNP(400, 0.5, rng.New(1))},
		{"gnp-500-sparse", GNP(500, 0.01, rng.New(2))},
		{"grid-20x20", Grid(20, 20)},
		{"complete-129", Complete(129)},
		{"empty-100", Empty(100)},
	} {
		m := tc.g.Matrix()
		n := tc.g.N()
		for trial := 0; trial < 5; trial++ {
			emitters := NewBitset(n)
			for v := 0; v < n; v++ {
				if src.Intn(4) == 0 {
					emitters.Set(v)
				}
			}
			// Serial reference via the pre-existing whole-row op.
			want := NewBitset(n)
			emitters.ForEach(func(v int) { m.OrRowInto(want, v) })
			for _, shards := range []int{0, 1, 2, 3, 7, 64, 1000} {
				got := NewBitset(n)
				got.Fill(n) // PropagateInto must fully overwrite dst
				m.PropagateInto(got, emitters, shards)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s trial %d shards %d: word %d differs", tc.name, trial, shards, i)
					}
				}
			}
		}
	}
}
