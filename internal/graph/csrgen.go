package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"beepmis/internal/rng"
)

// This file holds the web-scale generators that construct CSR directly
// through CSRBuilder — no intermediate adjacency Graph, no per-edge
// append churn. They all share one determinism discipline, the same one
// rng.Stream gives the simulator: the edge stream is split into chunks
// whose boundaries are a pure function of the parameters (never of the
// worker count), and chunk k draws every sample from the sub-stream
// src.Stream(k). Workers claim chunks from an atomic counter, so which
// goroutine generates a chunk is scheduling luck — but the chunk's
// edges are not, and the builder's sort-based finalisation erases
// placement order. The same chunks are regenerated identically in the
// counting and placement passes, which is what lets the pipeline run
// without ever buffering the edge list.

// csrGenChunkEdges is the target edge count per generator chunk: big
// enough that the per-chunk stream derivation and atomic chunk claim
// are noise, small enough that work-stealing balances tails across
// workers.
const csrGenChunkEdges = 1 << 18

// runCSRGenPass streams every chunk through gen once, on up to
// `workers` goroutines (≤0 means GOMAXPROCS). gen receives the chunk
// index, the chunk's private stream, and the builder method to feed
// (Count on pass one, Place on pass two).
func runCSRGenPass(src *rng.Source, numChunks int64, workers int, gen func(k int64, s *rng.Source, emit func(u, v int32))) {
	w := finalizeWorkers(workers, int(min(numChunks, 1<<30)))
	if w == 1 {
		var s rng.Source
		for k := int64(0); k < numChunks; k++ {
			src.StreamInto(&s, uint64(k))
			gen(k, &s, nil)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s rng.Source
			for {
				k := atomic.AddInt64(&next, 1) - 1
				if k >= numChunks {
					return
				}
				src.StreamInto(&s, uint64(k))
				gen(k, &s, nil)
			}
		}()
	}
	wg.Wait()
}

// buildChunkedCSR drives the full two-pass protocol for a chunked
// generator: pass one counts, pass two places, then the builder
// finalises. gen must emit exactly the same edges for a given (chunk,
// stream) on both invocations — it is called with emit=b.Count, then
// emit=b.Place.
func buildChunkedCSR(n int, numChunks int64, src *rng.Source, workers int, gen func(k int64, s *rng.Source, emit func(u, v int32))) (*CSR, error) {
	b := NewCSRBuilder(n)
	runCSRGenPass(src, numChunks, workers, func(k int64, s *rng.Source, _ func(u, v int32)) {
		gen(k, s, b.Count)
	})
	if err := b.FinishCounts(); err != nil {
		return nil, err
	}
	runCSRGenPass(src, numChunks, workers, func(k int64, s *rng.Source, _ func(u, v int32)) {
		gen(k, s, b.Place)
	})
	return b.Finish(workers)
}

// RMATCSR generates a recursive-matrix (R-MAT/Kronecker) graph with n
// vertices (n must be a power of two ≥ 2) by sampling `edges` edges:
// each edge walks log2(n) levels of the recursive adjacency-matrix
// quadrant split, choosing a quadrant with probabilities (a, b, c, d)
// per level. The probabilities must be non-negative and sum to 1; the
// Graph500 defaults (0.57, 0.19, 0.19, 0.05) give the heavy-tailed
// degree distribution real web/social graphs show.
//
// Self-loops are dropped and duplicate samples deduplicated, so the
// final edge count is at most (and for skewed parameter sets
// measurably below) the requested count — the standard R-MAT contract.
// Output is bit-identical for any worker count.
func RMATCSR(n int, edges int64, a, b, c, d float64, src *rng.Source, workers int) (*CSR, error) {
	scale := 0
	for 1<<scale < n {
		scale++
	}
	if n < 2 || 1<<scale != n {
		return nil, fmt.Errorf("graph: RMAT vertex count %d is not a power of two ≥ 2", n)
	}
	if edges < 0 {
		return nil, fmt.Errorf("graph: RMAT edge count %d negative", edges)
	}
	if err := ValidateRMATProbs(a, b, c, d); err != nil {
		return nil, err
	}
	ab, abc := a+b, a+b+c
	numChunks := (edges + csrGenChunkEdges - 1) / csrGenChunkEdges
	return buildChunkedCSR(n, numChunks, src, workers, func(k int64, s *rng.Source, emit func(u, v int32)) {
		lo := k * csrGenChunkEdges
		hi := min(lo+csrGenChunkEdges, edges)
		for i := lo; i < hi; i++ {
			var u, v int32
			for l := 0; l < scale; l++ {
				r := s.Float64()
				u <<= 1
				v <<= 1
				switch {
				case r < a:
					// top-left: both bits 0
				case r < ab:
					v |= 1
				case r < abc:
					u |= 1
				default:
					u |= 1
					v |= 1
				}
			}
			emit(u, v)
		}
	})
}

// ValidateRMATProbs checks an R-MAT quadrant distribution (exported so
// the scenario compiler validates without building).
func ValidateRMATProbs(a, b, c, d float64) error {
	for _, p := range [4]float64{a, b, c, d} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("graph: RMAT probabilities (%v,%v,%v,%v) must each lie in [0,1]", a, b, c, d)
		}
	}
	if s := a + b + c + d; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("graph: RMAT probabilities sum to %v, want 1", s)
	}
	return nil
}

// ConfigModelCSR generates a power-law random graph with n vertices and
// (up to) `edges` edges in the Chung–Lu expected-degree flavour of the
// configuration model: vertex i carries weight (i+1)^(-1/(gamma-1)) —
// the weight sequence whose expected degrees follow a power law with
// exponent gamma — and each edge picks both endpoints independently
// with probability proportional to weight, via binary search in the
// weight prefix-sum table.
//
// The strict stub-pairing configuration model is inherently sequential
// (each match consumes two stubs from a shared pool, so the result
// depends on match order); the Chung–Lu form has the same expected
// degree sequence, and its read-only prefix-sum table makes sampling
// embarrassingly parallel and deterministic for any worker count —
// which is why it is the form web-scale graph suites (GAP, Graph500
// comparisons) generate. gamma must exceed 2 (finite mean degree);
// self-loops are dropped and duplicates deduplicated, so the final
// edge count is at most the requested count.
func ConfigModelCSR(n int, edges int64, gamma float64, src *rng.Source, workers int) (*CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: configmodel vertex count %d < 1", n)
	}
	if edges < 0 {
		return nil, fmt.Errorf("graph: configmodel edge count %d negative", edges)
	}
	if math.IsNaN(gamma) || gamma <= 2 {
		return nil, fmt.Errorf("graph: configmodel exponent gamma=%v must exceed 2", gamma)
	}
	// cum[i] = Σ_{j≤i} w_j; built once, read-only during both passes.
	// 8n transient bytes — dwarfed by the column array for any graph
	// with average degree above 2.
	alpha := -1 / (gamma - 1)
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), alpha)
		cum[i] = total
	}
	numChunks := (edges + csrGenChunkEdges - 1) / csrGenChunkEdges
	return buildChunkedCSR(n, numChunks, src, workers, func(k int64, s *rng.Source, emit func(u, v int32)) {
		lo := k * csrGenChunkEdges
		hi := min(lo+csrGenChunkEdges, edges)
		for i := lo; i < hi; i++ {
			u := int32(sort.SearchFloat64s(cum, s.Float64()*total))
			v := int32(sort.SearchFloat64s(cum, s.Float64()*total))
			if int(u) >= n {
				u = int32(n - 1) // r*total == total at the fp boundary
			}
			if int(v) >= n {
				v = int32(n - 1)
			}
			emit(u, v)
		}
	})
}

// GNPCSR generates G(n, p) directly into CSR via per-chunk
// Batagelj–Brandes geometric skipping — the direct-to-CSR fast path for
// the sparse regime, where the adjacency-Graph funnel's append churn
// dominates construction. Chunks are contiguous ranges of the higher
// endpoint u with boundaries u_k = round(n·sqrt(k/chunks)) — equal
// expected edge mass per chunk, and a pure function of (n, p) so the
// edge set is bit-identical for any worker count. Within a chunk, each
// row u samples its candidate lower endpoints v < u by geometric gap
// skipping; the geometric distribution is memoryless, so restarting the
// gap sequence at each row still makes every pair an independent
// Bernoulli(p) trial.
//
// The sample drawn differs from GNP's (different chunking, same
// distribution): GNPCSR is a new family member for direct-to-CSR
// workloads, not a byte-compatible replacement for GNP(seed).
func GNPCSR(n int, p float64, src *rng.Source, workers int) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: gnp vertex count %d negative", n)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: gnp probability %v outside [0,1]", p)
	}
	if p == 0 || n < 2 {
		b := NewCSRBuilder(n)
		if err := b.FinishCounts(); err != nil {
			return nil, err
		}
		return b.Finish(workers)
	}
	if p == 1 {
		return NewCSR(Complete(n)), nil
	}
	expected := p * float64(n) * float64(n-1) / 2
	numChunks := int64(expected/csrGenChunkEdges) + 1
	if numChunks > int64(n) {
		numChunks = int64(n)
	}
	// bounds[k] is chunk k's first u: equal expected edge mass per chunk
	// because the edges below u grow ∝ u².
	bounds := make([]int, numChunks+1)
	for k := int64(1); k < numChunks; k++ {
		bounds[k] = int(float64(n) * math.Sqrt(float64(k)/float64(numChunks)))
	}
	bounds[numChunks] = n
	lq := math.Log1p(-p)
	return buildChunkedCSR(n, numChunks, src, workers, func(k int64, s *rng.Source, emit func(u, v int32)) {
		for u := bounds[k]; u < bounds[k+1]; u++ {
			v := -1
			for {
				r := s.Float64()
				v += 1 + int(math.Log1p(-r)/lq)
				if v >= u {
					break
				}
				emit(int32(u), int32(v))
			}
		}
	})
}
