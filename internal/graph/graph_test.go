package graph

import (
	"errors"
	"testing"
	"testing/quick"

	"beepmis/internal/rng"
)

func TestEmptyGraph(t *testing.T) {
	g := Empty(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("Empty(5) = %v", g)
	}
	if g.MaxDegree() != 0 || g.MinDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph degrees should be 0")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroVertexGraph(t *testing.T) {
	g := Empty(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("Empty(0) = %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.AvgDegree() != 0 {
		t.Fatal("AvgDegree of empty graph must be 0")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {5, 1}} {
		err := b.AddEdge(e[0], e[1])
		if !errors.Is(err, ErrVertexRange) {
			t.Fatalf("AddEdge(%d,%d) err = %v, want ErrVertexRange", e[0], e[1], err)
		}
	}
}

func TestBuilderDedupesEdges(t *testing.T) {
	b := NewBuilder(3)
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(1, 0); err != nil {
			t.Fatal(err)
		}
	}
	// A non-duplicated edge alongside the duplicates: M() must count
	// distinct edges, not insertions.
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d after duplicate inserts of {0,1} plus {1,2}, want 2", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdge(t *testing.T) {
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	g := b.Build()
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {0, 2, false},
		{3, 0, false}, {-1, 0, false}, {0, 99, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := GNP(30, 0.3, rng.New(1))
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges() returned %d, M() = %d", len(edges), g.M())
	}
	b := NewBuilder(g.N())
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g2 := b.Build()
	if g2.M() != g.M() {
		t.Fatalf("rebuilt graph has %d edges, want %d", g2.M(), g.M())
	}
	for _, e := range edges {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("rebuilt graph missing edge %v", e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone differs in size")
	}
	// Mutating the clone's internals must not affect the original.
	c.adj[0][0] = 3
	if g.adj[0][0] == 3 {
		t.Fatal("clone shares storage with original")
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5) // hub 0 degree 4, leaves degree 1
	if g.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Fatalf("MinDegree = %d", g.MinDegree())
	}
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Fatalf("AvgDegree = %v", got)
	}
}

// Property: every generated G(n,p) validates and has plausible edge count.
func TestGNPProperty(t *testing.T) {
	src := rng.New(77)
	f := func(nSeed uint8, pSeed uint8) bool {
		n := int(nSeed%64) + 2
		p := float64(pSeed%11) / 10
		g := GNP(n, p, src)
		if g.N() != n {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGNPEdgeDensity(t *testing.T) {
	src := rng.New(5)
	n := 200
	g := GNP(n, 0.5, src)
	want := float64(n*(n-1)) / 4 // p * n(n-1)/2
	got := float64(g.M())
	if got < want*0.93 || got > want*1.07 {
		t.Fatalf("G(%d,0.5) has %v edges, want ~%v", n, got, want)
	}
}

func TestGNPSparseDensity(t *testing.T) {
	// Exercises the Batagelj–Brandes skipping path (p < 0.1).
	src := rng.New(6)
	n, p := 2000, 0.01
	g := GNP(n, p, src)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n*(n-1)) / 2
	got := float64(g.M())
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("G(%d,%v) has %v edges, want ~%v", n, p, got, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	src := rng.New(7)
	if g := GNP(10, 0, src); g.M() != 0 {
		t.Fatal("G(n,0) must have no edges")
	}
	if g := GNP(10, 1, src); g.M() != 45 {
		t.Fatalf("G(10,1) has %d edges, want 45", g.M())
	}
}

func TestComplete(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 10} {
		g := Complete(n)
		if g.M() != n*(n-1)/2 {
			t.Fatalf("K_%d has %d edges", n, g.M())
		}
		if n > 1 && g.MinDegree() != n-1 {
			t.Fatalf("K_%d min degree %d", n, g.MinDegree())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("Grid(3,4).N = %d", g.N())
	}
	// Edges: horizontal 3*(4-1)=9, vertical (3-1)*4=8.
	if g.M() != 17 {
		t.Fatalf("Grid(3,4).M = %d, want 17", g.M())
	}
	if g.MaxDegree() != 4 {
		t.Fatalf("grid max degree %d", g.MaxDegree())
	}
	if !IsConnected(g) {
		t.Fatal("grid must be connected")
	}
}

func TestTorusRegular(t *testing.T) {
	g := Torus(4, 5)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPathCycleStar(t *testing.T) {
	if g := Path(6); g.M() != 5 || g.MaxDegree() != 2 {
		t.Fatalf("Path(6) = %v", g)
	}
	if g := Cycle(6); g.M() != 6 || g.MinDegree() != 2 || g.MaxDegree() != 2 {
		t.Fatalf("Cycle(6) = %v", g)
	}
	if g := Cycle(2); g.M() != 1 {
		t.Fatalf("Cycle(2) = %v", g)
	}
	if g := Star(7); g.M() != 6 || g.Degree(0) != 6 {
		t.Fatalf("Star(7) = %v", g)
	}
}

func TestRandomTree(t *testing.T) {
	g := RandomTree(50, rng.New(8))
	if g.M() != 49 {
		t.Fatalf("tree on 50 vertices has %d edges", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("tree must be connected")
	}
}

func TestCliqueUnion(t *testing.T) {
	g := CliqueUnion([]int{3, 1, 4})
	if g.N() != 8 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 3+0+6 {
		t.Fatalf("M = %d", g.M())
	}
	_, comps := ConnectedComponents(g)
	if comps != 3 {
		t.Fatalf("components = %d, want 3", comps)
	}
}

func TestCliqueFamilyStructure(t *testing.T) {
	g := CliqueFamily(1000) // k = 10
	k := 10
	wantN := 0
	for d := 1; d <= k; d++ {
		wantN += k * d
	}
	if g.N() != wantN {
		t.Fatalf("CliqueFamily(1000).N = %d, want %d", g.N(), wantN)
	}
	_, comps := ConnectedComponents(g)
	if comps != k*k {
		t.Fatalf("components = %d, want %d", comps, k*k)
	}
	if g.MaxDegree() != k-1 {
		t.Fatalf("max degree %d, want %d", g.MaxDegree(), k-1)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueFamilyTiny(t *testing.T) {
	g := CliqueFamily(1)
	if g.N() != 1 || g.M() != 0 {
		t.Fatalf("CliqueFamily(1) = %v", g)
	}
}

func TestUnitDisk(t *testing.T) {
	src := rng.New(9)
	g, xs, ys := UnitDiskPoints(300, 0.12, src)
	if g.N() != 300 || len(xs) != 300 || len(ys) != 300 {
		t.Fatal("size mismatch")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every edge must respect the radius; spot-check symmetry with a
	// brute-force reconstruction.
	r2 := 0.12 * 0.12
	for _, e := range g.Edges() {
		dx, dy := xs[e[0]]-xs[e[1]], ys[e[0]]-ys[e[1]]
		if dx*dx+dy*dy > r2+1e-12 {
			t.Fatalf("edge %v exceeds radius", e)
		}
	}
	brute := 0
	for i := 0; i < 300; i++ {
		for j := i + 1; j < 300; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				brute++
			}
		}
	}
	if brute != g.M() {
		t.Fatalf("bucketed construction found %d edges, brute force %d", g.M(), brute)
	}
}

func TestUnitDiskZeroRadius(t *testing.T) {
	g := UnitDisk(50, 0, rng.New(10))
	if g.M() != 0 {
		t.Fatal("r=0 disk graph must be empty")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(200, 3, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Fatal("BA graph should be connected")
	}
	// Each of the n-m-1 later vertices adds exactly m distinct edges.
	wantM := 3*2/2*1 + 3 // K_4 has 6 edges... compute directly below
	wantM = 6 + (200-4)*3
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	if _, err := BarabasiAlbert(10, 0, rng.New(1)); err == nil {
		t.Fatal("m=0 must error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz(100, 4, 0.1, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rewiring preserves edge count.
	if g.M() != 200 {
		t.Fatalf("M = %d, want 200", g.M())
	}
	if _, err := WattsStrogatz(10, 3, 0.1, rng.New(1)); err == nil {
		t.Fatal("odd k must error")
	}
}

func TestBipartite(t *testing.T) {
	g := Bipartite(10, 15, 1, rng.New(13))
	if g.M() != 150 {
		t.Fatalf("complete bipartite M = %d", g.M())
	}
	// No edges within a side.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if g.HasEdge(u, v) {
				t.Fatalf("edge inside left side: {%d,%d}", u, v)
			}
		}
	}
}
