package graph

import (
	"math"
	"runtime"
	"testing"

	"beepmis/internal/rng"
)

// TestGeneratorsDeterministicAcrossWorkers is the generator half of the
// pipeline's determinism contract: for each direct-to-CSR generator,
// every worker count must produce the bit-identical graph, and the
// graph must pass full structural validation.
func TestGeneratorsDeterministicAcrossWorkers(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	gens := map[string]func(workers int) (*CSR, error){
		"rmat": func(w int) (*CSR, error) {
			return RMATCSR(256, 4000, 0.57, 0.19, 0.19, 0.05, rng.New(11), w)
		},
		"rmat-uniform": func(w int) (*CSR, error) {
			return RMATCSR(128, 2000, 0.25, 0.25, 0.25, 0.25, rng.New(12), w)
		},
		"configmodel": func(w int) (*CSR, error) {
			return ConfigModelCSR(300, 3000, 2.5, rng.New(13), w)
		},
		"configmodel-steep": func(w int) (*CSR, error) {
			return ConfigModelCSR(200, 1000, 3.5, rng.New(14), w)
		},
		"gnp": func(w int) (*CSR, error) {
			return GNPCSR(400, 0.05, rng.New(15), w)
		},
		"gnp-sparse": func(w int) (*CSR, error) {
			return GNPCSR(5000, 0.0008, rng.New(16), w)
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			want, err := gen(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := want.Validate(); err != nil {
				t.Fatal(err)
			}
			if want.M() == 0 {
				t.Fatal("generator produced an empty graph; the test is vacuous")
			}
			for _, w := range workerCounts[1:] {
				got, err := gen(w)
				if err != nil {
					t.Fatal(err)
				}
				if !csrEqual(got, want) {
					t.Fatalf("workers=%d produced a different graph than workers=1", w)
				}
			}
		})
	}
}

// TestRMATEdgeBudget: the sampled edge count is an upper bound (loops
// dropped, duplicates collapsed) but a skew this mild should keep most
// of it.
func TestRMATEdgeBudget(t *testing.T) {
	c, err := RMATCSR(1024, 8192, 0.57, 0.19, 0.19, 0.05, rng.New(21), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := c.M(); m > 8192 || m < 8192/2 {
		t.Fatalf("RMAT produced %d edges from an 8192-edge budget", m)
	}
}

// TestConfigModelDegreeSkew: the Chung–Lu weights must actually skew —
// the heaviest vertex (index 0) should out-degree the lightest by a
// wide margin.
func TestConfigModelDegreeSkew(t *testing.T) {
	c, err := ConfigModelCSR(1000, 20000, 2.2, rng.New(22), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Degree(0) < 4*c.Degree(999) {
		t.Fatalf("degree(0)=%d not clearly above degree(999)=%d: power-law weighting missing?",
			c.Degree(0), c.Degree(999))
	}
}

// TestGNPCSRMatchesExpectation: the Batagelj–Brandes path must deliver
// a G(n,p)-plausible edge count (within 5 sigma) and valid structure;
// the degenerate p values take their special-case paths.
func TestGNPCSRMatchesExpectation(t *testing.T) {
	n, p := 2000, 0.01
	c, err := GNPCSR(n, p, rng.New(23), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := p * float64(n) * float64(n-1) / 2
	sigma := math.Sqrt(mean * (1 - p))
	if diff := math.Abs(float64(c.M()) - mean); diff > 5*sigma {
		t.Fatalf("GNPCSR produced %d edges, expected %.0f ± %.0f", c.M(), mean, 5*sigma)
	}
	if c, err := GNPCSR(50, 0, rng.New(1), 0); err != nil || c.M() != 0 {
		t.Fatalf("p=0: got m=%d, err=%v", c.M(), err)
	}
	if c, err := GNPCSR(20, 1, rng.New(1), 0); err != nil || c.M() != 20*19/2 {
		t.Fatalf("p=1: got m=%d, err=%v", c.M(), err)
	}
	if c, err := GNPCSR(0, 0.5, rng.New(1), 0); err != nil || c.N() != 0 {
		t.Fatalf("n=0: got n=%d, err=%v", c.N(), err)
	}
}

// TestGeneratorParamValidation: every generator rejects out-of-domain
// parameters with an error, never a panic.
func TestGeneratorParamValidation(t *testing.T) {
	src := rng.New(1)
	cases := map[string]func() error{
		"rmat-not-pow2":    func() error { _, err := RMATCSR(100, 10, 0.57, 0.19, 0.19, 0.05, src, 0); return err },
		"rmat-n1":          func() error { _, err := RMATCSR(1, 10, 0.57, 0.19, 0.19, 0.05, src, 0); return err },
		"rmat-neg-edges":   func() error { _, err := RMATCSR(64, -1, 0.57, 0.19, 0.19, 0.05, src, 0); return err },
		"rmat-bad-sum":     func() error { _, err := RMATCSR(64, 10, 0.5, 0.5, 0.5, 0.5, src, 0); return err },
		"rmat-neg-prob":    func() error { _, err := RMATCSR(64, 10, -0.1, 0.5, 0.3, 0.3, src, 0); return err },
		"rmat-nan":         func() error { _, err := RMATCSR(64, 10, math.NaN(), 0.5, 0.3, 0.2, src, 0); return err },
		"config-gamma2":    func() error { _, err := ConfigModelCSR(10, 10, 2, src, 0); return err },
		"config-nan":       func() error { _, err := ConfigModelCSR(10, 10, math.NaN(), src, 0); return err },
		"config-neg-edges": func() error { _, err := ConfigModelCSR(10, -1, 2.5, src, 0); return err },
		"config-n0":        func() error { _, err := ConfigModelCSR(0, 10, 2.5, src, 0); return err },
		"gnp-neg-p":        func() error { _, err := GNPCSR(10, -0.1, src, 0); return err },
		"gnp-p-above-1":    func() error { _, err := GNPCSR(10, 1.1, src, 0); return err },
		"gnp-neg-n":        func() error { _, err := GNPCSR(-1, 0.5, src, 0); return err },
	}
	for name, call := range cases {
		if err := call(); err == nil {
			t.Errorf("%s: invalid parameters did not error", name)
		}
	}
}
