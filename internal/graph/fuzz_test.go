package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the parser never panics and that anything it
// accepts is a valid graph that round-trips through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# comment\nn 0\n")
	f.Add("n 5\n")
	f.Add("garbage")
	f.Add("n 2\n0 1\n0 1\n")
	f.Add("n 1000000000\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip()
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", err, input)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed graph: %v vs %v", g2, g)
		}
	})
}
