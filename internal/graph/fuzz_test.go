package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the parser never panics and that anything it
// accepts is a valid graph that round-trips through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("n 3\n0 1\n1 2\n")
	f.Add("# comment\nn 0\n")
	f.Add("n 5\n")
	f.Add("garbage")
	f.Add("n 2\n0 1\n0 1\n")
	f.Add("n 1000000000\n")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip()
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", err, input)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed graph: %v vs %v", g2, g)
		}
	})
}

// FuzzCSR asserts CSR construction never panics and round-trips against
// Graph.HasEdge for adversarial edge lists: the fuzzer decodes raw
// bytes as (n, endpoint pairs), feeds them — including out-of-range and
// self-loop garbage the Builder rejects, and duplicates it dedupes —
// through Build, and cross-checks the CSR form edge by edge.
func FuzzCSR(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 1, 2})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(5), []byte{0, 1, 0, 1, 1, 0, 4, 4, 9, 2})
	f.Add(uint8(65), []byte{0, 64, 64, 1, 33, 32})
	f.Fuzz(func(t *testing.T, n uint8, edges []byte) {
		if len(edges) > 1<<12 {
			t.Skip()
		}
		b := NewBuilder(int(n))
		for i := 0; i+3 < len(edges); i += 4 {
			u := int(binary.LittleEndian.Uint16(edges[i:]))
			v := int(binary.LittleEndian.Uint16(edges[i+2:]))
			_ = b.AddEdge(u, v) // out-of-range and self-loops rejected; duplicates deduped
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		c := NewCSR(g)
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("CSR n=%d m=%d, graph n=%d m=%d", c.N(), c.M(), g.N(), g.M())
		}
		total := 0
		for v := 0; v < g.N(); v++ {
			row := c.Row(v)
			total += len(row)
			prev := int32(-1)
			for _, w := range row {
				if w <= prev {
					t.Fatalf("row %d not strictly sorted", v)
				}
				prev = w
				if !g.HasEdge(v, int(w)) {
					t.Fatalf("CSR edge {%d,%d} absent from graph", v, w)
				}
			}
		}
		if total != 2*g.M() {
			t.Fatalf("CSR holds %d entries for %d edges", total, g.M())
		}
		// The reverse direction: every graph edge must be in the CSR.
		for _, e := range g.Edges() {
			if !c.HasEdge(e[0], e[1]) || !c.HasEdge(e[1], e[0]) {
				t.Fatalf("graph edge %v absent from CSR", e)
			}
		}
	})
}
