package graph

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file holds the streamed file loaders: edge-list (text and
// binary) and METIS readers that construct graph.CSR directly through
// CSRBuilder. The file IS the edge buffer — each loader reads it twice
// (count pass, place pass) and never materialises an intermediate
// adjacency Graph, so peak memory during ingestion is the CSRBuilder
// bound (~1.2× the final CSR) plus O(n) parse metadata, regardless of
// file size. Pass one also folds every byte through SHA-256; the
// returned digest is what the scenario layer mixes into the content
// hash so the misd result cache stays sound for file-referenced graphs
// (same spec + different file bytes ⇒ different hash).
//
// All loaders validate as they parse and return errors naming the
// offending line (or entry index, for the binary format): malformed
// headers, out-of-range endpoints, self-loops, and duplicate edges are
// errors, never panics and never silent fixes — a file is a claim about
// a graph, and a loader that "repairs" it would let a corrupted file
// alias a healthy digest.

// Graph file formats accepted by LoadCSRFile.
const (
	FormatEdgeList       = "edgelist" // text: "n <count> [m <edges>]" header, "u v" lines
	FormatBinaryEdgeList = "edgelist-binary"
	FormatMETIS          = "metis"
)

// DetectGraphFormat infers a graph file's format from its extension:
// .bel → binary edge list; .graph/.metis → METIS; everything else
// (.el/.edges/.txt/…) → text edge list.
func DetectGraphFormat(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bel":
		return FormatBinaryEdgeList
	case ".graph", ".metis":
		return FormatMETIS
	default:
		return FormatEdgeList
	}
}

// PeekInfo is a graph file's header summary, read without scanning the
// body — what scenario validation needs to admit or reject a
// file-referenced unit before any real I/O or allocation happens.
type PeekInfo struct {
	Format string
	N      int
	Edges  int64 // edge count, or an upper bound when !EdgesExact
	// EdgesExact is false only for text edge lists without the optional
	// "m <edges>" header field, where the bound is fileSize/4 (the
	// shortest possible edge line, "0 1\n", is 4 bytes). The bound is
	// conservative in the safe direction for memory admission.
	EdgesExact bool
}

// PeekGraphFile reads just enough of a graph file to report its vertex
// count and (an upper bound on) its edge count. format "" means
// DetectGraphFormat(path).
func PeekGraphFile(path, format string) (PeekInfo, error) {
	if format == "" {
		format = DetectGraphFormat(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return PeekInfo{}, err
	}
	defer f.Close()
	switch format {
	case FormatEdgeList:
		st, err := f.Stat()
		if err != nil {
			return PeekInfo{}, err
		}
		n, m, exact, _, err := readEdgeListHeader(bufio.NewScanner(f), 0)
		if err != nil {
			return PeekInfo{}, fmt.Errorf("%s: %w", path, err)
		}
		if !exact {
			m = st.Size() / 4
		}
		return PeekInfo{Format: format, N: n, Edges: m, EdgesExact: exact}, nil
	case FormatBinaryEdgeList:
		n, m, err := readBinaryHeader(f)
		if err != nil {
			return PeekInfo{}, fmt.Errorf("%s: %w", path, err)
		}
		return PeekInfo{Format: format, N: n, Edges: m, EdgesExact: true}, nil
	case FormatMETIS:
		sc := newGraphScanner(f)
		n, m, _, err := readMETISHeader(sc)
		if err != nil {
			return PeekInfo{}, fmt.Errorf("%s: %w", path, err)
		}
		return PeekInfo{Format: format, N: n, Edges: m, EdgesExact: true}, nil
	default:
		return PeekInfo{}, fmt.Errorf("graph: unknown graph file format %q", format)
	}
}

// LoadCSRFile streams the graph file at path into a CSR, returning the
// CSR and the hex SHA-256 digest of the file's bytes. format "" means
// DetectGraphFormat(path); workers bounds the builder's finalisation
// fan-out (≤0 means GOMAXPROCS). The result is identical for any
// worker count.
func LoadCSRFile(path, format string, workers int) (*CSR, string, error) {
	if format == "" {
		format = DetectGraphFormat(path)
	}
	switch format {
	case FormatEdgeList:
		return loadEdgeListCSR(path, workers)
	case FormatBinaryEdgeList:
		return loadBinaryEdgeListCSR(path, workers)
	case FormatMETIS:
		return loadMETISCSR(path, workers)
	default:
		return nil, "", fmt.Errorf("graph: unknown graph file format %q", format)
	}
}

// newGraphScanner returns a line scanner sized for adjacency rows:
// METIS lines hold whole neighbour lists, which blow through the
// default 64 KiB token limit on dense vertices.
func newGraphScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

// --- text edge list ---------------------------------------------------

// readEdgeListHeader consumes comment/blank lines and parses the header
// "n <count>" or "n <count> m <edges>", returning (n, m, mPresent,
// lineNo-after-header).
func readEdgeListHeader(sc *bufio.Scanner, lineNo int) (int, int64, bool, int, error) {
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if (len(fields) != 2 && len(fields) != 4) || fields[0] != "n" || (len(fields) == 4 && fields[2] != "m") {
			return 0, 0, false, lineNo, fmt.Errorf("line %d: expected header \"n <count>\" or \"n <count> m <edges>\", got %q", lineNo, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return 0, 0, false, lineNo, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[1])
		}
		if n > MaxEdgeListVertices {
			return 0, 0, false, lineNo, fmt.Errorf("line %d: vertex count %d exceeds limit %d", lineNo, n, MaxEdgeListVertices)
		}
		var m int64
		exact := false
		if len(fields) == 4 {
			m, err = strconv.ParseInt(fields[3], 10, 64)
			if err != nil || m < 0 {
				return 0, 0, false, lineNo, fmt.Errorf("line %d: bad edge count %q", lineNo, fields[3])
			}
			exact = true
		}
		return n, m, exact, lineNo, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, false, lineNo, fmt.Errorf("scan edge list: %w", err)
	}
	return 0, 0, false, lineNo, fmt.Errorf("edge list: missing \"n <count>\" header")
}

// scanEdgeListBody parses every edge line after the header, calling
// visit(u, v, lineNo) for each. Range and self-loop violations are
// rejected here, with their line number; visit handles the rest.
func scanEdgeListBody(sc *bufio.Scanner, n, lineNo int, visit func(u, v int32, lineNo int) error) (int64, error) {
	var edges int64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		uStr, vStr, ok := strings.Cut(line, " ")
		if !ok {
			return 0, fmt.Errorf("line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err := strconv.Atoi(uStr)
		if err != nil {
			return 0, fmt.Errorf("line %d: bad vertex %q", lineNo, uStr)
		}
		v, err := strconv.Atoi(strings.TrimSpace(vStr))
		if err != nil {
			return 0, fmt.Errorf("line %d: bad vertex %q", lineNo, strings.TrimSpace(vStr))
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return 0, fmt.Errorf("line %d: %w: edge {%d,%d} with n=%d", lineNo, ErrVertexRange, u, v, n)
		}
		if u == v {
			return 0, fmt.Errorf("line %d: self-loop at vertex %d", lineNo, u)
		}
		if err := visit(int32(u), int32(v), lineNo); err != nil {
			return 0, err
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("scan edge list: %w", err)
	}
	return edges, nil
}

func loadEdgeListCSR(path string, workers int) (*CSR, string, error) {
	// Pass 1: count degrees, hash every byte.
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	h := sha256.New()
	sc := newGraphScanner(io.TeeReader(f, h))
	n, declaredM, haveM, lineNo, err := readEdgeListHeader(sc, 0)
	if err != nil {
		f.Close()
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	b := NewCSRBuilder(n)
	edges, err := scanEdgeListBody(sc, n, lineNo, func(u, v int32, _ int) error {
		b.Count(u, v)
		return nil
	})
	f.Close()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if haveM && edges != declaredM {
		return nil, "", fmt.Errorf("%s: header declares m=%d but file contains %d edge lines", path, declaredM, edges)
	}
	digest := hex.EncodeToString(h.Sum(nil))
	if err := b.FinishCounts(); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	// Pass 2: re-read and place. The file has not been re-validated —
	// it also hasn't changed, and if it has, the builder's pass-mismatch
	// check refuses the result rather than mis-building.
	c, err := edgeListSecondPass(path, b, n, workers)
	if err != nil {
		return nil, "", err
	}
	// Dedupe loss means the file listed some edge twice (in either
	// orientation) — find and name the first offending line.
	if int64(len(c.cols)) != 2*edges {
		return nil, "", fmt.Errorf("%s: %w", path, findDuplicateEdgeLine(path, c))
	}
	return c, digest, nil
}

func edgeListSecondPass(path string, b *CSRBuilder, n, workers int) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := newGraphScanner(f)
	_, _, _, lineNo, err := readEdgeListHeader(sc, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := scanEdgeListBody(sc, n, lineNo, func(u, v int32, _ int) error {
		b.Place(u, v)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c, err := b.Finish(workers)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// findDuplicateEdgeLine re-scans a file already known to contain a
// duplicate edge and names the first line whose edge was seen before.
// Error path only: costs one extra file pass plus a bit per final arc.
// Each surviving arc has a unique position in the deduped CSR, so a
// seen-bitmap over arc positions detects revisits exactly.
func findDuplicateEdgeLine(path string, c *CSR) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	seen := make([]uint64, (len(c.cols)+63)/64)
	sc := newGraphScanner(f)
	n, _, _, lineNo, err := readEdgeListHeader(sc, 0)
	if err != nil {
		return err
	}
	_, err = scanEdgeListBody(sc, n, lineNo, func(u, v int32, lineNo int) error {
		// Canonical orientation: "0 1" and "1 0" are the same edge and
		// must mark the same bit.
		idx := c.arcIndex(min(u, v), max(u, v))
		if seen[idx>>6]&(1<<(uint(idx)&63)) != 0 {
			return fmt.Errorf("line %d: duplicate edge {%d,%d}", lineNo, u, v)
		}
		seen[idx>>6] |= 1 << (uint(idx) & 63)
		return nil
	})
	if err != nil {
		return err
	}
	return fmt.Errorf("duplicate edges present but not relocated on re-scan (file changed mid-load?)")
}

// arcIndex returns the position of arc u→v in the flat column array.
// The caller guarantees the arc exists.
func (c *CSR) arcIndex(u, v int32) int64 {
	row := c.Row(int(u))
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return c.offsets[u] + int64(i)
}

// --- binary edge list -------------------------------------------------

// binaryEdgeListMagic opens the binary edge-list format: the magic,
// then uint64 vertex count, uint64 edge count, then exactly 2·m uint32
// values (u, v per edge), all little-endian. One undirected edge per
// pair, either orientation, no duplicates, no self-loops — the same
// contract as the text format, at 8 bytes per edge and no parsing.
const binaryEdgeListMagic = "BEL1"

// WriteBinaryEdgeList writes g in the binary edge-list format. The
// format round-trips through LoadCSRFile, including isolated vertices.
func WriteBinaryEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(binaryEdgeListMagic)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.M()))
	bw.Write(hdr[:])
	var rec [8]byte
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				binary.LittleEndian.PutUint32(rec[0:4], uint32(u))
				binary.LittleEndian.PutUint32(rec[4:8], uint32(v))
				if _, err := bw.Write(rec[:]); err != nil {
					return fmt.Errorf("write edge: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

func readBinaryHeader(r io.Reader) (int, int64, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("binary edge list: header: %w", err)
	}
	if string(hdr[0:4]) != binaryEdgeListMagic {
		return 0, 0, fmt.Errorf("binary edge list: bad magic %q (want %q)", hdr[0:4], binaryEdgeListMagic)
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	m := binary.LittleEndian.Uint64(hdr[12:20])
	if n > MaxEdgeListVertices {
		return 0, 0, fmt.Errorf("binary edge list: vertex count %d exceeds limit %d", n, MaxEdgeListVertices)
	}
	if m > (1 << 33) {
		return 0, 0, fmt.Errorf("binary edge list: edge count %d exceeds limit %d", m, int64(1)<<33)
	}
	return int(n), int64(m), nil
}

// scanBinaryBody reads exactly m edge records, calling visit(u, v,
// entry) for each; entry is the 0-based record index (the binary
// format's analogue of a line number).
func scanBinaryBody(r io.Reader, n int, m int64, visit func(u, v int32, entry int64) error) error {
	br := bufio.NewReaderSize(r, 1<<20)
	buf := make([]byte, 8*4096)
	var entry int64
	for entry < m {
		batch := min(int64(4096), m-entry)
		chunk := buf[:8*batch]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return fmt.Errorf("binary edge list: entry %d: %w", entry, err)
		}
		for i := int64(0); i < batch; i++ {
			u := binary.LittleEndian.Uint32(chunk[8*i:])
			v := binary.LittleEndian.Uint32(chunk[8*i+4:])
			if u >= uint32(n) || v >= uint32(n) {
				return fmt.Errorf("binary edge list: entry %d: %w: edge {%d,%d} with n=%d", entry+i, ErrVertexRange, u, v, n)
			}
			if u == v {
				return fmt.Errorf("binary edge list: entry %d: self-loop at vertex %d", entry+i, u)
			}
			if err := visit(int32(u), int32(v), entry+i); err != nil {
				return err
			}
		}
		entry += batch
	}
	// The byte after the last record must be EOF: trailing data means a
	// header/body mismatch, which must not alias a valid digest.
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("binary edge list: trailing data after %d declared edges", m)
	}
	return nil
}

func loadBinaryEdgeListCSR(path string, workers int) (*CSR, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	h := sha256.New()
	tee := io.TeeReader(f, h)
	n, m, err := readBinaryHeader(tee)
	if err != nil {
		f.Close()
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	b := NewCSRBuilder(n)
	err = scanBinaryBody(tee, n, m, func(u, v int32, _ int64) error {
		b.Count(u, v)
		return nil
	})
	f.Close()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	digest := hex.EncodeToString(h.Sum(nil))
	if err := b.FinishCounts(); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, "", err
	}
	if _, _, err := readBinaryHeader(f); err == nil {
		err = scanBinaryBody(f, n, m, func(u, v int32, _ int64) error {
			b.Place(u, v)
			return nil
		})
	}
	f.Close()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	c, err := b.Finish(workers)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if int64(len(c.cols)) != 2*m {
		return nil, "", fmt.Errorf("%s: %w", path, findDuplicateBinaryEntry(path, c))
	}
	return c, digest, nil
}

// findDuplicateBinaryEntry is findDuplicateEdgeLine for the binary
// format, naming the first duplicate record's entry index.
func findDuplicateBinaryEntry(path string, c *CSR) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, m, err := readBinaryHeader(f)
	if err != nil {
		return err
	}
	seen := make([]uint64, (len(c.cols)+63)/64)
	err = scanBinaryBody(f, n, m, func(u, v int32, entry int64) error {
		idx := c.arcIndex(min(u, v), max(u, v))
		if seen[idx>>6]&(1<<(uint(idx)&63)) != 0 {
			return fmt.Errorf("binary edge list: entry %d: duplicate edge {%d,%d}", entry, u, v)
		}
		seen[idx>>6] |= 1 << (uint(idx) & 63)
		return nil
	})
	if err != nil {
		return err
	}
	return fmt.Errorf("duplicate edges present but not relocated on re-scan (file changed mid-load?)")
}

// --- METIS ------------------------------------------------------------

// WriteMETIS writes g in the standard unweighted METIS graph format:
// a "<n> <m>" header, then one line per vertex listing its 1-based
// neighbours. Round-trips through LoadCSRFile.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for u := 0; u < g.N(); u++ {
		for i, v := range g.Neighbors(u) {
			if i > 0 {
				bw.WriteByte(' ')
			}
			if _, err := fmt.Fprintf(bw, "%d", v+1); err != nil {
				return fmt.Errorf("write row: %w", err)
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// readMETISHeader consumes '%'-comment lines and parses the METIS
// header "<n> <m> [fmt [ncon]]". Only the unweighted format (fmt
// absent or all zeros) is supported.
func readMETISHeader(sc *bufio.Scanner) (int, int64, int, error) {
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 4 {
			return 0, 0, lineNo, fmt.Errorf("line %d: expected METIS header \"n m [fmt]\", got %q", lineNo, line)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n < 0 {
			return 0, 0, lineNo, fmt.Errorf("line %d: bad vertex count %q", lineNo, fields[0])
		}
		if n > MaxEdgeListVertices {
			return 0, 0, lineNo, fmt.Errorf("line %d: vertex count %d exceeds limit %d", lineNo, n, MaxEdgeListVertices)
		}
		m, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || m < 0 {
			return 0, 0, lineNo, fmt.Errorf("line %d: bad edge count %q", lineNo, fields[1])
		}
		if len(fields) >= 3 && strings.Trim(fields[2], "0") != "" {
			return 0, 0, lineNo, fmt.Errorf("line %d: weighted METIS graphs (fmt=%s) are not supported", lineNo, fields[2])
		}
		return n, m, lineNo, nil
	}
	if err := sc.Err(); err != nil {
		return 0, 0, lineNo, fmt.Errorf("scan METIS file: %w", err)
	}
	return 0, 0, lineNo, fmt.Errorf("METIS file: missing \"n m\" header")
}

// scanMETISBody parses the n adjacency rows after the header, calling
// visit(u, v, lineNo) for every 0-based arc u→v the file lists. Range
// and self-loop violations are rejected here with their line number.
func scanMETISBody(sc *bufio.Scanner, n, lineNo int, visit func(u, v int32, lineNo int) error) error {
	row := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		if row >= n {
			if line == "" {
				continue
			}
			return fmt.Errorf("line %d: more than %d adjacency rows", lineNo, n)
		}
		u := row
		row++
		for _, fld := range strings.Fields(line) {
			w, err := strconv.Atoi(fld)
			if err != nil || w < 1 || w > n {
				return fmt.Errorf("line %d: vertex %d: bad neighbour %q (1-based, must be in [1,%d])", lineNo, u, fld, n)
			}
			v := w - 1
			if v == u {
				return fmt.Errorf("line %d: self-loop at vertex %d", lineNo, u)
			}
			if err := visit(int32(u), int32(v), lineNo); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("scan METIS file: %w", err)
	}
	if row < n {
		return fmt.Errorf("METIS file: %d adjacency rows, header declares %d vertices", row, n)
	}
	return nil
}

func loadMETISCSR(path string, workers int) (*CSR, string, error) {
	// Pass 1: count, hash, and record each row's file line + arc count
	// for the symmetry/duplicate cross-check after finalisation. METIS
	// lists every undirected edge once per endpoint row, so only the
	// u < v orientation feeds the builder; the v < u mirrors are
	// vouched for by the degree cross-check below.
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	h := sha256.New()
	sc := newGraphScanner(io.TeeReader(f, h))
	n, declaredM, lineNo, err := readMETISHeader(sc)
	if err != nil {
		f.Close()
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	b := NewCSRBuilder(n)
	rowArcs := make([]int32, n)
	rowLine := make([]int32, n)
	err = scanMETISBody(sc, n, lineNo, func(u, v int32, lineNo int) error {
		rowArcs[u]++
		rowLine[u] = int32(lineNo)
		if v > u {
			b.Count(u, v)
		}
		return nil
	})
	f.Close()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	digest := hex.EncodeToString(h.Sum(nil))
	if err := b.FinishCounts(); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, "", err
	}
	sc = newGraphScanner(f)
	if _, _, lineNo, err = readMETISHeader(sc); err == nil {
		err = scanMETISBody(sc, n, lineNo, func(u, v int32, _ int) error {
			if v > u {
				b.Place(u, v)
			}
			return nil
		})
	}
	f.Close()
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	c, err := b.Finish(workers)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	// A symmetric, duplicate-free file has every row's arc count equal
	// to the built degree; the first row violating that names the line.
	for v := 0; v < n; v++ {
		if int(rowArcs[v]) != c.Degree(v) {
			return nil, "", fmt.Errorf("%s: line %d: vertex %d lists %d neighbours but the file's edge set gives it degree %d (asymmetric or duplicate entry)",
				path, rowLine[v], v, rowArcs[v], c.Degree(v))
		}
	}
	if int64(c.M()) != declaredM {
		return nil, "", fmt.Errorf("%s: header declares m=%d but the file contains %d edges", path, declaredM, c.M())
	}
	return c, digest, nil
}

// HashGraphFile returns the hex SHA-256 digest of the file's bytes —
// the same digest the loaders report, without building the graph. The
// scenario compiler uses it to fold file identity into the content
// hash at validation time.
func HashGraphFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
