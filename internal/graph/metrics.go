package graph

// BFS runs a breadth-first search from src and returns the distance (in
// edges) to every vertex, with -1 for unreachable vertices.
func BFS(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from v (0 for an
// isolated vertex).
func Eccentricity(g *Graph, v int) int {
	ecc := 0
	for _, d := range BFS(g, v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the largest eccentricity over all vertices, ignoring
// unreachable pairs (so a disconnected graph reports the largest
// intra-component diameter). O(n·m); intended for analysis, not hot
// paths.
func Diameter(g *Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := Eccentricity(g, v); e > diam {
			diam = e
		}
	}
	return diam
}

// ClusteringCoefficient returns the global clustering coefficient:
// 3 × triangles / open-and-closed wedges. Returns 0 for graphs with no
// wedges.
func ClusteringCoefficient(g *Graph) float64 {
	triangles := 0
	wedges := 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		wedges += d * (d - 1) / 2
		nbrs := g.Neighbors(v)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if g.HasEdge(int(nbrs[i]), int(nbrs[j])) {
					triangles++
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	// Each triangle is counted once per corner, i.e. 3 times total;
	// the standard definition wants 3·T/wedges with T the number of
	// distinct triangles, which equals (corner count)/wedges.
	return float64(triangles) / float64(wedges)
}

// LineGraph returns the line graph L(g): one vertex per edge of g, two
// vertices adjacent iff the corresponding edges share an endpoint. The
// returned edge list maps each line-graph vertex back to its source edge
// {u, v} with u < v. A maximal independent set of L(g) is exactly a
// maximal matching of g — the reduction the coloring/matching
// applications use.
func LineGraph(g *Graph) (*Graph, [][2]int) {
	edges := g.Edges()
	idx := make(map[[2]int]int, len(edges))
	for i, e := range edges {
		idx[e] = i
	}
	b := NewBuilder(len(edges))
	norm := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for i, e := range edges {
		for _, endpoint := range e {
			for _, w := range g.Neighbors(endpoint) {
				other := norm(endpoint, int(w))
				j, ok := idx[other]
				if ok && j > i {
					_ = b.AddEdge(i, j)
				}
			}
		}
	}
	return b.Build(), edges
}

// IsMaximalMatching reports whether matched (indexed like the edge list
// from LineGraph or Edges) selects a maximal matching of g: no two
// selected edges share an endpoint, and every unselected edge conflicts
// with a selected one.
func IsMaximalMatching(g *Graph, edges [][2]int, matched []bool) bool {
	if len(edges) != len(matched) {
		return false
	}
	used := make([]bool, g.N())
	for i, e := range edges {
		if !matched[i] {
			continue
		}
		if used[e[0]] || used[e[1]] {
			return false // two matched edges share an endpoint
		}
		used[e[0]] = true
		used[e[1]] = true
	}
	for i, e := range edges {
		if !matched[i] && !used[e[0]] && !used[e[1]] {
			return false // this edge could still be added
		}
	}
	return true
}
