package graph

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// CSRBuilder constructs a CSR directly from an edge stream, without the
// intermediate pointer-per-row adjacency Graph: no per-edge appends into
// [][]int32, no realloc churn, and a construction peak of ~1.2× the
// final CSRBytes footprint instead of the ~3× the Builder→NewCSR path
// transiently holds. It is the construction target of the web-scale
// generators (RMAT, configuration model, sparse GNP) and the streamed
// file loaders, sized for 10⁷–10⁸ edges.
//
// Construction is a deterministic two-pass protocol:
//
//  1. Counting: the caller streams every edge once through Count (or
//     CountArc), from any number of goroutines — degrees accumulate by
//     atomic adds directly into the offsets array, so the pass needs no
//     per-worker counter copies.
//  2. FinishCounts turns the counts into row offsets by one serial
//     prefix sum and allocates the flat column array.
//  3. Placement: the caller streams the same edges again through Place
//     (or PlaceArc), again from any goroutines — each arc lands at an
//     atomically bumped per-row cursor. The placement order is
//     scheduling-dependent, but irrelevant: finalisation sorts each row.
//  4. Finish sorts and dedupes every row in place (self-loops were
//     dropped at insertion), compacts the column array over the holes
//     dedupe left, and rebuilds the offsets.
//
// The result is bit-identical to the Builder→NewCSR path for the same
// edge set, for ANY worker count and ANY insertion order — each row's
// final content is the sorted set of its neighbours, a pure function of
// the edge set. The two passes must stream exactly the same edges;
// generators replay their per-chunk rng streams, file loaders re-read
// the file. A mismatch is detected and reported by Finish, never
// silently mis-built.
//
// Peak memory: 8·(n+1) bytes of offsets + 4·n bytes of cursors +
// 4 bytes per inserted arc (two arcs per undirected edge) — at most
// ~1.5× CSRBytes(n, m) for every m ≥ 0, and asymptotically 1.0× as
// duplicates vanish. PeakBytes reports the exact figure.
type CSRBuilder struct {
	n       int
	phase   int32 // 0 counting, 1 placing, 2 finished
	offsets []int64
	cur     []int32 // per-row placement cursors (relative to row start)
	cols    []int32

	errMu sync.Mutex
	err   error
}

// NewCSRBuilder returns a builder for a graph on n vertices.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		n = 0
	}
	return &CSRBuilder{n: n, offsets: make([]int64, n+1)}
}

// N returns the vertex count the builder was created with.
func (b *CSRBuilder) N() int { return b.n }

// setErr records the first construction error; later ones are dropped.
// Feeding errors are rare (generators emit in-range edges by
// construction, loaders validate before feeding), so the mutex is off
// the hot path.
func (b *CSRBuilder) setErr(err error) {
	b.errMu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.errMu.Unlock()
}

// Count registers the undirected edge {u, v} for the counting pass.
// Self-loops are dropped (consistently with Place); out-of-range
// endpoints record a sticky error returned by Finish. Safe for
// concurrent callers.
func (b *CSRBuilder) Count(u, v int32) {
	if u == v {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.setErr(fmt.Errorf("graph: CSRBuilder edge {%d,%d} out of range for n=%d", u, v, b.n))
		return
	}
	atomic.AddInt64(&b.offsets[u+1], 1)
	atomic.AddInt64(&b.offsets[v+1], 1)
}

// CountArc registers the directed arc u→v for the counting pass: only
// u's row grows. The METIS loader uses it — that format already lists
// every undirected edge once per endpoint row, so counting both
// directions per line would double the graph. Safe for concurrent
// callers.
func (b *CSRBuilder) CountArc(u, v int32) {
	if u == v {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.setErr(fmt.Errorf("graph: CSRBuilder arc %d→%d out of range for n=%d", u, v, b.n))
		return
	}
	atomic.AddInt64(&b.offsets[u+1], 1)
}

// FinishCounts closes the counting pass: one serial prefix sum turns
// the per-row counts into row offsets, and the flat column array is
// allocated at its exact final capacity. Must be called once, between
// the passes, with no concurrent Count/CountArc calls.
func (b *CSRBuilder) FinishCounts() error {
	if b.phase != 0 {
		return fmt.Errorf("graph: CSRBuilder.FinishCounts called twice")
	}
	if b.err != nil {
		return b.err
	}
	var total int64
	for v := 1; v <= b.n; v++ {
		total += b.offsets[v]
		b.offsets[v] = total
	}
	b.cols = make([]int32, total)
	b.cur = make([]int32, b.n)
	b.phase = 1
	return nil
}

// Place inserts the undirected edge {u, v} in the placement pass. The
// edge stream must be exactly the counting pass's stream (in any
// order); a divergence is caught by Finish. Safe for concurrent
// callers.
func (b *CSRBuilder) Place(u, v int32) {
	if u == v {
		return
	}
	b.PlaceArc(u, v)
	b.PlaceArc(v, u)
}

// PlaceArc inserts the directed arc u→v in the placement pass; the
// METIS counterpart of CountArc. Safe for concurrent callers.
func (b *CSRBuilder) PlaceArc(u, v int32) {
	if u == v {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		b.setErr(fmt.Errorf("graph: CSRBuilder arc %d→%d out of range for n=%d", u, v, b.n))
		return
	}
	slot := atomic.AddInt32(&b.cur[u], 1) - 1
	idx := b.offsets[u] + int64(slot)
	if idx >= b.offsets[u+1] {
		// More arcs placed into this row than were counted: the two
		// passes diverged. Refuse the write — it would land in the next
		// row's territory — and let Finish report it.
		b.setErr(fmt.Errorf("graph: CSRBuilder placement overflow at row %d: placement pass emitted more arcs than the counting pass", u))
		return
	}
	b.cols[idx] = v
}

// PeakBytes returns the builder's peak heap footprint: offsets,
// cursors, and the column array at its inserted-arc capacity. It is
// exact arithmetic over the builder's own allocations (the figure the
// ≤1.5×CSRBytes construction-memory bound is asserted against), not a
// runtime measurement.
func (b *CSRBuilder) PeakBytes() int64 {
	return int64(b.n+1)*8 + int64(len(b.cur))*4 + int64(cap(b.cols))*4
}

// finalizeWorkers resolves a Finish worker bound: ≤0 means GOMAXPROCS.
func finalizeWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Finish closes the placement pass and finalises the CSR: every row is
// sorted and deduplicated in place (row ranges are partitioned across
// up to `workers` goroutines; ≤0 means GOMAXPROCS), the column array is
// compacted over dedupe's holes, and the offsets are rebuilt. The
// builder must not be used after Finish.
//
// The result is identical for every worker count: each row's final
// content depends only on the set of arcs placed into it.
func (b *CSRBuilder) Finish(workers int) (*CSR, error) {
	if b.phase != 1 {
		return nil, fmt.Errorf("graph: CSRBuilder.Finish before FinishCounts")
	}
	b.phase = 2
	if b.err != nil {
		return nil, b.err
	}
	// Both passes must have streamed the same edges: every row's placed
	// arc count must equal its counted degree. (Overflow was caught at
	// Place time; this catches underflow — a second pass that emitted
	// fewer arcs.)
	for v := 0; v < b.n; v++ {
		if counted := b.offsets[v+1] - b.offsets[v]; int64(b.cur[v]) != counted {
			return nil, fmt.Errorf("graph: CSRBuilder pass mismatch at row %d: counted %d arcs, placed %d", v, counted, b.cur[v])
		}
	}

	// Per-row finalisation: sort + dedupe in place. Rows are disjoint
	// slices of cols, so contiguous vertex ranges are independent; the
	// deduped length is parked in cur[v] for the compaction pass.
	w := finalizeWorkers(workers, b.n)
	finalizeRange := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			row := b.cols[b.offsets[v]:b.offsets[v+1]]
			if len(row) == 0 {
				b.cur[v] = 0
				continue
			}
			sort.Sort(int32Slice(row))
			k := 1
			for i := 1; i < len(row); i++ {
				if row[i] != row[i-1] {
					row[k] = row[i]
					k++
				}
			}
			b.cur[v] = int32(k)
		}
	}
	if w == 1 {
		finalizeRange(0, b.n)
	} else {
		var wg sync.WaitGroup
		per := (b.n + w - 1) / w
		for lo := 0; lo < b.n; lo += per {
			hi := min(lo+per, b.n)
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				finalizeRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Serial compaction: slide every row's deduped prefix left over the
	// holes and rebuild offsets — O(m) copies total, in row order.
	var write int64
	for v := 0; v < b.n; v++ {
		start := b.offsets[v]
		k := int64(b.cur[v])
		if start != write && k > 0 {
			copy(b.cols[write:write+k], b.cols[start:start+k])
		}
		b.offsets[v] = write
		write += k
	}
	b.offsets[b.n] = write

	c := &CSR{n: b.n, offsets: b.offsets, cols: b.cols[:write]}
	b.offsets, b.cols, b.cur = nil, nil, nil
	return c, nil
}

// int32Slice implements sort.Interface; the stdlib has no int32 sort
// and a sort.Slice closure per row costs an allocation on the hottest
// loop of construction.
type int32Slice []int32

func (s int32Slice) Len() int           { return len(s) }
func (s int32Slice) Less(i, j int) bool { return s[i] < s[j] }
func (s int32Slice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// MaxDegree returns the maximum row length, or 0 for an empty CSR. Like
// Graph.MaxDegree it is an O(n) scan; the simulator calls it once per
// run.
func (c *CSR) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < c.n; v++ {
		if d := int(c.offsets[v+1] - c.offsets[v]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Validate checks the CSR's structural invariants — monotone offsets,
// sorted strictly-deduplicated rows, in-range columns, no self-loops,
// symmetry — mirroring Graph.Validate. Generators and loaders are
// tested through it; O(m log m).
func (c *CSR) Validate() error {
	if len(c.offsets) != c.n+1 || c.offsets[0] != 0 || c.offsets[c.n] != int64(len(c.cols)) {
		return fmt.Errorf("graph: CSR offsets malformed (n=%d, len=%d, first=%d, last=%d, cols=%d)",
			c.n, len(c.offsets), c.offsets[0], c.offsets[c.n], len(c.cols))
	}
	for v := 0; v < c.n; v++ {
		if c.offsets[v] > c.offsets[v+1] {
			return fmt.Errorf("graph: CSR offsets decrease at row %d", v)
		}
		row := c.Row(v)
		for i, w := range row {
			if w < 0 || int(w) >= c.n {
				return fmt.Errorf("%w: CSR row %d contains %d", ErrVertexRange, v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: CSR self-loop at %d", v)
			}
			if i > 0 && row[i-1] >= w {
				return fmt.Errorf("graph: CSR row %d not strictly sorted at index %d", v, i)
			}
			if !c.HasEdge(int(w), v) {
				return fmt.Errorf("graph: CSR asymmetric edge {%d,%d}", v, w)
			}
		}
	}
	return nil
}

// FromCSR returns a *Graph view over c: the adjacency slices alias c's
// column storage (zero copies — the view costs one slice header per
// vertex), and the view's CSR() returns c itself rather than
// rebuilding. This is how direct-to-CSR construction plugs into every
// consumer of *Graph — the verifier, the scalar engine, metrics —
// without materialising a second representation; the CSR remains the
// storage. The view is immutable like any built Graph; c must not be
// mutated afterwards (CSRs never are).
func FromCSR(c *CSR) *Graph {
	adj := make([][]int32, c.n)
	for v := 0; v < c.n; v++ {
		adj[v] = c.cols[c.offsets[v]:c.offsets[v+1]:c.offsets[v+1]]
	}
	g := &Graph{adj: adj, m: c.M()}
	g.csrOnce.Do(func() { g.csr = c })
	return g
}
