package graph

import (
	"testing"
	"testing/quick"

	"beepmis/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	dist := BFS(g, 0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Fatalf("dist = %v", dist)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := DisjointUnion(Path(3), Path(2))
	dist := BFS(g, 0)
	if dist[3] != -1 || dist[4] != -1 {
		t.Fatalf("unreachable vertices should have -1: %v", dist)
	}
}

func TestBFSBadSource(t *testing.T) {
	dist := BFS(Path(3), -1)
	for _, d := range dist {
		if d != -1 {
			t.Fatal("invalid source should reach nothing")
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := Path(5)
	if e := Eccentricity(g, 2); e != 2 {
		t.Fatalf("center eccentricity = %d", e)
	}
	if e := Eccentricity(g, 0); e != 4 {
		t.Fatalf("end eccentricity = %d", e)
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("diameter = %d", d)
	}
	if d := Diameter(Complete(6)); d != 1 {
		t.Fatalf("K6 diameter = %d", d)
	}
	if d := Diameter(Empty(3)); d != 0 {
		t.Fatalf("edgeless diameter = %d", d)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Complete graph: fully clustered.
	if c := ClusteringCoefficient(Complete(5)); c != 1 {
		t.Fatalf("K5 clustering = %v", c)
	}
	// Trees have no triangles.
	if c := ClusteringCoefficient(Star(6)); c != 0 {
		t.Fatalf("star clustering = %v", c)
	}
	// No wedges at all.
	if c := ClusteringCoefficient(Empty(4)); c != 0 {
		t.Fatalf("empty clustering = %v", c)
	}
	// Triangle plus a pendant: 3 closed wedge corners out of
	// 3 (triangle corners) + 1 (wedge at the attachment vertex) +
	// ... compute: vertices 0-1-2 triangle, edge 2-3.
	b := NewBuilder(4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(0, 2)
	_ = b.AddEdge(2, 3)
	g := b.Build()
	// Degrees: 2,2,3,1 → wedges = 1+1+3+0 = 5; triangle corners = 3.
	if c := ClusteringCoefficient(g); c != 3.0/5 {
		t.Fatalf("clustering = %v, want 0.6", c)
	}
}

func TestLineGraph(t *testing.T) {
	// Path 0-1-2: two edges sharing vertex 1 → L(g) = single edge.
	lg, edges := LineGraph(Path(3))
	if lg.N() != 2 || lg.M() != 1 {
		t.Fatalf("L(P3) = %v", lg)
	}
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	// Triangle: L(K3) = K3.
	lg, _ = LineGraph(Complete(3))
	if lg.N() != 3 || lg.M() != 3 {
		t.Fatalf("L(K3) = %v", lg)
	}
	// Star K_{1,4}: all edges share the hub → L = K4.
	lg, _ = LineGraph(Star(5))
	if lg.N() != 4 || lg.M() != 6 {
		t.Fatalf("L(K_{1,4}) = %v", lg)
	}
	// Edgeless graph.
	lg, edges = LineGraph(Empty(3))
	if lg.N() != 0 || len(edges) != 0 {
		t.Fatalf("L(empty) = %v", lg)
	}
}

func TestLineGraphDegreeIdentity(t *testing.T) {
	// deg_L(e={u,v}) = deg(u) + deg(v) - 2.
	g := GNP(30, 0.2, rng.New(1))
	lg, edges := LineGraph(g)
	for i, e := range edges {
		want := g.Degree(e[0]) + g.Degree(e[1]) - 2
		if lg.Degree(i) != want {
			t.Fatalf("edge %v: line degree %d, want %d", e, lg.Degree(i), want)
		}
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIsMaximalMatching(t *testing.T) {
	g := Path(4) // edges: {0,1},{1,2},{2,3}
	edges := g.Edges()
	// {0,1} and {2,3} is a maximal (indeed perfect) matching.
	if !IsMaximalMatching(g, edges, []bool{true, false, true}) {
		t.Fatal("valid matching rejected")
	}
	// {1,2} alone is maximal.
	if !IsMaximalMatching(g, edges, []bool{false, true, false}) {
		t.Fatal("valid matching rejected")
	}
	// {0,1} alone is NOT maximal ({2,3} could be added).
	if IsMaximalMatching(g, edges, []bool{true, false, false}) {
		t.Fatal("non-maximal matching accepted")
	}
	// {0,1} and {1,2} share vertex 1.
	if IsMaximalMatching(g, edges, []bool{true, true, false}) {
		t.Fatal("conflicting matching accepted")
	}
	// Length mismatch.
	if IsMaximalMatching(g, edges, []bool{true}) {
		t.Fatal("length mismatch accepted")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4 = %v", g)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("Q4 vertex %d degree %d", v, g.Degree(v))
		}
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("Q4 diameter = %d", d)
	}
	if _, err := Hypercube(-1); err == nil {
		t.Fatal("negative dimension accepted")
	}
	if _, err := Hypercube(31); err == nil {
		t.Fatal("oversized dimension accepted")
	}
	g0, err := Hypercube(0)
	if err != nil || g0.N() != 1 {
		t.Fatalf("Q0 = %v, %v", g0, err)
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	g := CompleteBinaryTree(7)
	if g.M() != 6 {
		t.Fatalf("M = %d", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("tree must be connected")
	}
	if g.Degree(0) != 2 || g.Degree(1) != 3 {
		t.Fatalf("degrees: root %d, internal %d", g.Degree(0), g.Degree(1))
	}
}

func TestRandomRegular(t *testing.T) {
	src := rng.New(5)
	g, err := RandomRegular(50, 4, src)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d degree %d, want 4", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// d = 0 shortcut.
	g0, err := RandomRegular(5, 0, src)
	if err != nil || g0.M() != 0 {
		t.Fatalf("0-regular: %v %v", g0, err)
	}
	// Invalid parameters.
	if _, err := RandomRegular(5, 3, src); err == nil {
		t.Fatal("odd d·n accepted")
	}
	if _, err := RandomRegular(4, 4, src); err == nil {
		t.Fatal("d >= n accepted")
	}
	if _, err := RandomRegular(4, -1, src); err == nil {
		t.Fatal("negative d accepted")
	}
}

func TestRandomRegularProperty(t *testing.T) {
	src := rng.New(6)
	f := func(seed uint8) bool {
		n := 20 + int(seed%20)*2
		g, err := RandomRegular(n, 3, src)
		if n%2 != 0 {
			n++ // keep d·n even
			g, err = RandomRegular(n, 3, src)
		}
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.MinDegree() == 3 && g.MaxDegree() == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 7)
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 4+7 {
		t.Fatalf("M = %d", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("caterpillar must be connected")
	}
	// Degenerate spine.
	g = Caterpillar(0, 3)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("star-ish caterpillar = %v", g)
	}
}
