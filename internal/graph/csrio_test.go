package graph

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"beepmis/internal/rng"
)

// writeTemp writes content to a file with the given name inside a fresh
// temp dir and returns its path.
func writeTemp(t *testing.T, name string, content []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadCSRFileRoundTrips: each writer/loader pair must reproduce the
// source graph bit-for-bit (as a CSR), and the loader's digest must
// match HashGraphFile.
func TestLoadCSRFileRoundTrips(t *testing.T) {
	g := GNP(120, 0.08, rng.New(9))
	want := NewCSR(g)
	cases := map[string]struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		"edgelist":        {"g.el", func(b *bytes.Buffer) error { return WriteEdgeList(b, g) }},
		"edgelist-binary": {"g.bel", func(b *bytes.Buffer) error { return WriteBinaryEdgeList(b, g) }},
		"metis":           {"g.graph", func(b *bytes.Buffer) error { return WriteMETIS(b, g) }},
	}
	for format, tc := range cases {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.write(&buf); err != nil {
				t.Fatal(err)
			}
			path := writeTemp(t, tc.name, buf.Bytes())
			if got := DetectGraphFormat(path); got != format {
				t.Fatalf("DetectGraphFormat(%s) = %q, want %q", path, got, format)
			}
			for _, workers := range []int{1, 3} {
				c, digest, err := LoadCSRFile(path, "", workers)
				if err != nil {
					t.Fatal(err)
				}
				if !csrEqual(c, want) {
					t.Fatalf("workers=%d: loaded CSR differs from source", workers)
				}
				if fileDigest, err := HashGraphFile(path); err != nil || digest != fileDigest {
					t.Fatalf("loader digest %s != HashGraphFile %s (err=%v)", digest, fileDigest, err)
				}
			}
			info, err := PeekGraphFile(path, "")
			if err != nil {
				t.Fatal(err)
			}
			if info.N != g.N() {
				t.Fatalf("peek N = %d, want %d", info.N, g.N())
			}
			if info.Edges < int64(g.M()) {
				t.Fatalf("peek edge bound %d below the true count %d", info.Edges, g.M())
			}
			if info.EdgesExact && info.Edges != int64(g.M()) {
				t.Fatalf("peek claims exactly %d edges, file has %d", info.Edges, g.M())
			}
		})
	}
}

// TestLoadCSRFileIsolatedVertices: trailing isolated vertices survive
// every format (the header's n carries them).
func TestLoadCSRFileIsolatedVertices(t *testing.T) {
	b := NewBuilder(6)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	for format, write := range map[string]func(io.Writer, *Graph) error{
		"x.el":    WriteEdgeList,
		"x.bel":   WriteBinaryEdgeList,
		"x.graph": WriteMETIS,
	} {
		var buf bytes.Buffer
		if err := write(&buf, g); err != nil {
			t.Fatal(err)
		}
		c, _, err := LoadCSRFile(writeTemp(t, format, buf.Bytes()), "", 1)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if c.N() != 6 || c.M() != 1 {
			t.Fatalf("%s: loaded (n=%d, m=%d), want (6, 1)", format, c.N(), c.M())
		}
	}
}

// TestEdgeListMalformed is the malformed-input table for the text
// loader: every bad input errors (never panics) and names the
// offending line.
func TestEdgeListMalformed(t *testing.T) {
	cases := map[string]struct {
		content  string
		wantLine string // substring the error must contain
	}{
		"missing-header":    {"0 1\n", "line 1"},
		"empty":             {"", "missing"},
		"bad-n":             {"n abc\n", "line 1"},
		"negative-n":        {"n -3\n", "line 1"},
		"huge-n":            {"n 999999999\n", "line 1"},
		"bad-m":             {"n 4 m xyz\n", "line 1"},
		"bad-header-shape":  {"vertices 4\n0 1\n", "line 1"},
		"one-field-edge":    {"n 4\n01\n", "line 2"},
		"bad-vertex":        {"n 4\n0 x\n", "line 2"},
		"out-of-range":      {"n 4\n0 7\n", "line 2"},
		"negative-vertex":   {"n 4\n-1 2\n", "line 2"},
		"self-loop":         {"n 4\n0 1\n2 2\n", "line 3"},
		"duplicate":         {"n 4\n0 1\n2 3\n1 0\n", "line 4"},
		"duplicate-same":    {"n 4\n# c\n0 1\n0 1\n", "line 4"},
		"m-undercount":      {"n 4 m 3\n0 1\n", "declares m=3"},
		"m-overcount":       {"n 4 m 1\n0 1\n2 3\n", "declares m=1"},
		"duplicate-is-dupe": {"n 3\n0 1\n1 2\n0 1\n", "duplicate edge {0,1}"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeTemp(t, "bad.el", []byte(tc.content))
			_, _, err := LoadCSRFile(path, FormatEdgeList, 1)
			if err == nil {
				t.Fatal("malformed edge list loaded without error")
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error %q does not name %q", err, tc.wantLine)
			}
		})
	}
}

// TestBinaryEdgeListMalformed is the malformed-input table for the
// binary loader.
func TestBinaryEdgeListMalformed(t *testing.T) {
	// header(n=4, m=1) + edge {0,1}
	valid := func() []byte {
		var buf bytes.Buffer
		b := NewBuilder(4)
		if err := b.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := WriteBinaryEdgeList(&buf, b.Build()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	le32 := func(v uint32) []byte {
		return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	}
	cases := map[string]struct {
		content []byte
		want    string
	}{
		"empty":        {nil, "header"},
		"bad-magic":    {append([]byte("NOPE"), valid[4:]...), "bad magic"},
		"truncated":    {valid[:len(valid)-4], "entry 0"},
		"trailing":     {append(append([]byte{}, valid...), 1, 2, 3), "trailing data"},
		"out-of-range": {append(valid[:20], append(le32(0), le32(9)...)...), "entry 0"},
		"self-loop":    {append(valid[:20], append(le32(2), le32(2)...)...), "self-loop"},
		"duplicate": {append(append([]byte{}, valid[:12]...),
			append([]byte{2, 0, 0, 0, 0, 0, 0, 0}, // m=2
				append(append(le32(0), le32(1)...), append(le32(1), le32(0)...)...)...)...),
			"entry 1: duplicate"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeTemp(t, "bad.bel", tc.content)
			_, _, err := LoadCSRFile(path, FormatBinaryEdgeList, 1)
			if err == nil {
				t.Fatal("malformed binary edge list loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestMETISMalformed is the malformed-input table for the METIS loader.
func TestMETISMalformed(t *testing.T) {
	cases := map[string]struct {
		content string
		want    string
	}{
		"empty":           {"", "missing"},
		"bad-header":      {"x y\n", "line 1"},
		"weighted":        {"3 2 011\n2\n1 3\n2\n", "not supported"},
		"bad-neighbour":   {"2 1\n2\nx\n", "line 3"},
		"zero-neighbour":  {"2 1\n0\n1\n", "line 2"},
		"out-of-range":    {"2 1\n3\n1\n", "line 2"},
		"self-loop":       {"2 1\n1\n2\n", "line 2"},
		"missing-rows":    {"3 1\n2\n1\n", "adjacency rows"},
		"extra-rows":      {"2 1\n2\n1\n1 2\n", "line 4"},
		"asymmetric":      {"3 2\n2\n1 3\n\n", "asymmetric or duplicate"},
		"duplicate-entry": {"2 1\n2 2\n1 1\n", "asymmetric or duplicate"},
		"wrong-m":         {"2 5\n2\n1\n", "declares m=5"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeTemp(t, "bad.graph", []byte(tc.content))
			_, _, err := LoadCSRFile(path, FormatMETIS, 1)
			if err == nil {
				t.Fatal("malformed METIS file loaded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestLoadCSRFileUnknownFormat: unknown format names are errors for
// both loading and peeking.
func TestLoadCSRFileUnknownFormat(t *testing.T) {
	path := writeTemp(t, "g.el", []byte("n 1\n"))
	if _, _, err := LoadCSRFile(path, "pajek", 1); err == nil {
		t.Fatal("unknown format did not error")
	}
	if _, err := PeekGraphFile(path, "pajek"); err == nil {
		t.Fatal("unknown peek format did not error")
	}
}

// FuzzEdgeList: arbitrary bytes must never panic the text loader, and
// anything it accepts must be a valid graph whose digest matches the
// file's bytes.
func FuzzEdgeList(f *testing.F) {
	f.Add([]byte("n 4\n0 1\n2 3\n"))
	f.Add([]byte("n 4 m 2\n0 1\n2 3\n"))
	f.Add([]byte("# comment\n\nn 2\n0 1\n"))
	f.Add([]byte("n 0\n"))
	f.Add([]byte("n 4\n0 0\n"))
	f.Add([]byte("n 4\n0 1\n1 0\n"))
	f.Add([]byte("n -1\n"))
	f.Add([]byte("n 4\n0 9\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.el")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		c, digest, err := LoadCSRFile(path, FormatEdgeList, 1)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		want, err := HashGraphFile(path)
		if err != nil || digest != want {
			t.Fatalf("digest %s != file hash %s (err=%v)", digest, want, err)
		}
	})
}

// FuzzMETIS: the METIS loader under arbitrary bytes — same contract.
func FuzzMETIS(f *testing.F) {
	f.Add([]byte("2 1\n2\n1\n"))
	f.Add([]byte("% comment\n3 2\n2\n1 3\n2\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("3 2 0\n2\n1 3\n2\n"))
	f.Add([]byte("2 1\n2\n\n"))
	f.Add([]byte("1 0\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.graph")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		c, digest, err := LoadCSRFile(path, FormatMETIS, 1)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		want, err := HashGraphFile(path)
		if err != nil || digest != want {
			t.Fatalf("digest %s != file hash %s (err=%v)", digest, want, err)
		}
	})
}
