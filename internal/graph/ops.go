package graph

import "fmt"

// DisjointUnion returns the disjoint union of the given graphs, with the
// vertices of each successive graph shifted past those of its
// predecessors.
func DisjointUnion(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	b := NewBuilder(total)
	base := 0
	for _, g := range gs {
		for u := 0; u < g.N(); u++ {
			for _, w := range g.Neighbors(u) {
				if int32(u) < w {
					_ = b.AddEdge(base+u, base+int(w))
				}
			}
		}
		base += g.N()
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabelled 0..len(vs)-1 in the order given. Duplicate or out-of-range
// vertices yield an error.
func InducedSubgraph(g *Graph, vs []int) (*Graph, error) {
	remap := make(map[int]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("%w: induced subgraph vertex %d", ErrVertexRange, v)
		}
		if _, dup := remap[v]; dup {
			return nil, fmt.Errorf("graph: duplicate vertex %d in induced subgraph", v)
		}
		remap[v] = i
	}
	b := NewBuilder(len(vs))
	for _, v := range vs {
		for _, w := range g.Neighbors(v) {
			j, ok := remap[int(w)]
			if ok && remap[v] < j {
				_ = b.AddEdge(remap[v], j)
			}
		}
	}
	return b.Build(), nil
}

// ConnectedComponents returns, for each vertex, the id of its component
// (ids are 0-based, assigned in order of lowest-numbered member), plus the
// number of components.
func ConnectedComponents(g *Graph) (comp []int, count int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = count
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] == -1 {
					comp[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	_, c := ConnectedComponents(g)
	return c == 1
}

// DegreeHistogram returns hist where hist[d] is the number of vertices of
// degree d; its length is MaxDegree()+1 (or 0 for an empty graph).
func DegreeHistogram(g *Graph) []int {
	if g.N() == 0 {
		return nil
	}
	hist := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		hist[g.Degree(v)]++
	}
	return hist
}

// Complement returns the complement graph. Quadratic; intended for tests
// and small inputs.
func Complement(g *Graph) *Graph {
	n := g.N()
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				_ = b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}
