package fault

import (
	"fmt"

	"beepmis/internal/graph"
)

// maxRecordedViolations bounds the violation witnesses a Verifier
// retains; further violations are counted but not stored, so a
// catastrophically noisy run cannot balloon memory. The count is what
// robustness experiments aggregate; the witnesses exist for error
// messages and debugging.
const maxRecordedViolations = 64

// Violation is one independence breach: Node joined the MIS while
// Neighbor was already (or simultaneously became) a member.
type Violation struct {
	Round    int `json:"round"`
	Node     int `json:"node"`
	Neighbor int `json:"neighbor"`
}

// String renders the violation for error messages.
func (v Violation) String() string {
	return fmt.Sprintf("round %d: edge {%d,%d} inside the set", v.Round, v.Node, v.Neighbor)
}

// Verifier is an incremental per-round MIS safety checker for noisy
// runs. Terminal verification (graph.VerifyMIS) trusts the final state;
// under faults that is not enough — a reset outage can remove a member
// after its neighbours were dominated, and channel loss can admit two
// adjacent joiners whose breach a later crash could mask. The Verifier
// instead consumes the engine's per-round MIS deltas (sim's OnMISDelta
// hook matches ObserveRound's signature), maintains its own membership
// bitset, and checks independence as members arrive: each joiner walks
// only its own adjacency row (the Graph's native sorted CSR-style
// neighbour lists; no extra representation is built), so a round costs
// O(Σ deg(frontier)) — nothing when the set is quiet — rather than
// O(n + m). Maximality is checked once, at termination, via Uncovered.
//
// It also reports when the set last changed (LastChangeRound): under
// faults "rounds until the MIS stabilised" is the honest convergence
// metric, since a terminal-state check cannot see a set that was
// briefly correct, then perturbed, then repaired.
type Verifier struct {
	g     *graph.Graph
	inMIS graph.Bitset
	// joinedNow marks this round's joiners while their rows are walked,
	// so a same-round adjacent pair is recorded once, not twice.
	joinedNow  graph.Bitset
	violations []Violation
	count      int
	lastChange int
	rounds     int
}

// NewVerifier returns a Verifier for g. Construction is O(n/64) words;
// the graph's existing adjacency lists are read in place.
func NewVerifier(g *graph.Graph) *Verifier {
	return &Verifier{
		g:         g,
		inMIS:     graph.NewBitset(g.N()),
		joinedNow: graph.NewBitset(g.N()),
	}
}

// ObserveRound ingests one round's membership deltas: joined lists the
// nodes that entered the MIS this round, left the nodes a reset outage
// removed. The signature matches sim.Options.OnMISDelta, so a Verifier
// plugs straight into any engine. The slices are not retained.
func (vf *Verifier) ObserveRound(round int, joined, left []int) {
	if round > vf.rounds {
		vf.rounds = round
	}
	if len(joined) == 0 && len(left) == 0 {
		return
	}
	vf.lastChange = round
	for _, v := range left {
		vf.inMIS.Clear(v)
	}
	for _, v := range joined {
		vf.inMIS.Set(v)
		vf.joinedNow.Set(v)
	}
	for _, v := range joined {
		for _, w := range vf.g.Neighbors(v) {
			nb := int(w)
			if !vf.inMIS.Test(nb) {
				continue
			}
			// Count a same-round adjacent pair once (from its lower
			// endpoint); a join next to an established member is always
			// the joiner's breach.
			if vf.joinedNow.Test(nb) && nb < v {
				continue
			}
			vf.count++
			if len(vf.violations) < maxRecordedViolations {
				vf.violations = append(vf.violations, Violation{Round: round, Node: v, Neighbor: nb})
			}
		}
	}
	for _, v := range joined {
		vf.joinedNow.Clear(v)
	}
}

// ViolationCount returns the number of independence breaches observed
// so far (including any beyond the recorded-witness cap).
func (vf *Verifier) ViolationCount() int { return vf.count }

// Violations returns the recorded breach witnesses, in observation
// order, capped at maxRecordedViolations.
func (vf *Verifier) Violations() []Violation { return vf.violations }

// LastChangeRound returns the last round the membership changed — the
// rounds-to-stable-MIS metric. Zero means the set never changed.
func (vf *Verifier) LastChangeRound() int { return vf.lastChange }

// Rounds returns the highest round observed.
func (vf *Verifier) Rounds() int { return vf.rounds }

// InMIS reports the verifier's view of v's membership; tests use it to
// cross-check against the engine's result.
func (vf *Verifier) InMIS(v int) bool { return vf.inMIS.Test(v) }

// Uncovered returns the nodes that witness a maximality breach at
// termination: not in the set, no neighbour in the set, and not exempt.
// Exempt (may be nil) carries the nodes excused from coverage —
// permanently crashed nodes, which neither join nor need dominating.
// Cost: O(n/64) words plus the set members' adjacency rows, once.
func (vf *Verifier) Uncovered(exempt graph.Bitset) []int {
	n := vf.g.N()
	covered := graph.NewBitset(n)
	copy(covered, vf.inMIS)
	vf.inMIS.ForEach(func(v int) {
		for _, w := range vf.g.Neighbors(v) {
			covered.Set(int(w))
		}
	})
	var out []int
	for v := 0; v < n; v++ {
		if covered.Test(v) || (exempt != nil && exempt.Test(v)) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Check summarises the run: nil when independence held every round and
// the terminal set is maximal (modulo exempt nodes); otherwise an error
// naming the first witnesses.
func (vf *Verifier) Check(exempt graph.Bitset) error {
	if vf.count > 0 {
		return fmt.Errorf("fault: independence violated %d time(s); first: %s", vf.count, vf.violations[0])
	}
	if uncovered := vf.Uncovered(exempt); len(uncovered) > 0 {
		return fmt.Errorf("fault: set not maximal at termination: node %d (of %d) has no neighbour in the set", uncovered[0], len(uncovered))
	}
	return nil
}
