package fault

import (
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// Stream-id namespaces of the fault layer, far outside the per-node
// stream ids [0, n) (n ≤ 2²⁰ everywhere in this repository) and the
// legacy per-edge loss stream (1<<40), so enabling faults never
// perturbs node randomness. Channel noise packs (node, round) into the
// low bits of its namespace: node ids fit 21 bits, and rounds — bounded
// in practice by sim.DefaultMaxRounds = 2²⁰ — fit the remaining 41.
const (
	// channelNamespace tags per-(node, round) channel-noise streams.
	channelNamespace = uint64(1) << 62
	// WakeStreamID is the dedicated stream the uniform wake schedule
	// draws from, in node order, once, before the round loop starts.
	WakeStreamID = uint64(1) << 61
	// MaxChannelNodes is the largest graph channel noise supports: the
	// node id's 21-bit field in channelStreamID. Validate enforces it —
	// beyond this, distinct (node, round) pairs would silently collide.
	// Twice the scenario layer's MaxNodes, so every admissible scenario
	// is noisy-capable.
	MaxChannelNodes = 1 << 21
)

// channelStreamID derives the stream id of one (node, round) noise
// draw.
func channelStreamID(node, round int) uint64 {
	return channelNamespace | uint64(round)<<21 | uint64(node)
}

// Channel applies a Spec's per-listener noise to the heard bit of the
// first exchange: a listener that would hear a beep loses it with
// probability Loss, and one that would hear silence hears a phantom
// beep with probability Spurious.
//
// Exactly one uniform is drawn per (listener, round), from that pair's
// own stream derived off the run's master seed — never from a shared
// sequential source — so the outcome is independent of the order
// listeners are visited in, of the engine, and of the shard count. The
// struct only caches the probabilities and a scratch stream; it is not
// safe for concurrent use (engines apply noise on the round-loop
// goroutine, after the sharded propagation pass has joined).
type Channel struct {
	loss, spurious float64
	scratch        rng.Source
}

// NewChannel returns the channel-noise applier of spec, or nil when the
// spec carries no channel noise — callers gate on nil exactly like the
// trace hook.
func NewChannel(spec *Spec) *Channel {
	if !spec.Channelled() {
		return nil
	}
	return &Channel{loss: spec.Loss, spurious: spec.Spurious}
}

// Hears maps one listener's raw heard bit through the noisy channel for
// the given round, drawing from the (node, round) stream of master.
func (c *Channel) Hears(master *rng.Source, round, node int, raw bool) bool {
	master.StreamInto(&c.scratch, channelStreamID(node, round))
	u := c.scratch.Float64()
	if raw {
		return u >= c.loss
	}
	return u < c.spurious
}

// Apply rewrites heard in place for every listener in eligible — the
// bitset form the columnar and sparse engines use. Bits outside
// eligible are left untouched (the round loop never reads them).
func (c *Channel) Apply(master *rng.Source, round int, eligible, heard graph.Bitset) {
	eligible.ForEach(func(v int) {
		if c.Hears(master, round, v, heard.Test(v)) {
			heard.Set(v)
		} else {
			heard.Clear(v)
		}
	})
}
