package fault

import (
	"strings"
	"testing"

	"beepmis/internal/graph"
)

func pathVerifier(n int) *Verifier { return NewVerifier(graph.Path(n)) }

func TestVerifierCleanRun(t *testing.T) {
	// Path 0-1-2-3-4: {0, 2, 4} is a maximal independent set.
	vf := pathVerifier(5)
	vf.ObserveRound(1, []int{0, 4}, nil)
	vf.ObserveRound(2, nil, nil)
	vf.ObserveRound(3, []int{2}, nil)
	if vf.ViolationCount() != 0 {
		t.Fatalf("clean run reported %d violations: %v", vf.ViolationCount(), vf.Violations())
	}
	if vf.LastChangeRound() != 3 {
		t.Fatalf("LastChangeRound = %d, want 3", vf.LastChangeRound())
	}
	if vf.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", vf.Rounds())
	}
	if got := vf.Uncovered(nil); len(got) != 0 {
		t.Fatalf("uncovered = %v, want none", got)
	}
	if err := vf.Check(nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifierAdjacentJoinAcrossRounds(t *testing.T) {
	vf := pathVerifier(4)
	vf.ObserveRound(1, []int{1}, nil)
	vf.ObserveRound(2, []int{2}, nil) // adjacent to the round-1 member
	if vf.ViolationCount() != 1 {
		t.Fatalf("violations = %d, want 1", vf.ViolationCount())
	}
	v := vf.Violations()[0]
	if v.Round != 2 || v.Node != 2 || v.Neighbor != 1 {
		t.Fatalf("witness = %+v, want round 2 node 2 neighbour 1", v)
	}
	if err := vf.Check(nil); err == nil || !strings.Contains(err.Error(), "independence") {
		t.Fatalf("Check = %v, want independence error", err)
	}
}

func TestVerifierSameRoundPairCountedOnce(t *testing.T) {
	vf := pathVerifier(3)
	vf.ObserveRound(1, []int{0, 1}, nil)
	if vf.ViolationCount() != 1 {
		t.Fatalf("same-round adjacent pair counted %d times, want 1", vf.ViolationCount())
	}
}

func TestVerifierResetLeavesHole(t *testing.T) {
	// 0-1-2: node 1 joins (dominating 0 and 2), then a reset removes it.
	vf := pathVerifier(3)
	vf.ObserveRound(1, []int{1}, nil)
	vf.ObserveRound(5, nil, []int{1})
	if vf.ViolationCount() != 0 {
		t.Fatal("a departure is not an independence breach")
	}
	if vf.LastChangeRound() != 5 {
		t.Fatalf("LastChangeRound = %d, want 5", vf.LastChangeRound())
	}
	uncovered := vf.Uncovered(nil)
	if len(uncovered) != 3 {
		t.Fatalf("uncovered = %v, want all three nodes", uncovered)
	}
	if err := vf.Check(nil); err == nil || !strings.Contains(err.Error(), "not maximal") {
		t.Fatalf("Check = %v, want maximality error", err)
	}
	// A rejoin repairs the hole.
	vf.ObserveRound(7, []int{1}, nil)
	if err := vf.Check(nil); err != nil {
		t.Fatalf("after rejoin: %v", err)
	}
}

func TestVerifierExemptCrashed(t *testing.T) {
	// Path 0-1-2-3: {1} dominates 0 and 2; 3 is crashed and exempt.
	vf := pathVerifier(4)
	vf.ObserveRound(1, []int{1}, nil)
	if got := vf.Uncovered(nil); len(got) != 1 || got[0] != 3 {
		t.Fatalf("uncovered = %v, want [3]", got)
	}
	exempt := graph.NewBitset(4)
	exempt.Set(3)
	if got := vf.Uncovered(exempt); len(got) != 0 {
		t.Fatalf("uncovered with exemption = %v, want none", got)
	}
	if err := vf.Check(exempt); err != nil {
		t.Fatal(err)
	}
}

func TestVerifierViolationCap(t *testing.T) {
	// Complete graph: every joiner after the first breaches against all
	// earlier members; the recorded witnesses stay capped while the
	// count keeps the truth.
	g := graph.Complete(40)
	vf := NewVerifier(g)
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	vf.ObserveRound(1, all, nil)
	want := g.N() * (g.N() - 1) / 2 // every pair, counted once
	if vf.ViolationCount() != want {
		t.Fatalf("count = %d, want %d", vf.ViolationCount(), want)
	}
	if len(vf.Violations()) != maxRecordedViolations {
		t.Fatalf("recorded %d witnesses, want cap %d", len(vf.Violations()), maxRecordedViolations)
	}
}
