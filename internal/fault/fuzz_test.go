package fault

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzFaultSpec asserts the fault-spec parser/validator's total-input
// contract, mirroring the scenario layer's FuzzParse: arbitrary bytes
// either parse into a spec that Validate accepts for some plausible
// graph size — with every probability finite and in [0, 1), every wake
// round and outage interval in range — or return an error; never a
// panic, and never an accepted spec that re-validates differently. CLI
// -faults flags and scenario faults blocks feed untrusted bytes
// straight into this path.
func FuzzFaultSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"loss":0.05,"spurious":0.01}`,
		`{"loss":-0.5}`,
		`{"loss":1}`,
		`{"loss":1e999}`,
		`{"spurious":2}`,
		`{"wake":{"kind":"uniform","window":8}}`,
		`{"wake":{"kind":"degree","window":0}}`,
		`{"wake":{"kind":"explicit","at":{"3":[0,1],"5":[2]}}}`,
		`{"wake":{"kind":"explicit","at":{"0":[7]}}}`,
		`{"wake":{"kind":"explicit","at":{"-2":[1]}}}`,
		`{"wake":{"kind":"banana","window":3}}`,
		`{"outages":[{"node":3,"from":2,"for":4,"reset":true}]}`,
		`{"outages":[{"node":3,"from":2,"for":0}]}`,
		`{"outages":[{"node":3,"from":2,"for":4},{"node":3,"from":5,"for":1}]}`,
		`{"outages":[{"node":-1,"from":1,"for":1}]}`,
		`{"loss":0.1,"wake":{"kind":"uniform","window":4},"outages":[{"node":0,"from":3,"for":2}]}`,
		`{`,
		`null`,
		`[]`,
		`{"wake":null,"outages":null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), uint16(64))
	}
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint16) {
		n := int(nRaw)%4096 + 1
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		if err := spec.Validate(n); err != nil {
			return
		}
		// An accepted spec must carry only sane values…
		if !(spec.Loss >= 0 && spec.Loss < 1) || !(spec.Spurious >= 0 && spec.Spurious < 1) {
			t.Fatalf("accepted probabilities loss=%v spurious=%v", spec.Loss, spec.Spurious)
		}
		if math.IsNaN(spec.Loss) || math.IsNaN(spec.Spurious) {
			t.Fatal("accepted NaN probability")
		}
		if spec.Wake != nil && spec.Wake.Kind == WakeExplicit {
			for round, nodes := range spec.Wake.At {
				if round < 1 {
					t.Fatalf("accepted wake round %d", round)
				}
				for _, v := range nodes {
					if v < 0 || v >= n {
						t.Fatalf("accepted wake node %d for n=%d", v, n)
					}
				}
			}
		}
		for _, o := range spec.Outages {
			if o.Node < 0 || o.Node >= n || o.From < 1 || o.For < 1 {
				t.Fatalf("accepted outage %+v for n=%d", o, n)
			}
		}
		// …validate deterministically…
		if err := spec.Validate(n); err != nil {
			t.Fatalf("second Validate failed: %v", err)
		}
		// …and normalise into a spec that still validates and is
		// canonical-stable under a JSON round trip.
		norm := spec.Normalized()
		if err := norm.Validate(n); err != nil {
			t.Fatalf("normalised spec fails validation: %v", err)
		}
		if norm != nil {
			b1, err := json.Marshal(norm)
			if err != nil {
				t.Fatal(err)
			}
			var round Spec
			if err := json.Unmarshal(b1, &round); err != nil {
				t.Fatal(err)
			}
			b2, err := json.Marshal(round.Normalized())
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Fatalf("normalised form not a JSON fixed point:\n%s\n%s", b1, b2)
			}
		}
	})
}
