package fault

import (
	"sort"

	"beepmis/internal/rng"
)

// Topology is the graph view wake resolution needs: a node count and
// per-node degrees. Both *graph.Graph and *graph.CSR satisfy it, so
// the direct-CSR simulation path resolves wake schedules without a
// backing Graph.
type Topology interface {
	N() int
	Degree(v int) int
}

// ResolveWake materialises a wake schedule into the per-node wake
// rounds the simulator's existing WakeAt machinery executes. It runs
// once, before the round loop, on the round-loop goroutine:
//
//   - uniform draws each node's round from master's dedicated
//     WakeStreamID stream in increasing node order — a fixed draw
//     sequence no engine or shard count can perturb;
//   - degree is deterministic: nodes wake in ascending (degree, id)
//     order spread evenly over [1, Window], so the highest-degree hubs
//     wake last (the adversary holds back the nodes whose late arrival
//     disrupts the most neighbours);
//   - explicit copies the listed rounds, defaulting unlisted nodes to
//     round 1.
//
// The schedule must have passed Validate for g.N() nodes.
func ResolveWake(w *Wake, g Topology, master *rng.Source) []int {
	if w == nil {
		return nil
	}
	n := g.N()
	wake := make([]int, n)
	switch w.Kind {
	case WakeUniform:
		src := master.Stream(WakeStreamID)
		for v := range wake {
			wake[v] = 1 + src.Intn(w.Window)
		}
	case WakeDegree:
		order := make([]int, n)
		for v := range order {
			order[v] = v
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.Degree(order[i]), g.Degree(order[j])
			if di != dj {
				return di < dj
			}
			return order[i] < order[j]
		})
		for rank, v := range order {
			if n <= 1 {
				wake[v] = 1
				continue
			}
			wake[v] = 1 + rank*(w.Window-1)/(n-1)
		}
	case WakeExplicit:
		for v := range wake {
			wake[v] = 1
		}
		// Validate rejects a node listed at two rounds, so the writes
		// are disjoint; sorted round order keeps that independence from
		// mattering at all.
		for _, round := range sortedKeys(w.At) {
			for _, v := range w.At[round] {
				wake[v] = round
			}
		}
	}
	return wake
}
