// Package fault is the simulator's deterministic round-level
// perturbation layer: it declares what goes wrong during a run — noisy
// channels, adversarial wake-up schedules, transient node outages — and
// verifies what the algorithm nevertheless guarantees.
//
// The paper's central robustness claim is that the feedback algorithm
// needs neither a synchronous start nor reliable communication. A Spec
// turns that claim into an executable workload: per-listener beep loss
// and spurious-beep (false positive) probabilities model an unreliable
// first exchange, wake schedules stagger start-up (uniformly, targeted
// at high-degree hubs, or at explicit per-node rounds), and outages
// take nodes down for round intervals with resume-or-reset recovery
// semantics. A Verifier then checks independence incrementally every
// round and maximality at termination, so a noisy run is judged by what
// held throughout, not just by its terminal state.
//
// Determinism is the package's load-bearing property. Every random
// choice is drawn from a dedicated rng stream derived from the run's
// master seed — channel noise from a per-(node, round) stream, uniform
// wake-up from a single schedule stream read in node order before the
// round loop starts. No draw depends on engine, shard count, or
// traversal order, which is what lets the scalar, bitset, columnar, and
// sparse engines stay bit-identical under any Spec (enforced by the
// engine-equivalence matrices in internal/sim and the repository root).
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Wake schedule kinds accepted by Wake.Kind.
const (
	// WakeUniform wakes each node at a round drawn uniformly from
	// [1, Window], from the run's dedicated wake stream.
	WakeUniform = "uniform"
	// WakeDegree is the adversarial schedule targeting hubs: nodes wake
	// in ascending degree order spread over [1, Window], so the
	// highest-degree nodes — whose late arrival is most disruptive —
	// wake last. Deterministic given the graph (ties break by node id).
	WakeDegree = "degree"
	// WakeExplicit wakes the nodes listed in Wake.At at their given
	// rounds; unlisted nodes wake at round 1.
	WakeExplicit = "explicit"
)

// Wake declares a wake-up schedule. Enabling any wake schedule also
// makes established MIS members beep and re-announce persistently (the
// Afek et al. DISC'11 fix), exactly like sim.Options.WakeAt.
type Wake struct {
	// Kind selects the schedule: WakeUniform, WakeDegree, or
	// WakeExplicit.
	Kind string `json:"kind"`
	// Window is the round range [1, Window] the uniform and degree
	// schedules spread wake-ups over. Required (≥ 1) for those kinds;
	// rejected for explicit schedules.
	Window int `json:"window,omitempty"`
	// At maps a (1-based) wake round to the nodes waking then
	// (WakeExplicit only, mirroring the crash-schedule shape). Nodes
	// not listed wake at round 1.
	At map[int][]int `json:"at,omitempty"`
}

// Outage takes one node down for a round interval: during rounds
// [From, From+For) the node neither beeps (not even persistent MIS
// announcements), hears, nor observes. At round From+For it recovers.
type Outage struct {
	// Node is the affected node id.
	Node int `json:"node"`
	// From is the (1-based) first down round.
	From int `json:"from"`
	// For is the number of consecutive down rounds (≥ 1).
	For int `json:"for"`
	// Reset selects the recovery semantics: false (resume) brings the
	// node back exactly as it left — same lifecycle state, same
	// algorithm state; true (reset) brings it back as a freshly started
	// active node, dropping any earlier state. A reset MIS member
	// leaves the set (its dominated neighbours stay dominated — they
	// cannot know), which is precisely the adversarial scenario the
	// Verifier's maximality check exists to observe. A reset always
	// fires: the simulator keeps the run alive past early convergence
	// until every pending reset recovery has happened (bounded by the
	// round cap), so a declared perturbation cannot be silently skipped.
	Reset bool `json:"reset,omitempty"`
}

// end returns the first round the node is back up.
func (o Outage) end() int { return o.From + o.For }

// Spec declares a run's fault model. The zero value (and a nil *Spec)
// is the perfect world: lossless channels, synchronous start, no
// outages. Unlike the legacy per-edge sim.Options.BeepLoss — which
// draws one loss coin per (beeper, listener) edge in adjacency order
// and therefore only the scalar engine can execute — every Spec field
// is engine-agnostic, so noisy workloads run word-parallel and sparse.
type Spec struct {
	// Loss is the probability that a listener which would have heard at
	// least one beep in the first exchange hears silence instead, drawn
	// independently per (listener, round). Join announcements (second
	// exchange) stay reliable, so domination is never forged; what loss
	// can break is independence — two adjacent beepers may both lose
	// each other's beep and both join. Must be in [0, 1).
	Loss float64 `json:"loss,omitempty"`
	// Spurious is the probability that a listener which would have
	// heard silence hears a phantom beep instead, drawn independently
	// per (listener, round). Spurious noise is safe but slows
	// convergence — a node beeping into phantom noise does not join.
	// Applied to every eligible listener, isolated nodes included.
	// Must be in [0, 1).
	Spurious float64 `json:"spurious,omitempty"`
	// Wake staggers node start-up. Mutually exclusive with an explicit
	// sim.Options.WakeAt schedule.
	Wake *Wake `json:"wake,omitempty"`
	// Outages lists transient node downtimes. A node may appear in
	// several outages when their round intervals do not overlap; a node
	// with a permanent crash schedule (sim.Options.CrashAtRound) may
	// not also have outages.
	Outages []Outage `json:"outages,omitempty"`
}

// Enabled reports whether the spec declares anything at all. Any
// non-zero field counts — including out-of-range probabilities, which
// must reach Validate rather than be folded away as "no faults". A nil
// receiver is the perfect world.
func (s *Spec) Enabled() bool {
	return s != nil && (s.Loss != 0 || s.Spurious != 0 || s.Wake != nil || len(s.Outages) > 0)
}

// Channelled reports whether the spec carries channel noise (loss or
// spurious beeps).
func (s *Spec) Channelled() bool { return s != nil && (s.Loss > 0 || s.Spurious > 0) }

// HasResets reports whether any outage recovers with reset semantics —
// the one fault feature a columnar bulk kernel must explicitly support
// (beep.BulkResetter).
func (s *Spec) HasResets() bool {
	if s == nil {
		return false
	}
	for _, o := range s.Outages {
		if o.Reset {
			return true
		}
	}
	return false
}

// validProb rejects probabilities outside [0, 1) — including NaN, which
// fails every comparison and would otherwise slip through naive
// range checks.
func validProb(p float64) bool { return p >= 0 && p < 1 }

// Validate checks the spec against an n-node graph. It is total: a spec
// that validates runs on every engine (reset outages additionally need
// the algorithm kernel to support resets, which every in-tree kernel
// does). Errors name the offending node and round so fault-injection
// typos fail loudly at submission time.
func (s *Spec) Validate(n int) error {
	if s == nil {
		return nil
	}
	if !validProb(s.Loss) {
		return fmt.Errorf("fault: loss probability %v outside [0, 1)", s.Loss)
	}
	if !validProb(s.Spurious) {
		return fmt.Errorf("fault: spurious probability %v outside [0, 1)", s.Spurious)
	}
	if s.Channelled() && n > MaxChannelNodes {
		// Per-(node, round) noise streams pack the node id into 21 bits
		// (see channelStreamID); beyond that, distinct listeners would
		// silently share correlated noise coins.
		return fmt.Errorf("fault: channel noise supports at most %d nodes (got %d)", MaxChannelNodes, n)
	}
	if err := s.Wake.validate(n); err != nil {
		return err
	}
	return validateOutages(n, s.Outages)
}

// validate checks one wake schedule; a nil schedule is valid.
func (w *Wake) validate(n int) error {
	if w == nil {
		return nil
	}
	switch w.Kind {
	case WakeUniform, WakeDegree:
		if w.Window < 1 {
			return fmt.Errorf("fault: %s wake schedule needs window ≥ 1 (got %d)", w.Kind, w.Window)
		}
		if len(w.At) != 0 {
			return fmt.Errorf("fault: wake field \"at\" is only used by the %q schedule (kind is %q)", WakeExplicit, w.Kind)
		}
	case WakeExplicit:
		if w.Window != 0 {
			return fmt.Errorf("fault: wake field \"window\" is not used by the %q schedule", WakeExplicit)
		}
		if len(w.At) == 0 {
			return fmt.Errorf("fault: explicit wake schedule lists no rounds")
		}
		seen := make(map[int]int, len(w.At))
		for _, round := range sortedKeys(w.At) {
			if round < 1 {
				return fmt.Errorf("fault: wake round %d out of range for node %d (rounds are 1-based)", round, firstNode(w.At[round]))
			}
			for _, v := range w.At[round] {
				if v < 0 || v >= n {
					return fmt.Errorf("fault: wake round %d lists node %d outside [0, %d)", round, v, n)
				}
				if prev, dup := seen[v]; dup {
					return fmt.Errorf("fault: node %d listed to wake twice (rounds %d and %d)", v, min(prev, round), max(prev, round))
				}
				seen[v] = round
			}
		}
	default:
		return fmt.Errorf("fault: unknown wake schedule kind %q (want %q, %q, or %q)", w.Kind, WakeUniform, WakeDegree, WakeExplicit)
	}
	return nil
}

// validateOutages rejects malformed outage lists: bad node ids, rounds
// before the first time step, non-positive durations, and overlapping
// intervals on one node.
func validateOutages(n int, outages []Outage) error {
	if len(outages) == 0 {
		return nil
	}
	perNode := make(map[int][]Outage)
	for _, o := range outages {
		if o.Node < 0 || o.Node >= n {
			return fmt.Errorf("fault: outage lists node %d outside [0, %d)", o.Node, n)
		}
		if o.From < 1 {
			return fmt.Errorf("fault: outage of node %d starts at round %d (rounds are 1-based)", o.Node, o.From)
		}
		if o.For < 1 {
			return fmt.Errorf("fault: outage of node %d at round %d has non-positive duration %d", o.Node, o.From, o.For)
		}
		perNode[o.Node] = append(perNode[o.Node], o)
	}
	// Sorted node order keeps the first-error message deterministic
	// when several nodes have overlapping outages.
	for _, v := range sortedKeys(perNode) {
		os := perNode[v]
		sort.Slice(os, func(i, j int) bool { return os[i].From < os[j].From })
		for i := 1; i < len(os); i++ {
			if os[i].From < os[i-1].end() {
				return fmt.Errorf("fault: node %d has overlapping outages (rounds %d–%d and %d–%d)",
					v, os[i-1].From, os[i-1].end()-1, os[i].From, os[i].end()-1)
			}
		}
	}
	return nil
}

// ValidateAgainstRounds rejects outages that cannot complete within a
// run's round cap: an outage whose recovery round exceeds maxRounds
// would be silently truncated — and a reset recovery that never fires
// is a declared perturbation that looks exactly like robustness.
// (Wake schedules past the cap need no check here: a dormant node
// keeps the run active, so the cap fails loudly with ErrTooManyRounds.)
func (s *Spec) ValidateAgainstRounds(maxRounds int) error {
	if s == nil {
		return nil
	}
	for _, o := range s.Outages {
		if o.end() > maxRounds {
			return fmt.Errorf("fault: outage of node %d recovers at round %d, beyond the %d-round cap (raise max rounds or shorten the outage)", o.Node, o.end(), maxRounds)
		}
	}
	return nil
}

// ValidateAgainstCrashes rejects a node appearing in both a permanent
// crash schedule and the spec's outage list: "crashes forever at round
// r" and "comes back at round r'" cannot both hold, and silently
// picking one would hide the contradiction from the experimenter.
func (s *Spec) ValidateAgainstCrashes(crashes map[int][]int) error {
	if s == nil || len(s.Outages) == 0 || len(crashes) == 0 {
		return nil
	}
	crashed := make(map[int]int, len(crashes))
	for _, round := range sortedKeys(crashes) {
		for _, v := range crashes[round] {
			crashed[v] = round
		}
	}
	for _, o := range s.Outages {
		if round, ok := crashed[o.Node]; ok {
			return fmt.Errorf("fault: node %d has both a permanent crash (round %d) and a transient outage (round %d); pick one", o.Node, round, o.From)
		}
	}
	return nil
}

// Normalized returns a canonical copy: explicit wake node lists sorted,
// outages ordered by (node, from). Two specs describing the same fault
// model normalise equal, which is what keeps the scenario content hash
// insensitive to listing order. A nil or all-zero spec normalises to
// nil, so "no faults" and an empty faults block hash identically.
func (s *Spec) Normalized() *Spec {
	if !s.Enabled() {
		return nil
	}
	n := *s
	if s.Wake != nil {
		w := *s.Wake
		if len(w.At) > 0 {
			at := make(map[int][]int, len(w.At))
			for _, round := range sortedKeys(w.At) {
				sorted := append([]int(nil), w.At[round]...)
				sort.Ints(sorted)
				at[round] = sorted
			}
			w.At = at
		}
		n.Wake = &w
	}
	if len(s.Outages) > 0 {
		n.Outages = append([]Outage(nil), s.Outages...)
		sort.Slice(n.Outages, func(i, j int) bool {
			if n.Outages[i].Node != n.Outages[j].Node {
				return n.Outages[i].Node < n.Outages[j].Node
			}
			return n.Outages[i].From < n.Outages[j].From
		})
	}
	return &n
}

// ParseSpec decodes a JSON fault spec strictly (unknown fields are
// errors) without graph-dependent validation — callers follow up with
// Validate(n) once the node count is known. This is the -faults flag's
// entry point on the CLIs.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: parse spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("fault: parse spec: trailing data after document")
	}
	return &s, nil
}

// sortedKeys returns a round-keyed map's keys ascending, for
// deterministic validation order (and thus deterministic first-error
// messages).
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// firstNode returns the first listed node of a wake round, for error
// messages; -1 when the list is empty.
func firstNode(nodes []int) int {
	if len(nodes) == 0 {
		return -1
	}
	return nodes[0]
}
