package fault

import (
	"math"
	"strings"
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func TestSpecValidate(t *testing.T) {
	const n = 50
	tests := []struct {
		name    string
		spec    *Spec
		wantErr string // empty means valid
	}{
		{"nil", nil, ""},
		{"zero", &Spec{}, ""},
		{"channel", &Spec{Loss: 0.05, Spurious: 0.01}, ""},
		{"loss negative", &Spec{Loss: -0.1}, "loss"},
		{"loss one", &Spec{Loss: 1}, "loss"},
		{"loss nan", &Spec{Loss: math.NaN()}, "loss"},
		{"spurious over", &Spec{Spurious: 1.5}, "spurious"},
		{"spurious nan", &Spec{Spurious: math.NaN()}, "spurious"},
		{"uniform wake", &Spec{Wake: &Wake{Kind: WakeUniform, Window: 8}}, ""},
		{"degree wake", &Spec{Wake: &Wake{Kind: WakeDegree, Window: 4}}, ""},
		{"uniform no window", &Spec{Wake: &Wake{Kind: WakeUniform}}, "window"},
		{"degree zero window", &Spec{Wake: &Wake{Kind: WakeDegree, Window: 0}}, "window"},
		{"unknown kind", &Spec{Wake: &Wake{Kind: "lunar", Window: 3}}, "unknown wake schedule"},
		{"uniform with at", &Spec{Wake: &Wake{Kind: WakeUniform, Window: 3, At: map[int][]int{2: {1}}}}, `"at"`},
		{"explicit", &Spec{Wake: &Wake{Kind: WakeExplicit, At: map[int][]int{3: {0, 1}, 5: {2}}}}, ""},
		{"explicit empty", &Spec{Wake: &Wake{Kind: WakeExplicit}}, "no rounds"},
		{"explicit with window", &Spec{Wake: &Wake{Kind: WakeExplicit, Window: 2, At: map[int][]int{2: {0}}}}, `"window"`},
		{"explicit round zero", &Spec{Wake: &Wake{Kind: WakeExplicit, At: map[int][]int{0: {7}}}}, "wake round 0"},
		{"explicit node range", &Spec{Wake: &Wake{Kind: WakeExplicit, At: map[int][]int{2: {n}}}}, "outside [0, 50)"},
		{"explicit dup node", &Spec{Wake: &Wake{Kind: WakeExplicit, At: map[int][]int{2: {7}, 4: {7}}}}, "wake twice"},
		{"outage", &Spec{Outages: []Outage{{Node: 3, From: 2, For: 4}}}, ""},
		{"outage reset", &Spec{Outages: []Outage{{Node: 3, From: 2, For: 4, Reset: true}}}, ""},
		{"outage node range", &Spec{Outages: []Outage{{Node: -1, From: 2, For: 1}}}, "node -1"},
		{"outage round zero", &Spec{Outages: []Outage{{Node: 3, From: 0, For: 1}}}, "round 0"},
		{"outage zero duration", &Spec{Outages: []Outage{{Node: 3, From: 2, For: 0}}}, "duration"},
		{"outage overlap", &Spec{Outages: []Outage{{Node: 3, From: 2, For: 4}, {Node: 3, From: 5, For: 2}}}, "overlapping"},
		{"outage disjoint ok", &Spec{Outages: []Outage{{Node: 3, From: 2, For: 3}, {Node: 3, From: 5, For: 2}}}, ""},
	}
	for _, tc := range tests {
		err := tc.spec.Validate(n)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateAgainstRounds(t *testing.T) {
	s := &Spec{Outages: []Outage{{Node: 3, From: 50, For: 5, Reset: true}}}
	if err := s.ValidateAgainstRounds(55); err != nil {
		t.Fatalf("outage recovering exactly at the cap rejected: %v", err)
	}
	err := s.ValidateAgainstRounds(54)
	if err == nil || !strings.Contains(err.Error(), "node 3") || !strings.Contains(err.Error(), "round 55") {
		t.Fatalf("outage past the cap: got %v, want error naming node 3 and round 55", err)
	}
	var nilSpec *Spec
	if err := nilSpec.ValidateAgainstRounds(1); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAgainstCrashes(t *testing.T) {
	s := &Spec{Outages: []Outage{{Node: 7, From: 3, For: 2}}}
	if err := s.ValidateAgainstCrashes(map[int][]int{2: {1, 2}}); err != nil {
		t.Fatalf("disjoint nodes rejected: %v", err)
	}
	err := s.ValidateAgainstCrashes(map[int][]int{4: {7}})
	if err == nil || !strings.Contains(err.Error(), "node 7") {
		t.Fatalf("crash/outage overlap: got %v, want error naming node 7", err)
	}
}

func TestSpecNormalized(t *testing.T) {
	if (&Spec{}).Normalized() != nil {
		t.Fatal("zero spec should normalise to nil")
	}
	var nilSpec *Spec
	if nilSpec.Normalized() != nil {
		t.Fatal("nil spec should normalise to nil")
	}
	a := &Spec{
		Loss:    0.1,
		Wake:    &Wake{Kind: WakeExplicit, At: map[int][]int{2: {5, 1, 3}}},
		Outages: []Outage{{Node: 9, From: 4, For: 1}, {Node: 2, From: 1, For: 2}, {Node: 2, From: 8, For: 1}},
	}
	b := &Spec{
		Loss:    0.1,
		Wake:    &Wake{Kind: WakeExplicit, At: map[int][]int{2: {1, 3, 5}}},
		Outages: []Outage{{Node: 2, From: 8, For: 1}, {Node: 2, From: 1, For: 2}, {Node: 9, From: 4, For: 1}},
	}
	na, nb := a.Normalized(), b.Normalized()
	if na.Outages[0] != (Outage{Node: 2, From: 1, For: 2}) || na.Outages[2] != (Outage{Node: 9, From: 4, For: 1}) {
		t.Fatalf("outages not sorted: %+v", na.Outages)
	}
	if len(na.Wake.At[2]) != 3 || na.Wake.At[2][0] != 1 || na.Wake.At[2][2] != 5 {
		t.Fatalf("wake nodes not sorted: %v", na.Wake.At[2])
	}
	for i := range na.Outages {
		if na.Outages[i] != nb.Outages[i] {
			t.Fatalf("equivalent specs normalise differently: %+v vs %+v", na.Outages, nb.Outages)
		}
	}
	// Normalisation must not mutate the input.
	if a.Outages[0].Node != 9 {
		t.Fatal("Normalized mutated its receiver")
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"loss":0.05,"spurious":0.01,"wake":{"kind":"uniform","window":12}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Loss != 0.05 || s.Spurious != 0.01 || s.Wake.Window != 12 {
		t.Fatalf("parsed %+v", s)
	}
	if _, err := ParseSpec([]byte(`{"banana":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"loss":0.1}{"loss":0.2}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
}

// TestChannelDeterminism pins the per-(node, round) stream contract:
// the same (master seed, node, round, raw) quadruple yields the same
// outcome regardless of visit order or interleaving with other draws.
func TestChannelDeterminism(t *testing.T) {
	spec := &Spec{Loss: 0.3, Spurious: 0.2}
	c1, c2 := NewChannel(spec), NewChannel(spec)
	m1, m2 := rng.New(42), rng.New(42)
	type key struct {
		round, node int
		raw         bool
	}
	got := make(map[key]bool)
	for round := 1; round <= 20; round++ {
		for node := 0; node < 30; node++ {
			got[key{round, node, true}] = c1.Hears(m1, round, node, true)
		}
	}
	// Reverse order, interleaved raw values: identical answers.
	for round := 20; round >= 1; round-- {
		for node := 29; node >= 0; node-- {
			c2.Hears(m2, round, node, false) // extra draw must not matter
			if want := got[key{round, node, true}]; c2.Hears(m2, round, node, true) != want {
				t.Fatalf("draw for (round %d, node %d) depends on visit order", round, node)
			}
		}
	}
}

// TestChannelApplyMatchesHears pins the bitset form against the scalar
// form over random masks.
func TestChannelApplyMatchesHears(t *testing.T) {
	const n = 200
	spec := &Spec{Loss: 0.4, Spurious: 0.3}
	src := rng.New(7)
	eligible, heard := graph.NewBitset(n), graph.NewBitset(n)
	for v := 0; v < n; v++ {
		if src.Bernoulli(0.7) {
			eligible.Set(v)
		}
		if src.Bernoulli(0.5) {
			heard.Set(v)
		}
	}
	raw := append(graph.Bitset(nil), heard...)
	master := rng.New(99)
	bulk := NewChannel(spec)
	bulk.Apply(master, 3, eligible, heard)
	scalar := NewChannel(spec)
	for v := 0; v < n; v++ {
		if !eligible.Test(v) {
			if heard.Test(v) != raw.Test(v) {
				t.Fatalf("Apply touched ineligible node %d", v)
			}
			continue
		}
		if want := scalar.Hears(master, 3, v, raw.Test(v)); heard.Test(v) != want {
			t.Fatalf("node %d: Apply %v, Hears %v", v, heard.Test(v), want)
		}
	}
}

// TestChannelRates sanity-checks the loss and spurious probabilities
// empirically over many (node, round) streams.
func TestChannelRates(t *testing.T) {
	spec := &Spec{Loss: 0.25, Spurious: 0.1}
	c := NewChannel(spec)
	master := rng.New(5)
	lost, phantom, trials := 0, 0, 0
	for round := 1; round <= 200; round++ {
		for node := 0; node < 200; node++ {
			trials++
			if !c.Hears(master, round, node, true) {
				lost++
			}
			if c.Hears(master, round, node, false) {
				phantom++
			}
		}
	}
	if rate := float64(lost) / float64(trials); math.Abs(rate-0.25) > 0.01 {
		t.Errorf("loss rate %.4f, want ≈0.25", rate)
	}
	if rate := float64(phantom) / float64(trials); math.Abs(rate-0.1) > 0.01 {
		t.Errorf("spurious rate %.4f, want ≈0.1", rate)
	}
}

func TestResolveWakeUniform(t *testing.T) {
	g := graph.Path(100)
	w := &Wake{Kind: WakeUniform, Window: 10}
	a := ResolveWake(w, g, rng.New(3))
	b := ResolveWake(w, g, rng.New(3))
	other := ResolveWake(w, g, rng.New(4))
	differs := false
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("uniform wake not deterministic at node %d", v)
		}
		if a[v] < 1 || a[v] > 10 {
			t.Fatalf("node %d wakes at %d outside [1, 10]", v, a[v])
		}
		differs = differs || a[v] != other[v]
	}
	if !differs {
		t.Fatal("different seeds produced identical uniform schedules")
	}
}

func TestResolveWakeDegree(t *testing.T) {
	// Star: hub has degree n-1, leaves degree 1 — the hub must wake last.
	g := graph.Star(20)
	wake := ResolveWake(&Wake{Kind: WakeDegree, Window: 8}, g, rng.New(1))
	if wake[0] != 8 {
		t.Fatalf("hub wakes at %d, want the window end 8", wake[0])
	}
	for v := 1; v < g.N(); v++ {
		if wake[v] > wake[0] {
			t.Fatalf("leaf %d wakes after the hub", v)
		}
		if wake[v] < 1 || wake[v] > 8 {
			t.Fatalf("leaf %d wakes at %d outside [1, 8]", v, wake[v])
		}
	}
	// Deterministic: no randomness consumed at all.
	again := ResolveWake(&Wake{Kind: WakeDegree, Window: 8}, g, rng.New(777))
	for v := range wake {
		if wake[v] != again[v] {
			t.Fatal("degree schedule depends on the seed")
		}
	}
}

func TestResolveWakeExplicit(t *testing.T) {
	g := graph.Path(6)
	wake := ResolveWake(&Wake{Kind: WakeExplicit, At: map[int][]int{4: {2, 3}, 9: {5}}}, g, rng.New(1))
	want := []int{1, 1, 4, 4, 1, 9}
	for v := range want {
		if wake[v] != want[v] {
			t.Fatalf("wake = %v, want %v", wake, want)
		}
	}
}

func TestResolveWakeSingleNode(t *testing.T) {
	g := graph.Empty(1)
	if wake := ResolveWake(&Wake{Kind: WakeDegree, Window: 5}, g, rng.New(1)); wake[0] != 1 {
		t.Fatalf("single node wakes at %d, want 1", wake[0])
	}
}
