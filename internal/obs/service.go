package obs

// ServiceMetrics is the job-service instrumentation bundle: queue and
// latency signals for the misd deployment, recorded by service.Manager.
// Like EngineMetrics it is all lock-free primitives — the manager
// records under its own mutex already, but SSE fan-out and future
// multi-pool backends must not have to serialise on a metrics lock.
// The zero value is ready to use.
type ServiceMetrics struct {
	// QueueDepth is the number of jobs admitted but not yet running.
	QueueDepth Gauge
	// QueueLatencyNs records submit→start wall time per executed job.
	QueueLatencyNs Histogram
	// RunLatencyNs records start→finish wall time per executed job.
	RunLatencyNs Histogram
	// CacheHits counts submissions served from a finished job's cached
	// result; Coalesced counts those absorbed by a queued or running
	// duplicate; CacheMisses counts submissions that scheduled a new
	// execution.
	CacheHits   Counter
	CacheMisses Counter
	Coalesced   Counter
	// Evictions counts finished jobs dropped by the retention bound.
	Evictions Counter
	// Rejected counts submissions refused with ErrBusy (HTTP 429).
	Rejected Counter
	// JobsDone / JobsFailed count terminal outcomes.
	JobsDone   Counter
	JobsFailed Counter
	// Subscribers is the current SSE/progress subscriber count;
	// EventsDropped counts events lost to slow subscribers' full
	// buffers (the publish overflow path).
	Subscribers   Gauge
	EventsDropped Counter
	// PoolSize is the executor's commanded worker count: constant for
	// the fixed pool, moving between the autoscaler's min/max bounds
	// otherwise. (A scaled-down worker exits only after finishing its
	// current job, so the briefly-running count can exceed the gauge.)
	PoolSize Gauge
	// QueueHighWater is the highest queue depth observed since process
	// start — the saturation witness misload folds into its reports.
	QueueHighWater Gauge
	// ScaleUps / ScaleDowns count autoscaler pool-size decisions; they
	// are exposed as one family labelled by direction and decision
	// reason, so every scaling decision is visible in the scrape.
	ScaleUps   Counter
	ScaleDowns Counter
}

// Register exposes the bundle under the beepmis_service_* families.
func (m *ServiceMetrics) Register(r *Registry) {
	r.RegisterGauge("beepmis_service_queue_depth", "", "Jobs admitted but not yet running.", &m.QueueDepth)
	r.RegisterHistogram("beepmis_service_queue_latency_ns", "", "Submit-to-start wall time per executed job in nanoseconds.", &m.QueueLatencyNs)
	r.RegisterHistogram("beepmis_service_run_latency_ns", "", "Start-to-finish wall time per executed job in nanoseconds.", &m.RunLatencyNs)
	r.RegisterCounter("beepmis_service_cache_hits_total", "", "Submissions served from a finished job's cached result.", &m.CacheHits)
	r.RegisterCounter("beepmis_service_cache_misses_total", "", "Submissions that scheduled a new execution.", &m.CacheMisses)
	r.RegisterCounter("beepmis_service_coalesced_total", "", "Submissions absorbed by an in-flight duplicate.", &m.Coalesced)
	r.RegisterCounter("beepmis_service_evictions_total", "", "Finished jobs dropped by the retention bound.", &m.Evictions)
	r.RegisterCounter("beepmis_service_rejected_total", "", "Submissions refused with queue-full backpressure (HTTP 429).", &m.Rejected)
	r.RegisterCounter("beepmis_service_jobs_done_total", "", "Jobs finished successfully.", &m.JobsDone)
	r.RegisterCounter("beepmis_service_jobs_failed_total", "", "Jobs finished in failure.", &m.JobsFailed)
	r.RegisterGauge("beepmis_service_sse_subscribers", "", "Current progress-stream subscriber count.", &m.Subscribers)
	r.RegisterCounter("beepmis_service_events_dropped_total", "", "Progress events dropped on slow subscribers' full buffers.", &m.EventsDropped)
	r.RegisterGauge("beepmis_service_pool_size", "", "Commanded job-worker pool size (constant for fixed pools, min..max for the autoscaler).", &m.PoolSize)
	r.RegisterGauge("beepmis_service_queue_high_water", "", "Highest queue depth observed since process start.", &m.QueueHighWater)
	r.RegisterCounter("beepmis_service_scale_events_total", `direction="up",reason="queue_high"`, "Autoscaler pool-size decisions by direction and reason.", &m.ScaleUps)
	r.RegisterCounter("beepmis_service_scale_events_total", `direction="down",reason="queue_idle"`, "Autoscaler pool-size decisions by direction and reason.", &m.ScaleDowns)
}
