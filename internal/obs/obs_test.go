package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	// One observation per bucket boundary neighbourhood.
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+3+4+1023+1024+0 {
		t.Fatalf("sum = %d", h.Sum())
	}
	s := h.Snapshot()
	// bucketOf: 0→0, 1→1, 2,3→2, 4→3, 1023→10, 1024→11, -5→0.
	wantBuckets := map[int]uint64{0: 2, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1}
	for i, c := range s.Buckets {
		if c != wantBuckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, wantBuckets[i])
		}
	}
}

func TestHistogramMergeAndQuantile(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(100) // bucket 7: [64,127]
	}
	for i := 0; i < 100; i++ {
		b.Observe(100000) // bucket 17
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if sa.Sum != 100*100+100*100000 {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
	// Median sits in the low bucket, p99 in the high one — the factor-of
	// -two resolution guarantee, not exact values.
	if p50 := sa.Quantile(0.5); p50 < 64 || p50 > 127 {
		t.Fatalf("p50 = %v, want within [64,127]", p50)
	}
	if p99 := sa.Quantile(0.99); p99 < 65536 || p99 > 131071 {
		t.Fatalf("p99 = %v, want within [65536,131071]", p99)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if m := empty.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	s := h.Snapshot()
	if s.Buckets[HistogramBuckets-1] != 1 {
		t.Fatalf("MaxInt64 not clamped to the last bucket: %+v", s.Buckets)
	}
	if BucketUpperBound(0) != 0 || BucketUpperBound(1) != 1 || BucketUpperBound(10) != 1023 {
		t.Fatal("bucket upper bounds moved")
	}
}

// TestRecordAllocations pins the package's core guarantee: the hot-path
// record operations allocate nothing. The engine's zero-steady-state
// -allocation round loop depends on it.
func TestRecordAllocations(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	var m EngineMetrics
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(12)
		g.Add(-1)
		h.Observe(12345)
		m.ObservePhase(PhasePropagate, 999)
		m.Frontier.Observe(64)
	}); allocs != 0 {
		t.Fatalf("record path allocates %v per op, want 0", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	var h Histogram
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Fatalf("lost updates: hist %d, counter %d", h.Count(), c.Value())
	}
}

func TestPhaseStrings(t *testing.T) {
	want := []string{"faults", "eligible_draw", "beep_tally", "propagate", "join", "observe"}
	for p := Phase(0); p < PhaseCount; p++ {
		if p.String() != want[p] {
			t.Fatalf("phase %d = %q, want %q", p, p, want[p])
		}
	}
	if Phase(200).String() != "unknown" {
		t.Fatal("out-of-range phase should stringify as unknown")
	}
}

func TestPhaseTotals(t *testing.T) {
	var m EngineMetrics
	m.ObservePhase(PhasePropagate, 100)
	m.ObservePhase(PhasePropagate, 50)
	m.ObservePhase(PhaseObserve, 7)
	totals := m.PhaseTotals()
	if totals["propagate"] != 150 || totals["observe"] != 7 || totals["faults"] != 0 {
		t.Fatalf("totals = %v", totals)
	}
	if len(totals) != int(PhaseCount) {
		t.Fatalf("totals has %d keys, want %d", len(totals), PhaseCount)
	}
	var nilM *EngineMetrics
	nilM.ObservePhase(PhaseJoin, 5) // must not panic
	if nilM.PhaseTotals() != nil {
		t.Fatal("nil metrics should return nil totals")
	}
}
