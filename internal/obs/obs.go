// Package obs is the simulator's dependency-free observability core: a
// handful of lock-free metric primitives (Counter, Gauge, Histogram)
// whose record operations are wait-free single atomics and never
// allocate — safe to call from the engine's zero-allocation round loop
// and from every service goroutine — plus a Registry that exposes the
// recorded values as Prometheus text exposition and as JSON.
//
// The discipline is deliberately asymmetric: registration and scraping
// may allocate (they happen at setup and on /metrics requests), but the
// hot path — Counter.Add, Gauge.Set, Histogram.Observe — must not. The
// engine's per-round instrumentation rides on exactly that guarantee:
// enabling metrics cannot perturb the steady-state allocation profile
// the alloc-diff tests enforce, and since no metric touches an rng
// stream, it provably cannot perturb results either.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; all methods are safe for concurrent callers and allocate
// nothing.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 — queue depths, subscriber counts, anything
// that goes both up and down. The zero value is ready to use; all
// methods are safe for concurrent callers and allocate nothing.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistogramBuckets is the fixed bucket count of every Histogram: bucket
// i holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). 48 buckets cover 0 ns through ~2^46 ns (about 20
// hours), far past any phase or latency this system records.
const HistogramBuckets = 48

// Histogram counts non-negative integer observations (by convention
// nanoseconds, but any unit works — frontier sizes use it too) into
// fixed power-of-two boundaries. Fixed boundaries are the whole design:
// no per-histogram configuration means snapshots from any two
// histograms merge bucket-by-bucket (per-shard, per-worker, or
// per-process aggregation is one loop), and recording is one
// bits.Len64 plus three wait-free atomic adds — no locks, no
// allocation, no comparison ladder. The price is resolution: a bucket
// spans a factor of two, which is exactly enough to answer "where did
// the time go" questions without ever being a hot-path cost.
//
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistogramBuckets]atomic.Uint64
}

// bucketOf returns the bucket index of an observation: bits.Len64
// clamped to the fixed range. Negative observations clamp to zero (the
// only negative durations this system could see are clock steps, and a
// histogram full of panic is worse than a histogram with a zero).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	return b
}

// Observe records one observation. Wait-free, allocation-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot returns a consistent-enough copy of the histogram for
// exposition or merging. (Individual loads are atomic; a snapshot taken
// during concurrent observation may be mid-update by a count, which is
// fine for monitoring and irrelevant once recording has stopped.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram's state.
// Snapshots from any two histograms merge bucket-by-bucket because
// every histogram shares the same fixed boundaries.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistogramBuckets]uint64
}

// Merge folds o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observation, or 0 with no observations.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpperBound returns the inclusive upper bound of bucket i:
// 2^i - 1 (bucket 0 holds only zero). These are the `le` boundaries the
// Prometheus exposition prints.
func BucketUpperBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket the rank falls in — the standard
// fixed-bucket estimate, accurate to a factor of two by construction.
// Returns 0 with no observations.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := float64(0)
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := float64(BucketUpperBound(i))
			if frac := (rank - seen) / float64(c); frac > 0 {
				return lo + (hi-lo)*frac
			}
			return lo
		}
		seen += float64(c)
	}
	return float64(BucketUpperBound(HistogramBuckets - 1))
}
