package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's Prometheus type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// series is one (labels, source) pair inside a family. Exactly one of
// counter/gauge/gaugeFn/hist is set, matching the family's kind.
type series struct {
	labels  string // `phase="draw"` form, without braces; "" for none
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family is a named metric with one or more labelled series. HELP and
// TYPE are per family, which is why registration groups series under
// their bare name.
type family struct {
	name   string
	help   string
	kind   Kind
	series []series
}

// Registry holds metric families for exposition. Registration and
// scraping take the registry mutex and may allocate; the metrics
// themselves are the lock-free primitives of this package, so recording
// never touches the registry at all. The zero value is not usable —
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*$`)
)

// register validates and attaches one series. Misregistration (bad
// name, kind conflict, duplicate series) is a programming error at
// process setup, so it panics rather than returning an error every
// caller would have to ignore.
func (r *Registry) register(name, labels, help string, kind Kind, s series) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if labels != "" && !labelRe.MatchString(labels) {
		panic(fmt.Sprintf("obs: invalid label set %q for metric %q", labels, name))
	}
	s.labels = labels
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.index[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	for _, existing := range f.series {
		if existing.labels == labels {
			panic(fmt.Sprintf("obs: duplicate series %q{%s}", name, labels))
		}
	}
	f.series = append(f.series, s)
}

// RegisterCounter exposes c under name with the given label set
// (`key="value",...` without braces; "" for an unlabelled series).
func (r *Registry) RegisterCounter(name, labels, help string, c *Counter) {
	r.register(name, labels, help, KindCounter, series{counter: c})
}

// RegisterGauge exposes g under name.
func (r *Registry) RegisterGauge(name, labels, help string, g *Gauge) {
	r.register(name, labels, help, KindGauge, series{gauge: g})
}

// RegisterGaugeFunc exposes fn's return value under name, evaluated at
// scrape time — the escape hatch for values owned elsewhere (runtime
// memstats, pool lengths).
func (r *Registry) RegisterGaugeFunc(name, labels, help string, fn func() float64) {
	r.register(name, labels, help, KindGauge, series{gaugeFn: fn})
}

// RegisterHistogram exposes h under name.
func (r *Registry) RegisterHistogram(name, labels, help string, h *Histogram) {
	r.register(name, labels, help, KindHistogram, series{hist: h})
}

// fmtFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (s *series) scalarValue() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.gaugeFn != nil:
		return s.gaugeFn()
	}
	return 0
}

// joinLabels merges a series' label set with one extra pair (used for
// histogram `le` labels).
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): HELP and TYPE lines per family,
// then one sample line per series — histograms as cumulative
// `_bucket{le=...}` samples plus `_sum` and `_count`. Families appear
// in registration order, so output is deterministic for a fixed
// registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for i := range f.series {
			s := &f.series[i]
			if f.kind == KindHistogram {
				if err := writeHistogram(w, f.name, s); err != nil {
					return err
				}
				continue
			}
			if err := writeSample(w, f.name, s.labels, fmtFloat(s.scalarValue())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name, labels, value string) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with
// power-of-two upper bounds, skipping interior empty runs (the +Inf
// bucket and any non-empty bucket always print, so the exposition stays
// both valid and compact — 48 mostly-zero lines per histogram would
// drown the families that matter).
func writeHistogram(w io.Writer, name string, s *series) error {
	snap := s.hist.Snapshot()
	var cum uint64
	for i, c := range snap.Buckets {
		cum += c
		if c == 0 {
			continue
		}
		le := fmt.Sprintf(`le="%s"`, fmtFloat(float64(BucketUpperBound(i))))
		if err := writeSample(w, name+"_bucket", joinLabels(s.labels, le), strconv.FormatUint(cum, 10)); err != nil {
			return err
		}
	}
	if err := writeSample(w, name+"_bucket", joinLabels(s.labels, `le="+Inf"`), strconv.FormatUint(snap.Count, 10)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", s.labels, strconv.FormatUint(snap.Sum, 10)); err != nil {
		return err
	}
	return writeSample(w, name+"_count", s.labels, strconv.FormatUint(snap.Count, 10))
}

// jsonMetric is one series in the JSON exposition.
type jsonMetric struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Type   string  `json:"type"`
	Value  float64 `json:"value,omitempty"`
	// Histogram fields.
	Count uint64  `json:"count,omitempty"`
	Sum   uint64  `json:"sum,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// WriteJSON renders every registered series as a JSON array (indented,
// trailing newline) — the format misrun -metrics dumps and humans diff.
// Histograms carry count/sum/mean and interpolated p50/p95/p99 instead
// of raw buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	out := make([]jsonMetric, 0, len(r.families))
	for _, f := range r.families {
		for i := range f.series {
			s := &f.series[i]
			m := jsonMetric{Name: f.name, Labels: s.labels, Type: f.kind.String()}
			if f.kind == KindHistogram {
				snap := s.hist.Snapshot()
				m.Count, m.Sum, m.Mean = snap.Count, snap.Sum, snap.Mean()
				m.P50, m.P95, m.P99 = snap.Quantile(0.50), snap.Quantile(0.95), snap.Quantile(0.99)
			} else {
				m.Value = s.scalarValue()
			}
			out = append(out, m)
		}
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// sampleRe matches one Prometheus sample line: a metric name, an
// optional label set, and a value. ValidateExposition uses it; scrape
// tests and the CI smoke assert endpoints through it.
var sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? -?[0-9+.eEInfNa]+$`)

// ValidateExposition checks that b parses as Prometheus text exposition
// format: every line is a comment, blank, or a well-formed sample whose
// value parses as a float, and every sample's family name was announced
// by a preceding TYPE line. It returns the first violation — the
// tripwire the CI metrics smoke and the endpoint tests fail on if an
// exposition change breaks scrapability.
func ValidateExposition(b []byte) error {
	typed := make(map[string]bool)
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return fmt.Errorf("obs: line %d: malformed TYPE comment %q", ln+1, line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("obs: line %d: unknown metric type %q", ln+1, fields[3])
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			return fmt.Errorf("obs: line %d: malformed sample %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && typed[strings.TrimSuffix(name, suffix)] {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[base] {
			return fmt.Errorf("obs: line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		value := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("obs: line %d: unparseable value %q", ln+1, value)
		}
	}
	return nil
}

// SampleValue extracts the value of the first sample line in b whose
// name (and, when given, label subset) matches — a test helper for
// asserting scraped endpoints without a client library. The labels
// argument is matched as a substring of the sample's label block.
func SampleValue(b []byte, name, labels string) (float64, bool) {
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(line, name)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(rest, " "):
			if labels != "" {
				continue
			}
		case strings.HasPrefix(rest, "{"):
			end := strings.IndexByte(rest, '}')
			if end < 0 || !strings.Contains(rest[:end], labels) {
				continue
			}
			rest = rest[end+1:]
		default:
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

// RegisterRuntime registers the Go-runtime family: goroutine count,
// heap and cumulative allocation sizes, GC cycles and pause time, and
// the scheduler's core budget. Values are read at scrape time from
// runtime.ReadMemStats — a stop-the-world of microseconds, paid by the
// scraper, never by the hot path.
func RegisterRuntime(r *Registry) {
	mem := func(read func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return read(&ms)
		}
	}
	r.RegisterGaugeFunc("go_goroutines", "", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.RegisterGaugeFunc("go_memstats_heap_alloc_bytes", "", "Bytes of allocated heap objects.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }))
	r.RegisterGaugeFunc("go_memstats_alloc_bytes_total", "", "Cumulative bytes allocated for heap objects.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.TotalAlloc) }))
	r.RegisterGaugeFunc("go_memstats_gc_cpu_fraction", "", "Fraction of CPU time used by GC since the program started.",
		mem(func(ms *runtime.MemStats) float64 { return ms.GCCPUFraction }))
	r.RegisterGaugeFunc("go_gc_cycles_total", "", "Completed GC cycles.",
		mem(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }))
	r.RegisterGaugeFunc("go_sched_gomaxprocs_threads", "", "The current runtime.GOMAXPROCS setting.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.RegisterGaugeFunc("process_cpu_count", "", "runtime.NumCPU() of the host.",
		func() float64 { return float64(runtime.NumCPU()) })
}
