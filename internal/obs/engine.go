package obs

// Phase names one slice of the simulator's round loop. The six phases
// partition a round's wall time (hooks excluded): what the per-phase
// histograms record per round sums — up to timer granularity — to the
// round's duration, which is what makes a phase breakdown trustworthy
// for "where did the time go" questions.
type Phase uint8

const (
	// PhaseFaults is fault application: crash processing, outage
	// recoveries and downs at the round's start, plus channel-noise
	// application after the first exchange.
	PhaseFaults Phase = iota
	// PhaseEligibleDraw is eligible-mask construction plus the kernel's
	// (or automata's) beep draws for every eligible node.
	PhaseEligibleDraw
	// PhaseBeepTally is the per-beeper accounting sweep (res.Beeps).
	// The per-node engines fuse it into their draw loop and record it
	// as zero; the columnar loop separates it, attributing the sharded
	// path's tally at its critical path (slowest shard).
	PhaseBeepTally
	// PhasePropagate is the first exchange: delivering beeps to
	// neighbours.
	PhasePropagate
	// PhaseJoin is the join rule plus the second exchange (join
	// announcements).
	PhaseJoin
	// PhaseObserve is the observe sweep and the state transitions.
	PhaseObserve
	// PhaseCount is the number of phases.
	PhaseCount
)

// String returns the phase's snake_case label — the `phase` label value
// in the Prometheus exposition and the key in bench records' phase_ns.
func (p Phase) String() string {
	switch p {
	case PhaseFaults:
		return "faults"
	case PhaseEligibleDraw:
		return "eligible_draw"
	case PhaseBeepTally:
		return "beep_tally"
	case PhasePropagate:
		return "propagate"
	case PhaseJoin:
		return "join"
	case PhaseObserve:
		return "observe"
	default:
		return "unknown"
	}
}

// EngineMetrics is the simulator's instrumentation bundle, recorded by
// the round loops when a run's Options.Metrics is non-nil. Every field
// is one of this package's lock-free primitives, so a single bundle can
// be shared by concurrent runs (the misd deployment: one bundle
// aggregated across every job's trials) and recording costs the round
// loop no allocations and no synchronization beyond the atomic adds.
// The zero value is ready to use.
type EngineMetrics struct {
	// Rounds counts completed time steps across all runs.
	Rounds Counter
	// Runs counts completed simulation runs.
	Runs Counter
	// Phase holds one histogram of per-round wall nanoseconds per
	// round-loop phase, indexed by Phase. A phase's total ns is its
	// histogram's Sum.
	Phase [PhaseCount]Histogram
	// Frontier records the first-exchange emitter count per round — the
	// population the propagate phase scales with.
	Frontier Histogram
	// PropagateBits counts destination bits set by exchanges (delivered
	// volume): how much listening actually happened, the sparse
	// engine's written-volume analogue of an edge count.
	PropagateBits Counter
	// PushExchanges / PullExchanges count the direction decisions of
	// the planned exchanges; SerialExchanges counts those the plan kept
	// on one goroutine (a subset of either direction).
	PushExchanges   Counter
	PullExchanges   Counter
	SerialExchanges Counter
	// ShardSpreadNs records, for each phase execution fanned out on the
	// shard pool, the spread (slowest minus fastest shard wall time) —
	// the imbalance signal: a spread rivalling the phase duration means
	// the partition is lopsided and the fan-out is buying nothing.
	ShardSpreadNs Histogram
}

// ObservePhase records one round's wall time for phase p. Nil-safe so
// call sites can stay unconditional.
func (m *EngineMetrics) ObservePhase(p Phase, ns int64) {
	if m == nil {
		return
	}
	m.Phase[p].Observe(ns)
}

// PhaseTotals returns cumulative wall nanoseconds per phase, keyed by
// the phase's String() — the map misbench stamps into bench records as
// phase_ns (JSON-marshalled maps sort keys, so records are
// deterministic).
func (m *EngineMetrics) PhaseTotals() map[string]int64 {
	if m == nil {
		return nil
	}
	totals := make(map[string]int64, PhaseCount)
	for p := Phase(0); p < PhaseCount; p++ {
		totals[p.String()] = int64(m.Phase[p].Sum())
	}
	return totals
}

// Register exposes the bundle under the beepmis_engine_* families.
func (m *EngineMetrics) Register(r *Registry) {
	r.RegisterCounter("beepmis_engine_rounds_total", "", "Completed simulation time steps across all runs.", &m.Rounds)
	r.RegisterCounter("beepmis_engine_runs_total", "", "Completed simulation runs.", &m.Runs)
	for p := Phase(0); p < PhaseCount; p++ {
		r.RegisterHistogram("beepmis_engine_phase_duration_ns", `phase="`+p.String()+`"`,
			"Per-round wall time of each round-loop phase in nanoseconds.", &m.Phase[p])
	}
	r.RegisterHistogram("beepmis_engine_frontier_size", "", "First-exchange emitter count per round.", &m.Frontier)
	r.RegisterCounter("beepmis_engine_propagate_bits_total", "", "Destination bits set by exchanges (delivered volume).", &m.PropagateBits)
	r.RegisterCounter("beepmis_engine_exchange_push_total", "", "Exchanges planned in the push direction.", &m.PushExchanges)
	r.RegisterCounter("beepmis_engine_exchange_pull_total", "", "Exchanges planned in the pull direction.", &m.PullExchanges)
	r.RegisterCounter("beepmis_engine_exchange_serial_total", "", "Exchanges the plan kept on one goroutine.", &m.SerialExchanges)
	r.RegisterHistogram("beepmis_engine_shard_spread_ns", "", "Slowest-minus-fastest shard wall time per pooled phase execution.", &m.ShardSpreadNs)
}
