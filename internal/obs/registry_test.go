package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func buildRegistry(t *testing.T) (*Registry, *EngineMetrics, *ServiceMetrics) {
	t.Helper()
	r := NewRegistry()
	var em EngineMetrics
	var sm ServiceMetrics
	em.Register(r)
	sm.Register(r)
	RegisterRuntime(r)
	return r, &em, &sm
}

func TestPrometheusExposition(t *testing.T) {
	r, em, sm := buildRegistry(t)
	em.Rounds.Add(17)
	em.ObservePhase(PhasePropagate, 1000)
	em.ObservePhase(PhasePropagate, 2000)
	em.Frontier.Observe(64)
	sm.QueueDepth.Set(3)
	sm.CacheHits.Add(5)
	sm.QueueLatencyNs.Observe(1500)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if err := ValidateExposition(b); err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, b)
	}

	if v, ok := SampleValue(b, "beepmis_engine_rounds_total", ""); !ok || v != 17 {
		t.Fatalf("rounds_total = %v,%v, want 17", v, ok)
	}
	if v, ok := SampleValue(b, "beepmis_service_queue_depth", ""); !ok || v != 3 {
		t.Fatalf("queue_depth = %v,%v, want 3", v, ok)
	}
	if v, ok := SampleValue(b, "beepmis_engine_phase_duration_ns_count", `phase="propagate"`); !ok || v != 2 {
		t.Fatalf("propagate count = %v,%v, want 2", v, ok)
	}
	if v, ok := SampleValue(b, "beepmis_engine_phase_duration_ns_sum", `phase="propagate"`); !ok || v != 3000 {
		t.Fatalf("propagate sum = %v,%v, want 3000", v, ok)
	}
	// Cumulative bucket semantics: 1000 and 2000 both land at or below
	// le=2047 (bucket 11).
	if v, ok := SampleValue(b, "beepmis_engine_phase_duration_ns_bucket", `phase="propagate",le="2047"`); !ok || v != 2 {
		t.Fatalf("propagate le=2047 bucket = %v,%v, want 2", v, ok)
	}
	if v, ok := SampleValue(b, "beepmis_engine_phase_duration_ns_bucket", `phase="propagate",le="+Inf"`); !ok || v != 2 {
		t.Fatalf("propagate +Inf bucket = %v,%v, want 2", v, ok)
	}
	// Runtime families must be present and sane.
	if v, ok := SampleValue(b, "go_goroutines", ""); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v,%v", v, ok)
	}
	if v, ok := SampleValue(b, "go_sched_gomaxprocs_threads", ""); !ok || v < 1 {
		t.Fatalf("gomaxprocs = %v,%v", v, ok)
	}
	// TYPE comes once per family even with six phase series.
	if n := strings.Count(buf.String(), "# TYPE beepmis_engine_phase_duration_ns "); n != 1 {
		t.Fatalf("phase family announced %d times, want 1", n)
	}
}

func TestJSONExposition(t *testing.T) {
	r, em, _ := buildRegistry(t)
	em.Runs.Add(2)
	em.Frontier.Observe(100)
	em.Frontier.Observe(100)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var metrics []struct {
		Name  string  `json:"name"`
		Type  string  `json:"type"`
		Value float64 `json:"value"`
		Count uint64  `json:"count"`
		Mean  float64 `json:"mean"`
	}
	if err := json.Unmarshal(buf.Bytes(), &metrics); err != nil {
		t.Fatalf("JSON exposition does not decode: %v", err)
	}
	byName := map[string][]int{}
	for i, m := range metrics {
		byName[m.Name] = append(byName[m.Name], i)
	}
	runs := metrics[byName["beepmis_engine_runs_total"][0]]
	if runs.Type != "counter" || runs.Value != 2 {
		t.Fatalf("runs metric = %+v", runs)
	}
	frontier := metrics[byName["beepmis_engine_frontier_size"][0]]
	if frontier.Type != "histogram" || frontier.Count != 2 || frontier.Mean != 100 {
		t.Fatalf("frontier metric = %+v", frontier)
	}
	if len(byName["beepmis_engine_phase_duration_ns"]) != int(PhaseCount) {
		t.Fatalf("phase series count = %d, want %d", len(byName["beepmis_engine_phase_duration_ns"]), PhaseCount)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var c Counter
	var g Gauge
	r := NewRegistry()
	r.RegisterCounter("ok_total", "", "", &c)
	mustPanic("invalid name", func() { r.RegisterCounter("bad name", "", "", &c) })
	mustPanic("invalid labels", func() { r.RegisterCounter("ok2_total", `bad label`, "", &c) })
	mustPanic("kind conflict", func() { r.RegisterGauge("ok_total", "", "", &g) })
	mustPanic("duplicate series", func() { r.RegisterCounter("ok_total", "", "", &c) })
	// Same name with distinct labels is fine — that's a labelled family.
	r.RegisterCounter("labelled_total", `k="a"`, "", &c)
	r.RegisterCounter("labelled_total", `k="b"`, "", &c)
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"sample without TYPE", "orphan_metric 1\n"},
		{"malformed sample", "# TYPE x counter\nx{unterminated 1\n"},
		{"bad value", "# TYPE x counter\nx notanumber\n"},
		{"bad type", "# TYPE x widget\nx 1\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition([]byte(tc.text)); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	good := "# HELP x help text\n# TYPE x histogram\nx_bucket{le=\"+Inf\"} 2\nx_sum 10\nx_count 2\n\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}
