package runtime

import (
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

// TestEngineEquivalenceVariableFactors covers the subtle part of the
// jittered feedback variant: it draws its per-step factors from the
// node's randomness stream inside Observe, which is only sound if both
// engines call Beep/Observe in exactly the same per-node order. A
// divergence here would silently skew the ablate-jitter experiment.
func TestEngineEquivalenceVariableFactors(t *testing.T) {
	factory, err := mis.NewFeedbackVariable(mis.VariableConfig{
		FactorLo: 1.3,
		FactorHi: 4,
		PerNode:  func(id int) float64 { return 1 / float64(2+id%4) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.Graph{
		graph.GNP(70, 0.4, rng.New(1)),
		graph.CliqueFamily(300),
		graph.Grid(6, 8),
	} {
		for seed := uint64(40); seed < 43; seed++ {
			simRes, err := sim.Run(g, factory, rng.New(seed), sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			rtRes, err := Run(g, factory, rng.New(seed), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if simRes.Rounds != rtRes.Rounds || simRes.TotalBeeps != rtRes.TotalBeeps {
				t.Fatalf("seed %d: engines diverged under jittered factors (rounds %d/%d, beeps %d/%d)",
					seed, simRes.Rounds, rtRes.Rounds, simRes.TotalBeeps, rtRes.TotalBeeps)
			}
			for v := range simRes.InMIS {
				if simRes.InMIS[v] != rtRes.InMIS[v] {
					t.Fatalf("seed %d: node %d membership differs", seed, v)
				}
			}
			if err := graph.VerifyMIS(g, simRes.InMIS); err != nil {
				t.Fatal(err)
			}
		}
	}
}
