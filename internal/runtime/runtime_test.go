package runtime

import (
	"errors"
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

func TestRunProducesMIS(t *testing.T) {
	src := rng.New(1)
	f, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"gnp":      graph.GNP(60, 0.5, src),
		"complete": graph.Complete(20),
		"grid":     graph.Grid(6, 6),
		"star":     graph.Star(15),
		"path":     graph.Path(25),
		"empty":    graph.Empty(8),
		"zero":     graph.Empty(0),
	}
	for name, g := range graphs {
		res, err := Run(g, f, rng.New(9), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Terminated {
			t.Fatalf("%s: not terminated", name)
		}
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestEngineEquivalence is the cross-validation the two engines were
// designed for: from the same master seed, the concurrent channel-based
// execution must reproduce the sequential simulator's execution exactly —
// same rounds, same per-node beep counts, same MIS.
func TestEngineEquivalence(t *testing.T) {
	src := rng.New(2)
	cases := map[string]*graph.Graph{
		"gnp-half":   graph.GNP(80, 0.5, src),
		"gnp-sparse": graph.GNP(150, 0.03, src),
		"complete":   graph.Complete(30),
		"grid":       graph.Grid(7, 8),
		"cliques":    graph.CliqueFamily(300),
		"star":       graph.Star(40),
	}
	algos := []string{mis.NameFeedback, mis.NameGlobalSweep, mis.NameAfek}
	for gname, g := range cases {
		for _, aname := range algos {
			factory, err := mis.NewFactory(mis.Spec{Name: aname})
			if err != nil {
				t.Fatal(err)
			}
			for seed := uint64(100); seed < 103; seed++ {
				simRes, err := sim.Run(g, factory, rng.New(seed), sim.Options{})
				if err != nil {
					t.Fatalf("%s/%s sim: %v", gname, aname, err)
				}
				rtRes, err := Run(g, factory, rng.New(seed), Options{})
				if err != nil {
					t.Fatalf("%s/%s runtime: %v", gname, aname, err)
				}
				if simRes.Rounds != rtRes.Rounds {
					t.Fatalf("%s/%s seed %d: rounds sim=%d runtime=%d", gname, aname, seed, simRes.Rounds, rtRes.Rounds)
				}
				if simRes.TotalBeeps != rtRes.TotalBeeps {
					t.Fatalf("%s/%s seed %d: beeps sim=%d runtime=%d", gname, aname, seed, simRes.TotalBeeps, rtRes.TotalBeeps)
				}
				for v := range simRes.InMIS {
					if simRes.InMIS[v] != rtRes.InMIS[v] {
						t.Fatalf("%s/%s seed %d: node %d MIS membership differs", gname, aname, seed, v)
					}
					if simRes.Beeps[v] != rtRes.Beeps[v] {
						t.Fatalf("%s/%s seed %d: node %d beeps sim=%d runtime=%d",
							gname, aname, seed, v, simRes.Beeps[v], rtRes.Beeps[v])
					}
				}
			}
		}
	}
}

func TestRunMaxRounds(t *testing.T) {
	f, err := mis.NewFixedProb(0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(graph.Complete(30), f, rng.New(3), Options{MaxRounds: 50})
	if !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("err = %v, want ErrTooManyRounds", err)
	}
	if res.Terminated || res.Rounds != 50 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunDeterminismAcrossInvocations(t *testing.T) {
	g := graph.GNP(50, 0.4, rng.New(4))
	f, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(g, f, rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, f, rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TotalBeeps != b.TotalBeeps {
		t.Fatal("concurrent engine is not deterministic for a fixed seed")
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("concurrent engine set membership varies across runs")
		}
	}
}

func TestRunSingleNode(t *testing.T) {
	f, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(graph.Empty(1), f, rng.New(6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InMIS[0] {
		t.Fatal("lone node must join")
	}
}
