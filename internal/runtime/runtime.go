// Package runtime executes beeping-model algorithms with one goroutine
// per node and channels as communication links — a genuinely concurrent
// message-passing realisation of the same synchronous model that
// internal/sim simulates sequentially.
//
// Per time step each node goroutine performs the paper's two exchanges:
// it sends its beep bit to every neighbour and reads theirs, then sends
// and reads join announcements, then updates its automaton. A coordinator
// collects per-round statuses and broadcasts continue/stop. Because every
// node draws randomness from the same per-node stream the simulator uses,
// a run here is bit-for-bit identical to the simulator's run from the
// same seed — TestEngineEquivalence in this package enforces that.
package runtime

import (
	"errors"
	"fmt"
	"sync"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// DefaultMaxRounds bounds a run when Options.MaxRounds is zero.
const DefaultMaxRounds = 1 << 20

// ErrTooManyRounds is wrapped in the error returned when the round limit
// is reached before all nodes terminate.
var ErrTooManyRounds = errors.New("runtime: round limit reached before termination")

// Options configures a concurrent run.
type Options struct {
	// MaxRounds caps the number of time steps; 0 means DefaultMaxRounds.
	MaxRounds int
}

// Result reports a completed (or round-capped) concurrent execution,
// mirroring the simulator's result fields.
type Result struct {
	// InMIS is the membership vector of the computed independent set.
	InMIS []bool
	// States holds each node's final state.
	States []beep.State
	// Rounds is the number of time steps executed.
	Rounds int
	// Beeps counts first-exchange beeps per node.
	Beeps []int
	// TotalBeeps is the sum of Beeps.
	TotalBeeps int
	// Terminated reports whether all nodes finished within the limit.
	Terminated bool
}

// nodeStatus is what each node reports to the coordinator after a round.
type nodeStatus struct {
	id     int
	state  beep.State
	beeped bool
}

// Run executes factory's algorithm on g concurrently. All spawned
// goroutines are joined before Run returns, on every path.
func Run(g *graph.Graph, factory beep.Factory, master *rng.Source, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := g.N()
	res := &Result{
		InMIS:  make([]bool, n),
		States: make([]beep.State, n),
		Beeps:  make([]int, n),
	}
	if n == 0 {
		res.Terminated = true
		return res, nil
	}

	// Directed links: link[u][i] carries u's bit to its i-th neighbour.
	// Capacity 1 is load-bearing: each exchange puts exactly one message
	// on each directed link and the receiver drains it within the same
	// exchange, so a single buffer slot prevents the symmetric
	// send/receive deadlock that unbuffered links would cause.
	links := make([][]chan bool, n)
	for u := 0; u < n; u++ {
		nbrs := g.Neighbors(u)
		links[u] = make([]chan bool, len(nbrs))
		for i := range nbrs {
			links[u][i] = make(chan bool, 1)
		}
	}
	// inbox[v] lists, for each neighbour of v in adjacency order, the
	// channel that neighbour sends to v on.
	inbox := make([][]chan bool, n)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		inbox[v] = make([]chan bool, len(nbrs))
		for i, w := range nbrs {
			// Find v's position in w's adjacency list.
			pos := indexOf(g.Neighbors(int(w)), int32(v))
			inbox[v][i] = links[w][pos]
		}
	}

	cmds := make([]chan bool, n) // true = run another round, false = stop
	for v := range cmds {
		cmds[v] = make(chan bool, 1)
	}
	statusCh := make(chan nodeStatus, 1)

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			runNode(v, g, factory, master.Stream(uint64(v)), cmds[v], links[v], inbox[v], statusCh)
		}()
	}

	active := n
	states := res.States
	for v := range states {
		states[v] = beep.StateActive
	}
	round := 0
	for active > 0 && round < maxRounds {
		round++
		for v := 0; v < n; v++ {
			cmds[v] <- true
		}
		for i := 0; i < n; i++ {
			st := <-statusCh
			if states[st.id] == beep.StateActive && st.state != beep.StateActive {
				active--
			}
			states[st.id] = st.state
			if st.beeped {
				res.Beeps[st.id]++
				res.TotalBeeps++
			}
		}
	}
	for v := 0; v < n; v++ {
		cmds[v] <- false
	}
	wg.Wait()

	res.Rounds = round
	for v, st := range states {
		res.InMIS[v] = st == beep.StateInMIS
	}
	res.Terminated = active == 0
	if !res.Terminated {
		return res, fmt.Errorf("%w: %d nodes still active after %d rounds", ErrTooManyRounds, active, maxRounds)
	}
	return res, nil
}

// runNode is the per-node goroutine body. A node that reaches a terminal
// state keeps participating in the exchanges (sending "no beep" /
// "no join") so its neighbours' reads never block, until the coordinator
// broadcasts stop.
func runNode(
	id int,
	g *graph.Graph,
	factory beep.Factory,
	src *rng.Source,
	cmd <-chan bool,
	out []chan bool,
	in []chan bool,
	status chan<- nodeStatus,
) {
	auto := factory(beep.NodeInfo{ID: id, N: g.N(), Degree: g.Degree(id), MaxDegree: g.MaxDegree()})
	state := beep.StateActive
	for <-cmd {
		beeped := false
		if state == beep.StateActive {
			beeped = auto.Beep(src)
		}
		// First exchange: beep bits.
		for _, ch := range out {
			ch <- beeped
		}
		heard := false
		for _, ch := range in {
			if <-ch {
				heard = true
			}
		}
		// Second exchange: join announcements.
		join := state == beep.StateActive && beeped && !heard
		for _, ch := range out {
			ch <- join
		}
		neighborJoined := false
		for _, ch := range in {
			if <-ch {
				neighborJoined = true
			}
		}
		if state == beep.StateActive {
			switch {
			case join:
				state = beep.StateInMIS
			case neighborJoined:
				state = beep.StateDominated
			default:
				auto.Observe(beep.Outcome{Beeped: beeped, Heard: heard, NeighborJoined: neighborJoined})
			}
		}
		status <- nodeStatus{id: id, state: state, beeped: beeped}
	}
}

// indexOf returns the position of x in the sorted slice lst, or -1. The
// adjacency lists are sorted, but the lists are short enough that a
// linear scan at setup time is simpler and the cost is O(m) overall.
func indexOf(lst []int32, x int32) int {
	for i, v := range lst {
		if v == x {
			return i
		}
	}
	return -1
}
