package sim

import (
	"math"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

func TestSnapshotProbabilities(t *testing.T) {
	g := graph.GNP(40, 0.5, rng.New(1))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	sawPositive := false
	_, err = Run(g, factory, rng.New(2), Options{
		OnRound: func(s Snapshot) {
			if len(s.Probabilities) != g.N() {
				t.Fatalf("probabilities slice length %d", len(s.Probabilities))
			}
			for v, p := range s.Probabilities {
				switch {
				case s.States[v].Terminal():
					if p != 0 {
						t.Fatalf("terminal node %d reports p=%v", v, p)
					}
				case math.IsNaN(p):
					t.Fatalf("feedback automaton should report probabilities (node %d)", v)
				case p <= 0 || p > 0.5:
					t.Fatalf("node %d probability %v outside (0, 1/2]", v, p)
				default:
					sawPositive = true
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawPositive {
		t.Fatal("never observed an active node probability")
	}
}

// TestEquationOneSingleBeeper validates the paper's equation (1): on a
// clique K_d where every node beeps with probability p, the chance that
// some vertex joins the MIS in one step equals the probability of
// exactly one beeper, d·p·(1−p)^(d−1).
func TestEquationOneSingleBeeper(t *testing.T) {
	const (
		d      = 12
		p      = 0.125
		trials = 60000
	)
	g := graph.Complete(d)
	factory, err := mis.NewFixedProb(p)
	if err != nil {
		t.Fatal(err)
	}
	joins := 0
	for trial := 0; trial < trials; trial++ {
		res, err := Run(g, factory, rng.New(uint64(trial)), Options{MaxRounds: 1})
		// MaxRounds=1 usually errors (the clique rarely resolves in one
		// step); only the first-step outcome matters here.
		if err == nil || res != nil {
			for v := 0; v < d; v++ {
				if res.States[v] == beep.StateInMIS {
					joins++
					break
				}
			}
		}
	}
	want := float64(d) * p * math.Pow(1-p, d-1)
	got := float64(joins) / trials
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("single-beeper join rate %.4f, equation (1) predicts %.4f", got, want)
	}
}

// TestFeedbackProbabilityDynamics follows one dense clique and checks the
// qualitative behaviour the proof of Theorem 2 relies on: under constant
// collisions, probabilities fall (the heavy-neighbourhood weight μ
// shrinks), and they recover toward 1/2 once the neighbourhood clears.
func TestFeedbackProbabilityDynamics(t *testing.T) {
	g := graph.Complete(30)
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	var meanPFirst, meanPLater float64
	rounds := 0
	_, err = Run(g, factory, rng.New(9), Options{
		OnRound: func(s Snapshot) {
			rounds++
			sum, count := 0.0, 0
			for v, p := range s.Probabilities {
				if !s.States[v].Terminal() {
					sum += p
					count++
				}
			}
			if count == 0 {
				return
			}
			mean := sum / float64(count)
			if rounds == 1 {
				meanPFirst = mean
			}
			if rounds == 4 {
				meanPLater = mean
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 4 {
		t.Skip("clique resolved before round 4; dynamics not observable this seed")
	}
	if !(meanPLater < meanPFirst) {
		t.Fatalf("mean p did not fall under collisions: round1=%.3f round4=%.3f", meanPFirst, meanPLater)
	}
}
