package sim

import (
	"math"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// TestRunRoundInvariants checks, at every round of an execution, the
// safety invariants the paper's correctness argument rests on:
//
//  1. the partial MIS is independent at all times,
//  2. every dominated node has an MIS neighbour (domination is earned),
//  3. only active nodes beep.
func TestRunRoundInvariants(t *testing.T) {
	src := rng.New(1)
	graphs := map[string]*graph.Graph{
		"gnp":     graph.GNP(80, 0.4, src),
		"cliques": graph.CliqueFamily(300),
		"grid":    graph.Grid(7, 9),
	}
	for _, algoName := range []string{mis.NameFeedback, mis.NameGlobalSweep} {
		factory, err := mis.NewFactory(mis.Spec{Name: algoName})
		if err != nil {
			t.Fatal(err)
		}
		for gname, g := range graphs {
			prevStates := make([]beep.State, g.N())
			for i := range prevStates {
				prevStates[i] = beep.StateActive
			}
			check := func(s Snapshot) {
				inMIS := make([]bool, g.N())
				for v, st := range s.States {
					if st == beep.StateInMIS {
						inMIS[v] = true
					}
				}
				if !graph.IsIndependent(g, inMIS) {
					t.Fatalf("%s/%s round %d: partial MIS not independent", algoName, gname, s.Round)
				}
				for v, st := range s.States {
					if st != beep.StateDominated {
						continue
					}
					hasMISNeighbor := false
					for _, w := range g.Neighbors(v) {
						if inMIS[w] {
							hasMISNeighbor = true
							break
						}
					}
					if !hasMISNeighbor {
						t.Fatalf("%s/%s round %d: node %d dominated without an MIS neighbour", algoName, gname, s.Round, v)
					}
					// Terminal states never revert.
					if prevStates[v] == beep.StateInMIS {
						t.Fatalf("%s/%s round %d: node %d left the MIS", algoName, gname, s.Round, v)
					}
				}
				for v, b := range s.Beeped {
					if b && prevStates[v] != beep.StateActive {
						t.Fatalf("%s/%s round %d: inactive node %d beeped", algoName, gname, s.Round, v)
					}
				}
				copy(prevStates, s.States)
			}
			if _, err := Run(g, factory, rng.New(7), Options{OnRound: check}); err != nil {
				t.Fatalf("%s/%s: %v", algoName, gname, err)
			}
		}
	}
}

// TestFeedbackRoundBoundRegression guards the O(log n) behaviour: mean
// rounds on G(n,1/2) stay below a generous 5·log₂n across sizes. A
// regression to log²n behaviour (e.g. a broken feedback rule) trips this
// immediately (log²(1024) = 100 ≫ 5·10 = 50).
func TestFeedbackRoundBoundRegression(t *testing.T) {
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{128, 512, 1024} {
		const trials = 10
		total := 0
		for trial := 0; trial < trials; trial++ {
			g := graph.GNP(n, 0.5, rng.New(uint64(n+trial)))
			res, err := Run(g, factory, rng.New(uint64(trial)), Options{})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Rounds
		}
		mean := float64(total) / trials
		bound := 5 * math.Log2(float64(n))
		if mean > bound {
			t.Fatalf("n=%d: mean rounds %.1f exceeds 5·log2(n) = %.1f — O(log n) regression", n, mean, bound)
		}
	}
}

// TestFeedbackBeepBoundRegression guards Theorem 6: mean beeps per node
// stay below 2 (measured ≈1.1; the theorem's constant is far larger, so
// 2 is a tight practical regression bound).
func TestFeedbackBeepBoundRegression(t *testing.T) {
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func() *graph.Graph{
		func() *graph.Graph { return graph.GNP(200, 0.5, rng.New(3)) },
		func() *graph.Graph { return graph.Grid(14, 14) },
		func() *graph.Graph { return graph.CliqueFamily(500) },
	} {
		g := build()
		const trials = 10
		total := 0.0
		for trial := 0; trial < trials; trial++ {
			res, err := Run(g, factory, rng.New(uint64(trial)+100), Options{})
			if err != nil {
				t.Fatal(err)
			}
			total += res.MeanBeepsPerNode()
		}
		if mean := total / trials; mean > 2 {
			t.Fatalf("%v: mean beeps/node %.2f > 2 — Theorem 6 regression", g, mean)
		}
	}
}

// TestGlobalSweepSlowerThanFeedback pins the paper's headline ordering
// as a regression test at one size.
func TestGlobalSweepSlowerThanFeedback(t *testing.T) {
	const n, trials = 400, 10
	fb, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := mis.NewFactory(mis.Spec{Name: mis.NameGlobalSweep})
	if err != nil {
		t.Fatal(err)
	}
	fbTotal, swTotal := 0, 0
	for trial := 0; trial < trials; trial++ {
		g := graph.GNP(n, 0.5, rng.New(uint64(trial)))
		a, err := Run(g, fb, rng.New(uint64(trial)+500), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, sweep, rng.New(uint64(trial)+500), Options{})
		if err != nil {
			t.Fatal(err)
		}
		fbTotal += a.Rounds
		swTotal += b.Rounds
	}
	if swTotal <= fbTotal*2 {
		t.Fatalf("globalsweep %d rounds vs feedback %d — expected a >2× gap at n=%d", swTotal, fbTotal, n)
	}
}
