package sim

import (
	"math"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// bulkPropagator delivers one exchange for the columnar round loop:
// dst becomes the union of the adjacency rows of every vertex in
// emitters — required to be correct at least at the bits in targets,
// the only ones the round loop reads — with the destination word range
// partitioned across up to `shards` goroutines. Both adjacency
// representations satisfy it: *graph.AdjacencyMatrix (dense packed
// rows, the columnar engine) always pushes, *graph.CSR (sorted edge
// arrays, the sparse engine) chooses push or pull per exchange. Both
// are bit-identical within targets for every shard count.
type bulkPropagator interface {
	PropagateToTargets(dst, targets, emitters graph.Bitset, shards int)
	// PlanExchange and ExchangeRange split one PropagateToTargets call
	// into a per-exchange decision and range-restricted execution, so
	// the round loop can fan the exchange out on its persistent shard
	// pool instead of paying goroutine spawns per exchange per round.
	PlanExchange(targets, emitters graph.Bitset, shards int) graph.ExchangePlan
	ExchangeRange(p graph.ExchangePlan, dst, targets, emitters graph.Bitset, loWord, hiWord int)
}

var (
	_ bulkPropagator  = (*graph.AdjacencyMatrix)(nil)
	_ bulkPropagator  = (*graph.CSR)(nil)
	_ beep.BulkRanger = (*perNodeBulk)(nil)
)

// perNodeBulk adapts per-node automata to the beep.BulkAutomaton
// surface, so the sparse engine can run algorithms that have no
// columnar kernel. It is observationally identical to the scalar
// loop's per-node calls: BeepAll visits active nodes in increasing id
// order drawing from each node's own stream, and ObserveAll delivers
// exactly the per-node Outcome (an observed node never has a joining
// neighbour — the engine owns the join rule).
type perNodeBulk struct {
	autos   []beep.Automaton
	factory beep.Factory
	net     beep.NetworkInfo
}

// perNodeBulkFactory wraps a per-node factory as a bulk factory,
// constructing the automata with the same NodeInfo the scalar loop
// would pass.
func perNodeBulkFactory(factory beep.Factory) beep.BulkFactory {
	return func(net beep.NetworkInfo) beep.BulkAutomaton {
		b := &perNodeBulk{autos: make([]beep.Automaton, net.N), factory: factory, net: net}
		for v := range b.autos {
			b.autos[v] = b.build(v)
		}
		return b
	}
}

func (b *perNodeBulk) build(v int) beep.Automaton {
	return b.factory(beep.NodeInfo{ID: v, N: b.net.N, Degree: b.net.Degrees[v], MaxDegree: b.net.MaxDegree})
}

// ResetNodes implements beep.BulkResetter by rebuilding each node's
// automaton — exactly what the scalar loop does on a reset recovery.
func (b *perNodeBulk) ResetNodes(nodes []int) {
	for _, v := range nodes {
		b.autos[v] = b.build(v)
	}
}

func (b *perNodeBulk) BeepAll(active graph.Bitset, streams []*rng.Source, out graph.Bitset) {
	b.BeepRange(active, streams, out, 0, len(active))
}

// BeepRange implements beep.BulkRanger. Factories hand every node its
// own automaton and every automaton draws only from its own stream, so
// disjoint node ranges touch disjoint state and the adapter satisfies
// the ranger contract for exactly the same reason the packed kernels
// do. (An automaton that shared mutable state across nodes would
// already violate the per-node engines' determinism contract.)
func (b *perNodeBulk) BeepRange(active graph.Bitset, streams []*rng.Source, out graph.Bitset, loWord, hiWord int) {
	active.ForEachRange(loWord, hiWord, func(v int) {
		if b.autos[v].Beep(streams[v]) {
			out.Set(v)
		}
	})
}

func (b *perNodeBulk) ObserveAll(observed, beeped, heard graph.Bitset) {
	b.ObserveRange(observed, beeped, heard, 0, len(observed))
}

// ObserveRange implements beep.BulkRanger; see BeepRange.
func (b *perNodeBulk) ObserveRange(observed, beeped, heard graph.Bitset, loWord, hiWord int) {
	observed.ForEachRange(loWord, hiWord, func(v int) {
		b.autos[v].Observe(beep.Outcome{Beeped: beeped.Test(v), Heard: heard.Test(v)})
	})
}

// BeepProbabilities implements beep.BulkProbabilityReporter by
// delegating to each automaton's optional per-node reporter, mirroring
// the scalar loop's snapshot probabilities (NaN when an automaton does
// not report).
func (b *perNodeBulk) BeepProbabilities(dst []float64) {
	for v, a := range b.autos {
		if pr, ok := a.(beep.ProbabilityReporter); ok {
			dst[v] = pr.BeepProbability()
		} else {
			dst[v] = math.NaN()
		}
	}
}
