package sim

import (
	"math"
	"testing"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
)

// TestShardPoolRunAllocations pins the pool machinery itself: feeding a
// phase to the persistent workers must not allocate — the whole point
// of keeping the pool alive across rounds instead of spawning
// goroutines per phase.
func TestShardPoolRunAllocations(t *testing.T) {
	pool := newShardPool(1024, 4)
	if pool == nil {
		t.Fatal("pool degenerated")
	}
	defer pool.close()
	touched := make([]int, pool.shards())
	fn := func(shard, lo, hi int) { touched[shard] += hi - lo }
	if allocs := testing.AllocsPerRun(200, func() { pool.run(fn) }); allocs != 0 {
		t.Fatalf("shardPool.run allocates %v per call, want 0", allocs)
	}
	if total := touched[0] + touched[1] + touched[2] + touched[3]; total == 0 {
		t.Fatal("phase fn never ran")
	}
}

// measureRunAllocs returns the heap allocations of one full simulation
// run of the feedback algorithm on g under opts.
func measureRunAllocs(t *testing.T, g *graph.Graph, opts Options) float64 {
	t.Helper()
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	opts.Bulk = bulk
	return testing.AllocsPerRun(1, func() {
		if _, err := Run(g, factory, rng.New(11), opts); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRoundLoopAllocations asserts the columnar and sparse round loops
// allocate nothing per round in steady state, at shard count 1 and at a
// pooled shard count: two runs of the same workload differing only in
// how many rounds they last (a wake schedule holds most of the graph
// dormant until round 160 vs 460, keeping the run — and the sharded
// draw path, since dormant nodes stay active — alive through ~300 extra
// steady-state rounds) must cost the same allocations. Any per-round
// allocation would show up ~300-fold in the difference; the tolerance
// absorbs only incidental noise (map growth, GC bookkeeping), not a
// per-round cost.
func TestRoundLoopAllocations(t *testing.T) {
	const (
		n          = 5000
		earlyBirds = 700 // nodes awake from round 1; the rest ≥ 4300 keep active > drawShardMinNodes
		shortWake  = 160
		longWake   = 460
		slack      = 40 // far below the ~300 allocs a 1-alloc/round regression would add
	)
	g := graph.GNP(n, 0.01, rng.New(7))
	g.Matrix() // build cached representations outside the measurement
	g.CSR()
	wake := func(round int) []int {
		w := make([]int, n)
		for v := earlyBirds; v < n; v++ {
			w[v] = round
		}
		return w
	}
	noise := &fault.Spec{Loss: 0.02, Spurious: 0.01}
	for _, tc := range []struct {
		name    string
		engine  Engine
		shards  int
		faults  *fault.Spec
		metrics bool
	}{
		{"columnar/shards=1", EngineColumnar, 1, nil, false},
		{"columnar/shards=4", EngineColumnar, 4, nil, false},
		{"columnar/shards=4/noisy", EngineColumnar, 4, noise, false},
		{"sparse/shards=1", EngineSparse, 1, nil, false},
		{"sparse/shards=4", EngineSparse, 4, nil, false},
		{"sparse/shards=4/noisy", EngineSparse, 4, noise, false},
		// Metrics-enabled rows: recording is atomics into a preallocated
		// bundle, so the steady-state guarantee must hold unchanged.
		{"columnar/shards=1/metrics", EngineColumnar, 1, nil, true},
		{"columnar/shards=4/metrics", EngineColumnar, 4, nil, true},
		{"sparse/shards=4/metrics", EngineSparse, 4, nil, true},
		{"sparse/shards=4/noisy/metrics", EngineSparse, 4, noise, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Engine: tc.engine, Shards: tc.shards, Faults: tc.faults}
			if tc.metrics {
				opts.Metrics = &obs.EngineMetrics{}
			}
			opts.WakeAt = wake(shortWake)
			short := measureRunAllocs(t, g, opts)
			opts.WakeAt = wake(longWake)
			long := measureRunAllocs(t, g, opts)
			if d := math.Abs(long - short); d > slack {
				t.Fatalf("%v extra allocations across ~%d extra rounds (short %v, long %v): the round loop allocates in steady state",
					d, longWake-shortWake, short, long)
			}
		})
	}
}
