package sim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"testing"

	"beepmis/internal/analysis"
)

// noallocAnnotated is the curated set of this package's
// //misvet:noalloc functions — exactly the steady-state code paths
// TestRoundLoopAllocations and TestShardPoolRunAllocations exercise
// dynamically. The two enforcement layers must not drift: annotating
// a function the alloc tests never drive would let misvet vouch for a
// path nothing measures, and dropping an annotation would leave a
// measured path without compile-time coverage. Change this list only
// together with the annotation and the alloc tests.
var noallocAnnotated = []string{
	// columnar round-loop phases, driven every round by runColumnar
	// under both the columnar and sparse engines.
	"*columnarLoop.beepShard",
	"*columnarLoop.drawBeeps",
	"*columnarLoop.exchange",
	"*columnarLoop.exchangeShard",
	"*columnarLoop.observe",
	"*columnarLoop.observeShard",
	"*columnarLoop.runPool",
	"*columnarLoop.tallyRange",
	"*columnarLoop.timedShard",
	// the persistent worker pool every sharded phase rides on.
	"*shardPool.run",
	"*shardPool.worker",
	// per-round metrics accounting, pinned by the metrics-enabled
	// alloc-test rows.
	"*phaseClock.flush",
	"*phaseClock.mark",
	"*phaseClock.move",
	"*phaseClock.start",
}

// TestNoallocAnnotationsMatchAllocTests parses this package's
// production sources and asserts the //misvet:noalloc annotation set
// equals noallocAnnotated.
func TestNoallocAnnotationsMatchAllocTests(t *testing.T) {
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var got []string
	for _, name := range files {
		if isTestFileName(name) {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasNoallocDirective(fd.Doc) {
				continue
			}
			got = append(got, funcLabel(fd))
		}
	}
	sort.Strings(got)
	want := append([]string(nil), noallocAnnotated...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("annotation drift:\n  annotated in sources: %v\n  curated alloc-test set: %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("annotation drift at %q (curated: %q):\n  annotated in sources: %v\n  curated alloc-test set: %v", got[i], want[i], got, want)
		}
	}
}

func isTestFileName(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return types.ExprString(fd.Recv.List[0].Type) + "." + fd.Name.Name
}
