package sim

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"time"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
)

// drawShardMinNodes is the active-population floor below which the
// eligible-draw and observe sweeps stay on one goroutine. A sharded
// sweep costs one channel round-trip per worker (~1µs each); per-node
// draws cost tens of nanoseconds, so fan-out only pays once thousands
// of nodes are drawing. The threshold reads the engine's running
// active count — as a run converges below it, the loop drops back to
// serial sweeps with bit-identical results (sharding never changes
// output, only wall clock).
const drawShardMinNodes = 1 << 12

// columnarLoop holds the per-run state the round phases share, so the
// phase bodies can be method values created once at setup and fed to
// the persistent shard pool with zero allocations per round. The three
// shardable phases — eligible draws + beep tally, the two exchanges,
// and the observe sweep — each touch only per-node state (packed
// kernel arrays, per-node rng streams, destination mask words) of the
// nodes in their word range, so any partition of the word space is
// bit-identical to one serial sweep.
type columnarLoop struct {
	prop    bulkPropagator
	bulk    beep.BulkAutomaton
	ranger  beep.BulkRanger // nil when the kernel cannot range-shard
	streams []*rng.Source
	pool    *shardPool // nil when the effective shard count is 1
	shards  int
	res     *Result

	// Stable per-round masks, bound once at setup.
	beeped graph.Bitset
	heard  graph.Bitset

	// Per-phase parameters, written before each pool.run. The pool's
	// work-channel send/receive orders these writes before the workers'
	// reads.
	eligible    graph.Bitset // draw mask and exchange-targets mask
	observeMask graph.Bitset
	xplan       graph.ExchangePlan
	xdst        graph.Bitset
	xemit       graph.Bitset

	shardBeeps []int // per-shard beep tallies, summed after the draw phase

	// Method values for the pool, created once (a method value
	// evaluated inline would allocate its closure on every round).
	beepFn     func(shard, lo, hi int)
	observeFn  func(shard, lo, hi int)
	exchangeFn func(shard, lo, hi int)

	// Instrumentation (all nil/zero when metrics are off). timedFn wraps
	// inner with per-shard wall timing into shardNs so runPool can record
	// the shard spread; tallyNs and lastTallyNs let drawBeeps report how
	// much of the draw phase the beep tally took (attributed at the
	// critical path — the slowest shard — under fan-out). All buffers are
	// preallocated at setup; recording allocates nothing.
	metrics     *obs.EngineMetrics
	timedFn     func(shard, lo, hi int)
	inner       func(shard, lo, hi int)
	shardNs     []int64
	tallyNs     []int64
	lastTallyNs int64
}

func newColumnarLoop(prop bulkPropagator, bulk beep.BulkAutomaton, streams []*rng.Source, res *Result, beeped, heard graph.Bitset, shards int, metrics *obs.EngineMetrics) *columnarLoop {
	l := &columnarLoop{
		prop:    prop,
		bulk:    bulk,
		streams: streams,
		res:     res,
		beeped:  beeped,
		heard:   heard,
		shards:  shards,
		metrics: metrics,
	}
	l.ranger, _ = bulk.(beep.BulkRanger)
	l.pool = newShardPool(len(beeped), shards)
	if l.pool != nil {
		l.shardBeeps = make([]int, l.pool.shards())
		l.beepFn = l.beepShard
		l.observeFn = l.observeShard
		l.exchangeFn = l.exchangeShard
		if metrics != nil {
			l.timedFn = l.timedShard
			l.shardNs = make([]int64, l.pool.shards())
			l.tallyNs = make([]int64, l.pool.shards())
		}
	}
	return l
}

// timedShard runs the current inner phase body for one shard and stamps
// its wall time — the raw material for the shard-spread histogram.
//
//misvet:noalloc
func (l *columnarLoop) timedShard(shard, lo, hi int) {
	start := time.Now() //misvet:allow(determinism) telemetry only: measures shard wall time, never steers results; TestMetricsDoNotPerturbResults pins bit-identity
	l.inner(shard, lo, hi)
	l.shardNs[shard] = time.Since(start).Nanoseconds() //misvet:allow(determinism) telemetry only: see the paired time.Now above
}

// runPool fans fn out on the pool; with metrics enabled it times each
// shard and records the spread (slowest minus fastest) — the imbalance
// signal for the phase's partition.
//
//misvet:noalloc
func (l *columnarLoop) runPool(fn func(shard, lo, hi int)) {
	if l.metrics == nil {
		l.pool.run(fn)
		return
	}
	l.inner = fn
	l.pool.run(l.timedFn)
	lo, hi := l.shardNs[0], l.shardNs[0]
	for _, ns := range l.shardNs[1:] {
		if ns < lo {
			lo = ns
		}
		if ns > hi {
			hi = ns
		}
	}
	l.metrics.ShardSpreadNs.Observe(hi - lo)
}

// close releases the loop's worker pool, if any.
func (l *columnarLoop) close() {
	if l.pool != nil {
		l.pool.close()
	}
}

// tallyRange bumps res.Beeps for every beeper packed in beeped's words
// [lo, hi) and returns how many there were. Each node's counter lives
// in its own slot, so range-sharded tallies stay disjoint.
//
//misvet:noalloc
func (l *columnarLoop) tallyRange(lo, hi int) int {
	count := 0
	for wi := lo; wi < hi; wi++ {
		w := l.beeped[wi]
		base := wi << 6
		for w != 0 {
			l.res.Beeps[base+mathbits.TrailingZeros64(w)]++
			w &= w - 1
			count++
		}
	}
	return count
}

//misvet:noalloc
func (l *columnarLoop) beepShard(shard, lo, hi int) {
	for i := lo; i < hi; i++ {
		l.beeped[i] = 0
	}
	l.ranger.BeepRange(l.eligible, l.streams, l.beeped, lo, hi)
	if l.metrics != nil {
		start := time.Now() //misvet:allow(determinism) telemetry only: times the tally, never steers results; TestMetricsDoNotPerturbResults pins bit-identity
		l.shardBeeps[shard] = l.tallyRange(lo, hi)
		l.tallyNs[shard] = time.Since(start).Nanoseconds() //misvet:allow(determinism) telemetry only: see the paired time.Now above
		return
	}
	l.shardBeeps[shard] = l.tallyRange(lo, hi)
}

// drawBeeps zeroes the beeped mask, has the kernel draw this round's
// beeps for every node in eligible, and tallies them into res.Beeps,
// returning the round's beep count. With a pool, a range-capable
// kernel, and enough active nodes to amortise the fan-out, the draw
// and tally run sharded; per-node streams make every node's draw
// independent of every other's, so the sharded sweep is bit-identical
// to the serial one.
//
//misvet:noalloc
func (l *columnarLoop) drawBeeps(eligible graph.Bitset, active int) int {
	if l.pool != nil && l.ranger != nil && active >= drawShardMinNodes {
		l.eligible = eligible
		l.runPool(l.beepFn)
		total := 0
		for _, c := range l.shardBeeps {
			total += c
		}
		if l.metrics != nil {
			// Under fan-out, tally cost is whatever the slowest shard
			// spent tallying — the critical-path share of the phase wall.
			var maxNs int64
			for _, ns := range l.tallyNs {
				if ns > maxNs {
					maxNs = ns
				}
			}
			l.lastTallyNs = maxNs
		}
		return total
	}
	l.beeped.Zero()
	l.bulk.BeepAll(eligible, l.streams, l.beeped)
	if l.metrics != nil {
		start := time.Now() //misvet:allow(determinism) telemetry only: times the tally, never steers results; TestMetricsDoNotPerturbResults pins bit-identity
		total := l.tallyRange(0, len(l.beeped))
		l.lastTallyNs = time.Since(start).Nanoseconds() //misvet:allow(determinism) telemetry only: see the paired time.Now above
		return total
	}
	return l.tallyRange(0, len(l.beeped))
}

//misvet:noalloc
func (l *columnarLoop) exchangeShard(_, lo, hi int) {
	l.prop.ExchangeRange(l.xplan, l.xdst, l.eligible, l.xemit, lo, hi)
}

// exchange delivers one beeping exchange: dst becomes the union of the
// emitters' neighbourhoods, correct at least at the bits in eligible.
// The propagator plans the direction and whether fan-out pays; fanned
// exchanges run on the persistent pool instead of spawning goroutines.
//
//misvet:noalloc
func (l *columnarLoop) exchange(dst, eligible, emitters graph.Bitset) {
	plan := l.prop.PlanExchange(eligible, emitters, l.shards)
	if l.metrics != nil {
		if plan.Pull {
			l.metrics.PullExchanges.Inc()
		} else {
			l.metrics.PushExchanges.Inc()
		}
		if plan.Serial {
			l.metrics.SerialExchanges.Inc()
		}
	}
	if l.pool == nil || plan.Serial {
		l.prop.ExchangeRange(plan, dst, eligible, emitters, 0, len(dst))
	} else {
		l.xplan, l.xdst, l.eligible, l.xemit = plan, dst, eligible, emitters
		l.runPool(l.exchangeFn)
	}
	if l.metrics != nil {
		l.metrics.PropagateBits.Add(uint64(dst.Count()))
	}
}

//misvet:noalloc
func (l *columnarLoop) observeShard(_, lo, hi int) {
	l.ranger.ObserveRange(l.observeMask, l.beeped, l.heard, lo, hi)
}

// observe delivers the step's outcome to every node in mask, sharded
// under the same conditions as drawBeeps.
//
//misvet:noalloc
func (l *columnarLoop) observe(mask graph.Bitset, active int) {
	if l.pool != nil && l.ranger != nil && active >= drawShardMinNodes {
		l.observeMask = mask
		l.runPool(l.observeFn)
		return
	}
	l.bulk.ObserveAll(mask, l.beeped, l.heard)
}

// runColumnar executes the round loop entirely on packed words: node
// lifecycle masks are bitsets, beeps are drawn by the algorithm's bulk
// kernel over struct-of-arrays state, joins are one AndNot
// (beeped &^ heard), and both exchanges are sharded destination-range
// OR passes over prop's adjacency representation — the packed matrix
// for EngineColumnar, the CSR edge arrays for EngineSparse (which also
// substitutes the per-node adapter kernel when the algorithm has no
// columnar one). Per round it does O(n/64) word operations plus one
// rng draw per eligible node, against the per-node engines' five O(n)
// scans and n interface calls — and it is bit-identical to them: the
// kernel draws from the same per-node streams in node order, and every
// mask update mirrors a scalar-loop transition.
//
// All shardable phases (draws, tallies, exchanges, observes) run on
// one persistent worker pool created at setup, and every buffer the
// loop touches is allocated before round 1 — the steady-state round
// path performs no heap allocations at any shard count (enforced by
// TestColumnarRoundAllocations).
func runColumnar(g topology, master *rng.Source, opts Options, maxRounds int, prop bulkPropagator, bulkFactory beep.BulkFactory, plan *faultPlan) (*Result, error) {
	n := g.N()
	degrees := make([]int, n)
	// Per-node streams live in one contiguous backing array: at 10⁶
	// nodes, a million separate Stream allocations are measurable in
	// both time and GC pressure.
	streamStore := make([]rng.Source, n)
	streams := make([]*rng.Source, n)
	for v := 0; v < n; v++ {
		degrees[v] = g.Degree(v)
		master.StreamInto(&streamStore[v], uint64(v))
		streams[v] = &streamStore[v]
	}
	bulk := bulkFactory(beep.NetworkInfo{N: n, Degrees: degrees, MaxDegree: g.MaxDegree()})
	var resetter beep.BulkResetter
	if plan != nil && plan.hasResets {
		var ok bool
		if resetter, ok = bulk.(beep.BulkResetter); !ok {
			// Every in-tree kernel (and the per-node adapter) implements
			// BulkResetter; a third-party kernel that does not cannot run
			// reset recoveries bit-identically, so refuse rather than
			// silently diverge from the scalar engines.
			return nil, fmt.Errorf("sim: fault spec schedules reset outages but the bulk kernel (%T) does not implement beep.BulkResetter (use a per-node engine)", bulk)
		}
	}
	shards := EffectiveShards(opts.Shards)

	res := &Result{
		InMIS:  make([]bool, n),
		States: make([]beep.State, n),
		Beeps:  make([]int, n),
	}
	active := n

	// Lifecycle masks. A node is dominated iff it is in none of these
	// three, so no fourth mask is kept.
	activeB := graph.NewBitset(n)
	activeB.Fill(n)
	inMIS := graph.NewBitset(n)
	crashed := graph.NewBitset(n)

	// Per-round masks and scratch.
	beeped := graph.NewBitset(n)
	heard := graph.NewBitset(n)
	joined := graph.NewBitset(n)
	neighborJoined := graph.NewBitset(n)
	emit := graph.NewBitset(n)    // emitter/announcer union under wake-up
	observe := graph.NewBitset(n) // nodes still active after the step
	newDom := graph.NewBitset(n)  // nodes dominated this step
	hasNeighbors := graph.NewBitset(n)
	for v := 0; v < n; v++ {
		if degrees[v] > 0 {
			hasNeighbors.Set(v)
		}
	}

	metrics := opts.Metrics
	loop := newColumnarLoop(prop, bulk, streams, res, beeped, heard, shards, metrics)
	defer loop.close()
	clock := phaseClock{m: metrics}

	// Wake-up schedule: awake accumulates as rounds pass; wakeAt[r]
	// lists the nodes waking at round r.
	wake := opts.WakeAt
	var awake, eligibleScratch graph.Bitset
	var wakeAt map[int][]int
	if wake != nil {
		awake = graph.NewBitset(n)
		wakeAt = make(map[int][]int)
		for v, r := range wake {
			if r <= 1 {
				awake.Set(v)
			} else {
				wakeAt[r] = append(wakeAt[r], v)
			}
		}
	}
	// Transient-outage overlay: a down node neither beeps, hears, nor
	// observes, whatever its lifecycle state. Persistent MIS behaviour
	// (keep-alive beeps and re-announcements) applies under wake-up or
	// outages — exactly as in the scalar loop.
	var downB graph.Bitset
	if plan.outages() {
		downB = graph.NewBitset(n)
	}
	usePersist := wake != nil || downB != nil
	if wake != nil || downB != nil {
		eligibleScratch = graph.NewBitset(n)
	}
	// MIS-delta scratch for the OnMISDelta hook (and reset bookkeeping).
	var joinedDelta, leftDelta []int

	// Snapshot buffers, materialised only when a hook is installed.
	var snapStates []beep.State
	var snapBeeped []bool
	var probs []float64

	for round := 1; (active > 0 || plan.keepAlive(round)) && round <= maxRounds; round++ {
		res.Rounds = round
		clock.start()
		prevPersist := res.PersistentBeeps
		// Crashes take effect before the exchange.
		for _, v := range opts.CrashAtRound[round] {
			if activeB.Test(v) {
				activeB.Clear(v)
				crashed.Set(v)
				active--
			}
		}
		// Outage recoveries, then fresh downs — mirroring the scalar
		// loop's order exactly (see its comments for the semantics).
		leftDelta = leftDelta[:0]
		if plan.outages() {
			for _, v := range plan.resumeAt[round] {
				downB.Clear(v)
			}
			resets := plan.resetAt[round]
			for _, v := range resets {
				downB.Clear(v)
				if inMIS.Test(v) {
					inMIS.Clear(v)
					leftDelta = append(leftDelta, v)
				}
				// A reset node re-enters the competition from scratch;
				// crashed is impossible here (crash/outage overlap is
				// rejected up front), so any non-active node was in the
				// MIS or dominated and becomes active again.
				if !activeB.Test(v) {
					activeB.Set(v)
					active++
				}
			}
			if len(resets) > 0 {
				resetter.ResetNodes(resets)
			}
			for _, v := range plan.startAt[round] {
				downB.Set(v)
			}
		}
		clock.mark(obs.PhaseFaults)
		// First exchange: the kernel draws beeps for every eligible
		// (active, awake, and up) node from that node's stream.
		eligible := activeB
		if wake != nil || downB != nil {
			if wake != nil {
				for _, v := range wakeAt[round] {
					awake.Set(v)
				}
			}
			copy(eligibleScratch, activeB)
			if wake != nil {
				eligibleScratch.And(awake)
			}
			if downB != nil {
				eligibleScratch.AndNot(downB)
			}
			eligible = eligibleScratch
		}
		beepCount := loop.drawBeeps(eligible, active)
		res.TotalBeeps += beepCount
		// The columnar loop times the tally separately inside drawBeeps;
		// pull its critical-path share out of the draw wall time.
		clock.mark(obs.PhaseEligibleDraw)
		clock.move(obs.PhaseEligibleDraw, obs.PhaseBeepTally, loop.lastTallyNs)
		// With wake-up scheduling or outages, established MIS members
		// keep beeping so late arrivals can never perceive silence next
		// to them — except while themselves down (down nodes never beep,
		// so masking them out of the union touches only MIS members).
		emitters := beeped
		if usePersist {
			pcount := inMIS.Count()
			if downB != nil {
				pcount -= inMIS.AndCount(downB)
			}
			res.PersistentBeeps += pcount
			copy(emit, beeped)
			emit.Or(inMIS)
			if downB != nil {
				emit.AndNot(downB)
			}
			emitters = emit
		}
		if metrics != nil {
			metrics.Frontier.Observe(int64(beepCount + res.PersistentBeeps - prevPersist))
		}
		loop.exchange(heard, eligible, emitters)
		clock.mark(obs.PhasePropagate)
		// Channel noise: each eligible listener's heard bit passes
		// through the lossy/spurious channel, drawn from that
		// (node, round)'s own stream — identical on every engine. The
		// noise phase stays serial: Channel.Apply reuses one scratch
		// stream across nodes.
		if plan != nil && plan.channel != nil {
			plan.channel.Apply(master, round, eligible, heard)
			clock.mark(obs.PhaseFaults)
		}
		// Join rule: beeped into silence — one word operation.
		copy(joined, beeped)
		joined.AndNot(heard)
		res.JoinAnnouncements += joined.AndCount(hasNeighbors)
		// Second exchange: join announcements (reliable); persistent
		// MIS members re-announce so nodes arriving later get dominated.
		announcers := joined
		if usePersist {
			copy(emit, joined)
			emit.Or(inMIS)
			if downB != nil {
				emit.AndNot(downB)
			}
			announcers = emit
		}
		loop.exchange(neighborJoined, eligible, announcers)
		clock.mark(obs.PhaseJoin)
		// State transitions: joiners enter the MIS, eligible nodes that
		// heard an announcement become dominated, the rest observe the
		// step. Masks are fixed before activeB mutates (eligible may
		// alias it).
		copy(observe, eligible)
		observe.AndNot(joined)
		observe.AndNot(neighborJoined)
		copy(newDom, eligible)
		newDom.And(neighborJoined)
		newDom.AndNot(joined)
		active -= joined.Count() + newDom.Count()
		activeB.AndNot(joined)
		activeB.AndNot(newDom)
		inMIS.Or(joined)
		loop.observe(observe, active)
		clock.mark(obs.PhaseObserve)
		clock.flush()
		if opts.OnMISDelta != nil {
			joinedDelta = joinedDelta[:0]
			joined.ForEach(func(v int) { joinedDelta = append(joinedDelta, v) })
			if len(joinedDelta) > 0 || len(leftDelta) > 0 {
				opts.OnMISDelta(round, joinedDelta, leftDelta)
			}
		}
		if opts.OnRound != nil {
			if snapStates == nil {
				snapStates = make([]beep.State, n)
				snapBeeped = make([]bool, n)
				probs = make([]float64, n)
			}
			materializeStates(snapStates, activeB, inMIS, crashed)
			for v := range snapBeeped {
				snapBeeped[v] = beeped.Test(v)
			}
			if pr, ok := bulk.(beep.BulkProbabilityReporter); ok {
				pr.BeepProbabilities(probs)
			} else {
				for v := range probs {
					probs[v] = math.NaN()
				}
			}
			for v := range probs {
				if snapStates[v] != beep.StateActive {
					probs[v] = 0
				}
			}
			opts.OnRound(Snapshot{Round: round, States: snapStates, Beeped: snapBeeped, Probabilities: probs, Active: active})
		}
	}

	materializeStates(res.States, activeB, inMIS, crashed)
	inMIS.ForEach(func(v int) { res.InMIS[v] = true })
	res.Terminated = active == 0
	if metrics != nil {
		metrics.Runs.Inc()
	}
	if !res.Terminated {
		return res, fmt.Errorf("%w: %d nodes still active after %d rounds", ErrTooManyRounds, active, maxRounds)
	}
	return res, nil
}

// materializeStates expands the three lifecycle masks into the per-node
// state view the Result and Snapshot types expose.
func materializeStates(dst []beep.State, activeB, inMIS, crashed graph.Bitset) {
	for v := range dst {
		switch {
		case activeB.Test(v):
			dst[v] = beep.StateActive
		case inMIS.Test(v):
			dst[v] = beep.StateInMIS
		case crashed.Test(v):
			dst[v] = beep.StateCrashed
		default:
			dst[v] = beep.StateDominated
		}
	}
}
