package sim

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"runtime"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// runColumnar executes the round loop entirely on packed words: node
// lifecycle masks are bitsets, beeps are drawn by the algorithm's bulk
// kernel over struct-of-arrays state, joins are one AndNot
// (beeped &^ heard), and both exchanges are sharded destination-range
// OR passes over prop's adjacency representation — the packed matrix
// for EngineColumnar, the CSR edge arrays for EngineSparse (which also
// substitutes the per-node adapter kernel when the algorithm has no
// columnar one). Per round it does O(n/64) word operations plus one
// rng draw per eligible node, against the per-node engines' five O(n)
// scans and n interface calls — and it is bit-identical to them: the
// kernel draws from the same per-node streams in node order, and every
// mask update mirrors a scalar-loop transition.
func runColumnar(g *graph.Graph, master *rng.Source, opts Options, maxRounds int, prop bulkPropagator, bulkFactory beep.BulkFactory) (*Result, error) {
	n := g.N()
	degrees := make([]int, n)
	// Per-node streams live in one contiguous backing array: at 10⁶
	// nodes, a million separate Stream allocations are measurable in
	// both time and GC pressure.
	streamStore := make([]rng.Source, n)
	streams := make([]*rng.Source, n)
	for v := 0; v < n; v++ {
		degrees[v] = g.Degree(v)
		master.StreamInto(&streamStore[v], uint64(v))
		streams[v] = &streamStore[v]
	}
	bulk := bulkFactory(beep.NetworkInfo{N: n, Degrees: degrees, MaxDegree: g.MaxDegree()})
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}

	res := &Result{
		InMIS:  make([]bool, n),
		States: make([]beep.State, n),
		Beeps:  make([]int, n),
	}
	active := n

	// Lifecycle masks. A node is dominated iff it is in none of these
	// three, so no fourth mask is kept.
	activeB := graph.NewBitset(n)
	activeB.Fill(n)
	inMIS := graph.NewBitset(n)
	crashed := graph.NewBitset(n)

	// Per-round masks and scratch.
	beeped := graph.NewBitset(n)
	heard := graph.NewBitset(n)
	joined := graph.NewBitset(n)
	neighborJoined := graph.NewBitset(n)
	emit := graph.NewBitset(n)    // emitter/announcer union under wake-up
	observe := graph.NewBitset(n) // nodes still active after the step
	newDom := graph.NewBitset(n)  // nodes dominated this step
	hasNeighbors := graph.NewBitset(n)
	for v := 0; v < n; v++ {
		if degrees[v] > 0 {
			hasNeighbors.Set(v)
		}
	}

	// Wake-up schedule: awake accumulates as rounds pass; wakeAt[r]
	// lists the nodes waking at round r.
	wake := opts.WakeAt
	var awake, eligibleScratch graph.Bitset
	var wakeAt map[int][]int
	if wake != nil {
		awake = graph.NewBitset(n)
		eligibleScratch = graph.NewBitset(n)
		wakeAt = make(map[int][]int)
		for v, r := range wake {
			if r <= 1 {
				awake.Set(v)
			} else {
				wakeAt[r] = append(wakeAt[r], v)
			}
		}
	}

	// Snapshot buffers, materialised only when a hook is installed.
	var snapStates []beep.State
	var snapBeeped []bool
	var probs []float64

	for round := 1; active > 0 && round <= maxRounds; round++ {
		res.Rounds = round
		// Crashes take effect before the exchange.
		for _, v := range opts.CrashAtRound[round] {
			if activeB.Test(v) {
				activeB.Clear(v)
				crashed.Set(v)
				active--
			}
		}
		// First exchange: the kernel draws beeps for every eligible
		// (active and awake) node from that node's stream.
		eligible := activeB
		if wake != nil {
			for _, v := range wakeAt[round] {
				awake.Set(v)
			}
			copy(eligibleScratch, activeB)
			eligibleScratch.And(awake)
			eligible = eligibleScratch
		}
		beeped.Zero()
		bulk.BeepAll(eligible, streams, beeped)
		beepCount := 0
		for wi, w := range beeped {
			base := wi << 6
			for w != 0 {
				res.Beeps[base+mathbits.TrailingZeros64(w)]++
				w &= w - 1
				beepCount++
			}
		}
		res.TotalBeeps += beepCount
		// With wake-up scheduling, established MIS members keep beeping
		// so late wakers can never perceive silence next to them.
		emitters := beeped
		if wake != nil {
			res.PersistentBeeps += inMIS.Count()
			copy(emit, beeped)
			emit.Or(inMIS)
			emitters = emit
		}
		prop.PropagateToTargets(heard, eligible, emitters, shards)
		// Join rule: beeped into silence — one word operation.
		copy(joined, beeped)
		joined.AndNot(heard)
		res.JoinAnnouncements += joined.AndCount(hasNeighbors)
		// Second exchange: join announcements (reliable); persistent
		// MIS members re-announce so nodes waking later get dominated.
		announcers := joined
		if wake != nil {
			copy(emit, joined)
			emit.Or(inMIS)
			announcers = emit
		}
		prop.PropagateToTargets(neighborJoined, eligible, announcers, shards)
		// State transitions: joiners enter the MIS, eligible nodes that
		// heard an announcement become dominated, the rest observe the
		// step. Masks are fixed before activeB mutates (eligible may
		// alias it).
		copy(observe, eligible)
		observe.AndNot(joined)
		observe.AndNot(neighborJoined)
		copy(newDom, eligible)
		newDom.And(neighborJoined)
		newDom.AndNot(joined)
		active -= joined.Count() + newDom.Count()
		activeB.AndNot(joined)
		activeB.AndNot(newDom)
		inMIS.Or(joined)
		bulk.ObserveAll(observe, beeped, heard)
		if opts.OnRound != nil {
			if snapStates == nil {
				snapStates = make([]beep.State, n)
				snapBeeped = make([]bool, n)
				probs = make([]float64, n)
			}
			materializeStates(snapStates, activeB, inMIS, crashed)
			for v := range snapBeeped {
				snapBeeped[v] = beeped.Test(v)
			}
			if pr, ok := bulk.(beep.BulkProbabilityReporter); ok {
				pr.BeepProbabilities(probs)
			} else {
				for v := range probs {
					probs[v] = math.NaN()
				}
			}
			for v := range probs {
				if snapStates[v] != beep.StateActive {
					probs[v] = 0
				}
			}
			opts.OnRound(Snapshot{Round: round, States: snapStates, Beeped: snapBeeped, Probabilities: probs, Active: active})
		}
	}

	materializeStates(res.States, activeB, inMIS, crashed)
	inMIS.ForEach(func(v int) { res.InMIS[v] = true })
	res.Terminated = active == 0
	if !res.Terminated {
		return res, fmt.Errorf("%w: %d nodes still active after %d rounds", ErrTooManyRounds, active, maxRounds)
	}
	return res, nil
}

// materializeStates expands the three lifecycle masks into the per-node
// state view the Result and Snapshot types expose.
func materializeStates(dst []beep.State, activeB, inMIS, crashed graph.Bitset) {
	for v := range dst {
		switch {
		case activeB.Test(v):
			dst[v] = beep.StateActive
		case inMIS.Test(v):
			dst[v] = beep.StateInMIS
		case crashed.Test(v):
			dst[v] = beep.StateCrashed
		default:
			dst[v] = beep.StateDominated
		}
	}
}
