package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

func feedbackFactory(t testing.TB) beep.Factory {
	t.Helper()
	f, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunFeedbackProducesMIS(t *testing.T) {
	src := rng.New(1)
	graphs := map[string]*graph.Graph{
		"gnp-half":   graph.GNP(150, 0.5, src),
		"gnp-sparse": graph.GNP(300, 0.01, src),
		"complete":   graph.Complete(60),
		"grid":       graph.Grid(10, 12),
		"torus":      graph.Torus(8, 8),
		"path":       graph.Path(40),
		"star":       graph.Star(50),
		"cliques":    graph.CliqueFamily(1000),
		"tree":       graph.RandomTree(120, src),
		"empty":      graph.Empty(20),
		"zero":       graph.Empty(0),
	}
	for name, g := range graphs {
		res, err := Run(g, feedbackFactory(t), rng.New(42), Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Terminated {
			t.Fatalf("%s: did not terminate", name)
		}
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunAllBeepingAlgorithmsProduceMIS(t *testing.T) {
	// The fixed-probability strawman with p = 1/2 does not terminate on
	// dense graphs (that inability is the whole point of adaptive
	// schedules), so it is exercised on a bounded-degree grid instead.
	src := rng.New(2)
	dense := graph.GNP(120, 0.5, src)
	grid := graph.Grid(12, 12)
	for _, name := range mis.Names() {
		f, err := mis.NewFactory(mis.Spec{Name: name})
		if err != nil {
			t.Fatal(err)
		}
		g := dense
		if name == mis.NameFixed {
			g = grid
		}
		res, err := Run(g, f, rng.New(7), Options{MaxRounds: 200000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	g := graph.GNP(100, 0.5, rng.New(3))
	a, err := Run(g, feedbackFactory(t), rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, feedbackFactory(t), rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TotalBeeps != b.TotalBeeps {
		t.Fatalf("same seed diverged: rounds %d/%d beeps %d/%d", a.Rounds, b.Rounds, a.TotalBeeps, b.TotalBeeps)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] || a.Beeps[v] != b.Beeps[v] {
			t.Fatalf("node %d differs across identical runs", v)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	g := graph.GNP(100, 0.5, rng.New(4))
	a, err := Run(g, feedbackFactory(t), rng.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, feedbackFactory(t), rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			same = false
			break
		}
	}
	if same && a.Rounds == b.Rounds && a.TotalBeeps == b.TotalBeeps {
		t.Fatal("different seeds produced identical executions — suspicious")
	}
}

func TestRunStatesConsistent(t *testing.T) {
	g := graph.GNP(80, 0.3, rng.New(6))
	res, err := Run(g, feedbackFactory(t), rng.New(9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, st := range res.States {
		switch st {
		case beep.StateInMIS:
			if !res.InMIS[v] {
				t.Fatalf("node %d InMIS state but not in set", v)
			}
		case beep.StateDominated:
			if res.InMIS[v] {
				t.Fatalf("node %d dominated but in set", v)
			}
		default:
			t.Fatalf("node %d final state %v", v, st)
		}
	}
}

func TestRunSingleNodeJoinsAlone(t *testing.T) {
	res, err := Run(graph.Empty(1), feedbackFactory(t), rng.New(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InMIS[0] {
		t.Fatal("lone node must join the MIS")
	}
	if res.Beeps[0] < 1 {
		t.Fatal("joining requires at least one beep")
	}
	if res.JoinAnnouncements != 0 {
		t.Fatal("degree-0 node should not announce")
	}
}

func TestRunMaxRoundsError(t *testing.T) {
	// On K_40 with a fixed p = 1/2 schedule, a unique beeper occurs with
	// probability 40/2^40 per round: effectively never within 200
	// rounds, so the cap must trigger.
	f, err := mis.NewFixedProb(0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(graph.Complete(40), f, rng.New(11), Options{MaxRounds: 200})
	if !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("err = %v, want ErrTooManyRounds", err)
	}
	if res == nil || res.Terminated {
		t.Fatal("partial result expected with Terminated=false")
	}
	if res.Rounds != 200 {
		t.Fatalf("rounds = %d, want 200", res.Rounds)
	}
}

func TestRunBeepLossValidation(t *testing.T) {
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := Run(graph.Empty(1), feedbackFactory(t), rng.New(1), Options{BeepLoss: bad}); err == nil {
			t.Fatalf("BeepLoss %v accepted", bad)
		}
	}
}

func TestRunBeepLossStillTerminates(t *testing.T) {
	g := graph.GNP(100, 0.5, rng.New(12))
	res, err := Run(g, feedbackFactory(t), rng.New(13), Options{BeepLoss: 0.2, MaxRounds: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("lossy run did not terminate")
	}
	// Loss can break independence but never maximality-by-domination
	// bookkeeping; every node must still end in a terminal state.
	for v, st := range res.States {
		if !st.Terminal() {
			t.Fatalf("node %d non-terminal under loss", v)
		}
	}
}

func TestRunBeepLossPreservesNodeStreams(t *testing.T) {
	// The fault stream is separate from node streams, so a loss-free run
	// and the loss parameter being plumbed differently must not change
	// the zero-loss execution.
	g := graph.GNP(60, 0.4, rng.New(14))
	a, err := Run(g, feedbackFactory(t), rng.New(15), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, feedbackFactory(t), rng.New(15), Options{BeepLoss: 0})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.TotalBeeps != b.TotalBeeps {
		t.Fatal("zero BeepLoss changed the execution")
	}
}

func TestRunCrashInjection(t *testing.T) {
	g := graph.Star(20)
	// Crash the hub immediately: the leaves become mutually independent
	// and must all join.
	res, err := Run(g, feedbackFactory(t), rng.New(16), Options{
		CrashAtRound: map[int][]int{1: {0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.States[0] != beep.StateCrashed {
		t.Fatalf("hub state %v, want crashed", res.States[0])
	}
	for v := 1; v < 20; v++ {
		if !res.InMIS[v] {
			t.Fatalf("leaf %d should join after hub crash", v)
		}
	}
}

// TestRunCrashScheduleValidation pins the up-front rejection of
// malformed crash schedules. These used to be skipped silently, which
// made fault-injection typos indistinguishable from robustness.
func TestRunCrashScheduleValidation(t *testing.T) {
	// Every message names the offending node id and round — the range
	// case always did; the round-validity and duplicate cases used to
	// leave out the node, making the typo hunt start from scratch.
	for _, tc := range []struct {
		name    string
		crashes map[int][]int
		wantErr []string // every substring must appear
	}{
		{"negative-node", map[int][]int{1: {-5}}, []string{"outside [0, 2)", "node -5", "[1]"}},
		{"node-too-large", map[int][]int{1: {99}}, []string{"outside [0, 2)", "node 99", "[1]"}},
		{"round-zero", map[int][]int{0: {1}}, []string{"1-based", "round 0", "node 1"}},
		{"round-negative", map[int][]int{-3: {0}}, []string{"1-based", "round -3", "node 0"}},
		{"double-crash-same-round", map[int][]int{1: {0, 0}}, []string{"node 0", "twice", "CrashAtRound[1]"}},
		{"double-crash-across-rounds", map[int][]int{1: {0}, 3: {0}}, []string{"node 0", "crash twice", "rounds 1 and 3"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(graph.Empty(2), feedbackFactory(t), rng.New(17), Options{
				CrashAtRound: tc.crashes,
			})
			if err == nil {
				t.Fatalf("schedule %v accepted", tc.crashes)
			}
			for _, want := range tc.wantErr {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("got err %q, want it to contain %q", err, want)
				}
			}
		})
	}
	// The first reported problem is deterministic: rounds are visited
	// ascending, so the round-2 typo wins over the round-7 one.
	for i := 0; i < 5; i++ {
		err := ValidateCrashes(10, map[int][]int{7: {-1}, 2: {55}})
		if err == nil || !strings.Contains(err.Error(), "CrashAtRound[2]") {
			t.Fatalf("iteration %d: first error not from the lowest round: %v", i, err)
		}
	}
	// A valid schedule — including a node that terminates before its
	// crash round, which is a legitimate no-op — still runs.
	res, err := Run(graph.Empty(2), feedbackFactory(t), rng.New(17), Options{
		CrashAtRound: map[int][]int{1: {0}, 500: {1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("run did not terminate")
	}
}

func TestRunTraceHook(t *testing.T) {
	g := graph.GNP(40, 0.5, rng.New(18))
	rounds := 0
	lastActive := -1
	res, err := Run(g, feedbackFactory(t), rng.New(19), Options{
		OnRound: func(s Snapshot) {
			rounds++
			if s.Round != rounds {
				t.Fatalf("round numbering: got %d, want %d", s.Round, rounds)
			}
			if len(s.States) != g.N() || len(s.Beeped) != g.N() {
				t.Fatal("snapshot slice lengths wrong")
			}
			lastActive = s.Active
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds {
		t.Fatalf("hook called %d times, rounds = %d", rounds, res.Rounds)
	}
	if lastActive != 0 {
		t.Fatalf("final snapshot active = %d, want 0", lastActive)
	}
}

func TestRunBeepAccounting(t *testing.T) {
	g := graph.GNP(50, 0.5, rng.New(20))
	res, err := Run(g, feedbackFactory(t), rng.New(21), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range res.Beeps {
		sum += b
	}
	if sum != res.TotalBeeps {
		t.Fatalf("TotalBeeps %d != sum %d", res.TotalBeeps, sum)
	}
	if got := res.MeanBeepsPerNode(); got != float64(sum)/50 {
		t.Fatalf("MeanBeepsPerNode = %v", got)
	}
	// Every MIS member beeped at least once (the joining beep).
	for v, in := range res.InMIS {
		if in && res.Beeps[v] == 0 {
			t.Fatalf("MIS node %d never beeped", v)
		}
	}
}

func TestRunPropertyRandomGraphsAllAlgorithms(t *testing.T) {
	src := rng.New(22)
	f := func(nSeed, pSeed, algoPick, seed uint8) bool {
		n := int(nSeed%60) + 1
		p := float64(pSeed%10) / 10
		g := graph.GNP(n, p, src)
		// The fixed schedule legitimately stalls on dense graphs; the
		// property covers the three adaptive/swept schedules.
		names := []string{mis.NameFeedback, mis.NameGlobalSweep, mis.NameAfek}
		factory, err := mis.NewFactory(mis.Spec{Name: names[int(algoPick)%len(names)]})
		if err != nil {
			return false
		}
		res, err := Run(g, factory, rng.New(uint64(seed)), Options{MaxRounds: 500000})
		if err != nil {
			return false
		}
		return graph.VerifyMIS(g, res.InMIS) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanBeepsEmptyResult(t *testing.T) {
	var r Result
	if r.MeanBeepsPerNode() != 0 {
		t.Fatal("empty result mean beeps should be 0")
	}
}
