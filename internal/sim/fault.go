package sim

import (
	"sort"

	"beepmis/internal/fault"
)

// faultPlan is a validated fault.Spec precompiled for the round loop:
// the channel-noise applier plus the outage schedule inverted into
// per-round node lists, so each round's fault processing costs only the
// nodes actually transitioning. Node lists are sorted ascending, so
// both engines process recoveries and downs in the same deterministic
// order. A nil *faultPlan means the run needs no per-round fault work
// (a wake-only spec resolves into Options.WakeAt before the loop and
// needs no plan).
type faultPlan struct {
	// channel applies per-listener loss/spurious noise; nil when the
	// spec carries none.
	channel *fault.Channel
	// startAt lists the nodes going down at each round.
	startAt map[int][]int
	// resumeAt / resetAt list the nodes recovering at each round with
	// resume and reset semantics respectively.
	resumeAt, resetAt map[int][]int
	// hasResets reports whether resetAt is non-empty anywhere — the one
	// feature a columnar bulk kernel must support (beep.BulkResetter).
	hasResets bool
	// lastReset is the latest round any reset recovery fires (0 when
	// none). A reset revives its node whatever state it is in, so the
	// round loop must not declare termination while one is pending —
	// otherwise an outage scheduled past early convergence would be
	// silently dropped, and a declared perturbation that never happens
	// looks exactly like robustness.
	lastReset int
}

// outages reports whether the plan carries any downtime schedule.
func (p *faultPlan) outages() bool { return p != nil && p.startAt != nil }

// keepAlive reports whether the round loop must keep running at the
// given round even with no active nodes: a pending reset recovery will
// revive its node, so convergence before it is provisional. (Resume
// recoveries need no such handling — a down *active* node already
// holds the active count above zero, and resuming a terminal node
// changes nothing.)
func (p *faultPlan) keepAlive(round int) bool { return p != nil && round <= p.lastReset }

// newFaultPlan compiles a validated spec. It returns nil when the spec
// needs no per-round processing.
func newFaultPlan(fs *fault.Spec) *faultPlan {
	if fs == nil || (!fs.Channelled() && len(fs.Outages) == 0) {
		return nil
	}
	p := &faultPlan{channel: fault.NewChannel(fs)}
	if len(fs.Outages) == 0 {
		return p
	}
	p.startAt = make(map[int][]int)
	p.resumeAt = make(map[int][]int)
	p.resetAt = make(map[int][]int)
	for _, o := range fs.Outages {
		p.startAt[o.From] = append(p.startAt[o.From], o.Node)
		end := o.From + o.For
		if o.Reset {
			p.resetAt[end] = append(p.resetAt[end], o.Node)
			p.hasResets = true
			if end > p.lastReset {
				p.lastReset = end
			}
		} else {
			p.resumeAt[end] = append(p.resumeAt[end], o.Node)
		}
	}
	for _, m := range []map[int][]int{p.startAt, p.resumeAt, p.resetAt} {
		//misvet:allow(determinism) each value slice is sorted in place; no state flows between iterations, so visit order is unobservable
		for _, nodes := range m {
			sort.Ints(nodes)
		}
	}
	return p
}
