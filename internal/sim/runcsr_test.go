package sim

import (
	"fmt"
	"testing"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// TestRunCSREquivalence is RunCSR's contract test: for every engine and
// shard count, RunCSR(c, …) must be bit-identical to Run over the
// adjacency view of the same CSR — the sparse path runs the CSR
// directly, the rest delegate, and neither may change a single field.
func TestRunCSREquivalence(t *testing.T) {
	c, err := graph.RMATCSR(128, 1200, 0.57, 0.19, 0.19, 0.05, rng.New(31), 0)
	if err != nil {
		t.Fatal(err)
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 5
	for _, tc := range []struct {
		engine Engine
		shards []int
		bulk   bool
	}{
		{EngineScalar, []int{0}, false},
		{EngineBitset, []int{0}, false},
		{EngineSparse, []int{1, 3, 0}, false}, // per-node adapter path
		{EngineColumnar, []int{1, 3, 0}, true},
		{EngineSparse, []int{1, 3, 0}, true},
		{EngineAuto, []int{0}, true},
	} {
		for _, shards := range tc.shards {
			name := fmt.Sprintf("%v/shards=%d/bulk=%v", tc.engine, shards, tc.bulk)
			t.Run(name, func(t *testing.T) {
				opts := Options{Engine: tc.engine, Shards: shards}
				if tc.bulk {
					opts.Bulk = bulk
				}
				want, err := Run(graph.FromCSR(c), factory, rng.New(seed), opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunCSR(c, factory, rng.New(seed), opts)
				if err != nil {
					t.Fatal(err)
				}
				assertIdenticalNamed(t, want, got, "Run(FromCSR)", "RunCSR")
				if err := graph.VerifyMIS(graph.FromCSR(c), got.InMIS); err != nil {
					t.Fatalf("RunCSR result is not a maximal independent set: %v", err)
				}
			})
		}
	}
}

// TestRunCSRFaults: the fault layer (noise, adversarial wake, outages)
// must compose with the direct-CSR sparse path, still bit-identical to
// the Graph route — this is where fault.Topology earns its keep.
func TestRunCSRFaults(t *testing.T) {
	c, err := graph.ConfigModelCSR(150, 900, 2.5, rng.New(33), 0)
	if err != nil {
		t.Fatal(err)
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	fs := &fault.Spec{
		Loss:     0.02,
		Spurious: 0.01,
		Wake:     &fault.Wake{Kind: fault.WakeDegree, Window: 6},
	}
	opts := Options{Engine: EngineSparse, Shards: 2, Bulk: bulk, Faults: fs}
	want, err := Run(graph.FromCSR(c), factory, rng.New(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCSR(c, factory, rng.New(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalNamed(t, want, got, "Run(FromCSR)", "RunCSR")
}

// TestRunCSRValidation: RunCSR rejects the same invalid options Run
// does, before touching the round loop.
func TestRunCSRValidation(t *testing.T) {
	c := graph.NewCSR(graph.Path(4))
	factory, _, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{BeepLoss: -0.1},
		{BeepLoss: 1},
		{Shards: -1},
		{MemoryBudget: -1},
		{Engine: EngineSparse, BeepLoss: 0.5},
		{WakeAt: []int{1, 1}}, // wrong length for n=4
		{CrashAtRound: map[int][]int{1: {99}}},
	}
	for i, opts := range bad {
		if _, err := RunCSR(c, factory, rng.New(1), opts); err == nil {
			t.Errorf("case %d: invalid options %+v did not error", i, opts)
		}
	}
}
