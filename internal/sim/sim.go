// Package sim executes beeping-model algorithms on a graph in a fast,
// deterministic, synchronous simulator. It implements exactly the
// two-exchange time step of the paper (Table 1): first exchange — nodes
// beep with their current probability and everyone learns whether a
// neighbour beeped; second exchange — a node that beeped into silence
// joins the MIS and announces it, and the announcement deactivates its
// neighbours.
//
// The simulator additionally supports fault injection (independent beep
// loss on the first exchange, node crashes at chosen rounds) and a
// per-round trace hook, used by the robustness experiments and the
// visualising examples.
//
// Three interchangeable engines execute the time step: a scalar engine
// that walks adjacency lists edge-by-edge, a word-parallel bitset
// engine that ORs packed adjacency rows (64 listeners per machine
// operation) under the per-node round loop, and a columnar engine that
// additionally runs the algorithm itself as a bulk kernel over packed
// per-node state and shards propagation across cores. Options.Engine
// selects one; EngineAuto (the default) picks by graph density, size,
// and kernel availability. Engines are bit-identical in their results —
// only the wall clock differs.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"beepmis/internal/beep"
	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
)

// DefaultMaxRounds bounds a run when Options.MaxRounds is zero. It is far
// above the O(log n) expectation for any graph this simulator can hold in
// memory, so hitting it indicates a genuinely non-terminating schedule
// (e.g. a badly tuned fixed-probability strawman).
const DefaultMaxRounds = 1 << 20

// faultStreamID is the rng stream used for fault injection. Node streams
// use ids [0, n); this id is far outside any representable node index, so
// enabling faults never perturbs node randomness.
const faultStreamID = uint64(1) << 40

// ErrTooManyRounds is wrapped in the error returned by Run when the round
// limit is reached before every node terminates.
var ErrTooManyRounds = errors.New("sim: round limit reached before termination")

// Snapshot is the per-round view passed to the trace hook. The slices are
// owned by the simulator and reused between rounds; a hook that wants to
// retain them must copy.
type Snapshot struct {
	// Round is the 1-based index of the time step that just completed.
	Round int
	// States holds each node's state after the step.
	States []beep.State
	// Beeped reports which nodes beeped in the step's first exchange.
	Beeped []bool
	// Probabilities holds each node's beep probability going into the
	// *next* step, when the automaton reports it (NaN otherwise, and 0
	// for terminal nodes). Only populated when a hook is installed.
	Probabilities []float64
	// Active is the number of nodes still active after the step.
	Active int
}

// Options configures a simulation run. The zero value runs the pure
// paper model: no faults, no trace, DefaultMaxRounds.
type Options struct {
	// MaxRounds caps the number of time steps; 0 means DefaultMaxRounds.
	MaxRounds int
	// Engine selects the exchange implementation (see Engine). The
	// default, EngineAuto, picks the fastest applicable engine on
	// graphs dense enough for word-parallel delivery to win. Results
	// are identical for every engine on a given seed.
	Engine Engine
	// Bulk, if non-nil, supplies the algorithm's columnar kernel — all
	// nodes' state as packed arrays (see beep.BulkAutomaton). Required
	// by EngineColumnar; EngineAuto upgrades to the columnar engine
	// when it is present. Ignored by the per-node engines.
	Bulk beep.BulkFactory
	// Shards bounds the goroutines the columnar and sparse engines fan
	// propagation out to, partitioned by destination word ranges. 0
	// means GOMAXPROCS; 1 keeps propagation on the calling goroutine.
	// Results are bit-identical for every value — workers own disjoint
	// destination words and OR is order-independent.
	Shards int
	// MemoryBudget caps the bytes EngineAuto will spend on an adjacency
	// representation: the packed matrix is taken only when it fits, the
	// CSR form only when its edge array does. 0 means
	// DefaultMemoryBudget (2 GiB). Explicit engine pins ignore it — the
	// caller knows their machine.
	MemoryBudget int64
	// BeepLoss is the probability that a given neighbour fails to hear a
	// given beep in the first exchange (each beeper→listener pair drawn
	// independently). Join announcements (second exchange) are assumed
	// reliable, so domination stays safe; what loss can break is
	// *independence*, which the ablate-loss experiment quantifies.
	BeepLoss float64
	// CrashAtRound lists nodes to crash at the start of the given
	// (1-based) round. Crashed nodes stop participating entirely.
	CrashAtRound map[int][]int
	// WakeAt, if non-nil, gives the (1-based) round at which each node
	// wakes up; before that the node is dormant — it neither beeps nor
	// listens. Entries <= 1 wake immediately. Enabling wake-up also
	// makes MIS members beep persistently (the standard fix from Afek
	// et al. DISC'11): a late waker adjacent to an established MIS
	// member must hear it, or it could beep into perceived silence and
	// violate independence.
	WakeAt []int
	// Faults declares the run's deterministic fault model: per-listener
	// channel noise (loss and spurious beeps), adversarial wake-up
	// schedules (which resolve into WakeAt before the round loop; a
	// spec wake and an explicit WakeAt together are an error), and
	// transient outages with resume-or-reset recovery. Unlike the
	// legacy per-edge BeepLoss, every fault feature is engine-agnostic:
	// all randomness is drawn from dedicated per-(node, round) streams,
	// so the four engines stay bit-identical under any spec and any
	// shard count. Outages and persistent MIS behaviour compose: while
	// any outage schedule is present, MIS members beep and re-announce
	// persistently (as under wake-up), except while themselves down.
	Faults *fault.Spec
	// Metrics, if non-nil, receives the run's instrumentation: per-phase
	// wall time, frontier sizes, exchange decisions, and shard balance
	// (see obs.EngineMetrics). One bundle may be shared by concurrent
	// runs — every record operation is a lock-free atomic. Recording
	// never draws from an rng stream and never allocates, so enabling
	// metrics changes neither the results (bit-identical, all engines)
	// nor the round loops' steady-state allocation profile.
	Metrics *obs.EngineMetrics
	// OnRound, if non-nil, is called after every time step.
	OnRound func(Snapshot)
	// OnMISDelta, if non-nil, is called after any time step in which
	// MIS membership changed: joined lists the nodes that entered the
	// set this round, left the nodes a reset recovery removed (both
	// ascending). The slices are owned by the simulator and reused
	// between rounds. fault.Verifier's ObserveRound plugs in directly.
	OnMISDelta func(round int, joined, left []int)
}

// Result reports a completed (or round-capped) simulation.
type Result struct {
	// InMIS is the membership vector of the computed independent set.
	InMIS []bool
	// States holds each node's final state.
	States []beep.State
	// Rounds is the number of time steps executed.
	Rounds int
	// Beeps counts first-exchange beeps per node — the quantity of
	// Figure 5 and Theorem 6.
	Beeps []int
	// TotalBeeps is the sum of Beeps.
	TotalBeeps int
	// JoinAnnouncements counts second-exchange announcements (equal to
	// the number of MIS members that joined while having neighbours).
	JoinAnnouncements int
	// PersistentBeeps counts the extra keep-alive beeps MIS members
	// emit when wake-up scheduling is enabled. Kept separate from Beeps
	// so the Theorem 6 accounting stays comparable to the paper.
	PersistentBeeps int
	// Terminated reports whether every node reached a terminal state
	// within the round limit.
	Terminated bool
}

// MeanBeepsPerNode returns TotalBeeps averaged over all nodes.
func (r *Result) MeanBeepsPerNode() float64 {
	if len(r.Beeps) == 0 {
		return 0
	}
	return float64(r.TotalBeeps) / float64(len(r.Beeps))
}

// Run simulates factory's algorithm on g, drawing node randomness from
// per-node streams of master so the execution is a pure function of
// (g, factory, master seed, opts). It returns an error wrapping
// ErrTooManyRounds if the round cap is hit; the partial Result is still
// returned alongside it for inspection.
func Run(g *graph.Graph, factory beep.Factory, master *rng.Source, opts Options) (*Result, error) {
	if opts.BeepLoss < 0 || opts.BeepLoss >= 1 {
		return nil, fmt.Errorf("sim: beep loss %v outside [0,1)", opts.BeepLoss)
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("sim: Shards %d negative (0 = GOMAXPROCS, 1 = serial)", opts.Shards)
	}
	if opts.MemoryBudget < 0 {
		return nil, fmt.Errorf("sim: MemoryBudget %d negative (0 = default %d bytes)", opts.MemoryBudget, DefaultMemoryBudget)
	}
	engine := opts.Engine
	switch engine {
	case EngineAuto:
		engine = ResolveEngine(g, opts)
	case EngineScalar:
	case EngineBitset, EngineColumnar, EngineSparse:
		if opts.BeepLoss > 0 {
			// Loss is drawn per (beeper, listener) edge in adjacency
			// order; a word-parallel exchange has no per-edge step to
			// draw it in, so the combination is refused rather than
			// silently changing the random sequence.
			return nil, fmt.Errorf("sim: engine %v does not support BeepLoss (use scalar or auto)", engine)
		}
		if engine == EngineColumnar && opts.Bulk == nil {
			return nil, fmt.Errorf("sim: engine %v requires a bulk kernel (Options.Bulk); the algorithm may not have one", engine)
		}
	default:
		return nil, fmt.Errorf("sim: unknown engine %v", engine)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := g.N()
	if opts.WakeAt != nil && len(opts.WakeAt) != n {
		return nil, fmt.Errorf("sim: WakeAt has %d entries for %d nodes", len(opts.WakeAt), n)
	}
	if err := ValidateCrashes(n, opts.CrashAtRound); err != nil {
		return nil, err
	}
	fs := opts.Faults
	if !fs.Enabled() {
		fs = nil
	}
	if fs != nil {
		if err := fs.Validate(n); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := fs.ValidateAgainstCrashes(opts.CrashAtRound); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := fs.ValidateAgainstRounds(maxRounds); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if fs.Wake != nil {
			if opts.WakeAt != nil {
				return nil, fmt.Errorf("sim: Faults.Wake conflicts with an explicit WakeAt schedule (pick one)")
			}
			// Resolve the declarative schedule into per-node rounds once,
			// up front, so every engine executes the identical WakeAt.
			opts.WakeAt = fault.ResolveWake(fs.Wake, g, master)
		}
	}
	plan := newFaultPlan(fs)
	if engine == EngineColumnar || engine == EngineSparse {
		// Same packed round loop, two adjacency backends: dense matrix
		// rows for the columnar engine, CSR edge arrays for the sparse
		// one. The sparse engine additionally runs kernel-less
		// algorithms by driving the per-node automata through the
		// adapter kernel, which draws from the same per-node streams in
		// the same order as the scalar loop.
		var prop bulkPropagator
		bulkFactory := opts.Bulk
		if engine == EngineSparse {
			prop = g.CSR()
			if bulkFactory == nil {
				bulkFactory = perNodeBulkFactory(factory)
			}
		} else {
			prop = g.Matrix()
		}
		return runColumnar(g, master, opts, maxRounds, prop, bulkFactory, plan)
	}
	wake := opts.WakeAt
	maxDeg := g.MaxDegree()

	autos := make([]beep.Automaton, n)
	streams := make([]*rng.Source, n)
	for v := 0; v < n; v++ {
		autos[v] = factory(beep.NodeInfo{ID: v, N: n, Degree: g.Degree(v), MaxDegree: maxDeg})
		streams[v] = master.Stream(uint64(v))
	}
	var faultSrc *rng.Source
	if opts.BeepLoss > 0 {
		faultSrc = master.Stream(faultStreamID)
	}

	res := &Result{
		InMIS:  make([]bool, n),
		States: make([]beep.State, n),
		Beeps:  make([]int, n),
	}
	for v := range res.States {
		res.States[v] = beep.StateActive
	}
	active := n

	beeped := make([]bool, n)
	heard := make([]bool, n)
	joined := make([]bool, n)
	neighborJoined := make([]bool, n)
	var prop propagator = scalarPropagator{g}
	if engine == EngineBitset {
		prop = newBitsetPropagator(g)
	}
	// Persistent MIS beeping/re-announcing is needed whenever a node can
	// arrive late to an established set: staggered wake-up, and outages
	// (a node down during its neighbour's announcement misses the
	// domination and must be able to catch up after recovering).
	var persist, emit []bool
	if wake != nil || plan.outages() {
		persist = make([]bool, n)
		emit = make([]bool, n) // scratch emitter mask: beeped/joined ∪ persist
	}
	// down overlays the lifecycle states with transient outages; a down
	// node neither beeps, hears, nor observes, whatever its state.
	var down []bool
	if plan.outages() {
		down = make([]bool, n)
	}
	awake := func(v, round int) bool { return wake == nil || round >= wake[v] }
	up := func(v int) bool { return down == nil || !down[v] }
	var probs []float64 // lazily allocated snapshot buffer
	// MIS-delta scratch for the OnMISDelta hook (and reset bookkeeping).
	var joinedDelta, leftDelta []int
	metrics := opts.Metrics
	clock := phaseClock{m: metrics}

	for round := 1; (active > 0 || plan.keepAlive(round)) && round <= maxRounds; round++ {
		res.Rounds = round
		clock.start()
		prevBeeps, prevPersist := res.TotalBeeps, res.PersistentBeeps
		// Fault injection: crashes take effect before the exchange.
		// (Entries are range- and duplicate-checked up front; a listed
		// node that already terminated is a no-op.)
		for _, v := range opts.CrashAtRound[round] {
			if res.States[v] == beep.StateActive {
				res.States[v] = beep.StateCrashed
				active--
			}
		}
		// Outage recoveries, then fresh downs (in that order, so a
		// back-to-back outage pair keeps the node down through the
		// boundary round while still applying the recovery semantics).
		leftDelta = leftDelta[:0]
		if plan.outages() {
			for _, v := range plan.resumeAt[round] {
				down[v] = false
			}
			for _, v := range plan.resetAt[round] {
				down[v] = false
				// Reset recovery: the node comes back as a freshly
				// started active competitor, whatever it was before. A
				// departing MIS member is reported to the delta hook —
				// its dominated neighbours stay dominated (they cannot
				// know), which is exactly the transient maximality hole
				// fault.Verifier measures.
				switch res.States[v] {
				case beep.StateInMIS:
					res.States[v] = beep.StateActive
					res.InMIS[v] = false
					active++
					leftDelta = append(leftDelta, v)
				case beep.StateDominated:
					res.States[v] = beep.StateActive
					active++
				}
				autos[v] = factory(beep.NodeInfo{ID: v, N: n, Degree: g.Degree(v), MaxDegree: maxDeg})
			}
			for _, v := range plan.startAt[round] {
				down[v] = true
			}
		}
		clock.mark(obs.PhaseFaults)
		// First exchange: draw beeps (dormant and down nodes neither
		// beep nor later observe).
		for v := 0; v < n; v++ {
			beeped[v] = awake(v, round) && up(v) && res.States[v] == beep.StateActive && autos[v].Beep(streams[v])
			heard[v] = false
			joined[v] = false
			neighborJoined[v] = false
			if beeped[v] {
				res.Beeps[v]++
				res.TotalBeeps++
			}
		}
		// The per-node engines fuse the beep tally into the draw loop, so
		// the whole section is eligible_draw and beep_tally records zero.
		clock.mark(obs.PhaseEligibleDraw)
		// With wake-up scheduling or outages, established MIS members
		// keep beeping so late arrivals can never perceive silence next
		// to them — except while themselves down.
		if persist != nil {
			for v := 0; v < n; v++ {
				persist[v] = res.States[v] == beep.StateInMIS && up(v)
				if persist[v] {
					res.PersistentBeeps++
				}
			}
		}
		// Propagate beeps to neighbours (with optional loss per listener).
		emitters := beeped
		if persist != nil {
			for v := 0; v < n; v++ {
				emit[v] = beeped[v] || persist[v]
			}
			emitters = emit
		}
		if faultSrc != nil {
			// Lossy exchange: fault draws happen per (beeper, listener)
			// edge in adjacency order, so this path is scalar by
			// construction (EngineBitset refuses BeepLoss).
			for v := 0; v < n; v++ {
				if !emitters[v] {
					continue
				}
				for _, w := range g.Neighbors(v) {
					if faultSrc.Bernoulli(opts.BeepLoss) {
						continue
					}
					heard[w] = true
				}
			}
		} else {
			prop.propagate(emitters, heard)
		}
		if metrics != nil {
			metrics.Frontier.Observe(int64(res.TotalBeeps - prevBeeps + res.PersistentBeeps - prevPersist))
			delivered := 0
			for _, h := range heard {
				if h {
					delivered++
				}
			}
			metrics.PropagateBits.Add(uint64(delivered))
		}
		clock.mark(obs.PhasePropagate)
		// Channel noise: each eligible listener's heard bit passes
		// through the lossy/spurious channel, drawn from that
		// (node, round)'s own stream — identical on every engine.
		if plan != nil && plan.channel != nil {
			for v := 0; v < n; v++ {
				if res.States[v] == beep.StateActive && awake(v, round) && up(v) {
					heard[v] = plan.channel.Hears(master, round, v, heard[v])
				}
			}
			clock.mark(obs.PhaseFaults)
		}
		// Join rule: beeped into (perceived) silence.
		for v := 0; v < n; v++ {
			if beeped[v] && !heard[v] {
				joined[v] = true
			}
		}
		// Second exchange: join announcements (reliable). Persistent MIS
		// members re-announce so nodes waking later still get dominated.
		for v := 0; v < n; v++ {
			if joined[v] && g.Degree(v) > 0 {
				res.JoinAnnouncements++
			}
		}
		announcers := joined
		if persist != nil {
			for v := 0; v < n; v++ {
				emit[v] = joined[v] || persist[v]
			}
			announcers = emit
		}
		prop.propagate(announcers, neighborJoined)
		if metrics != nil {
			delivered := 0
			for _, h := range neighborJoined {
				if h {
					delivered++
				}
			}
			metrics.PropagateBits.Add(uint64(delivered))
		}
		clock.mark(obs.PhaseJoin)
		// State transitions and feedback (down nodes observe nothing and
		// cannot be dominated — they did not hear the announcement).
		for v := 0; v < n; v++ {
			if res.States[v] != beep.StateActive || !awake(v, round) || !up(v) {
				continue
			}
			switch {
			case joined[v]:
				res.States[v] = beep.StateInMIS
				res.InMIS[v] = true
				active--
			case neighborJoined[v]:
				res.States[v] = beep.StateDominated
				active--
			default:
				autos[v].Observe(beep.Outcome{
					Beeped:         beeped[v],
					Heard:          heard[v],
					NeighborJoined: neighborJoined[v],
				})
			}
		}
		clock.mark(obs.PhaseObserve)
		clock.flush()
		if opts.OnMISDelta != nil {
			joinedDelta = joinedDelta[:0]
			for v := 0; v < n; v++ {
				if joined[v] {
					joinedDelta = append(joinedDelta, v)
				}
			}
			if len(joinedDelta) > 0 || len(leftDelta) > 0 {
				opts.OnMISDelta(round, joinedDelta, leftDelta)
			}
		}
		if opts.OnRound != nil {
			if probs == nil {
				probs = make([]float64, n)
			}
			for v := 0; v < n; v++ {
				switch {
				case res.States[v] != beep.StateActive:
					probs[v] = 0
				default:
					if pr, ok := autos[v].(beep.ProbabilityReporter); ok {
						probs[v] = pr.BeepProbability()
					} else {
						probs[v] = math.NaN()
					}
				}
			}
			opts.OnRound(Snapshot{Round: round, States: res.States, Beeped: beeped, Probabilities: probs, Active: active})
		}
	}
	res.Terminated = active == 0
	if metrics != nil {
		metrics.Runs.Inc()
	}
	if !res.Terminated {
		return res, fmt.Errorf("%w: %d nodes still active after %d rounds", ErrTooManyRounds, active, maxRounds)
	}
	return res, nil
}

// ValidateCrashes rejects malformed Options.CrashAtRound schedules up
// front: node ids outside [0, n), rounds before the first time step, and
// nodes scheduled to crash more than once. Silently skipping such
// entries (the historical behaviour) hid typos in fault-injection
// experiments — a crash that never happens looks exactly like
// robustness. Every error names the offending node id and round, so the
// experimenter can find the typo without diffing the schedule; rounds
// are visited in ascending order, so the first problem reported is
// deterministic whatever the map's iteration order. Run calls it
// internally; it is exported so layers that accept crash schedules from
// untrusted input (the scenario compiler) can reject them at submission
// time rather than at execution time.
func ValidateCrashes(n int, crashes map[int][]int) error {
	if len(crashes) == 0 {
		return nil
	}
	rounds := make([]int, 0, len(crashes))
	for round := range crashes {
		rounds = append(rounds, round)
	}
	sort.Ints(rounds)
	crashRound := make(map[int]int, len(crashes))
	for _, round := range rounds {
		nodes := crashes[round]
		if round < 1 {
			if len(nodes) > 0 {
				return fmt.Errorf("sim: CrashAtRound round %d invalid for node %d (rounds are 1-based)", round, nodes[0])
			}
			return fmt.Errorf("sim: CrashAtRound round %d invalid (rounds are 1-based)", round)
		}
		for _, v := range nodes {
			if v < 0 || v >= n {
				return fmt.Errorf("sim: CrashAtRound[%d] lists node %d outside [0, %d)", round, v, n)
			}
			if prev, dup := crashRound[v]; dup {
				if prev == round {
					return fmt.Errorf("sim: node %d listed twice in CrashAtRound[%d]", v, round)
				}
				return fmt.Errorf("sim: node %d scheduled to crash twice (rounds %d and %d)", v, min(prev, round), max(prev, round))
			}
			crashRound[v] = round
		}
	}
	return nil
}
