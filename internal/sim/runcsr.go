package sim

import (
	"fmt"

	"beepmis/internal/beep"
	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// topology is the graph view the packed round loop actually reads at
// setup: a node count, per-node degrees, and the maximum degree. Both
// *graph.Graph and *graph.CSR satisfy it, which is what lets the
// sparse engine run a direct-to-CSR graph without a backing Graph —
// everything else the loop touches goes through the bulkPropagator.
type topology interface {
	N() int
	Degree(v int) int
	MaxDegree() int
}

var (
	_ topology = (*graph.Graph)(nil)
	_ topology = (*graph.CSR)(nil)
)

// RunCSR simulates factory's algorithm on a graph given directly in
// compressed-sparse-row form — the construction target of the
// direct-to-CSR pipeline (graph.CSRBuilder, the RMAT/configmodel
// generators, the file loaders). When the run resolves to the sparse
// engine (an explicit EngineSparse pin, or EngineAuto on a graph whose
// matrix exceeds the memory budget), the round loop executes over c
// itself and no adjacency-Graph is ever materialised. Any other engine
// needs a representation the CSR cannot provide (matrix rows, per-node
// neighbour walks), so the run delegates to Run over graph.FromCSR(c)
// — a zero-copy view whose adjacency slices alias c's storage, so even
// that path allocates only one slice header per vertex.
//
// Results are bit-identical to Run(graph.FromCSR(c), …) with the same
// arguments, for every engine and shard count.
func RunCSR(c *graph.CSR, factory beep.Factory, master *rng.Source, opts Options) (*Result, error) {
	if opts.BeepLoss < 0 || opts.BeepLoss >= 1 {
		return nil, fmt.Errorf("sim: beep loss %v outside [0,1)", opts.BeepLoss)
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("sim: Shards %d negative (0 = GOMAXPROCS, 1 = serial)", opts.Shards)
	}
	if opts.MemoryBudget < 0 {
		return nil, fmt.Errorf("sim: MemoryBudget %d negative (0 = default %d bytes)", opts.MemoryBudget, DefaultMemoryBudget)
	}
	engine := opts.Engine
	if engine == EngineAuto {
		engine = ResolveEngineFromCounts(c.N(), c.M(), opts.Bulk != nil, opts.BeepLoss, opts.MemoryBudget)
	}
	if engine != EngineSparse {
		return Run(graph.FromCSR(c), factory, master, opts)
	}
	if opts.BeepLoss > 0 {
		return nil, fmt.Errorf("sim: engine %v does not support BeepLoss (use scalar or auto)", engine)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	n := c.N()
	if opts.WakeAt != nil && len(opts.WakeAt) != n {
		return nil, fmt.Errorf("sim: WakeAt has %d entries for %d nodes", len(opts.WakeAt), n)
	}
	if err := ValidateCrashes(n, opts.CrashAtRound); err != nil {
		return nil, err
	}
	fs := opts.Faults
	if !fs.Enabled() {
		fs = nil
	}
	if fs != nil {
		if err := fs.Validate(n); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := fs.ValidateAgainstCrashes(opts.CrashAtRound); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if err := fs.ValidateAgainstRounds(maxRounds); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if fs.Wake != nil {
			if opts.WakeAt != nil {
				return nil, fmt.Errorf("sim: Faults.Wake conflicts with an explicit WakeAt schedule (pick one)")
			}
			// The CSR satisfies fault.Topology directly, so even wake
			// resolution needs no Graph.
			opts.WakeAt = fault.ResolveWake(fs.Wake, c, master)
		}
	}
	bulkFactory := opts.Bulk
	if bulkFactory == nil {
		bulkFactory = perNodeBulkFactory(factory)
	}
	return runColumnar(c, master, opts, maxRounds, c, bulkFactory, newFaultPlan(fs))
}
