package sim

import (
	"fmt"
	"runtime"
	"testing"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// TestEngineEquivalenceMultiCore is the parallel-correctness matrix:
// under GOMAXPROCS > 1 — where sharded phases genuinely interleave and
// a races-on-shared-state bug could actually fire — the columnar and
// sparse engines must stay bit-identical to the scalar reference at
// every shard count, including deliberately racy ones (3 does not
// divide the word count evenly; 2×GOMAXPROCS oversubscribes the
// cores). The graphs are big enough (n > drawShardMinNodes) that the
// sharded eligible-draw and observe paths run, not just the sharded
// exchanges. CI runs this under -race.
func TestEngineEquivalenceMultiCore(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	gmp := runtime.GOMAXPROCS(0)
	shardCounts := []int{1, 3, gmp, 2 * gmp}

	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-5000-sparse", graph.GNP(5000, 0.004, rng.New(21))},
		{"gnp-4500-dense", graph.GNP(4500, 0.08, rng.New(22))},
	}
	crashes := map[int][]int{3: {7, 4400}, 9: {0, 1234, 2345}}
	variants := []struct {
		name string
		opts Options
	}{
		{"pure", Options{}},
		{"crashes", Options{CrashAtRound: crashes}},
		{"staggered-wake", Options{Faults: &fault.Spec{Wake: &fault.Wake{Kind: "uniform", Window: 12}}}},
		{"noisy", Options{Faults: &fault.Spec{Loss: 0.03, Spurious: 0.01}}},
		{"outages-reset", Options{Faults: &fault.Spec{Outages: []fault.Outage{
			{Node: 17, From: 4, For: 3},
			{Node: 4321, From: 6, For: 5, Reset: true},
		}}}},
		{"combined", Options{Faults: &fault.Spec{
			Loss:     0.02,
			Spurious: 0.005,
			Wake:     &fault.Wake{Kind: "degree", Window: 8},
			Outages:  []fault.Outage{{Node: 99, From: 5, For: 4, Reset: true}},
		}}},
	}

	for _, tg := range graphs {
		for _, variant := range variants {
			t.Run(tg.name+"/"+variant.name, func(t *testing.T) {
				factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
				if err != nil {
					t.Fatal(err)
				}
				opts := variant.opts
				opts.Engine = EngineScalar
				ref, err := Run(tg.g, factory, rng.New(5), opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, engine := range []Engine{EngineColumnar, EngineSparse} {
					for _, shards := range shardCounts {
						opts.Engine = engine
						opts.Shards = shards
						opts.Bulk = bulk
						name := fmt.Sprintf("%v/shards=%d", engine, shards)
						res, err := Run(tg.g, factory, rng.New(5), opts)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						assertIdenticalNamed(t, ref, res, "scalar", name)
					}
				}
			})
		}
	}
}

// TestEffectiveShards pins the one resolution rule everything keys on:
// 0 (and any non-positive value) means GOMAXPROCS, explicit counts
// pass through.
func TestEffectiveShards(t *testing.T) {
	old := runtime.GOMAXPROCS(3)
	defer runtime.GOMAXPROCS(old)
	for in, want := range map[int]int{0: 3, -1: 3, 1: 1, 2: 2, 7: 7} {
		if got := EffectiveShards(in); got != want {
			t.Fatalf("EffectiveShards(%d) = %d, want %d under GOMAXPROCS=3", in, got, want)
		}
	}
}

// TestShardPoolPartition pins the pool's partition: contiguous,
// covering [0, words), degenerating to nil (serial) when a single
// chunk suffices, and never more chunks than words.
func TestShardPoolPartition(t *testing.T) {
	if pool := newShardPool(100, 1); pool != nil {
		t.Fatal("shards=1 must not build a pool")
	}
	if pool := newShardPool(1, 8); pool != nil {
		t.Fatal("one word cannot be partitioned; want nil pool")
	}
	for _, tc := range []struct{ words, shards int }{
		{100, 4}, {97, 3}, {16, 16}, {5, 8}, {1 << 14, 7},
	} {
		pool := newShardPool(tc.words, tc.shards)
		if pool == nil {
			t.Fatalf("words=%d shards=%d: no pool", tc.words, tc.shards)
		}
		covered := make([]int, tc.words)
		pool.run(func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		pool.close()
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("words=%d shards=%d: word %d covered %d times", tc.words, tc.shards, i, c)
			}
		}
		if got := pool.shards(); got > tc.shards || got > tc.words || got < 2 {
			t.Fatalf("words=%d shards=%d: pool has %d chunks", tc.words, tc.shards, got)
		}
	}
}
