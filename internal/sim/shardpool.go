package sim

// shardPool fans per-round phase work out to a fixed set of persistent
// worker goroutines, each owning one contiguous chunk of the node-mask
// word range. The columnar round loop runs three shardable phases per
// round (eligible draws + beep tally, the two propagation exchanges,
// and the observe sweep); spawning goroutines per phase per round costs
// allocations and scheduler churn on every single round, so the pool is
// created once per run and fed over channels instead — a phase call
// allocates nothing.
//
// Determinism: every phase body touches only per-node state (packed
// kernel arrays, per-node rng streams, destination words) of the nodes
// inside its word range, and the ranges partition [0, words). Workers
// therefore never touch shared state, and the result of a phase is
// bit-identical to one serial sweep for every shard count — the same
// argument that already made destination-sharded propagation
// deterministic.
type shardPool struct {
	bounds []int // len workers+1; worker i owns words [bounds[i], bounds[i+1])
	fn     func(shard, lo, hi int)
	work   chan int      // shard indices; closed by close()
	done   chan struct{} // one token per completed shard
}

// newShardPool partitions `words` destination words into up to `shards`
// contiguous chunks and starts one persistent goroutine per chunk
// beyond the first (chunk 0 always runs on the phase caller's
// goroutine). It returns nil when the partition degenerates to a
// single chunk — the caller then runs every phase inline, exactly like
// shards = 1.
func newShardPool(words, shards int) *shardPool {
	if shards > words {
		shards = words
	}
	if shards <= 1 {
		return nil
	}
	p := &shardPool{
		work: make(chan int, shards),
		done: make(chan struct{}, shards),
	}
	chunk := (words + shards - 1) / shards
	for lo := 0; lo < words; lo += chunk {
		p.bounds = append(p.bounds, lo)
	}
	p.bounds = append(p.bounds, words)
	for i := 1; i < len(p.bounds)-1; i++ {
		go p.worker()
	}
	return p
}

// worker drains shard indices until the pool closes. The work-channel
// receive orders each read of p.fn after run's write of it, and the
// done-channel send orders it before run's return — so run may swap fn
// between calls without a race.
//
//misvet:noalloc
func (p *shardPool) worker() {
	for shard := range p.work {
		p.fn(shard, p.bounds[shard], p.bounds[shard+1])
		p.done <- struct{}{}
	}
}

// run executes fn once per shard over the pool's fixed partition and
// returns when every shard has finished. Shard 0 runs on the calling
// goroutine. fn is typically a method value created once at engine
// setup, so a steady-state call performs no allocations.
//
//misvet:noalloc
func (p *shardPool) run(fn func(shard, lo, hi int)) {
	p.fn = fn
	n := len(p.bounds) - 1
	for shard := 1; shard < n; shard++ {
		p.work <- shard
	}
	fn(0, p.bounds[0], p.bounds[1])
	for shard := 1; shard < n; shard++ {
		<-p.done
	}
}

// shards returns the number of chunks in the pool's partition.
func (p *shardPool) shards() int { return len(p.bounds) - 1 }

// close releases the pool's workers. The pool must be idle.
func (p *shardPool) close() { close(p.work) }
