package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// engineRun is one engine configuration of the equivalence matrix.
type engineRun struct {
	name string
	res  *Result
}

// runAllEngines executes the same configuration on every engine —
// scalar, bitset, the sparse CSR engine driving per-node automata
// through the adapter, and (when the algorithm has a kernel) the
// columnar and sparse engines over it — the sharded ones at shard
// counts 1, 3, and GOMAXPROCS — and returns the labelled results. The
// first entry is the scalar reference.
func runAllEngines(t *testing.T, g *graph.Graph, spec mis.Spec, seed uint64, opts Options) []engineRun {
	t.Helper()
	factory, bulk, err := mis.NewFactories(spec)
	if err != nil {
		t.Fatal(err)
	}
	var runs []engineRun
	exec := func(name string) {
		res, err := Run(g, factory, rng.New(seed), opts)
		if err != nil {
			t.Fatalf("%s engine: %v", name, err)
		}
		runs = append(runs, engineRun{name, res})
	}
	opts.Engine = EngineScalar
	exec("scalar")
	opts.Engine = EngineBitset
	exec("bitset")
	// The sparse engine without a kernel drives the per-node automata
	// through the adapter — the path kernel-less algorithms take.
	opts.Engine = EngineSparse
	for _, shards := range []int{1, 3, 0} {
		opts.Shards = shards
		exec(fmt.Sprintf("sparse-pernode/shards=%d", shards))
	}
	if bulk != nil {
		opts.Bulk = bulk
		for _, engine := range []Engine{EngineColumnar, EngineSparse} {
			opts.Engine = engine
			for _, shards := range []int{1, 3, 0} {
				opts.Shards = shards
				exec(fmt.Sprintf("%v/shards=%d", engine, shards))
			}
		}
	}
	return runs
}

// runBoth executes the same configuration on the scalar and bitset
// engines and returns both results.
func runBoth(t *testing.T, g *graph.Graph, spec mis.Spec, seed uint64, opts Options) (*Result, *Result) {
	t.Helper()
	runs := runAllEngines(t, g, spec, seed, opts)
	return runs[0].res, runs[1].res
}

// assertAllIdentical checks every run of an equivalence matrix against
// the first (scalar reference) entry.
func assertAllIdentical(t *testing.T, runs []engineRun) {
	t.Helper()
	for _, run := range runs[1:] {
		assertIdenticalNamed(t, runs[0].res, run.res, runs[0].name, run.name)
	}
}

// assertIdentical fails unless the two results agree on every field the
// engines promise to reproduce bit-for-bit.
func assertIdentical(t *testing.T, scalar, bitset *Result) {
	t.Helper()
	assertIdenticalNamed(t, scalar, bitset, "scalar", "bitset")
}

func assertIdenticalNamed(t *testing.T, a, b *Result, aName, bName string) {
	t.Helper()
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %s %d, %s %d", aName, a.Rounds, bName, b.Rounds)
	}
	if a.TotalBeeps != b.TotalBeeps {
		t.Fatalf("total beeps differ: %s %d, %s %d", aName, a.TotalBeeps, bName, b.TotalBeeps)
	}
	if a.JoinAnnouncements != b.JoinAnnouncements {
		t.Fatalf("join announcements differ: %s %d, %s %d",
			aName, a.JoinAnnouncements, bName, b.JoinAnnouncements)
	}
	if a.PersistentBeeps != b.PersistentBeeps {
		t.Fatalf("persistent beeps differ: %s %d, %s %d",
			aName, a.PersistentBeeps, bName, b.PersistentBeeps)
	}
	if a.Terminated != b.Terminated {
		t.Fatalf("termination differs: %s %v, %s %v", aName, a.Terminated, bName, b.Terminated)
	}
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatalf("MIS membership differs at vertex %d (%s vs %s)", v, aName, bName)
		}
		if a.States[v] != b.States[v] {
			t.Fatalf("state differs at vertex %d: %s %v, %s %v",
				v, aName, a.States[v], bName, b.States[v])
		}
		if a.Beeps[v] != b.Beeps[v] {
			t.Fatalf("beep count differs at vertex %d: %s %d, %s %d",
				v, aName, a.Beeps[v], bName, b.Beeps[v])
		}
	}
}

func TestEngineEquivalencePureModel(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-200", graph.GNP(200, 0.5, rng.New(1))},
		{"gnp-sparse-300", graph.GNP(300, 0.02, rng.New(2))},
		{"grid-13x13", graph.Grid(13, 13)},
		{"complete-100", graph.Complete(100)},
		{"cliquefamily-343", graph.CliqueFamily(343)},
		{"unitdisk-250", graph.UnitDisk(250, 0.12, rng.New(3))},
		{"path-65", graph.Path(65)},
		{"isolated-70", graph.Empty(70)},
	}
	specs := []mis.Spec{
		{Name: mis.NameFeedback},
		{Name: mis.NameGlobalSweep},
		{Name: mis.NameAfek},
	}
	for _, tg := range graphs {
		for _, spec := range specs {
			for seed := uint64(0); seed < 3; seed++ {
				runs := runAllEngines(t, tg.g, spec, seed, Options{})
				assertAllIdentical(t, runs)
				if err := graph.VerifyMIS(tg.g, runs[0].res.InMIS); err != nil {
					t.Fatalf("%s/%s/seed=%d: invalid MIS: %v", tg.name, spec.Name, seed, err)
				}
			}
		}
	}
}

// TestEngineEquivalenceWakeup covers the persistent-beep path: staggered
// wake-ups make MIS members keep beeping, which both engines must
// deliver identically.
func TestEngineEquivalenceWakeup(t *testing.T) {
	g := graph.GNP(150, 0.3, rng.New(5))
	wakeSrc := rng.New(99)
	wake := make([]int, g.N())
	for v := range wake {
		wake[v] = 1 + wakeSrc.Intn(20)
	}
	for seed := uint64(0); seed < 3; seed++ {
		runs := runAllEngines(t, g, mis.Spec{Name: mis.NameFeedback}, seed, Options{WakeAt: wake})
		assertAllIdentical(t, runs)
		if runs[0].res.PersistentBeeps == 0 {
			t.Fatal("wake-up run produced no persistent beeps; test is not covering the persist path")
		}
	}
}

// TestEngineEquivalenceCrashes covers mid-run node crashes.
func TestEngineEquivalenceCrashes(t *testing.T) {
	g := graph.GNP(120, 0.4, rng.New(6))
	crashes := map[int][]int{2: {0, 5, 17}, 4: {40, 41}}
	assertAllIdentical(t, runAllEngines(t, g, mis.Spec{Name: mis.NameFeedback}, 7, Options{CrashAtRound: crashes}))
}

// TestEngineAutoMatchesForced pins the auto engine to the same results
// as both forced engines.
func TestEngineAutoMatchesForced(t *testing.T) {
	g := graph.GNP(180, 0.5, rng.New(8))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(g, factory, rng.New(11), Options{Engine: EngineAuto})
	if err != nil {
		t.Fatal(err)
	}
	scalar, bitset := runBoth(t, g, mis.Spec{Name: mis.NameFeedback}, 11, Options{})
	assertIdentical(t, auto, scalar)
	assertIdentical(t, auto, bitset)
}

// TestEngineAutoUpgradesToColumnar pins the auto heuristic: with a bulk
// kernel supplied, auto takes the columnar engine on bitset-worthwhile
// graphs — and its results stay identical to every other engine.
func TestEngineAutoUpgradesToColumnar(t *testing.T) {
	g := graph.GNP(180, 0.5, rng.New(8))
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(g, factory, rng.New(11), Options{Engine: EngineAuto, Bulk: bulk})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runAllEngines(t, g, mis.Spec{Name: mis.NameFeedback}, 11, Options{}) {
		assertIdenticalNamed(t, auto, run.res, "auto+bulk", run.name)
	}
}

// TestEngineColumnarRequiresBulk asserts the explicit rejection of a
// columnar pin without a kernel, and of Shards misuse.
func TestEngineColumnarRequiresBulk(t *testing.T) {
	g := graph.GNP(50, 0.5, rng.New(1))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, factory, rng.New(1), Options{Engine: EngineColumnar})
	if err == nil || !strings.Contains(err.Error(), "bulk kernel") {
		t.Fatalf("columnar without Bulk: got err %v, want bulk-kernel rejection", err)
	}
	if _, err := Run(g, factory, rng.New(1), Options{Shards: -1}); err == nil {
		t.Fatal("negative Shards was silently accepted")
	}
	// The fixed-probability strawman has no kernel: NewFactories returns
	// a nil bulk, and auto quietly stays per-node.
	fixedFactory, fixedBulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFixed, FixedP: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if fixedBulk != nil {
		t.Fatal("fixed-probability algorithm unexpectedly has a bulk kernel; update this test")
	}
	if _, err := Run(g, fixedFactory, rng.New(1), Options{Engine: EngineAuto, Bulk: fixedBulk, MaxRounds: 200}); err != nil && !errors.Is(err, ErrTooManyRounds) {
		t.Fatalf("auto with nil bulk: %v", err)
	}
}

func TestEngineBitsetRejectsBeepLoss(t *testing.T) {
	g := graph.GNP(50, 0.5, rng.New(1))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, factory, rng.New(1), Options{Engine: EngineBitset, BeepLoss: 0.1})
	if err == nil || !strings.Contains(err.Error(), "BeepLoss") {
		t.Fatalf("bitset engine with loss: got err %v, want BeepLoss rejection", err)
	}
	// Auto must silently fall back to scalar and succeed.
	if _, err := Run(g, factory, rng.New(1), Options{Engine: EngineAuto, BeepLoss: 0.1}); err != nil {
		t.Fatalf("auto engine with loss: %v", err)
	}
}

func TestBitsetWorthwhile(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"empty", graph.Empty(0), false},
		{"tiny-sparse", graph.Path(100), true},     // ≤1024 vertices: always
		{"small-dense", graph.Complete(800), true}, // ≤1024 vertices: always
		{"mid-dense", graph.GNP(4000, 0.5, rng.New(1)), true},
		{"mid-sparse", graph.GNP(5000, 0.001, rng.New(2)), false}, // deg ≈ 5 « words/2 ≈ 39
	}
	for _, tc := range tests {
		if got := bitsetWorthwhile(tc.g.N(), tc.g.M()); got != tc.want {
			t.Errorf("%s: bitsetWorthwhile = %v, want %v (n=%d avgdeg=%.1f)",
				tc.name, got, tc.want, tc.g.N(), tc.g.AvgDegree())
		}
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"auto", EngineAuto, true},
		{"", EngineAuto, true},
		{"scalar", EngineScalar, true},
		{"bitset", EngineBitset, true},
		{"columnar", EngineColumnar, true},
		{"sparse", EngineSparse, true},
		{"simd", EngineAuto, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, e := range []Engine{EngineAuto, EngineScalar, EngineBitset, EngineColumnar, EngineSparse} {
		rt, err := ParseEngine(e.String())
		if err != nil || rt != e {
			t.Errorf("round-trip %v failed: %v, %v", e, rt, err)
		}
	}
}

// TestResolveEngine pins the auto heuristic's routing, including the
// memory-budget fallback that used to degrade silently to the scalar
// walk: above the matrix budget the sparse CSR engine now takes over,
// and only a budget too small even for the edge array reaches scalar.
func TestResolveEngine(t *testing.T) {
	_, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	dense := graph.GNP(2000, 0.5, rng.New(1))    // matrix 512 KB, dense
	sparse := graph.GNP(5000, 0.001, rng.New(2)) // deg ≈ 5 « words/2
	tests := []struct {
		name string
		g    *graph.Graph
		opts Options
		want Engine
	}{
		{"pin wins", dense, Options{Engine: EngineScalar}, EngineScalar},
		{"dense no kernel", dense, Options{}, EngineBitset},
		{"dense kernel", dense, Options{Bulk: bulk}, EngineColumnar},
		{"sparse under budget", sparse, Options{}, EngineScalar},
		{"loss forces scalar", dense, Options{BeepLoss: 0.1}, EngineScalar},
		// A 100 KB budget rejects dense's 500 KB matrix but admits its
		// CSR edge array (≈ 2·10⁶ edges would not fit; 2000·0.5 ≈ 10⁶
		// edges · 8 B ≈ 8 MB — so use the genuinely sparse graph).
		{"over matrix budget", sparse, Options{MemoryBudget: 1 << 20}, EngineSparse},
		// A budget below even the CSR bytes degrades to the scalar
		// walk, which needs no extra representation.
		{"over csr budget", sparse, Options{MemoryBudget: 1 << 10}, EngineScalar},
	}
	for _, tc := range tests {
		if got := ResolveEngine(tc.g, tc.opts); got != tc.want {
			t.Errorf("%s: ResolveEngine = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEngineAutoRoutesSparseOverBudget runs the over-budget auto path
// end to end: the run must succeed without ever building the dense
// matrix and stay bit-identical to the scalar reference.
func TestEngineAutoRoutesSparseOverBudget(t *testing.T) {
	g := graph.GNP(3000, 0.004, rng.New(3))
	opts := Options{MemoryBudget: 1 << 19} // matrix would need 1.1 MB
	if got := ResolveEngine(g, opts); got != EngineSparse {
		t.Fatalf("ResolveEngine = %v, want sparse (matrix %d B over budget %d)",
			got, graph.MatrixBytes(g.N()), opts.MemoryBudget)
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	opts.Bulk = bulk
	auto, err := Run(g, factory, rng.New(11), opts)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := Run(g, factory, rng.New(11), Options{Engine: EngineScalar})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalNamed(t, scalar, auto, "scalar", "auto-sparse")
}

// TestEnginesUnderTraceHook checks the per-round snapshots agree between
// engines, not just the final results.
func TestEnginesUnderTraceHook(t *testing.T) {
	g := graph.GNP(90, 0.3, rng.New(4))
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	type roundView struct {
		beeped []bool
		states []beep.State
		probs  []float64
		active int
	}
	capture := func(engine Engine) []roundView {
		var views []roundView
		opts := Options{
			Engine: engine,
			OnRound: func(s Snapshot) {
				views = append(views, roundView{
					beeped: append([]bool(nil), s.Beeped...),
					states: append([]beep.State(nil), s.States...),
					probs:  append([]float64(nil), s.Probabilities...),
					active: s.Active,
				})
			},
		}
		if engine == EngineColumnar {
			opts.Bulk = bulk
		}
		_, err := Run(g, factory, rng.New(21), opts)
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		return views
	}
	sv, bv, cv := capture(EngineScalar), capture(EngineBitset), capture(EngineColumnar)
	// The sparse engine's per-node adapter must report the same
	// probabilities and snapshots as the scalar loop it wraps.
	pv := capture(EngineSparse)
	if len(sv) != len(pv) {
		t.Fatalf("round counts differ: scalar %d, sparse %d", len(sv), len(pv))
	}
	for r := range sv {
		if sv[r].active != pv[r].active {
			t.Fatalf("round %d active differs: scalar %d, sparse %d", r+1, sv[r].active, pv[r].active)
		}
		for v := range sv[r].beeped {
			if sv[r].beeped[v] != pv[r].beeped[v] || sv[r].states[v] != pv[r].states[v] {
				t.Fatalf("round %d vertex %d snapshot differs (scalar vs sparse)", r+1, v)
			}
			if sv[r].probs[v] != pv[r].probs[v] {
				t.Fatalf("round %d vertex %d probability differs: scalar %v, sparse %v",
					r+1, v, sv[r].probs[v], pv[r].probs[v])
			}
		}
	}
	if len(sv) != len(cv) {
		t.Fatalf("round counts differ: scalar %d, columnar %d", len(sv), len(cv))
	}
	for r := range sv {
		if sv[r].active != cv[r].active {
			t.Fatalf("round %d active differs: scalar %d, columnar %d", r+1, sv[r].active, cv[r].active)
		}
		for v := range sv[r].beeped {
			if sv[r].beeped[v] != cv[r].beeped[v] || sv[r].states[v] != cv[r].states[v] {
				t.Fatalf("round %d vertex %d snapshot differs (scalar vs columnar)", r+1, v)
			}
			if sv[r].probs[v] != cv[r].probs[v] {
				t.Fatalf("round %d vertex %d probability differs: scalar %v, columnar %v",
					r+1, v, sv[r].probs[v], cv[r].probs[v])
			}
		}
	}
	if len(sv) != len(bv) {
		t.Fatalf("round counts differ: scalar %d, bitset %d", len(sv), len(bv))
	}
	for r := range sv {
		if sv[r].active != bv[r].active {
			t.Fatalf("round %d active differs: %d vs %d", r+1, sv[r].active, bv[r].active)
		}
		for v := range sv[r].beeped {
			if sv[r].beeped[v] != bv[r].beeped[v] || sv[r].states[v] != bv[r].states[v] {
				t.Fatalf("round %d vertex %d snapshot differs", r+1, v)
			}
		}
	}
}
