package sim

import (
	"strings"
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// runBoth executes the same configuration on the scalar and bitset
// engines and returns both results.
func runBoth(t *testing.T, g *graph.Graph, spec mis.Spec, seed uint64, opts Options) (*Result, *Result) {
	t.Helper()
	factory, err := mis.NewFactory(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts.Engine = EngineScalar
	scalar, err := Run(g, factory, rng.New(seed), opts)
	if err != nil {
		t.Fatalf("scalar engine: %v", err)
	}
	opts.Engine = EngineBitset
	bitset, err := Run(g, factory, rng.New(seed), opts)
	if err != nil {
		t.Fatalf("bitset engine: %v", err)
	}
	return scalar, bitset
}

// assertIdentical fails unless the two results agree on every field the
// engines promise to reproduce bit-for-bit.
func assertIdentical(t *testing.T, scalar, bitset *Result) {
	t.Helper()
	if scalar.Rounds != bitset.Rounds {
		t.Fatalf("rounds differ: scalar %d, bitset %d", scalar.Rounds, bitset.Rounds)
	}
	if scalar.TotalBeeps != bitset.TotalBeeps {
		t.Fatalf("total beeps differ: scalar %d, bitset %d", scalar.TotalBeeps, bitset.TotalBeeps)
	}
	if scalar.JoinAnnouncements != bitset.JoinAnnouncements {
		t.Fatalf("join announcements differ: scalar %d, bitset %d",
			scalar.JoinAnnouncements, bitset.JoinAnnouncements)
	}
	if scalar.PersistentBeeps != bitset.PersistentBeeps {
		t.Fatalf("persistent beeps differ: scalar %d, bitset %d",
			scalar.PersistentBeeps, bitset.PersistentBeeps)
	}
	if scalar.Terminated != bitset.Terminated {
		t.Fatalf("termination differs: scalar %v, bitset %v", scalar.Terminated, bitset.Terminated)
	}
	for v := range scalar.InMIS {
		if scalar.InMIS[v] != bitset.InMIS[v] {
			t.Fatalf("MIS membership differs at vertex %d", v)
		}
		if scalar.States[v] != bitset.States[v] {
			t.Fatalf("state differs at vertex %d: scalar %v, bitset %v",
				v, scalar.States[v], bitset.States[v])
		}
		if scalar.Beeps[v] != bitset.Beeps[v] {
			t.Fatalf("beep count differs at vertex %d: scalar %d, bitset %d",
				v, scalar.Beeps[v], bitset.Beeps[v])
		}
	}
}

func TestEngineEquivalencePureModel(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-200", graph.GNP(200, 0.5, rng.New(1))},
		{"gnp-sparse-300", graph.GNP(300, 0.02, rng.New(2))},
		{"grid-13x13", graph.Grid(13, 13)},
		{"complete-100", graph.Complete(100)},
		{"cliquefamily-343", graph.CliqueFamily(343)},
		{"unitdisk-250", graph.UnitDisk(250, 0.12, rng.New(3))},
		{"path-65", graph.Path(65)},
		{"isolated-70", graph.Empty(70)},
	}
	specs := []mis.Spec{
		{Name: mis.NameFeedback},
		{Name: mis.NameGlobalSweep},
		{Name: mis.NameAfek},
	}
	for _, tg := range graphs {
		for _, spec := range specs {
			for seed := uint64(0); seed < 3; seed++ {
				scalar, bitset := runBoth(t, tg.g, spec, seed, Options{})
				assertIdentical(t, scalar, bitset)
				if err := graph.VerifyMIS(tg.g, scalar.InMIS); err != nil {
					t.Fatalf("%s/%s/seed=%d: invalid MIS: %v", tg.name, spec.Name, seed, err)
				}
			}
		}
	}
}

// TestEngineEquivalenceWakeup covers the persistent-beep path: staggered
// wake-ups make MIS members keep beeping, which both engines must
// deliver identically.
func TestEngineEquivalenceWakeup(t *testing.T) {
	g := graph.GNP(150, 0.3, rng.New(5))
	wakeSrc := rng.New(99)
	wake := make([]int, g.N())
	for v := range wake {
		wake[v] = 1 + wakeSrc.Intn(20)
	}
	for seed := uint64(0); seed < 3; seed++ {
		scalar, bitset := runBoth(t, g, mis.Spec{Name: mis.NameFeedback}, seed, Options{WakeAt: wake})
		assertIdentical(t, scalar, bitset)
		if scalar.PersistentBeeps == 0 {
			t.Fatal("wake-up run produced no persistent beeps; test is not covering the persist path")
		}
	}
}

// TestEngineEquivalenceCrashes covers mid-run node crashes.
func TestEngineEquivalenceCrashes(t *testing.T) {
	g := graph.GNP(120, 0.4, rng.New(6))
	crashes := map[int][]int{2: {0, 5, 17}, 4: {40, 41}}
	scalar, bitset := runBoth(t, g, mis.Spec{Name: mis.NameFeedback}, 7, Options{CrashAtRound: crashes})
	assertIdentical(t, scalar, bitset)
}

// TestEngineAutoMatchesForced pins the auto engine to the same results
// as both forced engines.
func TestEngineAutoMatchesForced(t *testing.T) {
	g := graph.GNP(180, 0.5, rng.New(8))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(g, factory, rng.New(11), Options{Engine: EngineAuto})
	if err != nil {
		t.Fatal(err)
	}
	scalar, bitset := runBoth(t, g, mis.Spec{Name: mis.NameFeedback}, 11, Options{})
	assertIdentical(t, auto, scalar)
	assertIdentical(t, auto, bitset)
}

func TestEngineBitsetRejectsBeepLoss(t *testing.T) {
	g := graph.GNP(50, 0.5, rng.New(1))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, factory, rng.New(1), Options{Engine: EngineBitset, BeepLoss: 0.1})
	if err == nil || !strings.Contains(err.Error(), "BeepLoss") {
		t.Fatalf("bitset engine with loss: got err %v, want BeepLoss rejection", err)
	}
	// Auto must silently fall back to scalar and succeed.
	if _, err := Run(g, factory, rng.New(1), Options{Engine: EngineAuto, BeepLoss: 0.1}); err != nil {
		t.Fatalf("auto engine with loss: %v", err)
	}
}

func TestBitsetWorthwhile(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"empty", graph.Empty(0), false},
		{"tiny-sparse", graph.Path(100), true},     // ≤1024 vertices: always
		{"small-dense", graph.Complete(800), true}, // ≤1024 vertices: always
		{"mid-dense", graph.GNP(4000, 0.5, rng.New(1)), true},
		{"mid-sparse", graph.GNP(5000, 0.001, rng.New(2)), false}, // deg ≈ 5 « words/2 ≈ 39
	}
	for _, tc := range tests {
		if got := bitsetWorthwhile(tc.g); got != tc.want {
			t.Errorf("%s: bitsetWorthwhile = %v, want %v (n=%d avgdeg=%.1f)",
				tc.name, got, tc.want, tc.g.N(), tc.g.AvgDegree())
		}
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"auto", EngineAuto, true},
		{"", EngineAuto, true},
		{"scalar", EngineScalar, true},
		{"bitset", EngineBitset, true},
		{"simd", EngineAuto, false},
	} {
		got, err := ParseEngine(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, e := range []Engine{EngineAuto, EngineScalar, EngineBitset} {
		rt, err := ParseEngine(e.String())
		if err != nil || rt != e {
			t.Errorf("round-trip %v failed: %v, %v", e, rt, err)
		}
	}
}

// TestEnginesUnderTraceHook checks the per-round snapshots agree between
// engines, not just the final results.
func TestEnginesUnderTraceHook(t *testing.T) {
	g := graph.GNP(90, 0.3, rng.New(4))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	type roundView struct {
		beeped []bool
		states []beep.State
		active int
	}
	capture := func(engine Engine) []roundView {
		var views []roundView
		_, err := Run(g, factory, rng.New(21), Options{
			Engine: engine,
			OnRound: func(s Snapshot) {
				views = append(views, roundView{
					beeped: append([]bool(nil), s.Beeped...),
					states: append([]beep.State(nil), s.States...),
					active: s.Active,
				})
			},
		})
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		return views
	}
	sv, bv := capture(EngineScalar), capture(EngineBitset)
	if len(sv) != len(bv) {
		t.Fatalf("round counts differ: scalar %d, bitset %d", len(sv), len(bv))
	}
	for r := range sv {
		if sv[r].active != bv[r].active {
			t.Fatalf("round %d active differs: %d vs %d", r+1, sv[r].active, bv[r].active)
		}
		for v := range sv[r].beeped {
			if sv[r].beeped[v] != bv[r].beeped[v] || sv[r].states[v] != bv[r].states[v] {
				t.Fatalf("round %d vertex %d snapshot differs", r+1, v)
			}
		}
	}
}
