package sim

import (
	"testing"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func TestWakeAtLengthValidation(t *testing.T) {
	_, err := Run(graph.Empty(3), feedbackFactory(t), rng.New(1), Options{WakeAt: []int{1}})
	if err == nil {
		t.Fatal("short WakeAt accepted")
	}
}

func TestWakeupAllImmediateMatchesShape(t *testing.T) {
	// Waking everyone at round 1 must still produce a valid MIS (the
	// persistent-announce machinery must not break the base algorithm).
	g := graph.GNP(100, 0.5, rng.New(2))
	wake := make([]int, g.N())
	for v := range wake {
		wake[v] = 1
	}
	res, err := Run(g, feedbackFactory(t), rng.New(3), Options{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
}

func TestWakeupStaggeredStillValidMIS(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(80, 0.3, src)
		wake := make([]int, g.N())
		wsrc := src.Stream(uint64(trial))
		for v := range wake {
			wake[v] = 1 + wsrc.Intn(40)
		}
		res, err := Run(g, feedbackFactory(t), rng.New(uint64(trial)+10), Options{WakeAt: wake})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWakeupLateNodeNextToEstablishedMIS(t *testing.T) {
	// Adversarial scenario: a star where the hub sleeps long enough for
	// every leaf to join the MIS, then wakes surrounded by it. Without
	// persistent announcements the hub would beep into silence and join,
	// violating independence.
	g := graph.Star(10)
	wake := make([]int, g.N())
	wake[0] = 200 // hub wakes very late
	for v := 1; v < g.N(); v++ {
		wake[v] = 1
	}
	res, err := Run(g, feedbackFactory(t), rng.New(5), Options{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	if res.InMIS[0] {
		t.Fatal("late hub joined the MIS next to established members")
	}
	if res.States[0] != beep.StateDominated {
		t.Fatalf("hub state %v, want dominated", res.States[0])
	}
	if res.PersistentBeeps == 0 {
		t.Fatal("persistent announcements were never emitted")
	}
	if res.Rounds < 200 {
		t.Fatalf("run finished at round %d, before the hub woke", res.Rounds)
	}
}

func TestWakeupPairedLateWakers(t *testing.T) {
	// Two adjacent late wakers must still resolve between themselves.
	g := graph.Path(2)
	res, err := Run(g, feedbackFactory(t), rng.New(6), Options{WakeAt: []int{50, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 50 {
		t.Fatalf("terminated at %d before wake time", res.Rounds)
	}
}

func TestWakeupDormantNodesDoNotBeep(t *testing.T) {
	g := graph.Path(3)
	wake := []int{1, 1, 30}
	res, err := Run(g, feedbackFactory(t), rng.New(7), Options{WakeAt: wake})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2's beeps can only have occurred from round 30 on; with the
	// default p = 1/2 it terminates within a handful of rounds of
	// waking, so its count stays small while nodes 0/1 resolved long
	// before. The key assertion: the run lasted past the wake time.
	if res.Rounds < 30 {
		t.Fatalf("rounds = %d, dormant node ignored", res.Rounds)
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
}

func TestWakeupBeyondMaxRounds(t *testing.T) {
	g := graph.Empty(1)
	_, err := Run(g, feedbackFactory(t), rng.New(8), Options{WakeAt: []int{500}, MaxRounds: 100})
	if err == nil {
		t.Fatal("node waking after the round cap must surface as an error")
	}
}
