package sim

import (
	"fmt"
	"testing"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/obs"
	"beepmis/internal/rng"
)

// TestMetricsDoNotPerturbResults is the observability layer's central
// correctness claim: running the full engine × shard × fault matrix
// with a metrics bundle attached yields bit-identical results to
// running it without. Instrumentation reads clocks and bumps atomics —
// it must never touch an rng stream or reorder a phase.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	g := graph.GNP(400, 0.05, rng.New(3))
	faultSpecs := map[string]*fault.Spec{
		"pure":  nil,
		"noisy": {Loss: 0.05, Spurious: 0.02},
		"outages": {Outages: []fault.Outage{
			{Node: 3, From: 2, For: 3, Reset: true},
			{Node: 40, From: 4, For: 2},
		}},
	}
	for fname, fs := range faultSpecs {
		t.Run(fname, func(t *testing.T) {
			opts := Options{Faults: fs}
			base := runAllEngines(t, g, mis.Spec{Name: mis.NameFeedback}, 99, opts)
			opts.Metrics = &obs.EngineMetrics{}
			instrumented := runAllEngines(t, g, mis.Spec{Name: mis.NameFeedback}, 99, opts)
			if len(base) != len(instrumented) {
				t.Fatalf("matrix size changed: %d vs %d", len(base), len(instrumented))
			}
			for i := range base {
				assertIdenticalNamed(t, base[i].res, instrumented[i].res,
					base[i].name, base[i].name+"+metrics")
			}
		})
	}
}

// TestEngineMetricsRecording asserts the bundle's bookkeeping is
// internally consistent after real runs on every engine: round and run
// counts match the Result, every phase histogram saw every round, and
// the frontier totals match the run's emission accounting.
func TestEngineMetricsRecording(t *testing.T) {
	g := graph.GNP(300, 0.03, rng.New(5))
	for _, tc := range []struct {
		engine Engine
		shards int
	}{
		{EngineScalar, 1},
		{EngineBitset, 1},
		{EngineColumnar, 1},
		{EngineColumnar, 3},
		{EngineSparse, 3},
	} {
		t.Run(fmt.Sprintf("%v/shards=%d", tc.engine, tc.shards), func(t *testing.T) {
			factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
			if err != nil {
				t.Fatal(err)
			}
			m := &obs.EngineMetrics{}
			opts := Options{Engine: tc.engine, Shards: tc.shards, Bulk: bulk, Metrics: m}
			res, err := Run(g, factory, rng.New(17), opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Rounds.Value(); got != uint64(res.Rounds) {
				t.Fatalf("rounds counter %d, result %d", got, res.Rounds)
			}
			if got := m.Runs.Value(); got != 1 {
				t.Fatalf("runs counter %d, want 1", got)
			}
			for p := obs.Phase(0); p < obs.PhaseCount; p++ {
				if got := m.Phase[p].Count(); got != uint64(res.Rounds) {
					t.Fatalf("phase %v histogram saw %d rounds, want %d", p, got, res.Rounds)
				}
			}
			if got := m.Frontier.Count(); got != uint64(res.Rounds) {
				t.Fatalf("frontier histogram saw %d rounds, want %d", got, res.Rounds)
			}
			// Without wake-up or outages there are no persistent beeps, so
			// frontier sizes sum to exactly the total beep count.
			if got := m.Frontier.Sum(); got != uint64(res.TotalBeeps) {
				t.Fatalf("frontier sum %d, total beeps %d", got, res.TotalBeeps)
			}
			if res.TotalBeeps > 0 && m.PropagateBits.Value() == 0 {
				t.Fatal("beeps were emitted but no delivered bits recorded")
			}
			// Non-fused engines attribute real time to the draw phase.
			if m.Phase[obs.PhaseEligibleDraw].Sum() == 0 {
				t.Fatal("eligible_draw phase recorded zero total time")
			}
			if tc.engine == EngineColumnar || tc.engine == EngineSparse {
				plans := m.PushExchanges.Value() + m.PullExchanges.Value()
				if want := uint64(2 * res.Rounds); plans != want {
					t.Fatalf("%d exchange plans recorded, want %d (two per round)", plans, want)
				}
			}
			totals := m.PhaseTotals()
			if len(totals) != int(obs.PhaseCount) {
				t.Fatalf("PhaseTotals has %d entries", len(totals))
			}
			if totals["propagate"] <= 0 {
				t.Fatalf("propagate total %d, want > 0", totals["propagate"])
			}
		})
	}
}

// TestSharedMetricsBundleAcrossRuns pins the aggregation contract: one
// bundle fed by several runs (the misd deployment shape) accumulates,
// never resets.
func TestSharedMetricsBundleAcrossRuns(t *testing.T) {
	g := graph.GNP(120, 0.08, rng.New(9))
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.EngineMetrics{}
	totalRounds := 0
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := Run(g, factory, rng.New(seed), Options{Engine: EngineColumnar, Bulk: bulk, Metrics: m})
		if err != nil {
			t.Fatal(err)
		}
		totalRounds += res.Rounds
	}
	if got := m.Runs.Value(); got != 3 {
		t.Fatalf("runs counter %d, want 3", got)
	}
	if got := m.Rounds.Value(); got != uint64(totalRounds) {
		t.Fatalf("rounds counter %d, want %d", got, totalRounds)
	}
}

// TestMetricsShardSpread asserts the imbalance signal is recorded when
// pooled phases actually run — a graph big enough to clear the sharded
// draw threshold.
func TestMetricsShardSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph")
	}
	g := graph.GNP(6000, 0.002, rng.New(21))
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.EngineMetrics{}
	if _, err := Run(g, factory, rng.New(2), Options{Engine: EngineSparse, Shards: 4, Bulk: bulk, Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if m.ShardSpreadNs.Count() == 0 {
		t.Fatal("no pooled phase recorded a shard spread on a 6000-node sharded run")
	}
}
