package sim

import (
	"strings"
	"testing"

	"beepmis/internal/fault"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

// faultSpecs is the fault-model axis of the equivalence matrix: every
// Spec feature alone, and combined.
func faultSpecs() []struct {
	name string
	spec *fault.Spec
} {
	return []struct {
		name string
		spec *fault.Spec
	}{
		{"loss", &fault.Spec{Loss: 0.1}},
		{"spurious", &fault.Spec{Spurious: 0.08}},
		{"channel", &fault.Spec{Loss: 0.05, Spurious: 0.02}},
		{"wake-uniform", &fault.Spec{Wake: &fault.Wake{Kind: fault.WakeUniform, Window: 12}}},
		{"wake-degree", &fault.Spec{Wake: &fault.Wake{Kind: fault.WakeDegree, Window: 9}}},
		{"wake-explicit", &fault.Spec{Wake: &fault.Wake{Kind: fault.WakeExplicit, At: map[int][]int{4: {0, 3, 17}, 7: {40}}}}},
		{"outage-resume", &fault.Spec{Outages: []fault.Outage{{Node: 2, From: 1, For: 3}, {Node: 11, From: 2, For: 4}}}},
		{"outage-reset", &fault.Spec{Outages: []fault.Outage{{Node: 2, From: 2, For: 2, Reset: true}, {Node: 30, From: 1, For: 5, Reset: true}}}},
		{"kitchen-sink", &fault.Spec{
			Loss:     0.04,
			Spurious: 0.02,
			Wake:     &fault.Wake{Kind: fault.WakeUniform, Window: 6},
			Outages: []fault.Outage{
				{Node: 5, From: 2, For: 3},
				{Node: 5, From: 8, For: 2, Reset: true},
				{Node: 23, From: 1, For: 4, Reset: true},
			},
		}},
	}
}

// TestEngineEquivalenceFaults is the engine×shards×faults matrix: every
// fault-spec combination must produce bit-identical traces on the
// scalar, bitset, columnar, and sparse engines (the sharded ones at
// several shard counts) — the determinism contract that makes the fault
// layer a semantic knob rather than an engine feature.
func TestEngineEquivalenceFaults(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-150", graph.GNP(150, 0.3, rng.New(1))},
		{"gnp-sparse-200", graph.GNP(200, 0.03, rng.New(2))},
		{"grid-9x9", graph.Grid(9, 9)},
	}
	specs := []mis.Spec{
		{Name: mis.NameFeedback},
		{Name: mis.NameGlobalSweep},
		{Name: mis.NameAfek},
	}
	for _, tg := range graphs {
		for _, algo := range specs {
			for _, fc := range faultSpecs() {
				for seed := uint64(0); seed < 2; seed++ {
					runs := runAllEngines(t, tg.g, algo, seed, Options{Faults: fc.spec})
					assertAllIdentical(t, runs)
				}
			}
		}
	}
}

// TestFaultVerifierAgreesWithEngines attaches fault.Verifier to every
// engine run and cross-checks its incremental membership view against
// the engine's result — on a clean-channel adversarial schedule, it
// must also certify independence every round and maximality at the end.
func TestFaultVerifierAgreesWithEngines(t *testing.T) {
	g := graph.GNP(120, 0.2, rng.New(3))
	spec := &fault.Spec{
		Wake: &fault.Wake{Kind: fault.WakeDegree, Window: 8},
		Outages: []fault.Outage{
			{Node: 7, From: 2, For: 3},
			{Node: 19, From: 1, For: 4, Reset: true},
		},
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineScalar, EngineBitset, EngineColumnar, EngineSparse} {
		vf := fault.NewVerifier(g)
		opts := Options{Engine: engine, Faults: spec, OnMISDelta: vf.ObserveRound}
		if engine == EngineColumnar || engine == EngineSparse {
			opts.Bulk = bulk
		}
		res, err := Run(g, factory, rng.New(9), opts)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		for v := range res.InMIS {
			if res.InMIS[v] != vf.InMIS(v) {
				t.Fatalf("%v: verifier membership diverges from the engine at node %d", engine, v)
			}
		}
		if err := vf.Check(nil); err != nil {
			t.Fatalf("%v: clean-channel adversarial run failed verification: %v", engine, err)
		}
		if vf.LastChangeRound() == 0 || vf.LastChangeRound() > res.Rounds {
			t.Fatalf("%v: rounds-to-stable %d outside (0, %d]", engine, vf.LastChangeRound(), res.Rounds)
		}
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
	}
}

// TestFaultLossCanViolateIndependence pins the physics the verifier
// exists for: on K₂ with always-beeping nodes and heavy loss, both
// endpoints eventually lose each other's beep in the same round and
// both join — and the verifier reports exactly that breach, while a
// lossless run of the same configuration stays clean.
func TestFaultLossCanViolateIndependence(t *testing.T) {
	g := graph.Complete(2)
	factory, err := mis.NewFixedProb(1)
	if err != nil {
		t.Fatal(err)
	}
	vf := fault.NewVerifier(g)
	res, err := Run(g, factory, rng.New(1), Options{
		Faults:     &fault.Spec{Loss: 0.9},
		OnMISDelta: vf.ObserveRound,
		MaxRounds:  1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.InMIS[0] || !res.InMIS[1] {
		// With loss 0.9 the double-loss outcome dominates; the fixed
		// seed above produces it. If the rng ever changes, pick a seed
		// where it does — the point is observing the breach.
		t.Fatalf("expected the double-join breach, got InMIS=%v", res.InMIS)
	}
	if vf.ViolationCount() != 1 {
		t.Fatalf("verifier counted %d violations, want 1", vf.ViolationCount())
	}
	if err := vf.Check(nil); err == nil || !strings.Contains(err.Error(), "independence") {
		t.Fatalf("Check = %v, want independence error", err)
	}
}

// TestFaultSpuriousIsSafe: spurious noise delays joins but can never
// forge one, so independence holds on every engine and the verifier
// certifies the terminal set.
func TestFaultSpuriousIsSafe(t *testing.T) {
	g := graph.GNP(100, 0.3, rng.New(4))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	vf := fault.NewVerifier(g)
	res, err := Run(g, factory, rng.New(5), Options{
		Faults:     &fault.Spec{Spurious: 0.2},
		OnMISDelta: vf.ObserveRound,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Check(nil); err != nil {
		t.Fatal(err)
	}
	if err := graph.VerifyMIS(g, res.InMIS); err != nil {
		t.Fatal(err)
	}
}

// TestFaultResetRemovesMISMember drives the adversarial reset recovery
// end to end on a path: the middle node joins, goes down, resets, and
// must come back active with its membership revoked — observed
// identically by every engine and reported to the delta hook.
func TestFaultResetRemovesMISMember(t *testing.T) {
	// P₃ with wake: leaves wake late so the middle node joins alone in
	// round 1 (it beeps with p = 1 under MaxP = 1... the default caps at
	// 1/2, so instead give it a long head start).
	g := graph.Path(3)
	spec := &fault.Spec{
		Wake:    &fault.Wake{Kind: fault.WakeExplicit, At: map[int][]int{30: {0, 2}}},
		Outages: []fault.Outage{{Node: 1, From: 10, For: 5, Reset: true}},
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineScalar, EngineBitset, EngineColumnar, EngineSparse} {
		var left []int
		opts := Options{
			Engine: engine,
			Faults: spec,
			OnMISDelta: func(round int, joined, l []int) {
				left = append(left, l...)
			},
		}
		if engine == EngineColumnar || engine == EngineSparse {
			opts.Bulk = bulk
		}
		res, err := Run(g, factory, rng.New(2), opts)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		// Node 1 joined alone (the only awake node), so the reset at
		// round 15 must have revoked a membership; alone again, it
		// rejoins, and the leaves waking at 30 get dominated.
		if len(left) == 0 || left[0] != 1 {
			t.Fatalf("%v: expected node 1 to leave the set on reset, left=%v", engine, left)
		}
		// The run continues past the reset and still terminates; the
		// final set must be a valid MIS (node 1 either rejoined or was
		// dominated by a waking leaf).
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if !res.Terminated {
			t.Fatalf("%v: run did not terminate", engine)
		}
	}
}

// TestFaultResetAfterConvergenceStillFires is the silent-drop
// regression: a reset outage scheduled past the run's natural
// convergence must still happen — the loop stays alive until pending
// resets fire, the membership is revoked, and the network re-converges
// — identically on every engine. (A perturbation that never happens
// would look exactly like robustness.)
func TestFaultResetAfterConvergenceStillFires(t *testing.T) {
	g := graph.Path(2) // converges within a few rounds
	spec := &fault.Spec{Outages: []fault.Outage{{Node: 0, From: 60, For: 10, Reset: true}}}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{EngineScalar, EngineBitset, EngineColumnar, EngineSparse} {
		var left []int
		opts := Options{
			Engine: engine,
			Faults: spec,
			OnMISDelta: func(round int, joined, l []int) {
				left = append(left, l...)
			},
		}
		if engine == EngineColumnar || engine == EngineSparse {
			opts.Bulk = bulk
		}
		res, err := Run(g, factory, rng.New(4), opts)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if res.Rounds < 70 {
			t.Fatalf("%v: run ended at round %d, before the scheduled reset at 70", engine, res.Rounds)
		}
		// Whatever node 0 was (member or dominated), the run survived the
		// reset and re-converged to a valid MIS.
		if !res.Terminated {
			t.Fatalf("%v: not terminated", engine)
		}
		if err := graph.VerifyMIS(g, res.InMIS); err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		// If node 0 had joined before the outage, its departure must have
		// been reported; either way the reset fired (rounds prove it).
		if res.InMIS[0] && len(left) == 0 && res.Rounds < 70 {
			t.Fatalf("%v: reset did not fire", engine)
		}
	}
}

// TestFaultChannelNodeBound pins the stream-packing limit: channel
// noise on a graph wider than the 21-bit node field is refused rather
// than allowed to draw correlated coins.
func TestFaultChannelNodeBound(t *testing.T) {
	if err := (&fault.Spec{Loss: 0.1}).Validate(fault.MaxChannelNodes + 1); err == nil {
		t.Fatal("channel noise accepted beyond MaxChannelNodes")
	}
	if err := (&fault.Spec{Loss: 0.1}).Validate(fault.MaxChannelNodes); err != nil {
		t.Fatalf("channel noise rejected at the bound: %v", err)
	}
	// Non-channel specs have no such limit.
	if err := (&fault.Spec{Wake: &fault.Wake{Kind: fault.WakeUniform, Window: 2}}).Validate(fault.MaxChannelNodes + 1); err != nil {
		t.Fatalf("wake-only spec rejected on a wide graph: %v", err)
	}
}

// TestFaultOptionValidation pins the explicit rejections: malformed
// specs, wake conflicts, and crash/outage contradictions all fail
// before the first round.
func TestFaultOptionValidation(t *testing.T) {
	g := graph.GNP(30, 0.3, rng.New(1))
	factory, err := mis.NewFactory(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		opts    Options
		wantErr string
	}{
		{"bad loss", Options{Faults: &fault.Spec{Loss: 1.5}}, "loss"},
		{"bad wake", Options{Faults: &fault.Spec{Wake: &fault.Wake{Kind: "nope", Window: 2}}}, "wake schedule"},
		{"outage range", Options{Faults: &fault.Spec{Outages: []fault.Outage{{Node: 99, From: 1, For: 1}}}}, "outside [0, 30)"},
		{"wake conflict", Options{
			WakeAt: make([]int, 30),
			Faults: &fault.Spec{Wake: &fault.Wake{Kind: fault.WakeUniform, Window: 3}},
		}, "conflicts"},
		{"crash overlap", Options{
			CrashAtRound: map[int][]int{3: {5}},
			Faults:       &fault.Spec{Outages: []fault.Outage{{Node: 5, From: 1, For: 2}}},
		}, "node 5"},
		{"outage past round cap", Options{
			MaxRounds: 40,
			Faults:    &fault.Spec{Outages: []fault.Outage{{Node: 3, From: 50, For: 5, Reset: true}}},
		}, "round cap"},
	}
	for _, tc := range cases {
		_, err := Run(g, factory, rng.New(1), tc.opts)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
	// A nil and an all-zero spec are the perfect world and must match a
	// fault-free run exactly.
	base, err := Run(g, factory, rng.New(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(g, factory, rng.New(7), Options{Faults: &fault.Spec{}})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalNamed(t, base, zero, "no-faults", "zero-spec")
}

// TestFaultDownMISMemberSilent: while an MIS member is down it must not
// beep persistently, and a neighbour waking next to it may join —
// creating the very breach persistent beeping normally prevents. All
// engines must agree on the outcome, whatever it is.
func TestFaultDownMISMemberSilent(t *testing.T) {
	g := graph.Path(2)
	spec := &fault.Spec{
		Wake:    &fault.Wake{Kind: fault.WakeExplicit, At: map[int][]int{20: {1}}},
		Outages: []fault.Outage{{Node: 0, From: 18, For: 10}},
	}
	factory, bulk, err := mis.NewFactories(mis.Spec{Name: mis.NameFeedback})
	if err != nil {
		t.Fatal(err)
	}
	var reference *Result
	for _, engine := range []Engine{EngineScalar, EngineBitset, EngineColumnar, EngineSparse} {
		opts := Options{Engine: engine, Faults: spec}
		if engine == EngineColumnar || engine == EngineSparse {
			opts.Bulk = bulk
		}
		res, err := Run(g, factory, rng.New(3), opts)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if reference == nil {
			reference = res
			// Node 0, alone and awake, joins within the first rounds;
			// during its outage the persistent beep pauses.
			if !res.InMIS[0] {
				t.Fatalf("node 0 should have joined before its outage, states %v", res.States)
			}
			continue
		}
		assertIdenticalNamed(t, reference, res, "scalar", engine.String())
	}
}
