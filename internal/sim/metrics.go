package sim

import (
	"time"

	"beepmis/internal/obs"
)

// phaseClock accumulates one round's wall time into per-phase buckets
// and flushes them to the run's EngineMetrics. With metrics disabled
// (nil bundle) every method is a branch and a return — the round loops
// call it unconditionally and pay nothing.
//
// The clock is a stack value inside the round loop: marking reads
// time.Now (no allocation), the accumulator is a fixed array, and
// flushing records into the bundle's lock-free histograms — so enabling
// metrics preserves the engines' zero-steady-state-allocation guarantee
// (re-asserted by TestRoundLoopAllocations' metrics-enabled rows). No
// method touches an rng stream, so results are bit-identical with
// metrics on or off (asserted by TestMetricsDoNotPerturbResults).
type phaseClock struct {
	m    *obs.EngineMetrics
	last time.Time
	acc  [obs.PhaseCount]int64
}

// start opens a round: zero the accumulator and stamp the clock.
//
//misvet:noalloc
func (c *phaseClock) start() {
	if c.m == nil {
		return
	}
	for i := range c.acc {
		c.acc[i] = 0
	}
	c.last = time.Now() //misvet:allow(determinism) telemetry only: the phase clock measures, never steers; TestMetricsDoNotPerturbResults pins bit-identity
}

// mark attributes the wall time since the previous mark (or start) to
// phase p. A phase interrupted by another — channel noise landing in
// the middle of the exchange section, say — just marks twice; the
// accumulator sums.
//
//misvet:noalloc
func (c *phaseClock) mark(p obs.Phase) {
	if c.m == nil {
		return
	}
	now := time.Now() //misvet:allow(determinism) telemetry only: the phase clock measures, never steers; TestMetricsDoNotPerturbResults pins bit-identity
	c.acc[p] += now.Sub(c.last).Nanoseconds()
	c.last = now
}

// move reattributes ns of the current round from one phase to another —
// how the columnar loop splits the separately-timed beep tally out of
// the eligible-draw wall time without a second clock read in the hot
// path.
//
//misvet:noalloc
func (c *phaseClock) move(from, to obs.Phase, ns int64) {
	if c.m == nil {
		return
	}
	c.acc[from] -= ns
	c.acc[to] += ns
}

// flush records the round's accumulated per-phase durations and counts
// the round. Call it before the trace hooks run, so hook time is never
// attributed to a phase.
//
//misvet:noalloc
func (c *phaseClock) flush() {
	if c.m == nil {
		return
	}
	for p := obs.Phase(0); p < obs.PhaseCount; p++ {
		c.m.Phase[p].Observe(c.acc[p])
	}
	c.m.Rounds.Inc()
}
