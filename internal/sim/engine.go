package sim

import (
	"fmt"

	"beepmis/internal/graph"
)

// Engine selects the implementation of the simulator's neighbourhood
// exchanges. Every engine executes the same algorithm state machine and
// draws node randomness from the same per-node streams, so results are
// bit-identical across engines for a given (graph, factory, seed, opts);
// engines differ only in how fast they deliver beeps.
type Engine uint8

const (
	// EngineAuto picks the fastest applicable engine: EngineColumnar
	// when a bulk kernel is supplied and the graph is dense enough for
	// word-parallel delivery to win (with the packed adjacency matrix
	// fitting the memory budget), EngineBitset under the same density
	// test without a kernel, EngineScalar otherwise. This is the
	// default.
	EngineAuto Engine = iota
	// EngineScalar delivers beeps by walking CSR adjacency lists
	// edge-by-edge: O(Σ deg(beeper)) per round, no extra memory. The
	// only engine that supports BeepLoss (loss is drawn per edge).
	EngineScalar
	// EngineBitset delivers beeps with packed row bitsets: one OR
	// operation informs 64 listeners, so a round costs
	// O(beepers · n/64) words — but the round loop around the exchanges
	// stays per-node. Requires O(n²/8) bytes for the matrix and does
	// not support BeepLoss.
	EngineBitset
	// EngineColumnar runs the whole round loop on packed words: beeps
	// are drawn by a bulk algorithm kernel over struct-of-arrays state
	// (Options.Bulk, required), node masks are bitsets end-to-end, and
	// propagation is sharded across Options.Shards goroutines. Same
	// memory requirement as EngineBitset; no BeepLoss.
	EngineColumnar
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineScalar:
		return "scalar"
	case EngineBitset:
		return "bitset"
	case EngineColumnar:
		return "columnar"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine converts a command-line engine name to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "scalar":
		return EngineScalar, nil
	case "bitset":
		return EngineBitset, nil
	case "columnar":
		return EngineColumnar, nil
	default:
		return EngineAuto, fmt.Errorf("sim: unknown engine %q (want auto, scalar, bitset, or columnar)", s)
	}
}

// maxAutoMatrixBytes caps the adjacency-matrix memory EngineAuto will
// spend: 2 GiB covers n = 10⁵ (1.25 GiB) with headroom and refuses the
// n ≥ 10⁶ regime, where the matrix alone would be 125 GiB. An explicit
// EngineBitset request is honoured regardless — the caller knows their
// machine.
const maxAutoMatrixBytes = int64(2) << 30

// bitsetWorthwhile is EngineAuto's density/size heuristic. Per emitting
// node a bitset round costs ⌈n/64⌉ word ORs against deg(v) random
// writes for the scalar walk, so the break-even density is an average
// degree of about n/64; word ops are cheaper than scattered writes, so
// the threshold takes half that. Tiny graphs always qualify — the
// matrix is a few cache lines.
func bitsetWorthwhile(g *graph.Graph) bool {
	n := g.N()
	if n == 0 {
		return false
	}
	if graph.MatrixBytes(n) > maxAutoMatrixBytes {
		return false
	}
	if n <= 1024 {
		return true
	}
	words := float64((n + 63) / 64)
	return g.AvgDegree() >= words/2
}

// propagator delivers one exchange: dst[w] becomes true for every w
// adjacent to a vertex with emit[v] true. dst is all-false on entry.
// Loss-free by contract — the lossy first exchange stays in Run, where
// per-edge fault draws keep their deterministic order.
type propagator interface {
	propagate(emit, dst []bool)
}

// scalarPropagator walks CSR adjacency lists.
type scalarPropagator struct{ g *graph.Graph }

func (p scalarPropagator) propagate(emit, dst []bool) {
	for v, e := range emit {
		if !e {
			continue
		}
		for _, w := range p.g.Neighbors(v) {
			dst[w] = true
		}
	}
}

// bitsetPropagator ORs packed adjacency rows: 64 listeners per word
// operation. Scratch bitsets are reused across rounds.
type bitsetPropagator struct {
	mat      *graph.AdjacencyMatrix
	emitBits graph.Bitset
	dstBits  graph.Bitset
}

func newBitsetPropagator(g *graph.Graph) *bitsetPropagator {
	return &bitsetPropagator{
		mat:      g.Matrix(),
		emitBits: graph.NewBitset(g.N()),
		dstBits:  graph.NewBitset(g.N()),
	}
}

func (p *bitsetPropagator) propagate(emit, dst []bool) {
	p.emitBits.Zero()
	for v, e := range emit {
		if e {
			p.emitBits.Set(v)
		}
	}
	p.dstBits.Zero()
	p.emitBits.ForEach(func(v int) { p.mat.OrRowInto(p.dstBits, v) })
	p.dstBits.ForEach(func(w int) { dst[w] = true })
}
