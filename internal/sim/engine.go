package sim

import (
	"fmt"
	"runtime"

	"beepmis/internal/graph"
)

// EffectiveShards resolves a shard-count option to the value the
// columnar round loops actually run with: non-positive (the Options
// zero value) means one shard per available CPU, runtime.GOMAXPROCS(0).
// Everything that reports or keys on a shard count — bench records, the
// regression gate — must resolve through here so that "-shards 0" and
// an explicit "-shards GOMAXPROCS" name the same configuration.
func EffectiveShards(shards int) int {
	if shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return shards
}

// Engine selects the implementation of the simulator's neighbourhood
// exchanges. Every engine executes the same algorithm state machine and
// draws node randomness from the same per-node streams, so results are
// bit-identical across engines for a given (graph, factory, seed, opts);
// engines differ only in how fast they deliver beeps.
type Engine uint8

const (
	// EngineAuto picks the fastest applicable engine: EngineColumnar
	// when a bulk kernel is supplied and the graph is dense enough for
	// word-parallel delivery to win (with the packed adjacency matrix
	// fitting the memory budget), EngineBitset under the same density
	// test without a kernel, EngineSparse when the matrix exceeds the
	// budget but the CSR edge array fits, EngineScalar otherwise. This
	// is the default. See ResolveEngine.
	EngineAuto Engine = iota
	// EngineScalar delivers beeps by walking CSR adjacency lists
	// edge-by-edge: O(Σ deg(beeper)) per round, no extra memory. The
	// only engine that supports BeepLoss (loss is drawn per edge).
	EngineScalar
	// EngineBitset delivers beeps with packed row bitsets: one OR
	// operation informs 64 listeners, so a round costs
	// O(beepers · n/64) words — but the round loop around the exchanges
	// stays per-node. Requires O(n²/8) bytes for the matrix and does
	// not support BeepLoss.
	EngineBitset
	// EngineColumnar runs the whole round loop on packed words: beeps
	// are drawn by a bulk algorithm kernel over struct-of-arrays state
	// (Options.Bulk, required), node masks are bitsets end-to-end, and
	// propagation is sharded across Options.Shards goroutines. Same
	// memory requirement as EngineBitset; no BeepLoss.
	EngineColumnar
	// EngineSparse runs the columnar round loop over the O(n + m) CSR
	// representation instead of the dense matrix: per exchange it walks
	// only the CSR rows of the current emitters into the heard bitset,
	// sharded by destination vertex range across Options.Shards
	// goroutines. The one engine whose memory scales with edges rather
	// than n², so it is how million-node graphs run. A bulk kernel is
	// used when supplied; without one the per-node automata are driven
	// through an adapter, so every algorithm qualifies. No BeepLoss.
	EngineSparse
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineScalar:
		return "scalar"
	case EngineBitset:
		return "bitset"
	case EngineColumnar:
		return "columnar"
	case EngineSparse:
		return "sparse"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine converts a command-line engine name to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "scalar":
		return EngineScalar, nil
	case "bitset":
		return EngineBitset, nil
	case "columnar":
		return EngineColumnar, nil
	case "sparse":
		return EngineSparse, nil
	default:
		return EngineAuto, fmt.Errorf("sim: unknown engine %q (want auto, scalar, bitset, columnar, or sparse)", s)
	}
}

// DefaultMemoryBudget caps the adjacency-representation memory
// EngineAuto will spend when Options.MemoryBudget is zero: 2 GiB covers
// a dense matrix up to n = 10⁵ (1.25 GiB) with headroom and refuses it
// in the n ≥ 10⁶ regime, where the matrix alone would be 125 GiB —
// there the CSR representation (O(n + m) bytes) takes over via
// EngineSparse. An explicit engine pin is honoured regardless of the
// budget — the caller knows their machine.
const DefaultMemoryBudget = int64(2) << 30

// ResolveEngine reports the engine a run of g under opts will actually
// execute: the pin itself for a non-auto Options.Engine, and the auto
// heuristic's choice otherwise. Exported so callers (misbench records,
// capacity planners) can observe the selection — an auto run silently
// degrading to the scalar walk was how million-node graphs used to lose
// their speed without anyone noticing.
//
// The heuristic, in order: per-edge BeepLoss draws force the scalar
// walk; graphs whose packed matrix fits the memory budget take the
// word-parallel dense engines when dense enough for them to win
// (columnar with a kernel, bitset without) and the scalar walk
// otherwise; graphs whose matrix exceeds the budget take the sparse
// CSR engine as long as the edge array fits, and degrade to scalar —
// which needs no extra representation — only past that.
func ResolveEngine(g *graph.Graph, opts Options) Engine {
	if opts.Engine != EngineAuto {
		return opts.Engine
	}
	return ResolveEngineFromCounts(g.N(), g.M(), opts.Bulk != nil, opts.BeepLoss, opts.MemoryBudget)
}

// ResolveEngineFromCounts is the auto heuristic over counts instead of
// a built graph: n vertices, m edges, whether a bulk kernel will be
// supplied, the BeepLoss setting, and the memory budget (<= 0 means
// DefaultMemoryBudget). ResolveEngine delegates here; the scenario
// compiler's admission planning calls it directly with its *expected*
// edge counts, so the two can never drift apart.
func ResolveEngineFromCounts(n, m int, hasBulk bool, beepLoss float64, budget int64) Engine {
	if beepLoss > 0 {
		return EngineScalar
	}
	if budget <= 0 {
		budget = DefaultMemoryBudget
	}
	if graph.MatrixBytes(n) <= budget {
		if !bitsetWorthwhile(n, m) {
			return EngineScalar
		}
		if hasBulk {
			return EngineColumnar
		}
		return EngineBitset
	}
	if graph.CSRBytes(n, m) <= budget {
		return EngineSparse
	}
	return EngineScalar
}

// bitsetWorthwhile is EngineAuto's density heuristic. Per emitting
// node a bitset round costs ⌈n/64⌉ word ORs against deg(v) random
// writes for the scalar walk, so the break-even density is an average
// degree of about n/64; word ops are cheaper than scattered writes, so
// the threshold takes half that. Tiny graphs always qualify — the
// matrix is a few cache lines. (Whether the matrix fits the memory
// budget is the resolver's job, not this predicate's.)
func bitsetWorthwhile(n, m int) bool {
	if n == 0 {
		return false
	}
	if n <= 1024 {
		return true
	}
	words := float64((n + 63) / 64)
	return 2*float64(m)/float64(n) >= words/2
}

// propagator delivers one exchange: dst[w] becomes true for every w
// adjacent to a vertex with emit[v] true. dst is all-false on entry.
// Loss-free by contract — the lossy first exchange stays in Run, where
// per-edge fault draws keep their deterministic order.
type propagator interface {
	propagate(emit, dst []bool)
}

// scalarPropagator walks CSR adjacency lists.
type scalarPropagator struct{ g *graph.Graph }

func (p scalarPropagator) propagate(emit, dst []bool) {
	for v, e := range emit {
		if !e {
			continue
		}
		for _, w := range p.g.Neighbors(v) {
			dst[w] = true
		}
	}
}

// bitsetPropagator ORs packed adjacency rows: 64 listeners per word
// operation. Scratch bitsets are reused across rounds.
type bitsetPropagator struct {
	mat      *graph.AdjacencyMatrix
	emitBits graph.Bitset
	dstBits  graph.Bitset
}

func newBitsetPropagator(g *graph.Graph) *bitsetPropagator {
	return &bitsetPropagator{
		mat:      g.Matrix(),
		emitBits: graph.NewBitset(g.N()),
		dstBits:  graph.NewBitset(g.N()),
	}
}

func (p *bitsetPropagator) propagate(emit, dst []bool) {
	p.emitBits.Zero()
	for v, e := range emit {
		if e {
			p.emitBits.Set(v)
		}
	}
	p.dstBits.Zero()
	p.emitBits.ForEach(func(v int) { p.mat.OrRowInto(p.dstBits, v) })
	p.dstBits.ForEach(func(w int) { dst[w] = true })
}
