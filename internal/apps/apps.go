// Package apps builds the classical applications on top of the MIS
// primitive, demonstrating the paper's closing claim that "selecting a
// maximal independent set can also be used as a fundamental building
// block in algorithms for many other problems in distributed computing":
//
//   - (Δ+1)-coloring by iterated MIS: run the beeping MIS on the
//     still-uncolored residual graph; the k-th independent set becomes
//     color k. Every vertex is colored after at most deg(v)+1
//     iterations, so at most Δ+1 colors are used.
//   - Maximal matching as an MIS of the line graph.
//
// Both applications inherit the feedback algorithm's properties: one-bit
// messages, no identifiers or degree knowledge inside the MIS core, and
// O(log n) expected rounds per iteration.
package apps

import (
	"errors"
	"fmt"

	"beepmis/internal/beep"
	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

// ErrImproperColoring indicates two adjacent vertices share a color.
var ErrImproperColoring = errors.New("apps: adjacent vertices share a color")

// ColoringResult reports an iterated-MIS coloring.
type ColoringResult struct {
	// Colors assigns each vertex a color in [0, NumColors).
	Colors []int
	// NumColors is the number of distinct colors used.
	NumColors int
	// TotalRounds sums the beeping rounds across all MIS iterations —
	// the end-to-end distributed time.
	TotalRounds int
}

// ColoringOptions configures ColorGraph. The zero value uses the paper's
// feedback algorithm with default parameters.
type ColoringOptions struct {
	// Feedback overrides the MIS core's parameters.
	Feedback mis.FeedbackConfig
	// MaxRounds caps each MIS iteration; 0 means the simulator default.
	MaxRounds int
}

// ColorGraph colors g with iterated beeping MIS. The result uses at most
// MaxDegree+1 colors. Deterministic given seed.
func ColorGraph(g *graph.Graph, seed uint64, opts ColoringOptions) (*ColoringResult, error) {
	factory, err := mis.NewFeedback(opts.Feedback)
	if err != nil {
		return nil, err
	}
	n := g.N()
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	res := &ColoringResult{}
	master := rng.New(seed)

	uncolored := make([]int, n)
	for v := range uncolored {
		uncolored[v] = v
	}
	for color := 0; len(uncolored) > 0; color++ {
		sub, err := graph.InducedSubgraph(g, uncolored)
		if err != nil {
			return nil, fmt.Errorf("residual graph at color %d: %w", color, err)
		}
		run, err := sim.Run(sub, factory, master.Stream(uint64(color)), sim.Options{MaxRounds: opts.MaxRounds})
		if err != nil {
			return nil, fmt.Errorf("MIS iteration %d: %w", color, err)
		}
		res.TotalRounds += run.Rounds
		next := uncolored[:0]
		for i, v := range uncolored {
			if run.InMIS[i] {
				colors[v] = color
			} else {
				next = append(next, v)
			}
		}
		uncolored = next
		res.NumColors = color + 1
	}
	res.Colors = colors
	return res, nil
}

// VerifyColoring checks that colors is a proper coloring of g with
// every vertex colored.
func VerifyColoring(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("apps: %d colors for %d vertices", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			return fmt.Errorf("apps: vertex %d uncolored", v)
		}
		for _, w := range g.Neighbors(v) {
			if int(w) > v && colors[w] == colors[v] {
				return fmt.Errorf("%w: {%d,%d} both color %d", ErrImproperColoring, v, w, colors[v])
			}
		}
	}
	return nil
}

// MatchingResult reports a maximal matching computed via line-graph MIS.
type MatchingResult struct {
	// Edges lists g's edges; Matched[i] selects Edges[i].
	Edges [][2]int
	// Matched is the matching's membership vector over Edges.
	Matched []bool
	// Rounds is the beeping rounds of the underlying MIS run.
	Rounds int
}

// Size returns the number of matched edges.
func (m *MatchingResult) Size() int {
	count := 0
	for _, in := range m.Matched {
		if in {
			count++
		}
	}
	return count
}

// MaximalMatching computes a maximal matching of g by running the
// beeping MIS on the line graph L(g): two edges can both be matched iff
// they do not share an endpoint, which is exactly independence in L(g).
// In a real deployment each edge's automaton would be hosted by one of
// its endpoints; the reduction preserves the one-bit message discipline.
func MaximalMatching(g *graph.Graph, seed uint64) (*MatchingResult, error) {
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		return nil, err
	}
	lg, edges := graph.LineGraph(g)
	run, err := sim.Run(lg, factory, rng.New(seed), sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("line-graph MIS: %w", err)
	}
	return &MatchingResult{Edges: edges, Matched: run.InMIS, Rounds: run.Rounds}, nil
}

// DominatingSet returns the MIS itself interpreted as a dominating set:
// by maximality every vertex is in the set or adjacent to it, so any MIS
// is a dominating set — the "local leaders" reading from the paper's
// introduction. Returned for symmetry with the other applications.
func DominatingSet(g *graph.Graph, factory beep.Factory, seed uint64) ([]bool, int, error) {
	run, err := sim.Run(g, factory, rng.New(seed), sim.Options{})
	if err != nil {
		return nil, 0, err
	}
	return run.InMIS, run.Rounds, nil
}

// VerifyDominatingSet checks that every vertex is in the set or has a
// neighbour in it.
func VerifyDominatingSet(g *graph.Graph, set []bool) error {
	if len(set) != g.N() {
		return fmt.Errorf("apps: %d set entries for %d vertices", len(set), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if set[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if set[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("apps: vertex %d not dominated", v)
		}
	}
	return nil
}
