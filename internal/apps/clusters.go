package apps

import (
	"errors"
	"fmt"

	"beepmis/internal/graph"
)

// ErrNotDominating indicates cluster formation was asked to attach nodes
// to a set that does not dominate the graph.
var ErrNotDominating = errors.New("apps: head set does not dominate the graph")

// Clustering assigns every node to a clusterhead.
type Clustering struct {
	// Head[v] is the clusterhead vertex that v belongs to; heads map to
	// themselves.
	Head []int
	// Sizes maps each head to its cluster size (including itself).
	Sizes map[int]int
}

// NumClusters returns the number of clusters.
func (c *Clustering) NumClusters() int { return len(c.Sizes) }

// Clusters partitions the graph around an MIS (or any dominating set):
// each head forms a cluster of itself plus adjacent non-members, the
// standard first step of cluster-based routing and data aggregation in
// ad hoc networks — the application domain the paper's conclusion names.
// A non-member adjacent to several heads deterministically joins the
// lowest-numbered one (in a deployment: the first head heard).
func Clusters(g *graph.Graph, heads []bool) (*Clustering, error) {
	if len(heads) != g.N() {
		return nil, fmt.Errorf("apps: %d head entries for %d vertices", len(heads), g.N())
	}
	c := &Clustering{
		Head:  make([]int, g.N()),
		Sizes: make(map[int]int),
	}
	for v := 0; v < g.N(); v++ {
		if heads[v] {
			c.Head[v] = v
			c.Sizes[v]++
			continue
		}
		assigned := -1
		for _, w := range g.Neighbors(v) {
			if heads[w] {
				assigned = int(w)
				break // adjacency lists are sorted: lowest head wins
			}
		}
		if assigned == -1 {
			return nil, fmt.Errorf("%w: vertex %d has no head neighbour", ErrNotDominating, v)
		}
		c.Head[v] = assigned
		c.Sizes[assigned]++
	}
	return c, nil
}

// VerifyClustering checks internal consistency: heads own themselves,
// members are adjacent to their head, and sizes add up.
func VerifyClustering(g *graph.Graph, heads []bool, c *Clustering) error {
	if len(c.Head) != g.N() {
		return fmt.Errorf("apps: clustering covers %d of %d vertices", len(c.Head), g.N())
	}
	total := 0
	for _, size := range c.Sizes {
		total += size
	}
	if total != g.N() {
		return fmt.Errorf("apps: cluster sizes sum to %d, want %d", total, g.N())
	}
	for v, h := range c.Head {
		if h < 0 || h >= g.N() || !heads[h] {
			return fmt.Errorf("apps: vertex %d assigned to non-head %d", v, h)
		}
		if v == h {
			continue
		}
		if !g.HasEdge(v, h) {
			return fmt.Errorf("apps: vertex %d not adjacent to its head %d", v, h)
		}
	}
	return nil
}
