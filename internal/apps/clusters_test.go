package apps

import (
	"errors"
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
	"beepmis/internal/sim"
)

func misOf(t *testing.T, g *graph.Graph, seed uint64) []bool {
	t.Helper()
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(g, factory, rng.New(seed), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.InMIS
}

func TestClustersFromMIS(t *testing.T) {
	src := rng.New(1)
	for name, g := range map[string]*graph.Graph{
		"gnp":  graph.GNP(120, 0.1, src),
		"grid": graph.Grid(9, 9),
		"star": graph.Star(20),
	} {
		heads := misOf(t, g, 7)
		c, err := Clusters(g, heads)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyClustering(g, heads, c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.NumClusters() != len(graph.SetToList(heads)) {
			t.Fatalf("%s: %d clusters for %d heads", name, c.NumClusters(), len(graph.SetToList(heads)))
		}
	}
}

func TestClustersHeadOwnsItself(t *testing.T) {
	g := graph.Star(5)
	heads := misOf(t, g, 2)
	c, err := Clusters(g, heads)
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range c.Head {
		if heads[v] && h != v {
			t.Fatalf("head %d assigned to %d", v, h)
		}
	}
}

func TestClustersRejectsNonDominating(t *testing.T) {
	g := graph.Path(3)
	// Only vertex 0 as head: vertex 2 has no head neighbour.
	_, err := Clusters(g, []bool{true, false, false})
	if !errors.Is(err, ErrNotDominating) {
		t.Fatalf("err = %v, want ErrNotDominating", err)
	}
	if _, err := Clusters(g, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestClustersDeterministicTieBreak(t *testing.T) {
	// Vertex 1 adjacent to heads 0 and 2: must join the lower id.
	g := graph.Path(3)
	c, err := Clusters(g, []bool{true, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Head[1] != 0 {
		t.Fatalf("vertex 1 joined head %d, want 0", c.Head[1])
	}
	if c.Sizes[0] != 2 || c.Sizes[2] != 1 {
		t.Fatalf("sizes = %v", c.Sizes)
	}
}

func TestVerifyClusteringCatchesCorruption(t *testing.T) {
	g := graph.Path(3)
	heads := []bool{true, false, true}
	c, err := Clusters(g, heads)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: assign vertex 1 to a non-adjacent, non-head vertex.
	c.Head[1] = 1
	if err := VerifyClustering(g, heads, c); err == nil {
		t.Fatal("corrupted clustering accepted")
	}
}
