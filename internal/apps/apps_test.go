package apps

import (
	"errors"
	"testing"
	"testing/quick"

	"beepmis/internal/graph"
	"beepmis/internal/mis"
	"beepmis/internal/rng"
)

func TestColorGraphProper(t *testing.T) {
	src := rng.New(1)
	graphs := map[string]*graph.Graph{
		"gnp":      graph.GNP(100, 0.3, src),
		"complete": graph.Complete(20),
		"grid":     graph.Grid(8, 8),
		"star":     graph.Star(25),
		"cycle":    graph.Cycle(15),
		"empty":    graph.Empty(10),
		"zero":     graph.Empty(0),
	}
	for name, g := range graphs {
		res, err := ColorGraph(g, 5, ColoringOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyColoring(g, res.Colors); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() > 0 && res.NumColors > g.MaxDegree()+1 {
			t.Fatalf("%s: %d colors > Δ+1 = %d", name, res.NumColors, g.MaxDegree()+1)
		}
	}
}

func TestColorCompleteGraphUsesNColors(t *testing.T) {
	g := graph.Complete(12)
	res, err := ColorGraph(g, 2, ColoringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 12 {
		t.Fatalf("K12 colored with %d colors, want 12", res.NumColors)
	}
}

func TestColorBipartiteFewColors(t *testing.T) {
	// Complete bipartite graphs are 2-chromatic; iterated MIS is not
	// optimal but must stay well under Δ+1 here because each side is one
	// big independent set.
	g := graph.Bipartite(20, 20, 1, rng.New(3))
	res, err := ColorGraph(g, 4, ColoringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyColoring(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Fatalf("complete bipartite colored with %d colors, want 2 (each MIS is one side)", res.NumColors)
	}
}

func TestColorGraphDeterminism(t *testing.T) {
	g := graph.GNP(60, 0.4, rng.New(5))
	a, err := ColorGraph(g, 9, ColoringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColorGraph(g, 9, ColoringOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("coloring not deterministic for fixed seed")
		}
	}
}

func TestColorGraphInvalidConfig(t *testing.T) {
	if _, err := ColorGraph(graph.Empty(1), 1, ColoringOptions{
		Feedback: mis.FeedbackConfig{Factor: 0.5},
	}); err == nil {
		t.Fatal("invalid feedback config accepted")
	}
}

func TestVerifyColoringErrors(t *testing.T) {
	g := graph.Path(3)
	if err := VerifyColoring(g, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := VerifyColoring(g, []int{0, -1, 0}); err == nil {
		t.Fatal("uncolored vertex accepted")
	}
	err := VerifyColoring(g, []int{0, 0, 1})
	if !errors.Is(err, ErrImproperColoring) {
		t.Fatalf("err = %v, want ErrImproperColoring", err)
	}
	if err := VerifyColoring(g, []int{0, 1, 0}); err != nil {
		t.Fatalf("proper coloring rejected: %v", err)
	}
}

func TestColoringProperty(t *testing.T) {
	src := rng.New(6)
	f := func(nSeed, pSeed, seed uint8) bool {
		n := int(nSeed%40) + 1
		p := float64(pSeed%10) / 10
		g := graph.GNP(n, p, src)
		res, err := ColorGraph(g, uint64(seed), ColoringOptions{})
		if err != nil {
			return false
		}
		return VerifyColoring(g, res.Colors) == nil && res.NumColors <= g.MaxDegree()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalMatching(t *testing.T) {
	src := rng.New(7)
	graphs := map[string]*graph.Graph{
		"gnp":   graph.GNP(60, 0.2, src),
		"grid":  graph.Grid(6, 6),
		"path":  graph.Path(9),
		"star":  graph.Star(12),
		"empty": graph.Empty(5),
	}
	for name, g := range graphs {
		res, err := MaximalMatching(g, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.IsMaximalMatching(g, res.Edges, res.Matched) {
			t.Fatalf("%s: matching not maximal", name)
		}
	}
}

func TestMaximalMatchingStarSizeOne(t *testing.T) {
	// Every edge of a star shares the hub, so any maximal matching has
	// exactly one edge.
	res, err := MaximalMatching(graph.Star(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 1 {
		t.Fatalf("star matching size %d, want 1", res.Size())
	}
}

func TestMaximalMatchingPerfectOnEvenPath(t *testing.T) {
	// P4 has a perfect matching of size 2, and the only maximal
	// matchings have size 1 (middle edge) or 2. Check size within range.
	res, err := MaximalMatching(graph.Path(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() < 1 || res.Size() > 2 {
		t.Fatalf("P4 matching size %d", res.Size())
	}
}

func TestDominatingSet(t *testing.T) {
	g := graph.GNP(80, 0.1, rng.New(8))
	factory, err := mis.NewFeedback(mis.FeedbackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	set, rounds, err := DominatingSet(g, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Fatal("no rounds")
	}
	if err := VerifyDominatingSet(g, set); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDominatingSetErrors(t *testing.T) {
	g := graph.Path(3)
	if err := VerifyDominatingSet(g, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := VerifyDominatingSet(g, []bool{true, false, false}); err == nil {
		t.Fatal("non-dominating set accepted")
	}
	if err := VerifyDominatingSet(g, []bool{false, true, false}); err != nil {
		t.Fatalf("valid dominating set rejected: %v", err)
	}
}
