// Package stats provides the descriptive statistics and curve fitting
// used by the experiment harness: means and standard deviations for the
// error bars of Figures 3 and 5, and least-squares fits of a·log₂n + b
// and a·log₂²n + b to compare measured growth against the paper's
// reference curves.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty indicates a statistic was requested over no samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or 0
// when fewer than two samples are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the extremes of xs; it errors on an empty slice.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs with linear
// interpolation between order statistics. It errors on empty input or
// out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted interpolates the q-quantile of an already-sorted,
// non-empty sample — the shared core of Quantile and Tails.
func quantileSorted(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Tail bundles the convergence percentiles the robustness experiments
// report: under faults the mean hides the straggler trials, and the
// paper's O(log n) claim is about the distribution's tail as much as
// its centre. Serialised into scenario reports, so field names are a
// stable JSON surface.
type Tail struct {
	// P50, P95 and P99 are the 0.50/0.95/0.99 quantiles (linearly
	// interpolated, like Quantile).
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Tails computes the p50/p95/p99 percentiles of xs; it errors on an
// empty sample.
func Tails(xs []float64) (Tail, error) {
	if len(xs) == 0 {
		return Tail{}, ErrEmpty
	}
	// One sort for all three quantiles.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Tail{
		P50: quantileSorted(sorted, 0.5),
		P95: quantileSorted(sorted, 0.95),
		P99: quantileSorted(sorted, 0.99),
	}, nil
}

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	// N is the sample size.
	N int
	// Mean is the sample mean.
	Mean float64
	// Std is the sample standard deviation.
	Std float64
	// Min and Max are the extremes.
	Min, Max float64
	// Median is the 0.5 quantile.
	Median float64
}

// Summarize computes a Summary; it errors on an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, max, _ := MinMax(xs)
	med, _ := Median(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    min,
		Max:    max,
		Median: med,
	}, nil
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Fit is a least-squares fit y ≈ A·f(x) + B.
type Fit struct {
	// A and B are the fitted coefficients.
	A, B float64
	// R2 is the coefficient of determination in [0, 1] (can be negative
	// for fits worse than a constant).
	R2 float64
}

// String renders the fit.
func (f Fit) String() string {
	return fmt.Sprintf("a=%.3f b=%.3f R²=%.4f", f.A, f.B, f.R2)
}

// FitTransformed computes the least-squares fit of y ≈ A·f(x) + B for the
// given basis function f. At least two points with distinct f(x) values
// are required.
func FitTransformed(xs, ys []float64, f func(float64) float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: fit with %d x values but %d y values", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: fit needs at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var su, sy, suu, suy float64
	for i := range xs {
		u := f(xs[i])
		su += u
		sy += ys[i]
		suu += u * u
		suy += u * ys[i]
	}
	den := n*suu - su*su
	if den == 0 {
		return Fit{}, errors.New("stats: degenerate fit (all transformed x equal)")
	}
	a := (n*suy - su*sy) / den
	b := (sy - a*su) / n
	// R² against the mean model.
	ymean := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := a*f(xs[i]) + b
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - ymean) * (ys[i] - ymean)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{A: a, B: b, R2: r2}, nil
}

// FitLogN fits y ≈ A·log₂(x) + B — the paper's expected growth for the
// feedback algorithm (Corollary 5; empirically A ≈ 2.5).
func FitLogN(xs, ys []float64) (Fit, error) {
	return FitTransformed(xs, ys, math.Log2)
}

// FitLog2N fits y ≈ A·log₂²(x) + B — the growth of the globally-swept
// schedule (Theorem 1; empirically A ≈ 1).
func FitLog2N(xs, ys []float64) (Fit, error) {
	return FitTransformed(xs, ys, func(x float64) float64 {
		l := math.Log2(x)
		return l * l
	})
}

// FitLinear fits y ≈ A·x + B.
func FitLinear(xs, ys []float64) (Fit, error) {
	return FitTransformed(xs, ys, func(x float64) float64 { return x })
}
