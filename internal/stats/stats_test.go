package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"beepmis/internal/rng"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
	if got := Mean([]float64{-5}); got != -5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	if Variance([]float64{7}) != 0 {
		t.Fatal("variance of singleton should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Fatalf("variance = %v", got)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("stddev = %v", got)
	}
}

func TestStdErr(t *testing.T) {
	if StdErr(nil) != 0 {
		t.Fatal("stderr of empty should be 0")
	}
	xs := []float64{1, 3}
	if got := StdErr(xs); !almost(got, math.Sqrt(2)/math.Sqrt(2), 1e-12) {
		t.Fatalf("stderr = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty MinMax must error")
	}
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || min != -1 || max != 7 {
		t.Fatalf("min=%v max=%v err=%v", min, max, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, c := range []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty quantile must error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("q>1 accepted")
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Fatal("Quantile sorted caller's slice")
	}
}

func TestMedianOdd(t *testing.T) {
	got, err := Median([]float64{5, 1, 9})
	if err != nil || got != 5 {
		t.Fatalf("median = %v err=%v", got, err)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty summary must error")
	}
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("summary should stringify")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 2, 1e-12) || !almost(fit.B, 3, 1e-12) || !almost(fit.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLogNExact(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*math.Log2(x) + 1 // the paper's feedback curve shape
	}
	fit, err := FitLogN(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 2.5, 1e-9) || !almost(fit.B, 1, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
}

func TestFitLog2NExact(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 256}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		l := math.Log2(x)
		ys[i] = 1.0*l*l - 2
	}
	fit, err := FitLog2N(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 1, 1e-9) || !almost(fit.B, -2, 1e-9) {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.String() == "" {
		t.Fatal("fit should stringify")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitNoisyRecovery(t *testing.T) {
	// Fit through noisy data and check coefficient recovery.
	src := rng.New(5)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		x := float64(100 + i*10)
		xs[i] = x
		noise := (src.Float64() - 0.5) * 2
		ys[i] = 3*math.Log2(x) - 4 + noise
	}
	fit, err := FitLogN(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 3, 0.2) {
		t.Fatalf("fit.A = %v, want ~3", fit.A)
	}
	if fit.R2 < 0.8 {
		t.Fatalf("R² = %v too low for mild noise", fit.R2)
	}
}

func TestFitConstantDataPerfectR2(t *testing.T) {
	fit, err := FitLinear([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	// ssTot == 0: R² defined as 1 (perfect fit by the constant model).
	if fit.R2 != 1 || !almost(fit.A, 0, 1e-12) || !almost(fit.B, 5, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
}

// Property: mean lies within [min, max]; variance is non-negative.
func TestSummaryProperties(t *testing.T) {
	src := rng.New(6)
	f := func(sizeSeed uint8) bool {
		n := int(sizeSeed%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64()*200 - 100
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTails(t *testing.T) {
	if _, err := Tails(nil); err == nil {
		t.Fatal("empty sample accepted")
	}
	one, err := Tails([]float64{7})
	if err != nil || one != (Tail{P50: 7, P95: 7, P99: 7}) {
		t.Fatalf("single sample: %+v, %v", one, err)
	}
	// 1..100: quantiles interpolate over order statistics, matching
	// Quantile exactly.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // reversed: Tails must sort
	}
	tail, err := Tails(xs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		q    float64
		got  float64
		name string
	}{
		{0.5, tail.P50, "p50"},
		{0.95, tail.P95, "p95"},
		{0.99, tail.P99, "p99"},
	} {
		want, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if tc.got != want {
			t.Errorf("%s = %v, want Quantile's %v", tc.name, tc.got, want)
		}
	}
	if tail.P50 != 50.5 || tail.P99 <= tail.P95 || tail.P95 <= tail.P50 {
		t.Errorf("implausible tails %+v", tail)
	}
}
