// Package notch implements the Collier–Monk–Maini–Lewis (1996) model of
// Delta–Notch lateral inhibition — the biological mechanism the paper
// abstracts into its feedback algorithm (§2, Figure 4).
//
// Each cell i carries Notch activity n_i and Delta activity d_i,
// evolving by
//
//	dn_i/dt =      f(D̄_i) − n_i        (Notch activated by neighbours' Delta)
//	dd_i/dt = ν · (g(n_i) − d_i)       (Delta inhibited by own Notch)
//
// with Hill-type response functions f(x) = x^k/(a + x^k) and
// g(x) = 1/(1 + b·x^h), where D̄_i is the mean Delta over i's
// neighbours. The mutual inactivation creates a positive feedback loop
// that amplifies tiny initial differences into mutually exclusive fates:
// high-Delta "sender" cells (the SOP precursors / MIS members) surrounded
// by low-Delta "receiver" cells. This package exists to demonstrate that
// the dynamical system the paper started from really does compute
// MIS-like patterns, connecting the biology to the algorithm.
package notch

import (
	"fmt"
	"math"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

// Params are the model constants of Collier et al. The zero value is
// replaced by the published defaults in Simulate.
type Params struct {
	// A is the Notch activation threshold constant (paper: 0.01).
	A float64
	// B is the Delta inhibition strength (paper: 100).
	B float64
	// K is the Hill exponent of Notch activation (paper: 2).
	K float64
	// H is the Hill exponent of Delta inhibition (paper: 2).
	H float64
	// Nu is the relative Delta kinetics rate ν (paper: 1).
	Nu float64
	// Dt is the Euler integration step (default 0.05).
	Dt float64
	// Steps is the number of integration steps (default 4000).
	Steps int
	// NoiseAmplitude perturbs the homogeneous initial state to break
	// symmetry (default 0.01), as in the published simulations.
	NoiseAmplitude float64
}

func (p Params) withDefaults() Params {
	if p.A == 0 {
		p.A = 0.01
	}
	if p.B == 0 {
		p.B = 100
	}
	if p.K == 0 {
		p.K = 2
	}
	if p.H == 0 {
		p.H = 2
	}
	if p.Nu == 0 {
		p.Nu = 1
	}
	if p.Dt == 0 {
		p.Dt = 0.05
	}
	if p.Steps == 0 {
		p.Steps = 4000
	}
	if p.NoiseAmplitude == 0 {
		p.NoiseAmplitude = 0.01
	}
	return p
}

// Validate reports whether the parameters are integrable.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.Dt <= 0 || p.Dt > 0.5 {
		return fmt.Errorf("notch: time step %v outside (0, 0.5]", p.Dt)
	}
	if p.Steps < 1 {
		return fmt.Errorf("notch: %d integration steps", p.Steps)
	}
	if p.A <= 0 || p.B <= 0 || p.Nu <= 0 {
		return fmt.Errorf("notch: non-positive rate constants (a=%v b=%v nu=%v)", p.A, p.B, p.Nu)
	}
	return nil
}

// State is the outcome of a simulation.
type State struct {
	// Notch and Delta are the final activity levels per cell.
	Notch, Delta []float64
	// HighDelta classifies each cell as a sender (high Delta), using
	// the midpoint threshold 0.5 on Delta's [0,1] range.
	HighDelta []bool
	// Steps is the number of Euler steps integrated.
	Steps int
}

// Senders returns the indices of high-Delta cells.
func (s *State) Senders() []int {
	return graph.SetToList(s.HighDelta)
}

// Simulate integrates the lateral-inhibition dynamics on the cell
// adjacency graph g from a noisy homogeneous initial condition drawn
// from src. Deterministic given (g, params, seed of src).
func Simulate(g *graph.Graph, params Params, src *rng.Source) (*State, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := params.withDefaults()
	n := g.N()
	notch := make([]float64, n)
	delta := make([]float64, n)
	for i := 0; i < n; i++ {
		// Homogeneous mid-range start plus small symmetry-breaking
		// noise, as in the published simulations.
		notch[i] = 0.5 + p.NoiseAmplitude*(src.Float64()-0.5)
		delta[i] = 0.5 + p.NoiseAmplitude*(src.Float64()-0.5)
	}
	f := func(x float64) float64 {
		xk := math.Pow(x, p.K)
		return xk / (p.A + xk)
	}
	gFn := func(x float64) float64 {
		return 1 / (1 + p.B*math.Pow(x, p.H))
	}
	nextN := make([]float64, n)
	nextD := make([]float64, n)
	for step := 0; step < p.Steps; step++ {
		for i := 0; i < n; i++ {
			nbrs := g.Neighbors(i)
			dbar := 0.0
			if len(nbrs) > 0 {
				for _, w := range nbrs {
					dbar += delta[w]
				}
				dbar /= float64(len(nbrs))
			}
			nextN[i] = notch[i] + p.Dt*(f(dbar)-notch[i])
			nextD[i] = delta[i] + p.Dt*p.Nu*(gFn(notch[i])-delta[i])
		}
		notch, nextN = nextN, notch
		delta, nextD = nextD, delta
	}
	state := &State{Notch: notch, Delta: delta, HighDelta: make([]bool, n), Steps: p.Steps}
	for i := 0; i < n; i++ {
		state.HighDelta[i] = delta[i] > 0.5
	}
	return state, nil
}

// PatternQuality scores how MIS-like the high-Delta pattern is on g:
// independence violations (adjacent sender pairs) and domination gaps
// (receivers with no sender neighbour), both as counts. A perfect
// lateral-inhibition pattern has zero violations; domination gaps can
// remain at lattice boundaries, which is the biologically observed
// imperfection the paper's discrete algorithm fixes.
func PatternQuality(g *graph.Graph, highDelta []bool) (violations, gaps int) {
	for v := 0; v < g.N(); v++ {
		if highDelta[v] {
			for _, w := range g.Neighbors(v) {
				if int(w) > v && highDelta[w] {
					violations++
				}
			}
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if highDelta[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			gaps++
		}
	}
	return violations, gaps
}
