package notch

import (
	"testing"

	"beepmis/internal/graph"
	"beepmis/internal/rng"
)

func TestTwoCellMutualExclusion(t *testing.T) {
	// The fundamental lateral-inhibition result (paper Figure 4): two
	// coupled cells settle into mutually exclusive signalling states.
	g := graph.Path(2)
	st, err := Simulate(g, Params{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.HighDelta[0] == st.HighDelta[1] {
		t.Fatalf("two-cell system did not polarise: delta = %v", st.Delta)
	}
	hi, lo := 0, 1
	if st.Delta[1] > st.Delta[0] {
		hi, lo = 1, 0
	}
	if st.Delta[hi] < 0.9 || st.Delta[lo] > 0.1 {
		t.Fatalf("polarisation weak: delta = %v", st.Delta)
	}
	// The sender has low Notch, the receiver high Notch.
	if st.Notch[hi] > 0.1 || st.Notch[lo] < 0.9 {
		t.Fatalf("notch not anti-correlated with delta: notch = %v", st.Notch)
	}
}

func TestTwoCellDeterminism(t *testing.T) {
	g := graph.Path(2)
	a, err := Simulate(g, Params{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, Params{}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Delta {
		if a.Delta[i] != b.Delta[i] || a.Notch[i] != b.Notch[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestGridPatternIsIndependent(t *testing.T) {
	// On a cell sheet the senders must form an independent set — no two
	// adjacent SOPs, the pattern of the paper's Figure 1B.
	g := graph.Grid(12, 12)
	st, err := Simulate(g, Params{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	senders := len(st.Senders())
	if senders == 0 {
		t.Fatal("no sender cells emerged")
	}
	violations, gaps := PatternQuality(g, st.HighDelta)
	if violations != 0 {
		t.Fatalf("%d adjacent sender pairs — lateral inhibition failed", violations)
	}
	// The continuous dynamics can leave a few unresolved receivers (the
	// imperfection the discrete algorithm eliminates); they must remain
	// a small minority.
	if gaps > g.N()/5 {
		t.Fatalf("%d/%d cells undominated — pattern did not form", gaps, g.N())
	}
}

func TestIsolatedCellBecomesSender(t *testing.T) {
	// With no neighbours there is no inhibition: Notch decays, Delta
	// rises.
	st, err := Simulate(graph.Empty(1), Params{}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if !st.HighDelta[0] {
		t.Fatalf("isolated cell delta = %v, want high", st.Delta[0])
	}
}

func TestLevelsStayInUnitRange(t *testing.T) {
	g := graph.Grid(6, 6)
	st, err := Simulate(g, Params{}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.Delta {
		if st.Delta[i] < -1e-9 || st.Delta[i] > 1+1e-9 || st.Notch[i] < -1e-9 || st.Notch[i] > 1+1e-9 {
			t.Fatalf("cell %d levels out of range: n=%v d=%v", i, st.Notch[i], st.Delta[i])
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Dt: -0.1},
		{Dt: 1.0},
		{Steps: -5},
		{A: -1},
		{B: -1},
		{Nu: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v accepted", i, p)
		}
		if _, err := Simulate(graph.Empty(1), p, rng.New(1)); err == nil {
			t.Errorf("case %d: Simulate accepted %+v", i, p)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

func TestPatternQuality(t *testing.T) {
	g := graph.Path(4)
	// Senders at 0 and 1: one violation; vertex 3 undominated (2 is
	// dominated by 1).
	v, gaps := PatternQuality(g, []bool{true, true, false, false})
	if v != 1 || gaps != 1 {
		t.Fatalf("violations=%d gaps=%d, want 1,1", v, gaps)
	}
	// Proper MIS pattern: no violations, no gaps.
	v, gaps = PatternQuality(g, []bool{true, false, true, false})
	if v != 0 || gaps != 0 {
		t.Fatalf("violations=%d gaps=%d, want 0,0", v, gaps)
	}
}

func TestWeakInhibitionNoPattern(t *testing.T) {
	// With b → 0 there is effectively no Delta inhibition, so every
	// cell's Delta follows g(notch) ≈ 1: all senders, no pattern. This
	// checks the mechanism really is the inhibition term.
	g := graph.Path(2)
	st, err := Simulate(g, Params{B: 1e-6}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !st.HighDelta[0] || !st.HighDelta[1] {
		t.Fatalf("without inhibition both cells should stay high-Delta: %v", st.Delta)
	}
}
