// Package analysistest runs a misvet analyzer over golden fixture
// packages and checks its diagnostics against // want annotations, in
// the style of golang.org/x/tools/go/analysis/analysistest (which the
// module does not depend on; see the package comment of
// beepmis/internal/analysis).
//
// Fixtures live in a GOPATH-style tree: dir/src/<importpath>/*.go.
// A fixture file marks each expected finding with a comment on the
// offending line:
//
//	r.buf = append(r.buf, v) // want "append may grow"
//
// The quoted string is a regexp matched against the diagnostic
// message; several may follow one want for several findings on one
// line. The harness applies suppression filtering exactly like the
// misvet driver — //misvet:allow directives suppress matching
// findings, and unjustified, unknown-analyzer, or stale directives
// are diagnostics themselves — so fixtures exercise the suppression
// contract, not just the analyzer.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"beepmis/internal/analysis"
)

// Run loads the fixture packages at dir/src/<path> for each path in
// pkgPaths, runs a over each (plus its End hook), filters through the
// fixtures' //misvet:allow directives, and reports any mismatch with
// the // want expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := newLoader(root)

	sup := analysis.NewSuppressions()
	var targets []*fixturePkg
	var diags []analysis.Diagnostic
	for _, path := range pkgPaths {
		p, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		targets = append(targets, p)
		sup.Collect(ld.fset, p.files)
	}
	for _, p := range targets {
		if err := analysis.RunPackage(a, ld.fset, p.files, p.pkg, p.info, &diags); err != nil {
			t.Fatalf("%s: %s: %v", a.Name, p.pkg.Path(), err)
		}
	}
	if a.End != nil {
		a.End(func(d analysis.Diagnostic) { diags = append(diags, d) })
	}

	var kept []analysis.Diagnostic
	for _, d := range diags {
		if sup.Match(ld.fset, d.Analyzer, d.Pos) {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, sup.Problems(map[string]bool{a.Name: true}, true)...)
	analysis.SortDiagnostics(ld.fset, kept)

	exps := collectWants(t, ld.fset, targets)
	for _, d := range kept {
		pos := ld.fset.Position(d.Pos)
		if e := claim(exps, pos.Filename, pos.Line, d.Message); e == nil {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range exps {
		if !e.claimed {
			t.Errorf("%s:%d: no diagnostic matched want %q", e.file, e.line, e.pattern)
		}
	}
}

// expectation is one parsed want pattern.
type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	claimed bool
}

// claim finds the first unclaimed expectation on (file, line) whose
// regexp matches message, marks it claimed, and returns it.
func claim(exps []*expectation, file string, line int, message string) *expectation {
	for _, e := range exps {
		if !e.claimed && e.file == file && e.line == line && e.re.MatchString(message) {
			e.claimed = true
			return e
		}
	}
	return nil
}

var (
	wantRe    = regexp.MustCompile(`^//\s*want\s+(.*)$`)
	patternRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*fixturePkg) []*expectation {
	t.Helper()
	var exps []*expectation
	for _, p := range pkgs {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					quoted := patternRe.FindAllString(m[1], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s: want comment carries no quoted pattern", pos)
					}
					for _, q := range quoted {
						pattern, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
						}
						exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, pattern: pattern, re: re})
					}
				}
			}
		}
	}
	return exps
}

// fixturePkg is one fully type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves imports from the fixture tree first and the build
// context (GOROOT) second. Fixture packages are fully checked with
// Info; everything else is checked with IgnoreFuncBodies — analyzers
// only need the exported shapes of a fixture's dependencies.
type loader struct {
	fset *token.FileSet
	root string
	ctxt build.Context
	pkgs map[string]*types.Package
	full map[string]*fixturePkg
	errs map[string]error
}

func newLoader(root string) *loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false // source-only type-checking; fixtures and std are pure Go
	return &loader{
		fset: token.NewFileSet(),
		root: root,
		ctxt: ctxt,
		pkgs: make(map[string]*types.Package),
		full: make(map[string]*fixturePkg),
		errs: make(map[string]error),
	}
}

// load fully type-checks the fixture package at root/path.
func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{files: files, pkg: pkg, info: info}
	l.full[path] = p
	l.pkgs[path] = pkg
	return p, nil
}

// Import implements types.Importer over fixtures and GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.importUncached(path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *loader) importUncached(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	bp, err := l.ctxt.Import(path, l.root, 0)
	if err != nil {
		return nil, fmt.Errorf("import %q: %v", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l, IgnoreFuncBodies: true}
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if firstErr != nil {
		return nil, fmt.Errorf("dependency %s: %v", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("dependency %s: %v", path, err)
	}
	return pkg, nil
}

func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return names, nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
