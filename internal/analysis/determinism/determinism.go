// Package determinism implements the misvet check that engine and
// canonicalization packages stay bit-reproducible: results there must
// be pure functions of (graph, seed, spec), which the engine
// equivalence matrices assert at runtime — but only for the inputs
// they happen to run. This analyzer forbids the three constructs that
// historically smuggle nondeterminism into such code:
//
//   - time.Now / time.Since: wall-clock reads. Telemetry that only
//     measures (never steers) is the legitimate exception and carries
//     a //misvet:allow(determinism) justification.
//   - global math/rand: draws from a process-global, source-order- and
//     goroutine-schedule-dependent stream instead of the repo's
//     per-(unit,trial,slot) rng streams.
//   - range over a map: iteration order is randomized by the runtime.
//     The collect-keys-then-sort idiom is recognized and allowed; an
//     iteration whose body is genuinely order-insensitive carries a
//     suppression saying why.
package determinism

import (
	"go/ast"
	"go/types"

	"beepmis/internal/analysis"
)

// DefaultScope lists the packages whose results must be pure
// functions of their inputs: the four engines' round loops and
// kernels, the fault layer, graph construction, and scenario
// canonicalization (whose output feeds the content hash).
var DefaultScope = []string{
	"beepmis/internal/sim",
	"beepmis/internal/beep",
	"beepmis/internal/fault",
	"beepmis/internal/graph",
	"beepmis/internal/mis",
	"beepmis/internal/scenario",
}

// New returns the determinism analyzer restricted to the given import
// paths (DefaultScope when none are given).
func New(scope ...string) *analysis.Analyzer {
	if len(scope) == 0 {
		scope = DefaultScope
	}
	inScope := make(map[string]bool, len(scope))
	for _, s := range scope {
		inScope[s] = true
	}
	return &analysis.Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, global math/rand, and unsorted map iteration in engine packages",
		Run: func(pass *analysis.Pass) error {
			if !inScope[pass.Pkg.Path()] {
				return nil
			}
			run(pass)
			return nil
		},
	}
}

func run(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkSelector(pass, n)
		case *ast.RangeStmt:
			checkRange(pass, fd, n)
		}
		return true
	})
}

// checkSelector flags qualified references to time.Now/time.Since and
// to anything exported by math/rand or math/rand/v2.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	// Only package-qualified references (time.Now), not field or
	// method selections on values.
	if id, ok := sel.X.(*ast.Ident); !ok {
		return
	} else if _, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if name := obj.Name(); name == "Now" || name == "Since" {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock in an engine package; results must be pure functions of (graph, seed, spec)", name)
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(sel.Pos(), "global %s.%s bypasses the per-(unit,trial,slot) streams of beepmis/internal/rng", obj.Pkg().Path(), obj.Name())
	}
}

// checkRange flags `range` over a map unless the loop is the
// collect-keys-then-sort idiom: a body that only appends the key to a
// slice which the enclosing function later passes to a sort call.
func checkRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if keysSortedLater(pass, fd, rs) {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order is nondeterministic in an engine package; collect and sort the keys first, or justify with //misvet:allow(determinism)")
}

// keysSortedLater recognizes
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.Ints(keys)            (or any sort./slices. sort call)
//
// within one function.
func keysSortedLater(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if rs.Value != nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != dst.Name {
		return false
	}
	if arg1, ok := call.Args[1].(*ast.Ident); !ok || pass.TypesInfo.Uses[arg1] != pass.TypesInfo.ObjectOf(key) {
		return false
	}
	slice := pass.TypesInfo.ObjectOf(dst)
	if slice == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[arg] == slice {
			sorted = true
		}
		return true
	})
	return sorted
}
