package determinism_test

import (
	"testing"

	"beepmis/internal/analysis/analysistest"
	"beepmis/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.New("determfix"), "determfix")
}
