// Package determfix exercises the determinism analyzer: wall-clock
// reads, global math/rand, and unsorted map iteration are findings;
// the collect-then-sort idiom, the fixed variants, and a justified
// suppression are not.
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

// Timestamp is the true positive: stamping results with wall time
// makes two same-seed runs differ.
func Timestamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// RoundStamp is the fix: results carry the round counter, a pure
// function of the run.
func RoundStamp(round int) int64 {
	return int64(round)
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func GlobalDraw() float64 {
	return rand.Float64() // want "global math/rand"
}

func SumKeys(m map[int]int) int {
	total := 0
	for k := range m { // want "map iteration order is nondeterministic"
		total += k
	}
	return total
}

// SortedKeys is the sanctioned idiom: collect the keys, sort, then
// walk. The analyzer recognises it without any suppression.
func SortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// MaxValue's iteration is genuinely order-insensitive — max is
// commutative and associative — so the suppression below is honored
// and produces no finding (and no stale-directive complaint).
func MaxValue(m map[int]int) int {
	best := 0
	//misvet:allow(determinism) max is commutative and associative; visit order cannot change the result
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
