package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked target package: syntax with
// comments, the types.Package, and full expression/selection Info.
type LoadedPackage struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// loader type-checks a program bottom-up from `go list -deps` output.
// Dependency packages are checked with IgnoreFuncBodies (the
// analyzers only need their exported shapes); target packages get a
// full check with Info. Everything shares one FileSet, so positions
// are comparable across packages — the atomicfield analyzer's
// whole-program End hook relies on that, and on the shared importer
// giving every package the same *types.Var for a given field.
type loader struct {
	fset   *token.FileSet
	metas  map[string]*listPackage
	pkgs   map[string]*types.Package
	loaded map[string]*LoadedPackage
	errs   map[string]error
}

// Load lists patterns with the go tool, type-checks the transitive
// program, and returns the target (non-dependency) packages in
// deterministic import-path order. Cgo is disabled: the module is
// pure Go, and building without it keeps source-level type-checking
// exact.
func Load(patterns []string) (*token.FileSet, []*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v: %s", err, stderr.Bytes())
	}
	ld := &loader{
		fset:   token.NewFileSet(),
		metas:  make(map[string]*listPackage),
		pkgs:   make(map[string]*types.Package),
		loaded: make(map[string]*LoadedPackage),
		errs:   make(map[string]error),
	}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		meta := p
		ld.metas[p.ImportPath] = &meta
		if !p.DepOnly {
			targets = append(targets, &meta)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var loaded []*LoadedPackage
	for _, t := range targets {
		if t.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if _, err := ld.importPkg(t.ImportPath); err != nil {
			return nil, nil, err
		}
		loaded = append(loaded, ld.loaded[t.ImportPath])
	}
	return ld.fset, loaded, nil
}

// importPkg resolves one import for the type-checker, checking the
// dependency (exported shape only) on first use.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := ld.errs[path]; ok {
		return nil, err
	}
	meta := ld.metas[path]
	if meta == nil {
		err := fmt.Errorf("package %s not in go list -deps output", path)
		ld.errs[path] = err
		return nil, err
	}
	// Target packages always get the full (bodies + Info) check, even
	// when first reached as another target's import — every consumer
	// must see the one canonical *types.Package per path.
	if !meta.DepOnly {
		lp, err := ld.check(meta)
		if err != nil {
			ld.errs[path] = err
			return nil, err
		}
		ld.loaded[path] = lp
		return lp.Pkg, nil
	}
	files, err := ld.parse(meta, 0)
	if err != nil {
		ld.errs[path] = err
		return nil, err
	}
	conf := ld.config(meta)
	conf.IgnoreFuncBodies = true
	var firstErr error
	conf.Error = func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	pkg, err := conf.Check(path, ld.fset, files, nil)
	if err != nil && firstErr != nil {
		err = firstErr
	}
	if err != nil {
		err = fmt.Errorf("dependency %s: %v", path, err)
		ld.errs[path] = err
		return nil, err
	}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// check fully type-checks one target package with comments and Info.
func (ld *loader) check(meta *listPackage) (*LoadedPackage, error) {
	files, err := ld.parse(meta, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := ld.config(meta)
	var errs []error
	conf.Error = func(err error) { errs = append(errs, err) }
	pkg, err := conf.Check(meta.ImportPath, ld.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("%s: %v", meta.ImportPath, errs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %v", meta.ImportPath, err)
	}
	ld.pkgs[meta.ImportPath] = pkg
	return &LoadedPackage{Path: meta.ImportPath, Files: files, Pkg: pkg, Info: info}, nil
}

func (ld *loader) parse(meta *listPackage, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(meta.Dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// config builds a types.Config whose importer resolves through the
// package's ImportMap (how the go tool names vendored std imports).
func (ld *loader) config(meta *listPackage) types.Config {
	return types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if mapped, ok := meta.ImportMap[path]; ok {
				path = mapped
			}
			return ld.importPkg(path)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// IsTestFile reports whether pos lies in a _test.go file. The
// invariants misvet machine-checks bind production code; test files
// allocate, time, and iterate maps freely (alloc_test itself must
// allocate to measure), so the driver drops findings positioned in
// them.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
