package rngstream_test

import (
	"testing"

	"beepmis/internal/analysis/analysistest"
	"beepmis/internal/analysis/rngstream"
)

func TestRngstream(t *testing.T) {
	analysistest.Run(t, "testdata", rngstream.New("rngfix/rng"), "rngfix/use")
}
