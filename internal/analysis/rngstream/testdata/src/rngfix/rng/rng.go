// Package rng is a fixture stand-in for beepmis/internal/rng: the one
// package allowed to construct and seed generators.
package rng

// Source is a toy generator with exported state, so fixtures can try
// to construct it by literal.
type Source struct {
	State uint64
}

// New derives a source from a seed — the sanctioned constructor.
func New(seed int64) *Source { return &Source{State: uint64(seed)} }

// Reseed rebinds the source to a new seed mid-stream.
func (s *Source) Reseed(seed int64) { s.State = uint64(seed) }

// Uint64 advances the stream.
func (s *Source) Uint64() uint64 {
	s.State += 0x9e3779b97f4a7c15
	return s.State
}
