// Package use exercises the rngstream analyzer against the fixture
// rng package: math/rand imports, hand-rolled Source literals, and
// Reseed calls are findings; the constructor path and a justified
// suppression are not.
package use

import (
	"math/rand" // want "import of math/rand outside rngfix/rng"

	"rngfix/rng"
)

// HandRolled is the true positive: constructing a Source by literal
// bypasses the seeding discipline.
func HandRolled() *rng.Source {
	return &rng.Source{State: 42} // want "constructing rng.Source with explicit state"
}

// FromConstructor is the fix: derive the source from the seed.
func FromConstructor(seed int64) *rng.Source {
	return rng.New(seed)
}

// ZeroValue is also fine: a zero Source filled by the rng package's
// own derivation helpers carries no explicit state.
func ZeroValue() *rng.Source {
	return new(rng.Source)
}

func Restart(s *rng.Source) {
	s.Reseed(7) // want "Reseed detaches a Source"
}

// Draw exists to use the math/rand import; rngstream flags the import
// itself, not each call site.
func Draw() float64 {
	return rand.Float64()
}

// Replay re-derives a stream on purpose for a documented replay tool;
// the suppression is honored and produces no finding.
func Replay(s *rng.Source) {
	//misvet:allow(rngstream) replay tooling rebinds the stream deliberately and owns the source exclusively
	s.Reseed(11)
}
