// Package rngstream implements the misvet check that all randomness
// flows through beepmis/internal/rng. Every engine is bit-identical
// to every other only because each (unit, trial, slot) draws from a
// stream derived purely from (seed, id) — a discipline rng.Source
// enforces by construction. Randomness from anywhere else breaks the
// chain invisibly, so outside internal/rng the analyzer forbids:
//
//   - importing math/rand or math/rand/v2 at all: their generators are
//     seeded ad hoc and (for the global source) shared across
//     goroutines, so sequences depend on scheduling;
//   - constructing an rng.Source by composite literal with explicit
//     state: hand-rolled state bypasses the SplitMix64 seeding that
//     stream derivation is anchored to (the zero Source filled via
//     StreamInto — how engines build per-node stream arrays — is
//     fine);
//   - calling (*rng.Source).Reseed: reseeding mid-stream detaches a
//     source from the (seed, id) derivation its consumers assume.
package rngstream

import (
	"go/ast"
	"go/types"
	"strconv"

	"beepmis/internal/analysis"
)

// DefaultRngPath is the one package allowed to construct and seed raw
// generators.
const DefaultRngPath = "beepmis/internal/rng"

// New returns the rngstream analyzer. rngPath overrides the sanctioned
// generator package (tests point it at a fixture); "" means
// DefaultRngPath.
func New(rngPath string) *analysis.Analyzer {
	if rngPath == "" {
		rngPath = DefaultRngPath
	}
	return &analysis.Analyzer{
		Name: "rngstream",
		Doc:  "forbid constructing or seeding random generators outside internal/rng",
		Run: func(pass *analysis.Pass) error {
			if pass.Pkg.Path() == rngPath {
				return nil
			}
			run(pass, rngPath)
			return nil
		},
	}
}

func run(pass *analysis.Pass, rngPath string) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside %s bypasses the per-(unit,trial,slot) stream discipline", path, rngPath)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkComposite(pass, rngPath, n)
			case *ast.CallExpr:
				checkReseed(pass, rngPath, n)
			}
			return true
		})
	}
}

// checkComposite flags rng.Source{...} literals with explicit state.
func checkComposite(pass *analysis.Pass, rngPath string, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != rngPath || obj.Name() != "Source" {
		return
	}
	pass.Reportf(lit.Pos(), "constructing %s.Source with explicit state bypasses SplitMix64 seeding; use rng.New or Source.Stream", obj.Pkg().Name())
}

// checkReseed flags (*rng.Source).Reseed calls.
func checkReseed(pass *analysis.Pass, rngPath string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Reseed" {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil || obj.Pkg() == nil || obj.Pkg().Path() != rngPath {
		return
	}
	pass.Reportf(call.Pos(), "Reseed detaches a Source from its (seed, id) stream derivation; derive a fresh stream instead")
}
